"""Setup shim for environments without the ``wheel`` package (offline CI).

All metadata lives in ``pyproject.toml``; this file only enables the legacy
``pip install -e .`` code path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Opera: automatic generation of online streaming algorithms from "
        "batch programs (PLDI 2024 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
