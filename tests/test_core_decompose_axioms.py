"""Tests for decomposition (Figure 9) and the combinator axioms (Figure 10)."""

from repro.core.axioms import apply_lambda, push_snoc
from repro.core.decompose import decompose
from repro.core.rfs import construct_rfs
from repro.ir.dsl import (
    XS,
    add,
    div,
    ffilter,
    fmap,
    fold,
    fold_sum,
    gt,
    lam,
    length,
    mul,
    powi,
    program,
    sub,
)
from repro.ir.nodes import Call, Const, Hole, If, Snoc, Var
from repro.ir.traversal import collect_holes, iter_subexprs


def _snoc_xs():
    return Snoc(XS, Var("x"))


class TestAxioms:
    def test_fold_over_snoc(self):
        # foldl(g, c, xs ++ [x]) -> g(foldl(g, c, xs), x)
        expr = fold(lam("a", "b", add("a", "b")), 0, _snoc_xs())
        rewritten = push_snoc(expr)
        assert rewritten == add(fold_sum(XS), "x")

    def test_length_over_snoc(self):
        expr = length(_snoc_xs())
        assert push_snoc(expr) == add(length(XS), 1)

    def test_map_over_snoc(self):
        sq = lam("v", mul("v", "v"))
        expr = fmap(sq, _snoc_xs())
        rewritten = push_snoc(expr)
        assert isinstance(rewritten, Snoc)
        assert rewritten.elem == mul("x", "x")

    def test_filter_over_snoc_introduces_conditional(self):
        pos = lam("v", gt("v", 0))
        expr = ffilter(pos, _snoc_xs())
        rewritten = push_snoc(expr)
        assert isinstance(rewritten, If)
        assert rewritten.cond == gt("x", 0)

    def test_fold_over_filter_over_snoc(self):
        # The count-positive pattern: the conditional floats above the fold.
        pos = lam("v", gt("v", 0))
        expr = fold(lam("a", "b", add("a", 1)), 0, ffilter(pos, _snoc_xs()))
        rewritten = push_snoc(expr)
        assert isinstance(rewritten, If)
        # then-branch applies the fold lambda once more
        then = rewritten.then
        assert then == add(fold(lam("a", "b", add("a", 1)), 0, ffilter(pos, XS)), 1)
        # else-branch is the untouched fold
        assert rewritten.orelse == fold(lam("a", "b", add("a", 1)), 0, ffilter(pos, XS))

    def test_fold_over_map_over_snoc(self):
        sq = lam("v", mul("v", "v"))
        expr = fold(lam("a", "b", add("a", "b")), 0, fmap(sq, _snoc_xs()))
        rewritten = push_snoc(expr)
        assert rewritten == add(
            fold(lam("a", "b", add("a", "b")), 0, fmap(sq, XS)), mul("x", "x")
        )

    def test_no_snoc_is_identity(self):
        expr = fold_sum(XS)
        assert push_snoc(expr) == expr

    def test_apply_lambda_beta_reduces(self):
        assert apply_lambda(lam("a", "b", add("a", "b")), Const(1), Const(2)) == add(1, 2)

    def test_nested_captured_snoc_rewritten(self):
        # Variance-like: the lambda captures avg over xs ++ [x]; the inner
        # fold and length over Snoc must also be rewritten.
        avg = div(fold_sum(_snoc_xs()), length(_snoc_xs()))
        expr = fold(
            lam("acc", "v", add("acc", powi(sub("v", avg), 2))), 0, _snoc_xs()
        )
        rewritten = push_snoc(expr)
        assert not any(isinstance(e, Snoc) for e in iter_subexprs(rewritten))


class TestDecompose:
    def test_mean_sketch_matches_example_5_2(self):
        rfs = construct_rfs(program(div(fold_sum(XS), length(XS))))
        sketch = decompose(rfs)
        # Two independent sub-problems: the sum fold and the length.
        assert len(sketch.specs) == 2
        # The body output is □1 / □2.
        body_out = sketch.program.outputs[0]
        assert isinstance(body_out, Call) and body_out.func == "div"
        assert all(isinstance(a, Hole) for a in body_out.args)

    def test_holes_shared_across_outputs(self):
        rfs = construct_rfs(program(div(fold_sum(XS), length(XS))))
        sketch = decompose(rfs)
        holes = [h.hole_id for out in sketch.program.outputs for h in collect_holes(out)]
        # fold hole appears twice (in body and as its own output), same id.
        assert len(holes) > len(set(holes))

    def test_variance_sketch_has_three_holes(self):
        avg = div(fold_sum(XS), length(XS))
        sq = fold(lam("acc", "v", add("acc", powi(sub("v", avg), 2))), 0, XS)
        rfs = construct_rfs(program(div(sq, length(XS))))
        sketch = decompose(rfs)
        assert len(sketch.specs) == 3  # sq fold, length, sum fold (Figure 5)

    def test_specs_are_offline_list_exprs(self):
        from repro.ir.traversal import is_list_expr

        rfs = construct_rfs(program(div(fold_sum(XS), length(XS))))
        sketch = decompose(rfs)
        assert all(is_list_expr(spec) for spec in sketch.specs.values())

    def test_structure_copied_verbatim(self):
        # Non-list operators of the offline program survive in the sketch.
        rfs = construct_rfs(program(add(div(fold_sum(XS), length(XS)), 1)))
        sketch = decompose(rfs)
        top = sketch.program.outputs[0]
        assert isinstance(top, Call) and top.func == "add"

    def test_elem_param_and_state_params(self):
        rfs = construct_rfs(program(fold_sum(XS)))
        sketch = decompose(rfs)
        assert sketch.program.elem_param == "x"
        assert sketch.program.state_params == rfs.names
