"""Tests for intra-task parallel synthesis (hole sharding), enumeration
sharding, and the shared :class:`repro.supervisor.ProcessSupervisor`."""

import os
import time
from fractions import Fraction

import pytest

from repro.core import SynthesisConfig, synthesize
from repro.core.enumerative import _terminal_tail, shard_terminal_tail
from repro.evaluation import ResultCache, default_hole_workers
from repro.evaluation.hole_bench import hole_bench_targets
from repro.ir.nodes import Const
from repro.suites import get_benchmark
from repro.supervisor import Job, ProcessSupervisor

#: Multi-hole suite benchmarks covering every solve method (implicate,
#: template, enumerative) — the determinism suite of the hole-sharding PR.
MULTI_HOLE = ("variance", "harmonic_mean", "covariance", "correlation")


def _comparable(report):
    """Everything a report contains except wall-clock."""
    return (
        report.task,
        report.success,
        report.scheme,
        [(h.hole_id, h.method, h.spec_size, h.solution_size) for h in report.holes],
        report.method_counts,
        report.failure_reason,
    )


def _synthesize(name, **config_kwargs):
    bench = get_benchmark(name)
    config = SynthesisConfig(
        timeout_s=60, element_arity=bench.element_arity, **config_kwargs
    )
    return synthesize(bench.program, config, name)


class TestHoleShardingDeterminism:
    @pytest.mark.parametrize("name", MULTI_HOLE)
    def test_reports_identical_across_hole_workers(self, name):
        """The contract of the feature: hole_workers is an execution knob,
        never a search knob — byte-identical reports modulo elapsed_s."""
        reports = {
            hw: _synthesize(name, hole_workers=hw) for hw in (1, 2, 4)
        }
        assert reports[1].success
        assert len(reports[1].holes) >= 2  # actually exercises the pool
        expected = _comparable(reports[1])
        assert _comparable(reports[2]) == expected
        assert _comparable(reports[4]) == expected

    def test_stress_benchmarks_identical_across_hole_workers(self):
        """The balanced-holes stress tasks of `bench holes` obey the same
        contract (they are the tasks the CI speedup gate runs)."""
        bench = hole_bench_targets()["stress_moments"]
        reports = {}
        for hw in (1, 2):
            config = SynthesisConfig(timeout_s=120, hole_workers=hw)
            reports[hw] = synthesize(bench.program, config, bench.name)
        assert reports[1].success
        assert len(reports[1].holes) >= 4
        assert _comparable(reports[1]) == _comparable(reports[2])

    def test_enum_shards_identical_across_hole_workers(self):
        """With a shard portfolio per hole, the lowest-accepting-shard rule
        makes the result independent of how the shards execute."""
        expected = None
        for hw in (1, 2, 4):
            report = _synthesize("harmonic_mean", enum_shards=2, hole_workers=hw)
            assert report.success
            if expected is None:
                expected = _comparable(report)
            else:
                assert _comparable(report) == expected

    def test_enum_shards_reproducible(self):
        first = _synthesize("harmonic_mean", enum_shards=3, use_symbolic=False)
        second = _synthesize("harmonic_mean", enum_shards=3, use_symbolic=False)
        assert first.success
        assert _comparable(first) == _comparable(second)

    def test_deterministic_failures_identical_across_hole_workers(self):
        """Deterministic failures (enumeration work caps, not wall-clock)
        must replay with the exact class name in failure_reason."""
        reports = {
            hw: _synthesize(
                "variance",
                use_symbolic=False,
                enumeration_max_kept=5,
                hole_workers=hw,
            )
            for hw in (1, 2)
        }
        assert not reports[1].success
        assert reports[1].failure_reason.startswith("EnumerationCapExceeded")
        assert _comparable(reports[1]) == _comparable(reports[2])

    def test_budget_still_bounds_the_whole_task(self):
        """The hard wall-clock guarantee survives hole-level dispatch: no
        sub-task outlives the task budget by more than the kill grace."""
        bench = get_benchmark("kurtosis")  # the paper's expected failure
        config = SynthesisConfig(timeout_s=1.0, hole_workers=2)
        start = time.monotonic()
        report = synthesize(bench.program, config, "kurtosis")
        wall = time.monotonic() - start
        assert not report.success
        assert wall < 10.0


class TestCacheKeyStability:
    def test_fingerprint_excludes_hole_workers(self):
        base = SynthesisConfig()
        assert base.fingerprint() == SynthesisConfig(hole_workers=8).fingerprint()

    def test_fingerprint_includes_enum_shards(self):
        base = SynthesisConfig()
        assert base.fingerprint() != SynthesisConfig(enum_shards=2).fingerprint()
        assert (
            base.fingerprint()
            != SynthesisConfig(enum_shard_generated_cap=5).fingerprint()
        )

    def test_cache_key_unchanged_by_hole_workers(self):
        bench = get_benchmark("variance")
        sequential = ResultCache.task_key(
            "opera", bench, SynthesisConfig(timeout_s=10, hole_workers=1)
        )
        parallel = ResultCache.task_key(
            "opera", bench, SynthesisConfig(timeout_s=10, hole_workers=4)
        )
        assert sequential == parallel

    def test_default_hole_workers_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOLE_WORKERS", "3")
        assert default_hole_workers() == 3
        monkeypatch.setenv("REPRO_HOLE_WORKERS", "zero")
        with pytest.raises(ValueError, match="REPRO_HOLE_WORKERS"):
            default_hole_workers()
        monkeypatch.delenv("REPRO_HOLE_WORKERS")
        assert default_hole_workers() == 1


class TestShardPartition:
    def test_round_robin_covers_pool_without_overlap(self):
        seeds = [Const(7), Const(11), Const(13)]
        full = _terminal_tail(seeds)
        shards = [shard_terminal_tail(seeds, s, 3) for s in range(3)]
        rebuilt = [expr for shard in shards for expr in shard]
        assert sorted(map(repr, rebuilt)) == sorted(map(repr, full))
        for i in range(3):
            for j in range(i + 1, 3):
                assert not set(map(repr, shards[i])) & set(map(repr, shards[j]))

    def test_partition_is_deterministic(self):
        seeds = [Const(5)]
        assert shard_terminal_tail(seeds, 0, 2) == shard_terminal_tail(seeds, 0, 2)


# -- the shared supervisor ---------------------------------------------------
# Payload functions are module-level so they pickle under spawn contexts.


def _payload_return(value):
    return value


def _payload_raise():
    raise RuntimeError("boom")


def _payload_exit():
    os._exit(3)


def _payload_sleep(seconds):
    time.sleep(seconds)
    return "done"


class TestProcessSupervisor:
    def test_ok_result(self):
        sup = ProcessSupervisor(workers=1)
        [result] = list(
            sup.run([Job("k", _payload_return, (Fraction(1, 3),), 10.0)])
        )
        assert (result.kind, result.value) == ("ok", Fraction(1, 3))
        assert result.job.key == "k"

    def test_error_result(self):
        sup = ProcessSupervisor(workers=1)
        [result] = list(sup.run([Job("k", _payload_raise, (), 10.0)]))
        assert result.kind == "error"
        assert "RuntimeError: boom" in result.message

    def test_crash_result(self):
        sup = ProcessSupervisor(workers=1)
        [result] = list(sup.run([Job("k", _payload_exit, (), 10.0)]))
        assert (result.kind, result.exitcode) == ("crashed", 3)

    def test_timeout_kills_at_deadline(self):
        sup = ProcessSupervisor(workers=1, kill_grace_s=0.1)
        start = time.monotonic()
        [result] = list(sup.run([Job("k", _payload_sleep, (30.0,), 0.4)]))
        assert result.kind == "timeout"
        assert time.monotonic() - start < 5.0

    def test_global_deadline_caps_generous_job_budgets(self):
        sup = ProcessSupervisor(workers=1, kill_grace_s=0.1)
        start = time.monotonic()
        [result] = list(
            sup.run(
                [Job("k", _payload_sleep, (30.0,), 60.0)],
                deadline=time.monotonic() + 0.4,
            )
        )
        assert result.kind == "timeout"
        assert time.monotonic() - start < 5.0

    def test_cancel_withdraws_pending_and_active(self):
        sup = ProcessSupervisor(workers=2, kill_grace_s=0.1)
        jobs = [
            Job(("a", 0), _payload_return, (1,), 60.0),
            Job(("a", 1), _payload_sleep, (30.0,), 60.0),  # active at cancel
            Job(("a", 2), _payload_sleep, (30.0,), 60.0),  # pending at cancel
            Job(("b", 0), _payload_return, (42,), 60.0),
        ]
        results = []
        start = time.monotonic()
        for result in sup.run(jobs):
            results.append(result)
            if result.job.key == ("a", 0):
                # Kill the running sibling, drop the queued one.
                assert sup.cancel(lambda key: key[0] == "a") == 2
        assert time.monotonic() - start < 10.0
        assert sorted(r.job.key for r in results) == [("a", 0), ("b", 0)]

    def test_wait_is_deadline_driven_not_polling(self, monkeypatch):
        """The supervisor must sleep until min(deadline, event) — the old
        100 ms wait cap busy-woke it ~10x per idle second."""
        import multiprocessing.connection as mpc

        calls = []
        real_wait = mpc.wait

        def counting_wait(handles, timeout=None):
            calls.append(timeout)
            return real_wait(handles, timeout=timeout)

        monkeypatch.setattr(mpc, "wait", counting_wait)
        sup = ProcessSupervisor(workers=1)
        [result] = list(sup.run([Job("k", _payload_sleep, (1.2,), 30.0)]))
        assert result.kind == "ok"
        # One wait spanning the whole sleep (plus scheduling slack), not a
        # dozen 100 ms naps.
        assert len(calls) <= 4
        assert max(calls) > 5.0  # the wait actually extended to the deadline
