"""Tests for the bounded-exhaustive and symbolic verification modes."""

from fractions import Fraction

from repro.baselines import OperaFull
from repro.core import SynthesisConfig, construct_rfs
from repro.core.verify import (
    bounded_streams,
    check_bounded_exhaustive,
    check_symbolic,
    verify_scheme,
)
from repro.ir.dsl import (
    XS,
    add,
    div,
    fold_sum,
    length,
    mean_of,
    minimum,
    mul,
    powi,
    program,
    sub,
)
from repro.ir.nodes import Var
from repro.suites import get_benchmark


class TestBoundedStreams:
    def test_lengths(self):
        streams = list(bounded_streams(2, (Fraction(0), Fraction(1))))
        # lengths 0,1,2 over a 2-element grid: 1 + 2 + 4
        assert len(streams) == 7

    def test_tuple_elements(self):
        streams = list(bounded_streams(1, (Fraction(0), Fraction(1)), arity=2))
        assert ((Fraction(0), Fraction(1)),) in streams


class TestBoundedExhaustive:
    def test_accepts_sum_update(self):
        rfs = construct_rfs(program(fold_sum(XS)))
        y = rfs.result_param
        assert check_bounded_exhaustive(
            fold_sum(XS), add(Var(y), "x"), rfs, max_len=2
        )

    def test_rejects_wrong_update(self):
        rfs = construct_rfs(program(fold_sum(XS)))
        y = rfs.result_param
        assert not check_bounded_exhaustive(
            fold_sum(XS), mul(Var(y), "x"), rfs, max_len=2
        )

    def test_catches_safe_division_corner(self):
        # y + 1/x vs (x*y + 1)/x differ only at x = 0: the grid hits it.
        # Compare the two candidates through the oracle by checking the bad
        # one against the semantics of the good one's spec:
        from repro.ir.dsl import fold, lam

        recip_fold = fold(lam("a", "v", add("a", div(1, "v"))), 0, XS)
        rfs2 = construct_rfs(program(recip_fold))
        y2 = rfs2.result_param
        good2 = add(Var(y2), div(1, "x"))
        bad2 = div(add(mul("x", Var(y2)), 1), "x")
        assert check_bounded_exhaustive(recip_fold, good2, rfs2, max_len=2)
        assert not check_bounded_exhaustive(recip_fold, bad2, rfs2, max_len=2)


class TestSymbolic:
    def test_proves_sum(self):
        rfs = construct_rfs(program(fold_sum(XS)))
        y = rfs.result_param
        assert check_symbolic(fold_sum(XS), add(Var(y), "x"), rfs) is True

    def test_refutes_wrong(self):
        rfs = construct_rfs(program(fold_sum(XS)))
        y = rfs.result_param
        assert check_symbolic(fold_sum(XS), sub(Var(y), "x"), rfs) is False

    def test_length_increment(self):
        rfs = construct_rfs(program(fold_sum(XS)))
        n = rfs.length_param
        assert check_symbolic(length(XS), add(Var(n), 1), rfs) is True

    def test_division_outside_fragment(self):
        rfs = construct_rfs(program(mean_of(XS)))
        assert check_symbolic(mean_of(XS), Var(rfs.result_param), rfs) is None

    def test_atoms_outside_fragment(self):
        rfs = construct_rfs(program(fold_sum(XS)))
        y = rfs.result_param
        assert check_symbolic(fold_sum(XS), minimum(Var(y), "x"), rfs) is None

    def test_proves_sum_of_squares(self):
        from repro.ir.dsl import fold_sum_of

        spec = fold_sum_of("v", powi("v", 2), XS)
        rfs = construct_rfs(program(spec))
        y = rfs.result_param
        assert check_symbolic(spec, add(Var(y), powi("x", 2)), rfs) is True


class TestVerifyScheme:
    def test_accepts_synthesized_sum(self):
        bench = get_benchmark("sum")
        report = OperaFull().synthesize(
            bench.program, SynthesisConfig(timeout_s=30), "sum"
        )
        assert verify_scheme(bench.program, report.scheme, bounded_len=2)

    def test_rejects_ground_truth_with_wrong_init(self):
        from repro.core.scheme import OnlineScheme

        bench = get_benchmark("sum")
        gt = bench.ground_truth
        broken = OnlineScheme((1,), gt.program)
        assert not verify_scheme(bench.program, broken, bounded_len=1)
