"""Unit and property tests for rational functions."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.polynomial import Poly
from repro.algebra.ratfunc import RatFunc

X = RatFunc.var("x")
Y = RatFunc.var("y")


def small_ratfuncs():
    coeffs = st.integers(min_value=-4, max_value=4)

    @st.composite
    def build(draw):
        a, b, c = draw(coeffs), draw(coeffs), draw(coeffs)
        d, e = draw(coeffs), draw(coeffs)
        num = Poly.var("x") * a + Poly.var("y") * b + Poly.const(c)
        den = Poly.var("x") * d + Poly.const(e if e != 0 else 1)
        if den.is_zero():
            den = Poly.one()
        return RatFunc(num, den)

    return build()


class TestConstruction:
    def test_zero_denominator_rejected(self):
        with pytest.raises(ZeroDivisionError):
            RatFunc(Poly.one(), Poly.zero())

    def test_zero_numerator_normalizes(self):
        r = RatFunc(Poly.zero(), Poly.var("x"))
        assert r.is_zero()
        assert r.den == Poly.one()

    def test_constant_collapse(self):
        r = RatFunc(Poly.const(6), Poly.const(3))
        assert r.is_constant()
        assert r.constant_value() == 2


class TestNormalization:
    def test_monomial_cancellation(self):
        # (x^2 y) / (x y) -> x
        r = RatFunc(Poly.var("x", 2) * Poly.var("y"), Poly.var("x") * Poly.var("y"))
        assert r == X

    def test_exact_division_cancellation(self):
        # (x^2 - y^2) / (x + y) -> x - y
        num = Poly.var("x") ** 2 - Poly.var("y") ** 2
        den = Poly.var("x") + Poly.var("y")
        assert RatFunc(num, den) == X - Y

    def test_univariate_gcd_cancellation(self):
        # (x^2 + 2x + 1) / (x^2 - 1) == (x+1)/(x-1)
        num = (Poly.var("x") + 1) ** 2
        den = Poly.var("x") ** 2 - Poly.const(1)
        expected = RatFunc(Poly.var("x") + 1, Poly.var("x") - Poly.const(1))
        assert RatFunc(num, den) == expected

    def test_denominator_sign_normalized(self):
        r = RatFunc(Poly.var("x"), Poly.const(-2))
        assert r.den.constant_value() > 0


class TestFieldOps:
    def test_addition_common_denominator(self):
        assert X / Y + X / Y == (2 * X) / Y

    def test_division(self):
        assert (X / Y) / (X / Y) == RatFunc.const(1)

    def test_negative_power(self):
        assert X**-1 == RatFunc(Poly.one(), Poly.var("x"))

    def test_substitution(self):
        r = X / (Y + 1)
        s = r.substitute({"x": RatFunc.const(4), "y": RatFunc.const(1)})
        assert s.constant_value() == 2

    def test_substitution_with_ratfunc(self):
        r = X + 1
        s = r.substitute({"x": RatFunc.var("a") / RatFunc.var("b")})
        assert s == (RatFunc.var("a") + RatFunc.var("b")) / RatFunc.var("b")

    def test_evaluate_safe_division(self):
        r = X / Y
        assert r.evaluate({"x": 3, "y": 0}) == 0  # paper's convention


class TestFieldProperties:
    @settings(max_examples=50, deadline=None)
    @given(small_ratfuncs(), small_ratfuncs())
    def test_add_commutes(self, r, s):
        assert r + s == s + r

    @settings(max_examples=50, deadline=None)
    @given(small_ratfuncs(), small_ratfuncs())
    def test_mul_commutes(self, r, s):
        assert r * s == s * r

    @settings(max_examples=50, deadline=None)
    @given(small_ratfuncs())
    def test_sub_self_is_zero(self, r):
        assert (r - r).is_zero()

    @settings(max_examples=50, deadline=None)
    @given(small_ratfuncs())
    def test_mul_div_roundtrip(self, r):
        if r.is_zero():
            return
        assert (r * r) / r == r

    @settings(max_examples=50, deadline=None)
    @given(small_ratfuncs(), small_ratfuncs())
    def test_evaluation_consistent_with_ops(self, r, s):
        env = {"x": Fraction(3, 2), "y": Fraction(-2)}
        if r.den.evaluate(env) == 0 or s.den.evaluate(env) == 0:
            return
        total = r + s
        if total.den.evaluate(env) == 0:
            return
        assert total.evaluate(env) == r.evaluate(env) + s.evaluate(env)
