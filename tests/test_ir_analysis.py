"""The static-analysis framework (:mod:`repro.ir.analysis`), differentially.

The analyses make checkable claims; these tests check them against the
actual runtime rather than against the analyzer's own opinion of itself:

* interval certificates: every state value observed while stepping a scheme
  over adversarial in-bounds streams lies inside the certified interval
  (so in particular int64 certificates are honest);
* division-by-zero: a site the analyzer calls ``safe`` never sees a zero
  denominator at runtime, and a ``reachable`` witness replays to a real
  zero denominator on the concrete interpreter;
* dead-state elimination: the rewrite is bit-identical (types included) on
  every ground-truth scheme and on synthetic schemes with dead components,
  compiled and interpreted, keyed and unkeyed, through checkpoint round
  trips;
* static pruning: the enumerator finds the identical expression with the
  identical generated/kept/checked counts whether pruning is on or off;
* the report/exit-code contract the CLI builds on.

Soundness is enforced on all 51 ground truths plus >= 200 randomly
enumerated candidate programs per seed.
"""

from __future__ import annotations

import json
import random
from dataclasses import replace
from fractions import Fraction

import pytest

from test_ir_compile import (
    ORACLE_ERRORS,
    adversarial_stream,
    assert_same_value,
    random_candidate,
)

from repro.cli import main as cli_main
from repro.core import SynthesisConfig
from repro.core.enumerative import EnumStats, enumerate_expression
from repro.core.rfs import RFS
from repro.core.scheme import OnlineScheme
from repro.ir.analysis import (
    AnalysisBounds,
    FieldBounds,
    analyze_intervals,
    analyze_liveness,
    analyze_online,
    audit_program,
    bounds_from_spec,
    eliminate_dead_state,
    exit_code,
    find_divzero_witness,
    int64_certified,
    iter_div_sites,
    scalar_bounds,
    statically_redundant,
)
from repro.ir.analysis.domain import INF, ANum, Interval, join_iv, of_value, widen_iv
from repro.ir.analysis.divzero import watched_step
from repro.ir.dsl import XS, fold_sum_of, powi
from repro.ir.nodes import (
    Call,
    Const,
    Hole,
    If,
    MakeTuple,
    OnlineProgram,
    Proj,
    Var,
)
from repro.runtime import KeyedOperator
from repro.runtime.checkpoint import restore_keyed
from repro.suites import all_benchmarks, get_benchmark

#: Bounds that cover every value ``adversarial_stream`` can emit (its pool
#: spans ints in [-3, 7] and fractions in [-9/4, 22/7]; arity-2 second
#: fields span [0, 3]) — streams drawn from it are in-bounds by
#: construction, which is what makes the soundness checks meaningful.
def _stream_bounds(arity: int, max_elements: int = 60) -> AnalysisBounds:
    if arity <= 1:
        fields = (FieldBounds(Fraction(-3), Fraction(7)),)
    else:
        fields = (
            FieldBounds(Fraction(-3), Fraction(7)),
            FieldBounds(Fraction(0), Fraction(3)),
        )
    return AnalysisBounds(element=fields, max_elements=max_elements)


def _extras_for(program: OnlineProgram) -> dict:
    return {
        name: value
        for name, value in zip(program.extra_params, (2, Fraction(1, 2), 0, -3) * 4)
    }


# ---------------------------------------------------------------------------
# Abstract domain
# ---------------------------------------------------------------------------


class TestDomain:
    def test_interval_basics(self):
        iv = Interval(Fraction(-2), Fraction(5))
        assert iv.bounded and iv.contains_zero() and iv.contains(Fraction(3))
        assert not iv.contains(Fraction(6))
        assert Interval(Fraction(1), Fraction(1)).singleton

    def test_join_and_widen(self):
        a = Interval(Fraction(0), Fraction(1))
        b = Interval(Fraction(-3), Fraction(2))
        j = join_iv(a, b)
        assert j.lo == Fraction(-3) and j.hi == Fraction(2)
        w = widen_iv(a, Interval(Fraction(0), Fraction(10**7)))
        assert w.hi >= Fraction(10**7)  # widened past, never below

    def test_infinite_endpoints_do_not_overflow(self):
        # Fraction + float inf would raise OverflowError on huge fractions;
        # the domain's endpoint arithmetic must stay symbolic.
        huge = ANum(Interval(Fraction(10**400), INF), integral=True, exact=True)
        from repro.ir.analysis.domain import num_add, num_mul, num_sub

        for fn in (num_add, num_sub, num_mul):
            out = fn(huge, huge)
            assert isinstance(out, ANum)  # no OverflowError

    def test_of_value_and_int64(self):
        assert int64_certified(of_value(3))
        assert int64_certified(of_value(Fraction(4, 2)))
        assert not int64_certified(of_value(Fraction(1, 3)))  # not integral
        assert not int64_certified(of_value(2**63))  # out of range
        unbounded = ANum(Interval(-INF, INF), integral=True, exact=True)
        assert not int64_certified(unbounded)


# ---------------------------------------------------------------------------
# Bounds derivation
# ---------------------------------------------------------------------------


class TestBounds:
    def test_bids_spec(self):
        b = bounds_from_spec("bids:1000")
        assert b.max_elements == 1000
        price, category = b.element
        assert (price.lo, price.hi, price.integral) == (50, 500, True)
        assert (category.lo, category.hi) == (1, 5)

    def test_counter_and_list(self):
        c = bounds_from_spec("counter:10")
        assert (c.element[0].lo, c.element[0].hi) == (0, 9)
        lst = bounds_from_spec("list:3,1,-2")
        assert (lst.element[0].lo, lst.element[0].hi) == (-2, 3)
        assert lst.max_elements == 3

    def test_max_elements_only_tightens(self):
        b = bounds_from_spec("bids:1000", max_elements=10)
        assert b.max_elements == 10
        b = bounds_from_spec("bids:10", max_elements=1000)
        assert b.max_elements == 10

    def test_unknown_source_raises(self):
        with pytest.raises(ValueError):
            bounds_from_spec("nope:1")


# ---------------------------------------------------------------------------
# Well-formedness audit
# ---------------------------------------------------------------------------


class TestWellformed:
    def test_clean_scheme_has_no_errors(self):
        scheme = get_benchmark("variance").ground_truth
        findings = audit_program(scheme.program, scheme.initializer)
        assert not [f for f in findings if f["level"] == "error"]

    def test_builtin_arity_mismatch_is_error(self):
        prog = OnlineProgram(("s",), "x", (Call("add", (Var("s"),)),))
        report = analyze_online(prog, (0,), scalar_bounds(), search_witness=False)
        assert report["verdict"] == "error"
        assert any("add expects 2" in f["message"] for f in report["findings"])

    def test_hole_and_unknown_builtin_are_errors(self):
        holey = OnlineProgram(("s",), "x", (Hole(0),))
        assert analyze_online(holey, (0,), search_witness=False)["verdict"] == "error"
        unknown = OnlineProgram(("s",), "x", (Call("frobnicate", (Var("s"),)),))
        assert analyze_online(unknown, (0,), search_witness=False)["verdict"] == "error"

    def test_error_reports_skip_deeper_analyses(self):
        # The interval engine assumes well-formedness; a broken scheme must
        # still produce a structurally complete report instead of a crash.
        prog = OnlineProgram(("s",), "x", (Call("add", (Var("s"),)),))
        report = analyze_online(prog, (0,), search_witness=True)
        assert report["intervals"]["state"] == []
        assert report["divzero"]["verdict"] == "unknown"


# ---------------------------------------------------------------------------
# Interval certification
# ---------------------------------------------------------------------------


class TestIntervals:
    def test_revenue_over_bids_is_int64_certified(self):
        scheme = get_benchmark("q_revenue").ground_truth
        report = scheme.analyze(bounds_from_spec("bids:1000"), search_witness=False)
        assert report["intervals"]["int64_safe"]
        assert all(s["int64"] for s in report["intervals"]["state"])

    def test_count_certificate_tracks_max_elements(self):
        scheme = get_benchmark("count").ground_truth
        report = scheme.analyze(scalar_bounds(max_elements=500), search_witness=False)
        (entry,) = report["intervals"]["state"]
        assert entry["int64"] and entry["certificate"] in ("affine", "fixpoint")
        assert Fraction(entry["hi"]) <= 500

    def test_unbounded_stream_is_not_certified(self):
        scheme = get_benchmark("sum").ground_truth
        report = scheme.analyze(scalar_bounds(), search_witness=False)
        (entry,) = report["intervals"]["state"]
        assert not entry["int64"]


# ---------------------------------------------------------------------------
# Division-by-zero reachability
# ---------------------------------------------------------------------------


class TestDivZero:
    def test_sum_is_safe(self):
        scheme = get_benchmark("sum").ground_truth
        report = scheme.analyze(scalar_bounds(), search_witness=True)
        assert report["divzero"]["verdict"] == "safe"

    def test_variance_witness_replays_to_a_zero_denominator(self):
        scheme = get_benchmark("variance").ground_truth
        bounds = scalar_bounds(Fraction(-10), Fraction(10), integral=True, max_elements=6)
        witness = find_divzero_witness(scheme.program, scheme.initializer, bounds)
        assert witness is not None
        # Replay: stepping the concrete interpreter over the witness stream
        # must record a zero denominator at exactly the reported site.
        state = scheme.initializer
        for i, elem in enumerate(witness.elements):
            hits: list = []
            try:
                state = watched_step(scheme.program, state, elem, witness.extras, hits)
            except ORACLE_ERRORS:
                pass
            if i == witness.element_index:
                assert witness.site in hits
                break
        else:
            pytest.fail("witness index beyond its own stream")

    def test_reachable_is_warn_not_error(self):
        scheme = get_benchmark("variance").ground_truth
        report = scheme.analyze(
            scalar_bounds(Fraction(-10), Fraction(10), integral=True, max_elements=6)
        )
        assert report["divzero"]["verdict"] == "reachable"
        assert report["verdict"] == "warn"  # safe_div absorbs: deployable
        assert exit_code(report) == 0
        assert exit_code(report, strict=True) == 1


# ---------------------------------------------------------------------------
# Liveness + dead-state elimination
# ---------------------------------------------------------------------------


def _mean_with_junk() -> OnlineScheme:
    """Mean plus a max-tracking component nothing reads (total update)."""
    prog = OnlineProgram(
        ("m", "n", "junk"),
        "x",
        (
            Call(
                "div",
                (
                    Call("add", (Call("mul", (Var("m"), Var("n"))), Var("x"))),
                    Call("add", (Var("n"), Const(1))),
                ),
            ),
            Call("add", (Var("n"), Const(1))),
            Call("max", (Var("junk"), Var("x"))),
        ),
    )
    return OnlineScheme((0, 0, 0), prog, provenance="test")


class TestDeadStateElimination:
    def test_removes_dead_total_component(self):
        scheme = _mean_with_junk()
        rewritten, removed = scheme.eliminate_dead_state(element_arity=1)
        assert removed == ("junk",)
        assert rewritten.program.state_params == ("m", "n")
        assert rewritten.arity == 2

    def test_retains_dead_component_with_faulting_update(self):
        # sqrt can raise on huge exact rationals (float conversion), so the
        # update is not provably total: removal would change fault behaviour.
        prog = OnlineProgram(
            ("s", "junk"),
            "x",
            (Call("add", (Var("s"), Var("x"))), Call("sqrt", (Var("junk"),))),
        )
        report = analyze_liveness(prog, (0, 0), element_arity=1)
        assert report.removable == ()
        assert 1 in report.retained
        new_prog, _, removed = eliminate_dead_state(prog, (0, 0), element_arity=1)
        assert removed == () and new_prog is prog

    def test_unknown_element_shape_blocks_elimination(self):
        # element_arity=None: the element kind is unknown, so no update can
        # be proved total and nothing may be removed.
        scheme = _mean_with_junk()
        _, removed = scheme.eliminate_dead_state(element_arity=None)
        assert removed == ()

    @pytest.mark.parametrize("jit", ["1", "0"])
    def test_bit_identical_jit_on_and_off(self, monkeypatch, jit):
        monkeypatch.setenv("REPRO_JIT", jit)
        scheme = _mean_with_junk()
        rewritten, removed = scheme.eliminate_dead_state(element_arity=1)
        assert removed
        stream = adversarial_stream(1, f"dse:{jit}")
        assert_same_value(
            scheme.run_to_list(stream), rewritten.run_to_list(stream), "dse"
        )

    def test_every_ground_truth_unchanged_or_identical(self):
        # Ground truths are hand-minimal (no dead state today), but the
        # invariant is the rewrite's, not the corpus's: whatever it returns
        # must be bit-identical on adversarial streams.
        for bench in all_benchmarks():
            scheme = bench.ground_truth
            rewritten, _removed = scheme.eliminate_dead_state(bench.element_arity)
            stream = adversarial_stream(bench.element_arity, f"dse:{bench.name}")
            extras = _extras_for(scheme.program)
            assert_same_value(
                scheme.run_to_list(stream, extras),
                rewritten.run_to_list(stream, extras),
                bench.name,
            )

    def test_keyed_and_checkpoint_round_trip(self):
        scheme = _mean_with_junk()
        rewritten, _ = scheme.eliminate_dead_state(element_arity=1)
        stream = adversarial_stream(2, "dse:keyed", n=50)
        key_fn = lambda e: e[1]  # noqa: E731
        value_fn = lambda e: e[0]  # noqa: E731

        def run(s):
            op = KeyedOperator(s, key_fn, value_fn=value_fn)
            op.push_many(stream[:23])
            resumed = restore_keyed(op.checkpoint(), key_fn, value_fn=value_fn)
            resumed.push_many(stream[23:])
            return resumed

        original, reduced = run(scheme), run(rewritten)
        assert sorted(original.partitions) == sorted(reduced.partitions)
        for key in original.partitions:
            assert_same_value(original.value(key), reduced.value(key), f"key {key}")

    def test_dse_round_trips_through_serialization(self):
        rewritten, _ = _mean_with_junk().eliminate_dead_state(element_arity=1)
        clone = OnlineScheme.loads(rewritten.dumps())
        assert clone == rewritten


# ---------------------------------------------------------------------------
# Soundness, differentially
# ---------------------------------------------------------------------------


def _check_soundness(program, initializer, bounds, streams, extras):
    """Interval containment + divzero-safety of one analyzed program against
    concrete runs; returns the number of (stream, step) points checked."""
    analysis = analyze_intervals(program, tuple(initializer), bounds)
    report = analyze_online(program, initializer, bounds, search_witness=False)
    dz_safe = report["divzero"]["verdict"] == "safe"
    points = 0
    for stream in streams:
        state = tuple(initializer)
        for elem in stream:
            hits: list = []
            faulted = False
            try:
                nxt = watched_step(program, state, elem, extras, hits)
            except ORACLE_ERRORS:
                faulted = True
            if dz_safe:
                assert not hits, f"divzero-safe site saw zero denominator: {hits}"
            if faulted:
                break
            for name, av, value in zip(program.state_params, analysis.state, nxt):
                if (
                    isinstance(av, ANum)
                    and isinstance(value, (int, Fraction))
                    and not isinstance(value, bool)
                ):
                    assert av.iv.lo <= value <= av.iv.hi, (
                        f"{name}={value} escapes certified [{av.iv.lo}, {av.iv.hi}]"
                    )
                    points += 1
            state = nxt
    return points


class TestSoundness:
    def test_all_ground_truths(self):
        for bench in all_benchmarks():
            scheme = bench.ground_truth
            bounds = _stream_bounds(bench.element_arity)
            streams = [adversarial_stream(bench.element_arity, f"snd:{bench.name}")]
            _check_soundness(
                scheme.program,
                scheme.initializer,
                bounds,
                streams,
                _extras_for(scheme.program),
            )

    @pytest.mark.parametrize("seed", [11, 12])
    def test_random_candidates(self, seed):
        """>= 200 random candidate programs per seed: certificates must
        contain every observed value, divzero-safe verdicts must hold."""
        rng = random.Random(seed)
        names = ("y1", "y2", "x")
        bounds = _stream_bounds(1, max_elements=30)
        pool = [0, 1, -1, 2, -3, 7, Fraction(1, 3), Fraction(-2, 5), Fraction(22, 7)]
        checked = 0
        while checked < 200:
            program = OnlineProgram(
                ("y1", "y2"),
                "x",
                (
                    random_candidate(rng, names, rng.randint(1, 4)),
                    random_candidate(rng, names, rng.randint(1, 3)),
                ),
            )
            report = analyze_online(program, (0, 0), bounds, search_witness=False)
            checked += 1
            if report["verdict"] == "error":
                continue  # statically broken: nothing to run
            streams = [
                [rng.choice(pool) for _ in range(30)] for _ in range(3)
            ]
            _check_soundness(program, (0, 0), bounds, streams, {})


# ---------------------------------------------------------------------------
# Static pruning
# ---------------------------------------------------------------------------


class TestPrune:
    def test_redundancy_rules(self):
        e = Var("s")
        assert statically_redundant(Call("div", (e, Const(1))))
        assert statically_redundant(Call("min", (e, e)))
        assert statically_redundant(Call("max", (e, e)))
        assert statically_redundant(Call("neg", (Call("neg", (e,)),)))
        assert statically_redundant(If(Const(True), e, Var("x")))
        assert statically_redundant(If(Call("lt", (e, e)), e, e))
        assert statically_redundant(Proj(Const(3), 0))  # scalar projection
        assert statically_redundant(Proj(MakeTuple((e, e)), 0))
        assert statically_redundant(Call("sqrt", (MakeTuple((e, e)),)))

    def test_sound_non_rules(self):
        # Excluded on purpose: float degradation makes these behaviourally
        # distinct from their "simplified" forms in corner environments.
        e = Var("s")
        assert not statically_redundant(Call("add", (e, Const(0))))
        assert not statically_redundant(Call("mul", (e, Const(1))))
        assert not statically_redundant(Call("sub", (e, e)))
        assert not statically_redundant(Call("div", (e, Const(1.0))))  # float 1
        assert not statically_redundant(Call("div", (e, Const(True))))  # bool

    def test_enumeration_identical_with_and_without_pruning(self):
        """The load-bearing invariant behind excluding ``enum_static_prune``
        from the config fingerprint: same candidate generated/kept/checked
        counts, same found expression."""
        spec = fold_sum_of("v", powi("v", 2), XS)
        rfs = RFS(entries={"s": spec}, list_param="xs")
        results = {}
        for prune in (True, False):
            config = SynthesisConfig(
                timeout_s=60.0, enumeration_max_size=7, enum_static_prune=prune
            )
            stats = EnumStats()
            found = enumerate_expression(rfs, spec, config, stats=stats)
            results[prune] = (found, stats.generated, stats.kept, stats.checked)
        assert results[True][0] is not None, "enumeration should solve sum-of-squares"
        assert results[True] == results[False]
        # and pruning actually did something
        config = SynthesisConfig(timeout_s=60.0, enumeration_max_size=7)
        stats = EnumStats()
        enumerate_expression(rfs, spec, config, stats=stats)
        assert stats.pruned > 0

    def test_prune_flag_is_fingerprint_neutral(self):
        on = SynthesisConfig(enum_static_prune=True).fingerprint()
        off = SynthesisConfig(enum_static_prune=False).fingerprint()
        assert on == off


# ---------------------------------------------------------------------------
# Report + CLI contract
# ---------------------------------------------------------------------------


class TestReportContract:
    def test_exit_codes(self):
        assert exit_code({"verdict": "ok"}) == 0
        assert exit_code({"verdict": "warn"}) == 0
        assert exit_code({"verdict": "warn"}, strict=True) == 1
        assert exit_code({"verdict": "error"}) == 1
        assert exit_code({}) == 1  # malformed report: fail closed

    def test_report_is_json_serializable(self):
        scheme = get_benchmark("variance").ground_truth
        report = scheme.analyze(bounds_from_spec("gaussian:50"))
        round_tripped = json.loads(json.dumps(report))
        assert round_tripped["format"] == "repro/analysis"
        assert round_tripped["verdict"] in ("ok", "warn", "error")

    def test_compile_attaches_and_caches_analysis(self, tmp_path):
        from repro import api
        from repro.store import SchemeStore

        store = SchemeStore(tmp_path)
        src = "def total(xs):\n    s = 0\n    for x in xs:\n        s += x\n    return s\n"
        first = api.compile(src, store=store, name="total")
        assert first.analysis_verdict in ("ok", "warn")
        second = api.compile(src, store=store, name="total")
        assert second.from_store
        assert second.analysis == first.analysis  # served from the store


class TestCLI:
    def _scheme_file(self, tmp_path, name="mean"):
        path = tmp_path / f"{name}.scheme.json"
        get_benchmark(name).ground_truth.save(path)
        return str(path)

    def test_analyze_ok_scheme_exits_zero(self, tmp_path, capsys):
        assert cli_main(["analyze", self._scheme_file(tmp_path)]) == 0
        assert "mean.scheme" in capsys.readouterr().out

    def test_analyze_strict_promotes_warn(self, tmp_path, capsys):
        path = self._scheme_file(tmp_path, "variance")
        assert cli_main(["analyze", path, "--source", "gaussian:20"]) == 0
        assert (
            cli_main(["analyze", path, "--source", "gaussian:20", "--strict"]) == 1
        )
        capsys.readouterr()

    def test_analyze_usage_errors_exit_two(self, tmp_path, capsys):
        assert cli_main(["analyze"]) == 2  # neither scheme nor --suite
        assert cli_main(["analyze", str(tmp_path / "missing.json")]) == 2
        path = self._scheme_file(tmp_path)
        assert cli_main(["analyze", path, "--source", "nope:1"]) == 2
        capsys.readouterr()

    def test_analyze_writes_report_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        path = self._scheme_file(tmp_path)
        assert cli_main(["analyze", path, "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["format"] == "repro/analysis"
        capsys.readouterr()

    def test_run_preflight_refuses_error_verdict(self, tmp_path, capsys):
        broken = OnlineScheme(
            (0,), OnlineProgram(("s",), "x", (Call("add", (Var("s"),)),))
        )
        path = tmp_path / "broken.scheme.json"
        broken.save(path)
        code = cli_main(["run", str(path), "--source", "counter:5"])
        err = capsys.readouterr().err
        assert code == 1
        assert "--no-analyze" in err

    def test_run_preflight_passes_clean_scheme(self, tmp_path, capsys):
        path = self._scheme_file(tmp_path)
        assert cli_main(["run", path, "--source", "counter:5"]) == 0
        assert cli_main(["run", path, "--source", "counter:5", "--no-analyze"]) == 0
        capsys.readouterr()
