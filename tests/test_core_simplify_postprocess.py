"""Tests for expression simplification and accumulator pruning."""

from fractions import Fraction

from repro.core.postprocess import prune_unused_accumulators
from repro.core.rfs import construct_rfs
from repro.core.simplify import simplify_expr
from repro.ir.dsl import XS, add, div, fold_sum, ite, length, mul, powi, program, sub
from repro.ir.nodes import Call, Const, If, OnlineProgram, Var


class TestSimplify:
    def test_add_zero(self):
        assert simplify_expr(add("a", 0)) == Var("a")
        assert simplify_expr(add(0, "a")) == Var("a")

    def test_mul_identities(self):
        assert simplify_expr(mul("a", 1)) == Var("a")
        assert simplify_expr(mul("a", 0)) == Const(0)

    def test_sub_self(self):
        assert simplify_expr(sub("a", "a")) == Const(0)

    def test_div_by_one(self):
        assert simplify_expr(div("a", 1)) == Var("a")

    def test_constant_folding(self):
        assert simplify_expr(add(mul(2, 3), 4)) == Const(10)

    def test_nested_constant_denominators_merge(self):
        expr = div(div("a", 2), 3)
        assert simplify_expr(expr) == div("a", 6)

    def test_pow_identities(self):
        assert simplify_expr(powi("a", 1)) == Var("a")
        assert simplify_expr(powi("a", 0)) == Const(1)

    def test_if_constant_condition(self):
        assert simplify_expr(If(Const(True), Var("a"), Var("b"))) == Var("a")
        assert simplify_expr(If(Const(False), Var("a"), Var("b"))) == Var("b")

    def test_if_same_branches(self):
        assert simplify_expr(ite(Call("gt", (Var("x"), Const(0))), "a", "a")) == Var("a")

    def test_proj_of_tuple(self):
        from repro.ir.dsl import proj, tup

        assert simplify_expr(proj(tup("a", "b"), 1)) == Var("b")

    def test_double_negation(self):
        expr = Call("neg", (Call("neg", (Var("a"),)),))
        assert simplify_expr(expr) == Var("a")

    def test_division_not_cancelled_unsoundly(self):
        # e / e is NOT 1 under safe division (it is 0 when e = 0).
        expr = div("a", "a")
        assert simplify_expr(expr) == expr

    def test_semantics_preserved_on_random_inputs(self):
        from repro.ir.evaluator import evaluate

        expr = add(mul(sub("a", "a"), "b"), div(mul("c", 1), 2))
        simplified = simplify_expr(expr)
        for env in ({"a": 1, "b": 2, "c": 3}, {"a": Fraction(1, 2), "b": 0, "c": -4}):
            assert evaluate(expr, env) == evaluate(simplified, env)


class TestPrune:
    def test_unused_accumulator_dropped(self):
        rfs = construct_rfs(program(fold_sum(XS)))
        # Outputs: y1' = y1 + x (uses only itself), y2' = y2 + 1 (unused).
        online = OnlineProgram(
            rfs.names, "x", (add(rfs.names[0], "x"), add(rfs.names[1], 1))
        )
        pruned = prune_unused_accumulators(rfs, (0, 0), online)
        assert pruned.kept_params == (rfs.names[0],)
        assert pruned.initializer == (0,)
        assert len(pruned.program.outputs) == 1

    def test_transitively_needed_kept(self):
        rfs = construct_rfs(program(div(fold_sum(XS), length(XS))))
        y1, y2, y3 = rfs.names
        online = OnlineProgram(
            rfs.names,
            "x",
            (
                div(add(Var(y2), Var("x")), add(Var(y3), 1)),  # y1' reads y2, y3
                add(Var(y2), Var("x")),
                add(Var(y3), 1),
            ),
        )
        pruned = prune_unused_accumulators(rfs, (0, 0, 0), online)
        assert set(pruned.kept_params) == {y1, y2, y3}

    def test_result_always_kept(self):
        rfs = construct_rfs(program(fold_sum(XS)))
        online = OnlineProgram(rfs.names, "x", (Var("x"), add(rfs.names[1], 1)))
        pruned = prune_unused_accumulators(rfs, (0, 0), online)
        assert rfs.names[0] in pruned.kept_params
