"""Tests for the SyGuS baselines and the ablation wrappers."""


from repro.baselines import (
    SOLVERS,
    Cvc5Style,
    OperaFull,
    OperaNoDecomp,
    OperaNoSymbolic,
    SketchStyle,
)
from repro.core import SynthesisConfig
from repro.suites import get_benchmark


def run(solver, name, timeout=15.0):
    bench = get_benchmark(name)
    config = SynthesisConfig(
        timeout_s=timeout, element_arity=bench.element_arity
    )
    return solver.synthesize(bench.program, config, name)


class TestRegistry:
    def test_all_solvers_registered(self):
        assert set(SOLVERS) == {
            "opera",
            "opera-nodecomp",
            "opera-nosymbolic",
            "cvc5",
            "sketch",
        }

    def test_names_match(self):
        for name, cls in SOLVERS.items():
            assert cls().name == name


class TestCvc5Style:
    def test_solves_trivial_sum(self):
        report = run(Cvc5Style(), "sum")
        assert report.success

    def test_solves_count(self):
        report = run(Cvc5Style(), "q_bid_count")
        assert report.success

    def test_fails_variance_within_budget(self):
        report = run(Cvc5Style(), "variance", timeout=4.0)
        assert not report.success
        assert "Timeout" in report.failure_reason

    def test_result_is_valid_scheme(self):
        from repro.core import check_scheme_equivalence

        bench = get_benchmark("sum")
        report = run(Cvc5Style(), "sum")
        assert check_scheme_equivalence(
            bench.program, report.scheme, SynthesisConfig()
        )


class TestSketchStyle:
    def test_solves_trivial_max(self):
        report = run(SketchStyle(), "max")
        assert report.success

    def test_fails_mean_or_is_slower_than_opera(self):
        # Sketch-style search has no OE pruning; at equal budget it must not
        # beat full Opera on the same task.
        sketch_report = run(SketchStyle(), "mean", timeout=4.0)
        opera_report = run(OperaFull(), "mean", timeout=4.0)
        assert opera_report.success
        if sketch_report.success:
            assert sketch_report.elapsed_s >= opera_report.elapsed_s


class TestAblations:
    def test_nodecomp_solves_single_accumulator(self):
        report = run(OperaNoDecomp(), "sum")
        assert report.success

    def test_nosymbolic_solves_single_accumulator(self):
        report = run(OperaNoSymbolic(), "sum")
        assert report.success

    def test_nosymbolic_never_uses_symbolic_methods(self):
        report = run(OperaNoSymbolic(), "mean")
        assert report.success
        assert set(report.method_counts) <= {"enumerative"}

    def test_full_opera_beats_ablations_on_variance(self):
        full = run(OperaFull(), "variance", timeout=8.0)
        nosym = run(OperaNoSymbolic(), "variance", timeout=8.0)
        assert full.success
        assert not nosym.success  # needs mined templates

    def test_ablation_does_not_mutate_shared_config(self):
        config = SynthesisConfig(timeout_s=15)
        bench = get_benchmark("sum")
        OperaNoSymbolic().synthesize(bench.program, config, "sum")
        assert config.use_symbolic is True  # original untouched
