"""Property tests: ``simplify_expr`` is idempotent and meaning-preserving.

The simplifier runs over every synthesized scheme before it is reported or
stored, so its contract is load-bearing:

* **total** — it must return (not raise) on any IR tree, including trees
  that would fault at runtime (constant folding must leave faulting
  constant subtrees in place);
* **idempotent** — applying it twice changes nothing beyond the first
  application (a non-idempotent "fixpoint" would mean the bounded rewrite
  loop returns unconverged expressions);
* **value-preserving** — on any environment where the original expression
  evaluates successfully, the simplified expression evaluates successfully
  to the same value.  (Where the original faults the simplifier makes no
  promise: identities such as ``sub(e, e) -> 0`` assume well-typed numeric
  subtrees, which every verified candidate has — see the module docstring
  of :mod:`repro.core.simplify`.)
* **non-growing** — reported AST sizes stay comparable with the hand
  written ground truth, so simplification never enlarges a tree.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from test_ir_compile import ORACLE_ERRORS, random_candidate

from repro.core.simplify import simplify_expr
from repro.ir.dsl import add, div, ite, lt, mul, powi, sub
from repro.ir.evaluator import evaluate
from repro.ir.traversal import ast_size
from repro.ir.values import values_close

_NAMES = ("a", "b", "x")

_POOL = (0, 1, -1, 2, -3, 7, Fraction(1, 3), Fraction(-7, 2), Fraction(6, 3))


def _environments(rng: random.Random, count: int = 6) -> list[dict]:
    return [{name: rng.choice(_POOL) for name in _NAMES} for _ in range(count)]


def _outcome(expr, env):
    """(value, None) on success, (None, error class) on an oracle error."""
    try:
        return evaluate(expr, dict(env)), None
    except ORACLE_ERRORS as exc:
        return None, type(exc)


def assert_meaning_preserved(expr, simplified, env, where):
    """Wherever the original succeeds, the simplified form must succeed
    with the same value (the simplifier's contract on verified candidates)."""
    value, raised = _outcome(expr, env)
    if raised is not None:
        return
    s_value, s_raised = _outcome(simplified, env)
    assert s_raised is None, f"{where}: simplification introduced {s_raised}"
    assert values_close(value, s_value), f"{where}: {value!r} vs {s_value!r}"


@pytest.mark.parametrize("seed", [7, 8, 9])
def test_random_candidates_idempotent_and_semantics_preserving(seed):
    """>= 150 random candidates per seed — the population the enumerator
    actually produces — each checked on several random environments."""
    rng = random.Random(seed)
    envs = _environments(rng)
    for i in range(150):
        expr = random_candidate(rng, _NAMES, rng.randint(1, 4))
        simplified = simplify_expr(expr)
        assert simplify_expr(simplified) == simplified, f"seed {seed} #{i}: not idempotent"
        assert ast_size(simplified) <= ast_size(expr), f"seed {seed} #{i}: grew"
        for env in envs:
            assert_meaning_preserved(expr, simplified, env, f"seed {seed} #{i}")


@given(
    a=st.fractions(min_value=-10, max_value=10, max_denominator=6),
    b=st.fractions(min_value=-10, max_value=10, max_denominator=6),
    x=st.integers(min_value=-20, max_value=20),
)
@settings(max_examples=120, deadline=None)
def test_noise_shapes_simplify_and_preserve_meaning(a, b, x):
    """The decoder's actual noise shapes (identity operands, constant
    subtrees, same-branch conditionals) on hypothesis-generated values."""
    env = {"a": a, "b": b, "x": x}
    noisy = [
        add(mul(sub("a", "a"), "b"), div(mul("x", 1), 2)),
        mul(add("a", 0), powi(add("b", 0), 1)),
        ite(lt("a", "b"), add("x", 0), add("x", 0)),
        div(div("a", 2), 3),
        sub(add("a", "b"), 0),
    ]
    for expr in noisy:
        simplified = simplify_expr(expr)
        assert simplify_expr(simplified) == simplified
        assert ast_size(simplified) < ast_size(expr)
        assert_meaning_preserved(expr, simplified, env, repr(expr))


def test_total_on_faulting_constant_subtrees():
    """Constant folding must not raise when a constant subtree faults
    (e.g. a folded comparison feeding numeric arithmetic); the subtree is
    left in place so the fault still happens at runtime."""
    expr = add(lt(1, 2), -3)  # folds to add(Const(True), Const(-3))
    simplified = simplify_expr(expr)
    assert simplify_expr(simplified) == simplified
    with pytest.raises(TypeError):
        evaluate(simplified, {})
