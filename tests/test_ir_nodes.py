"""Unit tests for IR node construction and basic invariants."""

from fractions import Fraction

from repro.ir.nodes import (
    Call,
    Const,
    Fold,
    Hole,
    If,
    Lambda,
    ListVar,
    MakeTuple,
    Proj,
    Snoc,
    Var,
    const,
)


class TestConstNormalization:
    def test_fraction_with_unit_denominator_becomes_int(self):
        c = const(Fraction(6, 2))
        assert c.value == 3
        assert isinstance(c.value, int)

    def test_integral_float_becomes_int(self):
        assert const(4.0).value == 4
        assert isinstance(const(4.0).value, int)

    def test_proper_fraction_preserved(self):
        c = const(Fraction(1, 3))
        assert c.value == Fraction(1, 3)

    def test_bool_preserved(self):
        assert const(True).value is True


class TestStructuralEquality:
    def test_equal_trees_are_equal(self):
        a = Call("add", (Var("x"), Const(1)))
        b = Call("add", (Var("x"), Const(1)))
        assert a == b
        assert hash(a) == hash(b)

    def test_different_ops_differ(self):
        a = Call("add", (Var("x"), Const(1)))
        b = Call("sub", (Var("x"), Const(1)))
        assert a != b

    def test_usable_as_dict_keys(self):
        mapping = {Call("add", (Var("x"), Const(1))): "one"}
        assert mapping[Call("add", (Var("x"), Const(1)))] == "one"


class TestChildren:
    def test_leaf_children_empty(self):
        assert Const(1).children() == ()
        assert Var("x").children() == ()
        assert ListVar("xs").children() == ()
        assert Hole(3).children() == ()

    def test_call_children_are_args(self):
        call = Call("add", (Var("x"), Const(1)))
        assert call.children() == (Var("x"), Const(1))

    def test_call_with_lambda_includes_function(self):
        lam = Lambda(("a",), Var("a"))
        call = Call(lam, (Const(1),))
        assert call.children() == (lam, Const(1))

    def test_fold_children_order(self):
        lam = Lambda(("a", "b"), Var("a"))
        fold = Fold(lam, Const(0), ListVar("xs"))
        assert fold.children() == (lam, Const(0), ListVar("xs"))

    def test_if_children(self):
        node = If(Const(True), Const(1), Const(2))
        assert node.children() == (Const(True), Const(1), Const(2))

    def test_snoc_children(self):
        node = Snoc(ListVar("xs"), Var("x"))
        assert node.children() == (ListVar("xs"), Var("x"))

    def test_tuple_and_proj(self):
        tup = MakeTuple((Const(1), Const(2)))
        assert tup.arity == 2
        assert Proj(tup, 1).children() == (tup,)

    def test_is_combinator(self):
        lam = Lambda(("a", "b"), Var("a"))
        assert Fold(lam, Const(0), ListVar("xs")).is_combinator()
        assert not Const(1).is_combinator()
