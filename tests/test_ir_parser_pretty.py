"""Parser and pretty-printer tests, including the round-trip property."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.dsl import (
    XS,
    add,
    div,
    fold,
    fold_sum,
    gt,
    ite,
    lam,
    length,
    mul,
    powi,
    program,
    proj,
    sub,
    tup,
)
from repro.ir.nodes import Const, Expr, Lambda, ListVar, Var
from repro.ir.parser import ParseError, parse_expr, parse_program
from repro.ir.pretty import pretty, program_to_sexpr, to_sexpr


class TestParsing:
    def test_number_literals(self):
        assert parse_expr("42") == Const(42)
        assert parse_expr("-3") == Const(-3)
        assert parse_expr("1/3") == Const(Fraction(1, 3))
        assert parse_expr("2.5") == Const(2.5)

    def test_boolean_literals(self):
        assert parse_expr("true") == Const(True)
        assert parse_expr("false") == Const(False)

    def test_list_variable_resolution(self):
        assert parse_expr("xs") == ListVar("xs")
        assert parse_expr("ys") == Var("ys")

    def test_shadowing_in_lambda(self):
        # A lambda parameter named xs shadows the list variable.
        lam_expr = parse_expr("(lambda (xs) xs)")
        assert isinstance(lam_expr, Lambda)
        assert lam_expr.body == Var("xs")

    def test_builtin_call(self):
        assert parse_expr("(add 1 2)") == add(1, 2)

    def test_unknown_function_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("(frobnicate 1)")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("(add 1 2")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("(add 1 2) 3")

    def test_eta_expansion_of_builtin_in_fold(self):
        fold_expr = parse_expr("(foldl add 0 xs)")
        assert isinstance(fold_expr.func, Lambda)
        assert len(fold_expr.func.params) == 2

    def test_comments_stripped(self):
        assert parse_expr("(add 1 2) ; a comment") == add(1, 2)

    def test_program_with_extra_params(self):
        prog = parse_program("(lambda (xs t) (gt t 0))")
        assert prog.extra_params == ("t",)
        assert prog.param == "xs"

    def test_program_requires_lambda(self):
        with pytest.raises(ParseError):
            parse_program("(add 1 2)")


def sample_programs():
    avg = div(fold_sum(XS), length(XS))
    return [
        program(fold_sum(XS)),
        program(avg),
        program(div(fold(lam("a", "v", add("a", powi(sub("v", avg), 2))), 0, XS), length(XS))),
        program(ite(gt(length(XS), 0), avg, 0)),
        program(proj(fold(lam("t", "v", tup(add(proj("t", 0), "v"), mul(proj("t", 1), "v"))), tup(0, 1), XS), 1)),
        program(fold(lam("a", "v", ite(gt("v", "t"), add("a", 1), Var("a"))), 0, XS), ("t",)),
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("prog", sample_programs())
    def test_program_roundtrip(self, prog):
        assert parse_program(program_to_sexpr(prog)) == prog

    @pytest.mark.parametrize("prog", sample_programs())
    def test_expr_roundtrip(self, prog):
        body = prog.body
        assert parse_expr(to_sexpr(body)) == body


class TestPretty:
    def test_infix_precedence(self):
        expr = mul(add(1, 2), 3)
        assert pretty(expr) == "(1 + 2) * 3"

    def test_no_spurious_parens(self):
        expr = add(add(1, 2), 3)
        assert pretty(expr) == "1 + 2 + 3"

    def test_division_precedence(self):
        expr = div(1, add(2, 3))
        assert pretty(expr) == "1 / (2 + 3)"

    def test_conditional(self):
        expr = ite(gt("x", 0), "x", 0)
        assert pretty(expr) == "x > 0 ? x : 0"

    def test_fraction_rendering(self):
        assert pretty(Const(Fraction(1, 3))) == "1/3"

    def test_tuple_rendering(self):
        assert pretty(tup(1, 2)) == "(1, 2)"
        assert pretty(proj(Var("t"), 0)) == "t[0]"


# A recursive hypothesis strategy over a safe expression subset.
_leaf = st.sampled_from(
    [Const(0), Const(1), Const(Fraction(1, 2)), Var("a"), Var("b"), ListVar("xs")]
)


def _combine(children):
    binops = st.sampled_from(["add", "sub", "mul", "div"])

    @st.composite
    def build(draw):
        from repro.ir.nodes import Call

        op = draw(binops)
        left = draw(children)
        right = draw(children)
        if isinstance(left, ListVar) or isinstance(right, ListVar):
            return draw(_leaf.filter(lambda e: not isinstance(e, ListVar)))
        return Call(op, (left, right))

    return build()


scalar_exprs = st.recursive(
    _leaf.filter(lambda e: not isinstance(e, ListVar)), _combine, max_leaves=12
)


class TestRoundTripProperty:
    @settings(max_examples=80, deadline=None)
    @given(scalar_exprs)
    def test_sexpr_roundtrip(self, expr: Expr):
        assert parse_expr(to_sexpr(expr)) == expr
