"""Tests for type inference, runtime values and the builtin registry."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.builtins import all_builtins, get_builtin, is_builtin
from repro.ir.dsl import (
    XS,
    add,
    div,
    ffilter,
    fmap,
    fold,
    fold_sum,
    gt,
    ite,
    lam,
    length,
    program,
    proj,
    tup,
)
from repro.ir.infer import (
    TypeError_,
    check_well_typed,
    infer_program_type,
    infer_type,
)
from repro.ir.nodes import Const, ListVar, Snoc, Var
from repro.ir.types import BOOL, NUM, ListType, TupleType
from repro.ir.values import (
    safe_div,
    safe_exp,
    safe_log,
    safe_pow,
    safe_sqrt,
    values_close,
)


class TestInference:
    def test_constants(self):
        assert infer_type(Const(3)) == NUM
        assert infer_type(Const(True)) == BOOL

    def test_comparison_is_bool(self):
        assert infer_type(gt("a", 0)) == BOOL

    def test_list_variable(self):
        assert infer_type(ListVar("xs")) == ListType(NUM)

    def test_fold_takes_init_type(self):
        assert infer_type(fold_sum(XS)) == NUM

    def test_map_produces_list(self):
        assert isinstance(infer_type(fmap(lam("v", add("v", 1)), XS)), ListType)

    def test_filter_preserves_list(self):
        assert isinstance(
            infer_type(ffilter(lam("v", gt("v", 0)), XS)), ListType
        )

    def test_tuple_and_projection(self):
        t = infer_type(tup(1, gt("a", 0)))
        assert isinstance(t, TupleType)
        assert t.elements == (NUM, BOOL)
        assert infer_type(proj(tup(1, gt("a", 0)), 1)) == BOOL

    def test_snoc(self):
        assert infer_type(Snoc(XS, Var("x"))) == ListType(NUM)

    def test_conditional_unifies(self):
        assert infer_type(ite(gt("a", 0), 1, 2)) == NUM

    def test_list_into_scalar_op_rejected(self):
        with pytest.raises(TypeError_):
            infer_type(add(XS, 1))

    def test_program_types(self):
        assert infer_program_type(program(mean := div(fold_sum(XS), length(XS)))) == NUM
        assert check_well_typed(program(mean))

    def test_suite_is_well_typed(self):
        from repro.ir.types import tuple_of
        from repro.suites import all_benchmarks

        for bench in all_benchmarks():
            elem = NUM if bench.element_arity == 1 else tuple_of(NUM, NUM)
            assert check_well_typed(bench.program, elem), bench.name


class TestSafeOps:
    def test_safe_div_by_zero(self):
        assert safe_div(5, 0) == 0
        assert safe_div(Fraction(1, 2), Fraction(0)) == 0

    def test_safe_div_exact(self):
        assert safe_div(1, 3) == Fraction(1, 3)

    def test_safe_pow_integer(self):
        assert safe_pow(Fraction(2, 3), 2) == Fraction(4, 9)
        assert safe_pow(2, -1) == Fraction(1, 2)
        assert safe_pow(0, -1) == 0

    def test_safe_pow_fractional(self):
        assert safe_pow(4, Fraction(1, 2)) == 2.0
        assert safe_pow(-4, Fraction(1, 2)) == 0  # safe convention

    def test_safe_pow_huge_degrades(self):
        result = safe_pow(Fraction(10) ** 100, 1000)
        assert isinstance(result, (int, float))  # no exact blow-up

    def test_safe_sqrt(self):
        assert safe_sqrt(Fraction(9, 4)) == Fraction(3, 2)
        assert safe_sqrt(-1) == 0
        assert safe_sqrt(2) == pytest.approx(math.sqrt(2))

    def test_safe_log_exp(self):
        assert safe_log(0) == 0
        assert safe_log(1) == 0
        assert safe_exp(0) == 1

    @settings(max_examples=50, deadline=None)
    @given(
        st.fractions(min_value=-50, max_value=50, max_denominator=12),
        st.fractions(min_value=-50, max_value=50, max_denominator=12),
    )
    def test_safe_div_total(self, a, b):
        result = safe_div(a, b)
        if b != 0:
            assert result == a / b
        else:
            assert result == 0


class TestValuesClose:
    def test_exact_equal(self):
        assert values_close(Fraction(1, 3), Fraction(1, 3))

    def test_float_tolerance(self):
        assert values_close(0.1 + 0.2, 0.3)

    def test_mixed_exact_float(self):
        assert values_close(Fraction(1, 2), 0.5)

    def test_tuples_recursive(self):
        assert values_close((1, (2, 3)), (1, (2, 3)))
        assert not values_close((1, 2), (1, 3))

    def test_nan_equal_nan(self):
        assert values_close(float("nan"), float("nan"))

    def test_bool_not_number(self):
        assert not values_close(True, 2)


class TestBuiltins:
    def test_registry_lookup(self):
        assert is_builtin("add")
        assert not is_builtin("frobnicate")
        with pytest.raises(KeyError):
            get_builtin("frobnicate")

    def test_kinds_partition(self):
        kinds = {b.kind for b in all_builtins()}
        assert kinds == {"poly", "uninterp", "predicate", "list"}

    def test_identities(self):
        assert get_builtin("add").identity == 0
        assert get_builtin("mul").identity == 1

    def test_tuple_arithmetic_rejected(self):
        with pytest.raises(TypeError):
            get_builtin("mul").impl((1, 2), 3)

    def test_huge_operands_degrade_to_float(self):
        huge = Fraction(10) ** 400_000
        result = get_builtin("mul").impl(huge, huge)
        assert isinstance(result, (int, float))
        # value is inf or 0 — but never a 2.6-million-bit exact integer
        if isinstance(result, int):
            assert result == 0
