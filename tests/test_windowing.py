"""Windowing helpers (:func:`tumbling`, :func:`sliding`) under the batch
kernels: differential jit-on/off, degenerate window shapes, and equality
with a per-push reference implementation.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.runtime import OnlineOperator
from repro.runtime.stream import sliding, tumbling
from repro.suites import all_benchmarks, get_benchmark


def assert_same_value(a, b, where=""):
    assert type(a) is type(b), (
        f"{where}: {type(a).__name__} != {type(b).__name__} ({a!r} vs {b!r})"
    )
    assert a == b, f"{where}: {a!r} != {b!r}"


def elements(n=23):
    out = []
    for i in range(n):
        out.append(Fraction(i % 7 - 3, 1 + i % 4) if i % 2 else i % 5 - 2)
    return out


def reference_tumbling(scheme, source, size, extra=None):
    """The pre-kernel implementation: one push per element, reset per
    window — the specification the chunked version must match."""
    op = OnlineOperator(scheme, extra)
    filled = 0
    for element in source:
        op.push(element)
        filled += 1
        if filled == size:
            yield op.value
            op.reset()
            filled = 0
    if filled:
        yield op.value


def reference_sliding(scheme, source, size, extra=None):
    buffer: list = []
    for element in source:
        buffer.append(element)
        window = buffer[-size:]
        op = OnlineOperator(scheme, extra)
        for item in window:
            op.push(item)
        yield op.value


SCHEMES = ("mean", "variance", "max", "count", "sum")


class TestTumbling:
    @pytest.mark.parametrize("name", SCHEMES)
    @pytest.mark.parametrize("size", [1, 2, 4, 23, 100])
    def test_matches_per_push_reference(self, name, size):
        scheme = get_benchmark(name).ground_truth
        got = list(tumbling(scheme, elements(), size))
        want = list(reference_tumbling(scheme, elements(), size))
        assert len(got) == len(want)
        for i, (a, b) in enumerate(zip(got, want)):
            assert_same_value(a, b, f"{name} size={size} window {i}")

    def test_jit_on_off_identical(self, monkeypatch):
        source = elements()
        with_jit = {
            name: list(tumbling(get_benchmark(name).ground_truth, source, 5))
            for name in SCHEMES
        }
        monkeypatch.setenv("REPRO_JIT", "0")
        for name in SCHEMES:
            no_jit = list(tumbling(get_benchmark(name).ground_truth, source, 5))
            assert len(no_jit) == len(with_jit[name])
            for i, (a, b) in enumerate(zip(no_jit, with_jit[name])):
                assert_same_value(a, b, f"{name} window {i}")

    def test_empty_source_yields_nothing(self):
        scheme = get_benchmark("mean").ground_truth
        assert list(tumbling(scheme, [], 3)) == []
        assert list(tumbling(scheme, iter([]), 1)) == []

    def test_size_one_windows(self):
        scheme = get_benchmark("variance").ground_truth
        got = list(tumbling(scheme, elements(5), 1))
        assert len(got) == 5
        for value, element in zip(got, elements(5)):
            assert_same_value(value, scheme.final([element]))

    def test_partial_tail_window(self):
        scheme = get_benchmark("sum").ground_truth
        got = list(tumbling(scheme, [1, 2, 3, 4, 5], 2))
        assert got == [3, 7, 5]

    @pytest.mark.parametrize("size", [0, -1])
    def test_bad_size_rejected(self, size):
        scheme = get_benchmark("mean").ground_truth
        with pytest.raises(ValueError, match="positive"):
            list(tumbling(scheme, [1, 2], size))

    def test_generator_source(self):
        scheme = get_benchmark("count").ground_truth
        assert list(tumbling(scheme, iter(range(7)), 3)) == [3, 3, 1]


class TestSliding:
    @pytest.mark.parametrize("name", SCHEMES)
    @pytest.mark.parametrize("size", [1, 3, 8, 23, 100])
    def test_matches_per_push_reference(self, name, size):
        scheme = get_benchmark(name).ground_truth
        got = list(sliding(scheme, elements(), size))
        want = list(reference_sliding(scheme, elements(), size))
        assert len(got) == len(want) == len(elements())
        for i, (a, b) in enumerate(zip(got, want)):
            assert_same_value(a, b, f"{name} size={size} at {i}")

    def test_jit_on_off_identical(self, monkeypatch):
        source = elements()
        with_jit = {
            name: list(sliding(get_benchmark(name).ground_truth, source, 4))
            for name in SCHEMES
        }
        monkeypatch.setenv("REPRO_JIT", "0")
        for name in SCHEMES:
            no_jit = list(sliding(get_benchmark(name).ground_truth, source, 4))
            for i, (a, b) in enumerate(zip(no_jit, with_jit[name])):
                assert_same_value(a, b, f"{name} at {i}")

    def test_empty_source_yields_nothing(self):
        scheme = get_benchmark("mean").ground_truth
        assert list(sliding(scheme, [], 3)) == []

    def test_size_one_is_elementwise(self):
        scheme = get_benchmark("mean").ground_truth
        got = list(sliding(scheme, elements(6), 1))
        for value, element in zip(got, elements(6)):
            assert_same_value(value, scheme.final([element]))

    @pytest.mark.parametrize("size", [0, -3])
    def test_bad_size_rejected(self, size):
        scheme = get_benchmark("mean").ground_truth
        with pytest.raises(ValueError, match="positive"):
            list(sliding(scheme, [1, 2], size))


class TestWindowsOnPairSchemes:
    def test_tumbling_pair_elements(self):
        bench = get_benchmark("q_category_volume")
        scheme = bench.ground_truth
        extra = {name: 2 for name in scheme.program.extra_params}
        source = [(Fraction(1 + i % 5), i % 3) for i in range(17)]
        got = list(tumbling(scheme, source, 4, extra))
        want = list(reference_tumbling(scheme, source, 4, extra))
        assert got == want

    def test_sliding_pair_elements(self):
        bench = get_benchmark("q_category_max")
        scheme = bench.ground_truth
        extra = {name: 1 for name in scheme.program.extra_params}
        source = [(Fraction(1 + (i * 3) % 7), i % 2) for i in range(11)]
        assert list(sliding(scheme, source, 3, extra)) == list(
            reference_sliding(scheme, source, 3, extra)
        )


def test_all_ground_truth_schemes_window_cleanly():
    """Smoke: every ground-truth scheme survives a tumbling pass through
    the batch kernel with per-push-equal results."""
    for bench in all_benchmarks():
        scheme = bench.ground_truth
        if scheme is None or bench.element_arity > 1:
            continue
        extra = {name: 500 for name in scheme.program.extra_params}
        got = list(tumbling(scheme, elements(11), 4, extra))
        want = list(reference_tumbling(scheme, elements(11), 4, extra))
        assert got == want, bench.name
