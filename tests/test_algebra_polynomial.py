"""Unit and property tests for the polynomial ring."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.polynomial import Poly, mono_div, mono_divides, mono_mul

X = Poly.var("x")
Y = Poly.var("y")


def small_polys():
    """Random polynomials in x, y with small integer coefficients."""
    monomials = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=-5, max_value=5),
        ),
        max_size=5,
    )

    def build(spec):
        poly = Poly.zero()
        for dx, dy, coeff in spec:
            poly = poly + Poly.var("x", dx) * Poly.var("y", dy) * coeff
        return poly

    return monomials.map(build)


class TestMonomials:
    def test_mono_mul_merges_exponents(self):
        assert mono_mul((("x", 1),), (("x", 2), ("y", 1))) == (("x", 3), ("y", 1))

    def test_mono_mul_identity(self):
        assert mono_mul((), (("x", 1),)) == (("x", 1),)

    def test_divides(self):
        assert mono_divides((("x", 1),), (("x", 2), ("y", 1)))
        assert not mono_divides((("z", 1),), (("x", 2),))

    def test_div(self):
        assert mono_div((("x", 3), ("y", 1)), (("x", 1),)) == (("x", 2), ("y", 1))


class TestBasicOps:
    def test_constant_arithmetic(self):
        assert Poly.const(2) + Poly.const(3) == Poly.const(5)
        assert Poly.const(2) * Poly.const(3) == Poly.const(6)

    def test_cancellation(self):
        assert (X - X).is_zero()
        assert (X + Y - Y) == X

    def test_binomial_square(self):
        assert (X + Y) ** 2 == X * X + 2 * X * Y + Y * Y

    def test_degree(self):
        assert ((X**2) * Y + X).degree() == 3
        assert Poly.const(5).degree() == 0

    def test_degree_in(self):
        p = (X**2) * Y + Y**3
        assert p.degree_in("x") == 2
        assert p.degree_in("y") == 3

    def test_variables(self):
        assert (X * Y + 1).variables() == frozenset({"x", "y"})

    def test_evaluate(self):
        p = X**2 + 2 * Y
        assert p.evaluate({"x": 3, "y": Fraction(1, 2)}) == 10

    def test_evaluate_unbound_raises(self):
        with pytest.raises(KeyError):
            X.evaluate({})

    def test_content(self):
        p = 4 * X + 6 * Y
        assert p.content() == 2
        assert Poly.zero().content() == 0

    def test_substitute_poly(self):
        p = X**2 + 1
        q = p.substitute_poly({"x": Y + 1})
        assert q == Y**2 + 2 * Y + 2

    def test_coefficients_in(self):
        p = X**2 * Y + X**2 + Y
        buckets = p.coefficients_in(frozenset({"x"}))
        assert buckets[(("x", 2),)] == Y + 1
        assert buckets[()] == Y


class TestDivision:
    def test_exact_division(self):
        product = (X + Y) * (X - Y)
        assert product.exact_div(X + Y) == X - Y

    def test_inexact_division_returns_none(self):
        assert (X + 1).exact_div(Y) is None

    def test_divides(self):
        assert (X + 1).divides((X + 1) * (X + 2))
        assert not (X + 1).divides(X + 2)


class TestRingProperties:
    @settings(max_examples=60, deadline=None)
    @given(small_polys(), small_polys())
    def test_addition_commutative(self, p, q):
        assert p + q == q + p

    @settings(max_examples=60, deadline=None)
    @given(small_polys(), small_polys())
    def test_multiplication_commutative(self, p, q):
        assert p * q == q * p

    @settings(max_examples=40, deadline=None)
    @given(small_polys(), small_polys(), small_polys())
    def test_distributivity(self, p, q, r):
        assert p * (q + r) == p * q + p * r

    @settings(max_examples=40, deadline=None)
    @given(small_polys())
    def test_additive_inverse(self, p):
        assert (p + (-p)).is_zero()

    @settings(max_examples=40, deadline=None)
    @given(small_polys(), small_polys())
    def test_product_then_exact_division(self, p, q):
        if q.is_zero():
            return
        assert (p * q).exact_div(q) == p

    @settings(max_examples=40, deadline=None)
    @given(small_polys())
    def test_evaluation_homomorphism(self, p):
        env = {"x": Fraction(2, 3), "y": Fraction(-1, 2)}
        assert (p + p).evaluate(env) == 2 * p.evaluate(env)
        assert (p * p).evaluate(env) == p.evaluate(env) ** 2
