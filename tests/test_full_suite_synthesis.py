"""Broad integration sweep: Opera over a large sample of the suite.

The benchmark harness measures the full 51-task matrix; this test keeps a
representative 20-task sample inside the regular test run so regressions in
any synthesis path (implicate / mining / template / enumeration, scalar /
pair / parameterized / tuple-accumulator) surface in `pytest tests/`.
"""

import pytest

from repro.baselines import OperaFull
from repro.core import SynthesisConfig, check_inductiveness, construct_rfs
from repro.core.verify import verify_scheme
from repro.suites import get_benchmark

SAMPLE = [
    # implicate-only scalar folds
    "sum", "count", "last", "product", "min", "max",
    # composed bodies
    "mean", "rms", "range", "variance_onepass",
    # conditionals + extra params
    "count_positive", "sum_above", "q_hit_rate",
    # mining + templates
    "variance", "sum_sq_dev", "sem",
    # pairs and tuple accumulators
    "weighted_mean", "q_revenue", "q_top2",
    # transcendental atoms
    "geometric_mean",
]


@pytest.fixture(scope="module")
def reports():
    out = {}
    for name in SAMPLE:
        bench = get_benchmark(name)
        config = SynthesisConfig(timeout_s=60, element_arity=bench.element_arity)
        out[name] = (bench, OperaFull().synthesize(bench.program, config, name))
    return out


@pytest.mark.parametrize("name", SAMPLE)
def test_solved(reports, name):
    _, report = reports[name]
    assert report.success, report.failure_reason


@pytest.mark.parametrize("name", SAMPLE)
def test_scheme_verifies_thoroughly(reports, name):
    bench, report = reports[name]
    config = SynthesisConfig(element_arity=bench.element_arity)
    assert verify_scheme(bench.program, report.scheme, config, bounded_len=2)


@pytest.mark.parametrize(
    "name", [n for n in SAMPLE if n in ("sum", "mean", "variance", "range")]
)
def test_unpruned_scheme_is_inductive(reports, name):
    """Definition 4.3 for schemes whose signature survived pruning intact."""
    bench, report = reports[name]
    rfs = construct_rfs(bench.program)
    if report.scheme.arity != len(rfs):
        pytest.skip("post-processing pruned the signature")
    config = SynthesisConfig(element_arity=bench.element_arity)
    assert check_inductiveness(rfs, report.scheme, config)


def test_solution_sizes_comparable_to_ground_truth(reports):
    """Section 7.1: synthesized schemes are comparable in size to the
    hand-written ones (no degenerate blow-ups)."""
    from repro.ir.traversal import ast_size

    for name, (bench, report) in reports.items():
        got = sum(ast_size(o) for o in report.scheme.program.outputs)
        gt = sum(ast_size(o) for o in bench.ground_truth.program.outputs)
        assert got <= 6 * gt + 20, (name, got, gt)
