"""Tests for online-scheme semantics (Figure 8) and the streaming runtime."""

from fractions import Fraction

import pytest

from repro.core.scheme import OnlineScheme
from repro.ir.dsl import add, div, mul
from repro.ir.nodes import OnlineProgram, Var
from repro.runtime import (
    OnlineOperator,
    StreamPipeline,
    compare_with_offline,
    scan,
    sliding,
    tumbling,
)


def mean_scheme() -> OnlineScheme:
    """Example 3.2: P'((y, z), x) = ((y*z + x)/(z + 1), z + 1)."""
    return OnlineScheme(
        (0, 0),
        OnlineProgram(
            ("y", "z"),
            "x",
            (div(add(mul("y", "z"), "x"), add("z", 1)), add("z", 1)),
        ),
    )


def sum_scheme() -> OnlineScheme:
    return OnlineScheme((0,), OnlineProgram(("s",), "x", (add("s", "x"),)))


class TestSchemeSemantics:
    def test_example_3_2(self):
        # [[S]]([0,1,2,3]) = [0, 0.5, 1, 1.5]
        scheme = mean_scheme()
        assert scheme.run_to_list([0, 1, 2, 3]) == [
            0,
            Fraction(1, 2),
            1,
            Fraction(3, 2),
        ]

    def test_lift_nil(self):
        # Rule Lift-Nil: empty stream yields [fst(I)].
        assert mean_scheme().run_to_list([]) == [0]

    def test_final_of_empty(self):
        assert mean_scheme().final([]) == 0

    def test_step_is_pure(self):
        scheme = sum_scheme()
        state = scheme.initializer
        scheme.step(state, 5)
        assert state == (0,)  # no mutation

    def test_trajectory_length(self):
        scheme = sum_scheme()
        assert len(scheme.trajectory([1, 2, 3])) == 4

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            OnlineScheme((0, 0), OnlineProgram(("s",), "x", (Var("s"),)))

    def test_extra_params(self):
        scheme = OnlineScheme(
            (0,),
            OnlineProgram(("s",), "x", (add("s", mul("x", "rate")),), ("rate",)),
        )
        assert scheme.final([1, 2, 3], {"rate": 2}) == 12


class TestOperator:
    def test_push_updates_value(self):
        op = OnlineOperator(sum_scheme())
        assert op.push(3) == 3
        assert op.push(4) == 7
        assert op.value == 7
        assert op.count == 2

    def test_reset(self):
        op = OnlineOperator(sum_scheme())
        op.push_many([1, 2, 3])
        op.reset()
        assert op.value == 0
        assert op.count == 0

    def test_fork_is_independent(self):
        op = OnlineOperator(sum_scheme())
        op.push(10)
        clone = op.fork()
        clone.push(5)
        assert op.value == 10
        assert clone.value == 15


class TestPipeline:
    def test_lockstep(self):
        pipeline = StreamPipeline(
            {"sum": OnlineOperator(sum_scheme()), "mean": OnlineOperator(mean_scheme())}
        )
        out = pipeline.push(4)
        assert out == {"sum": 4, "mean": 4}
        out = pipeline.push(6)
        assert out == {"sum": 10, "mean": 5}
        assert pipeline.snapshot() == {"sum": 10, "mean": 5}

    def test_run_yields_per_element(self):
        pipeline = StreamPipeline({"sum": OnlineOperator(sum_scheme())})
        results = list(pipeline.run([1, 2, 3]))
        assert [r["sum"] for r in results] == [1, 3, 6]


class TestWindows:
    def test_tumbling(self):
        results = list(tumbling(sum_scheme(), [1, 2, 3, 4, 5, 6], size=2))
        assert results == [3, 7, 11]

    def test_tumbling_partial_tail(self):
        results = list(tumbling(sum_scheme(), [1, 2, 3], size=2))
        assert results == [3, 3]

    def test_tumbling_bad_size(self):
        with pytest.raises(ValueError):
            list(tumbling(sum_scheme(), [1], size=0))

    def test_sliding(self):
        results = list(sliding(sum_scheme(), [1, 2, 3, 4], size=2))
        assert results == [1, 3, 5, 7]

    def test_scan_matches_run(self):
        stream = [1, 2, 3, 4]
        assert list(scan(sum_scheme(), stream)) == sum_scheme().run_to_list(stream)

    def test_compare_with_offline(self):
        stream = [1, 2, 3]
        offline = [1, 3, 6]
        assert compare_with_offline(sum_scheme(), offline, stream)
        assert not compare_with_offline(sum_scheme(), [1, 3, 7], stream)
