"""End-to-end synthesis integration tests.

These run the full pipeline (Algorithm 1) on representative tasks from each
difficulty tier and check the soundness guarantees of Theorems 4.7/5.8 via
the semantics: synthesized schemes agree with their offline programs on all
prefixes of random streams, and the schemes are genuinely online (no list
combinators in the output).
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import OperaFull
from repro.core import SynthesisConfig, synthesize
from repro.ir import run_offline
from repro.ir.traversal import validate_online_expr
from repro.suites import get_benchmark

#: name -> flags; chosen to cover every synthesis method and element shape.
TASKS = [
    "sum",            # implicate, single accumulator
    "mean",           # implicate, divided composition
    "min",            # implicate through min atoms
    "count_positive", # implicate through conditionals
    "count_above",    # extra parameter
    "variance",       # mining + template interpolation
    "harmonic_mean",  # enumerative fallback for the reciprocal fold
    "weighted_mean",  # tuple elements, projections
    "q_top2",         # tuple accumulator
    "logsumexp",      # transcendental atoms
]


@pytest.fixture(scope="module")
def solved():
    """Synthesize the representative tasks once."""
    results = {}
    for name in TASKS:
        bench = get_benchmark(name)
        config = SynthesisConfig(timeout_s=60, element_arity=bench.element_arity)
        report = OperaFull().synthesize(bench.program, config, name)
        results[name] = (bench, report)
    return results


class TestSynthesisSucceeds:
    @pytest.mark.parametrize("name", TASKS)
    def test_solved(self, solved, name):
        _, report = solved[name]
        assert report.success, report.failure_reason

    @pytest.mark.parametrize("name", TASKS)
    def test_outputs_are_online(self, solved, name):
        _, report = solved[name]
        for out in report.scheme.program.outputs:
            assert validate_online_expr(out)

    @pytest.mark.parametrize("name", TASKS)
    def test_initializer_matches_empty_offline(self, solved, name):
        bench, report = solved[name]
        extras = {p: Fraction(3) for p in bench.program.extra_params}
        assert report.scheme.initializer[0] == run_offline(
            bench.program, [], extras
        )


class TestSemanticEquivalence:
    """Definition 3.3 on random streams (hypothesis-driven)."""

    @settings(max_examples=25, deadline=None)
    @given(
        xs=st.lists(
            st.fractions(min_value=-20, max_value=20, max_denominator=6),
            max_size=8,
        )
    )
    def test_variance_prefixes(self, xs):
        bench, report = self._get("variance")
        scheme = report.scheme
        state = scheme.initializer
        for i, x in enumerate(xs):
            state = scheme.step(state, x)
            assert state[0] == run_offline(bench.program, xs[: i + 1])

    @settings(max_examples=25, deadline=None)
    @given(
        xs=st.lists(
            st.fractions(min_value=-20, max_value=20, max_denominator=6),
            max_size=8,
        ),
        t=st.integers(min_value=-5, max_value=5),
    )
    def test_count_above_prefixes(self, xs, t):
        bench, report = self._get("count_above")
        scheme = report.scheme
        extras = {"t": Fraction(t)}
        state = scheme.initializer
        for i, x in enumerate(xs):
            state = scheme.step(state, x, extras)
            assert state[0] == run_offline(bench.program, xs[: i + 1], extras)

    @settings(max_examples=25, deadline=None)
    @given(
        xs=st.lists(
            st.tuples(
                st.fractions(min_value=-9, max_value=9, max_denominator=4),
                st.fractions(min_value=-9, max_value=9, max_denominator=4),
            ),
            max_size=6,
        )
    )
    def test_weighted_mean_prefixes(self, xs):
        bench, report = self._get("weighted_mean")
        scheme = report.scheme
        state = scheme.initializer
        for i, x in enumerate(xs):
            state = scheme.step(state, x)
            assert state[0] == run_offline(bench.program, xs[: i + 1])

    _cache: dict = {}

    def _get(self, name):
        if name not in self._cache:
            bench = get_benchmark(name)
            config = SynthesisConfig(
                timeout_s=60, element_arity=bench.element_arity
            )
            report = OperaFull().synthesize(bench.program, config, name)
            assert report.success
            self._cache[name] = (bench, report)
        return self._cache[name]


class TestReportContents:
    def test_methods_recorded(self, solved):
        _, report = solved["variance"]
        assert "template" in report.method_counts
        assert report.method_counts.get("implicate", 0) >= 1

    def test_timing_recorded(self, solved):
        for _, report in solved.values():
            assert report.elapsed_s > 0

    def test_summary_line_formats(self, solved):
        _, report = solved["sum"]
        line = report.summary_line()
        assert "sum" in line and "ok" in line

    def test_failure_gives_reason(self):
        bench = get_benchmark("kurtosis")
        report = synthesize(
            bench.program, SynthesisConfig(timeout_s=2), "kurtosis"
        )
        assert not report.success
        assert report.failure_reason
        assert report.scheme is None


class TestAblationConfigs:
    def test_nosymbolic_still_solves_easy(self):
        bench = get_benchmark("sum")
        config = SynthesisConfig(timeout_s=20, use_symbolic=False)
        report = synthesize(bench.program, config, "sum")
        assert report.success
        assert set(report.method_counts) == {"enumerative"}

    def test_nodecomp_still_solves_easy(self):
        bench = get_benchmark("count")
        config = SynthesisConfig(timeout_s=20, use_decomposition=False)
        report = synthesize(bench.program, config, "count")
        assert report.success

    def test_nosymbolic_loses_variance(self):
        bench = get_benchmark("variance")
        config = SynthesisConfig(timeout_s=6, use_symbolic=False)
        report = synthesize(bench.program, config, "variance")
        assert not report.success
