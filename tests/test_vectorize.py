"""Differential tests for the certificate-licensed columnar backend.

The columnar kernel (:mod:`repro.ir.vectorize`) claims a strict contract:
``int64``-certified schemes are bit-for-bit identical to the exact
rationals, float64 opt-ins diverge by IEEE-754 rounding only, and every
unadmitted scheme or out-of-contract batch transparently runs on the exact
:class:`~repro.ir.compile.StepKernel` with its usual partial-progress
semantics.  These tests enforce the claim on every ground-truth scheme of
the suite — jit on and off, chunked and empty batches, keyed partitions,
bailouts, fusion interaction, and cross-backend checkpoint/restore.

The whole module degrades to exact-path assertions when NumPy is absent
(admission itself is pure structural analysis and never needs NumPy).
"""

from __future__ import annotations

import pickle
from fractions import Fraction

import pytest

from repro.core.scheme import OnlineScheme
from repro.ir.analysis import AnalysisBounds, FieldBounds
from repro.ir.dsl import add, eq, ite
from repro.ir.nodes import OnlineProgram, Var
from repro.ir.values import values_close
from repro.ir.vectorize import admit_columnar, numpy_or_none
from repro.runtime import KeyedOperator, OnlineOperator, StreamPipeline
from repro.runtime.checkpoint import load_checkpoint, save_checkpoint
from repro.suites import all_benchmarks, get_benchmark

HAVE_NUMPY = numpy_or_none() is not None

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")


def assert_same_value(a, b, where=""):
    """Bit-for-bit: equal values of identical Python types, recursively."""
    assert type(a) is type(b), (
        f"{where}: {type(a).__name__} != {type(b).__name__} ({a!r} vs {b!r})"
    )
    if isinstance(a, (tuple, list)):
        assert len(a) == len(b), f"{where}: {a!r} vs {b!r}"
        for i, (x, y) in enumerate(zip(a, b)):
            assert_same_value(x, y, f"{where}[{i}]")
    elif isinstance(a, float) and a != a:
        assert b != b, f"{where}: nan vs {b!r}"
    else:
        assert a == b, f"{where}: {a!r} != {b!r}"


def assert_close_state(columnar_state, exact_state, where=""):
    """Float64 contract: every component within IEEE rounding of the exact
    rational result (exact values coerced through float for comparison)."""
    assert len(columnar_state) == len(exact_state), where
    for i, (got, want) in enumerate(zip(columnar_state, exact_state)):
        want_f = float(want) if isinstance(want, Fraction) else want
        assert values_close(got, want_f), (
            f"{where}[{i}]: {got!r} not close to {want!r}"
        )


def ground_truths():
    return [b for b in all_benchmarks() if b.ground_truth is not None]


def int_stream(bench, n=60):
    """Small integers (bounded, int64-certifiable for the simple schemes)."""
    scalars = [(i * 7) % 11 - 3 for i in range(n)]
    if bench.element_arity <= 1:
        return scalars
    return [(value, (i * 3) % 4 + 1) for i, value in enumerate(scalars)]


def bounds_for(elements, arity, extra_params=()):
    """Tight concrete bounds for exactly the data a test will push — the
    same shape the bench harness feeds admission."""
    rows = [(v,) for v in elements] if arity <= 1 else list(elements)
    fields = []
    for i in range(max(arity, 1)):
        col = [row[i] for row in rows]
        integral = all(
            isinstance(v, int) or (isinstance(v, Fraction) and v.denominator == 1)
            for v in col
        )
        fields.append(FieldBounds(lo=min(col), hi=max(col), integral=integral))
    extras = {name: FieldBounds(lo=500, hi=500, integral=True) for name in extra_params}
    return AnalysisBounds(
        element=tuple(fields), max_elements=len(rows), extras=extras, source="test"
    )


def extras_for(scheme):
    return {name: 500 for name in scheme.program.extra_params}


class TestAdmission:
    """Verdicts are pure structural + static analysis — no NumPy needed."""

    def _admit(self, name, elements=None):
        bench = get_benchmark(name)
        scheme = bench.ground_truth
        elements = elements if elements is not None else int_stream(bench)
        bounds = bounds_for(elements, bench.element_arity, scheme.program.extra_params)
        return admit_columnar(scheme.program, scheme.initializer, bounds)

    def test_int64_certified_schemes(self):
        for name in ("sum", "count", "last", "min", "max", "range", "q_bid_volume"):
            admission = self._admit(name)
            assert admission.verdict == "certified-int64", (name, admission.reason)
            assert admission.domain == "int64" and admission.admitted

    def test_float_optin_schemes(self):
        for name in ("variance", "skewness", "rms", "q_avg_price"):
            admission = self._admit(name)
            assert admission.verdict == "float-optin-only", (name, admission.reason)
            assert admission.domain == "float64" and admission.reason

    def test_product_refused_without_certificate(self):
        # 60 factors of magnitude up to 7 blow through int64; float64 would
        # overflow to inf (divergence, not rounding), so no domain admits it.
        admission = self._admit("product")
        assert admission.verdict == "uncertified"
        assert not admission.admitted
        assert "product accumulation" in admission.reason

    def test_structural_decliners(self):
        for name in ("mean", "q_top2"):
            admission = self._admit(name)
            assert admission.verdict == "uncertified", name
            assert admission.domain is None and admission.reason

    def test_admission_without_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert numpy_or_none() is None
        admission = self._admit("sum")
        assert admission.verdict == "certified-int64"

    def test_unknown_backend_rejected(self):
        scheme = get_benchmark("sum").ground_truth
        with pytest.raises(ValueError):
            OnlineOperator(scheme, backend="vectorized")


@needs_numpy
class TestDifferentialGroundTruths:
    """Columnar vs exact over every ground-truth scheme of the suite."""

    @pytest.mark.parametrize("jit", [True, False], ids=["jit", "nojit"])
    def test_columnar_differential_all_ground_truths(self, jit):
        int64_seen = float64_seen = declined = 0
        for bench in ground_truths():
            scheme = bench.ground_truth
            elements = int_stream(bench)
            extra = extras_for(scheme)
            bounds = bounds_for(
                elements, bench.element_arity, scheme.program.extra_params
            )
            exact = OnlineOperator(scheme, extra, jit=jit)
            columnar = OnlineOperator(
                scheme, extra, jit=jit, backend="columnar", bounds=bounds
            )
            exact.push_many(elements)
            columnar.push_many(elements)
            assert columnar.count == exact.count == len(elements)
            if columnar.backend_in_use == "exact":
                declined += 1
                assert_same_value(columnar.state, exact.state, bench.name)
                continue
            domain = columnar._kernel.domain
            if domain == "int64":
                int64_seen += 1
                assert_same_value(columnar.state, exact.state, bench.name)
            else:
                float64_seen += 1
                assert_close_state(columnar.state, exact.state, bench.name)
        # The suite exercises all three admission outcomes.
        assert int64_seen >= 10 and float64_seen >= 10 and declined >= 1

    def test_auto_backend_never_changes_results(self):
        # "auto" only takes the bit-identical int64 path; float-optin
        # schemes must stay exact without the explicit "columnar" opt-in.
        for name in ("sum", "variance", "mean"):
            bench = get_benchmark(name)
            scheme = bench.ground_truth
            elements = int_stream(bench)
            bounds = bounds_for(elements, bench.element_arity)
            exact = OnlineOperator(scheme)
            auto = OnlineOperator(scheme, backend="auto", bounds=bounds)
            exact.push_many(elements)
            auto.push_many(elements)
            assert_same_value(auto.state, exact.state, name)
        assert OnlineOperator(
            get_benchmark("variance").ground_truth, backend="auto",
            bounds=bounds_for(int_stream(get_benchmark("variance")), 1),
        ).backend_in_use == "exact"

    def test_chunked_and_empty_batches(self):
        for name in ("sum", "max", "variance", "skewness"):
            bench = get_benchmark(name)
            scheme = bench.ground_truth
            elements = int_stream(bench)
            bounds = bounds_for(elements, bench.element_arity)
            make = lambda: OnlineOperator(  # noqa: E731
                scheme, backend="columnar", bounds=bounds
            )
            whole, chunked = make(), make()
            whole.push_many(elements)
            i = 0
            for size in (0, 1, 3, 7, 11):
                chunked.push_many(elements[i : i + size])
                i += size
            chunked.push_many(elements[i:])
            if whole._kernel.domain == "int64":
                # int64 is exact arithmetic: chunking cannot matter at all.
                assert_same_value(whole.state, chunked.state, name)
            else:
                # float64 resumes a chunk as start + cumsum(chunk), which
                # rounds differently from one uninterrupted scan — the
                # divergence stays within the documented IEEE error model.
                for got, want in zip(chunked.state, whole.state):
                    assert values_close(got, want), (name, got, want)
            assert whole.count == chunked.count == len(elements)

    def test_scalar_push_matches_push_many_in_float64(self):
        # Float64 operators route scalar push through the same kernel so a
        # trajectory never mixes exact and IEEE arithmetic.
        bench = get_benchmark("variance")
        scheme = bench.ground_truth
        elements = int_stream(bench, n=40)
        bounds = bounds_for(elements, 1)
        batched = OnlineOperator(scheme, backend="columnar", bounds=bounds)
        stepped = OnlineOperator(scheme, backend="columnar", bounds=bounds)
        assert batched.backend_in_use == "columnar"
        batched.push_many(elements)
        for element in elements:
            stepped.push(element)
        assert_same_value(batched.state, stepped.state)
        assert batched.count == stepped.count

    def test_keyed_columnar_differential(self):
        scheme = get_benchmark("q_bid_volume").ground_truth
        events = [((i * 7) % 11 + 1, i % 5) for i in range(48)]
        values = [e[0] for e in events]
        bounds = bounds_for(values, 1)
        key_fn = lambda e: e[1]  # noqa: E731
        value_fn = lambda e: e[0]  # noqa: E731
        exact = KeyedOperator(scheme, key_fn=key_fn, value_fn=value_fn)
        columnar = KeyedOperator(
            scheme, key_fn=key_fn, value_fn=value_fn,
            backend="columnar", bounds=bounds,
        )
        for event in events:
            exact.push(event)
        columnar.push_many(events)
        assert columnar.snapshot() == exact.snapshot()
        for key, part in columnar.partitions.items():
            assert part.backend_in_use == "columnar", key
            assert_same_value(part.state, exact.partitions[key].state, f"key {key}")

    def test_fork_keeps_backend(self):
        bench = get_benchmark("sum")
        elements = int_stream(bench)
        op = OnlineOperator(
            bench.ground_truth, backend="columnar", bounds=bounds_for(elements, 1)
        )
        op.push_many(elements[:10])
        clone = op.fork()
        assert clone.backend_in_use == "columnar"
        assert_same_value(clone.state, op.state)


@needs_numpy
class TestBailouts:
    """Out-of-contract batches delegate wholesale to the exact kernel."""

    def test_out_of_bounds_batch_falls_back_exactly(self):
        scheme = get_benchmark("sum").ground_truth
        small = list(range(10))
        bounds = bounds_for(small, 1)
        exact = OnlineOperator(scheme)
        columnar = OnlineOperator(scheme, backend="columnar", bounds=bounds)
        assert columnar.backend_in_use == "columnar"
        wild = small + [10**30]  # outside the certified interval
        exact.push_many(wild)
        columnar.push_many(wild)
        assert_same_value(columnar.state, exact.state)
        # Later in-bounds batches still agree (the huge state itself now
        # forces the exact path — silently, with identical results).
        exact.push_many(small)
        columnar.push_many(small)
        assert_same_value(columnar.state, exact.state)

    def test_non_numeric_payload_has_exact_error_parity(self):
        scheme = get_benchmark("sum").ground_truth
        elements = [1, 2, "boom", 4]
        bounds = bounds_for([1, 2, 4], 1)
        exact = OnlineOperator(scheme)
        columnar = OnlineOperator(scheme, backend="columnar", bounds=bounds)
        exact_exc = columnar_exc = None
        try:
            exact.push_many(elements)
        except Exception as exc:  # noqa: BLE001 - parity check
            exact_exc = exc
        try:
            columnar.push_many(elements)
        except Exception as exc:  # noqa: BLE001 - parity check
            columnar_exc = exc
        assert exact_exc is not None and columnar_exc is not None
        assert type(columnar_exc) is type(exact_exc)
        assert_same_value(columnar.state, exact.state)
        assert columnar.count == exact.count

    def test_rational_payloads_are_converted_not_bailed(self):
        # Fraction elements with denominator 1 (what CLI sources yield) must
        # still run columnar — the element conversion pass handles them.
        scheme = get_benchmark("sum").ground_truth
        elements = [Fraction(i, 1) for i in range(20)]
        bounds = bounds_for(elements, 1)
        exact = OnlineOperator(scheme)
        columnar = OnlineOperator(scheme, backend="columnar", bounds=bounds)
        exact.push_many(elements)
        columnar.push_many(elements)
        assert columnar.backend_in_use == "columnar"
        assert_same_value(columnar.state, exact.state)

    def test_no_numpy_degrades_to_exact(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        bench = get_benchmark("sum")
        scheme = bench.ground_truth
        elements = int_stream(bench)
        bounds = bounds_for(elements, 1)
        assert scheme.compiled_columns(bounds, allow_float=True) is None
        op = OnlineOperator(scheme, backend="columnar", bounds=bounds)
        assert op.backend_in_use == "exact"
        reference = OnlineOperator(scheme)
        op.push_many(elements)
        reference.push_many(elements)
        assert_same_value(op.state, reference.state)


@needs_numpy
class TestFusionInteraction:
    def test_pipeline_with_columnar_operator_declines_fusion(self):
        elements = [(i * 7) % 11 - 3 for i in range(40)]
        bounds = bounds_for(elements, 1)
        mixed = StreamPipeline(
            {
                "sum": OnlineOperator(
                    get_benchmark("sum").ground_truth,
                    backend="columnar", bounds=bounds,
                ),
                "count": OnlineOperator(get_benchmark("count").ground_truth),
            }
        )
        stepped = StreamPipeline(
            {
                "sum": OnlineOperator(get_benchmark("sum").ground_truth),
                "count": OnlineOperator(get_benchmark("count").ground_truth),
            }
        )
        assert mixed.operators["sum"].backend_in_use == "columnar"
        snapshot = mixed.push_many(elements)
        for element in elements:
            stepped.push(element)
        assert snapshot == stepped.snapshot()
        assert mixed._fused_plan[1] is None  # fusion declined, results exact


@needs_numpy
class TestCrossBackendCheckpoint:
    """Checkpoints are backend-agnostic: the backend is a process decision,
    the state is exact data — restore under any backend, bit-identical."""

    @pytest.mark.parametrize(
        "first,second",
        [("columnar", None), (None, "columnar")],
        ids=["columnar-to-exact", "exact-to-columnar"],
    )
    def test_operator_roundtrip(self, tmp_path, first, second):
        bench = get_benchmark("sum")
        scheme = bench.ground_truth
        elements = int_stream(bench)
        bounds = bounds_for(elements, 1)
        op = OnlineOperator(scheme, backend=first, bounds=bounds)
        op.push_many(elements[:25])
        path = tmp_path / "op.ck.json"
        save_checkpoint(op, path)
        resumed = load_checkpoint(path, backend=second, bounds=bounds)
        assert resumed.backend_in_use == (
            "columnar" if second == "columnar" else "exact"
        )
        resumed.push_many(elements[25:])
        reference = OnlineOperator(scheme)
        for element in elements:
            reference.push(element)
        assert_same_value(resumed.state, reference.state)
        assert resumed.count == reference.count

    @pytest.mark.parametrize(
        "first,second",
        [("columnar", None), (None, "columnar")],
        ids=["columnar-to-exact", "exact-to-columnar"],
    )
    def test_keyed_roundtrip(self, tmp_path, first, second):
        scheme = get_benchmark("q_bid_volume").ground_truth
        events = [((i * 7) % 11 + 1, i % 4) for i in range(40)]
        bounds = bounds_for([e[0] for e in events], 1)
        key_fn = lambda e: e[1]  # noqa: E731
        value_fn = lambda e: e[0]  # noqa: E731
        keyed = KeyedOperator(
            scheme, key_fn=key_fn, value_fn=value_fn, backend=first, bounds=bounds
        )
        keyed.push_many(events[:18])
        path = tmp_path / "keyed.ck.json"
        save_checkpoint(keyed, path)
        resumed = load_checkpoint(
            path, key_fn=key_fn, value_fn=value_fn, backend=second, bounds=bounds
        )
        resumed.push_many(events[18:])
        reference = KeyedOperator(scheme, key_fn=key_fn, value_fn=value_fn)
        for event in events:
            reference.push(event)
        assert resumed.snapshot() == reference.snapshot()
        assert resumed.count == reference.count
        if second == "columnar":
            for part in resumed.partitions.values():
                assert part.backend_in_use == "columnar"


@needs_numpy
class TestKernelCache:
    def test_compiled_columns_is_cached_per_request(self):
        bench = get_benchmark("sum")
        scheme = bench.ground_truth
        bounds = bounds_for(int_stream(bench), 1)
        k1 = scheme.compiled_columns(bounds)
        k2 = scheme.compiled_columns(bounds)
        assert k1 is not None and k1 is k2
        # A different admission request is a different kernel slot.
        other = scheme.compiled_columns(bounds, allow_float=True)
        assert other is not None

    def test_pickle_and_invalidate_drop_columnar_cache(self):
        bench = get_benchmark("sum")
        scheme = bench.ground_truth
        bounds = bounds_for(int_stream(bench), 1)
        assert scheme.compiled_columns(bounds) is not None
        clone = pickle.loads(pickle.dumps(scheme))
        assert clone._columnar_cache == []
        scheme.invalidate_compiled()
        assert scheme._columnar_cache == []

    def test_uncertified_scheme_compiles_to_none(self):
        scheme = get_benchmark("mean").ground_truth
        assert scheme.compiled_columns(None, allow_float=True) is None


@needs_numpy
class TestMaskedAccumulation:
    def test_conditional_additive_update_matches_exact(self):
        # s' = if x == 3 then s else s + x — the additive decomposition
        # folds the condition into the cumsum term itself (no mask slot).
        from repro.ir.vectorize import plan_columns

        program = OnlineProgram(
            ("s",), "x", (ite(eq(Var("x"), 3), Var("s"), add("s", "x")),)
        )
        scheme = OnlineScheme((0,), program, provenance="masked-sum")
        plan = plan_columns(program, scheme.initializer)
        assert plan.components[0].kind == "cumsum"
        elements = [1, 2, 3, 4, 3, 5]
        bounds = bounds_for(elements, 1)
        admission = admit_columnar(program, scheme.initializer, bounds)
        assert admission.admitted, admission.reason
        exact = OnlineOperator(scheme)
        columnar = OnlineOperator(scheme, backend="columnar", bounds=bounds)
        assert columnar.backend_in_use == "columnar"
        exact.push_many(elements)
        columnar.push_many(elements)
        # The x == 3 payloads (indices 2 and 4) must not accumulate.
        assert columnar.state[0] == exact.state[0] == 12

    def test_masked_max_accumulation_matches_exact(self):
        # m' = if x > 0 then max(m, x) else m — a genuinely masked cummax
        # (maximum has no additive decomposition, so the If becomes the
        # component's mask and masked-out slots take the scan's neutral).
        from repro.ir.dsl import gt, maximum
        from repro.ir.vectorize import plan_columns

        program = OnlineProgram(
            ("m",), "x",
            (ite(gt(Var("x"), 0), maximum(Var("m"), Var("x")), Var("m")),),
        )
        scheme = OnlineScheme((0,), program, provenance="masked-max")
        plan = plan_columns(program, scheme.initializer)
        component = plan.components[0]
        assert component.kind == "cummax" and component.mask is not None
        elements = [-7, 3, -9, 5, 2, -11, 4]
        bounds = bounds_for(elements, 1)
        exact = OnlineOperator(scheme)
        columnar = OnlineOperator(
            scheme, backend="columnar", bounds=bounds
        )
        assert columnar.backend_in_use == "columnar"
        exact.push_many(elements)
        columnar.push_many(elements)
        # Negative payloads must not participate: the max is 5, not -7.
        assert columnar.state[0] == exact.state[0] == 5
