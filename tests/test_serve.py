"""Tests for the ``repro.serve`` subsystem: hash ring, sharded server,
crash-restore differential, backpressure, resume, CLI, and the bench."""

import json

import pytest

from repro.cli import main
from repro.core.scheme import OnlineScheme
from repro.ir.dsl import add, mul
from repro.ir.nodes import OnlineProgram
from repro.runtime import sources
from repro.serve import (
    HashRing,
    ServeError,
    StreamServer,
    reference_states,
    stable_key_hash,
    states_match,
)


def sum_scheme() -> OnlineScheme:
    return OnlineScheme((0,), OnlineProgram(("s",), "x", (add("s", "x"),)))


def rate_scheme() -> OnlineScheme:
    return OnlineScheme(
        (0,), OnlineProgram(("s",), "x", (add("s", mul("x", "rate")),), ("rate",))
    )


def keyed_stream(n, keys=16, seed=3):
    return list(sources.zipf_keys(n, keys=keys, seed=seed))


class TestHashRing:
    def test_stable_hash_is_process_independent(self):
        # BLAKE2b over repr: a fixed value, not PYTHONHASHSEED-salted.
        assert stable_key_hash(17) == 0x20398D138E4D7BB4

    def test_routing_deterministic_across_instances(self):
        a, b = HashRing(4), HashRing(4)
        for key in range(200):
            assert a.shard_for(key) == b.shard_for(key)

    def test_all_shards_receive_keys(self):
        ring = HashRing(4)
        owners = {ring.shard_for(k) for k in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_distribution_roughly_even(self):
        ring = HashRing(4, replicas=64)
        counts = {s: 0 for s in range(4)}
        for key in range(4000):
            counts[ring.shard_for(key)] += 1
        assert min(counts.values()) > 400  # perfectly even would be 1000

    def test_resize_only_remaps_removed_shards_keys(self):
        # The consistent-hashing contract: removing shard 3 moves ONLY the
        # keys shard 3 owned; everything else keeps its owner.
        ring = HashRing(4)
        before = {k: ring.shard_for(k) for k in range(1000)}
        ring.remove_shard(3)
        for key, owner in before.items():
            if owner != 3:
                assert ring.shard_for(key) == owner
            else:
                assert ring.shard_for(key) != 3

    def test_add_shard_only_steals_keys(self):
        ring = HashRing(3)
        before = {k: ring.shard_for(k) for k in range(1000)}
        ring.add_shard(3)
        moved = {k for k, owner in before.items() if ring.shard_for(k) != owner}
        for key in moved:
            assert ring.shard_for(key) == 3

    def test_rejects_bad_configs(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing([1, 1])
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)
        ring = HashRing(1)
        with pytest.raises(ValueError):
            ring.remove_shard(0)  # never remove the last shard


class TestServerDifferential:
    def test_clean_run_matches_single_process(self, tmp_path):
        scheme = sum_scheme()
        elements = keyed_stream(600)
        with StreamServer(
            scheme, shards=3, checkpoint_dir=tmp_path, key_field=1, value_field=0,
            checkpoint_every=100, batch_size=16, max_inflight=4,
        ) as server:
            server.push_many(elements)
            result = server.drain()
        oracle = reference_states(scheme, elements, key_field=1, value_field=0)
        assert states_match(result, oracle)
        assert result.count == 600
        assert sum(result.shard_counts.values()) == 600
        assert result.restarts == 0

    def test_kill_restore_is_bit_identical(self, tmp_path):
        # The tentpole contract: SIGKILL a worker mid-stream; the restored
        # worker resumes from its checkpoint, the server replays the
        # non-durable suffix, and the final states are exactly the
        # single-process run's.
        scheme = sum_scheme()
        elements = keyed_stream(1200)
        with StreamServer(
            scheme, shards=2, checkpoint_dir=tmp_path, key_field=1, value_field=0,
            checkpoint_every=100, batch_size=16, max_inflight=4,
        ) as server:
            for i, element in enumerate(elements):
                server.push(element)
                if i == 500:
                    server.kill_shard(0)
                if i == 900:
                    server.kill_shard(1)
            result = server.drain()
        oracle = reference_states(scheme, elements, key_field=1, value_field=0)
        assert states_match(result, oracle)
        assert result.restarts == 2

    def test_kill_just_before_drain(self, tmp_path):
        scheme = sum_scheme()
        elements = keyed_stream(400)
        with StreamServer(
            scheme, shards=2, checkpoint_dir=tmp_path, key_field=1, value_field=0,
            checkpoint_every=50, batch_size=8, max_inflight=2,
        ) as server:
            server.push_many(elements)
            server.kill_shard(1)
            result = server.drain()
        oracle = reference_states(scheme, elements, key_field=1, value_field=0)
        assert states_match(result, oracle)
        assert result.restarts >= 1

    def test_backpressure_with_tiny_inflight_window(self, tmp_path):
        # max_inflight=1 forces push() to block on every batch; the run
        # must still complete and stay exact.
        scheme = sum_scheme()
        elements = keyed_stream(300)
        with StreamServer(
            scheme, shards=2, checkpoint_dir=tmp_path, key_field=1, value_field=0,
            checkpoint_every=1000, batch_size=4, max_inflight=1,
        ) as server:
            server.push_many(elements)
            result = server.drain()
        oracle = reference_states(scheme, elements, key_field=1, value_field=0)
        assert states_match(result, oracle)

    def test_extra_params_reach_every_shard(self, tmp_path):
        scheme = rate_scheme()
        elements = keyed_stream(200)
        extra = {"rate": 3}
        with StreamServer(
            scheme, shards=2, checkpoint_dir=tmp_path, key_field=1, value_field=0,
            extra=extra, checkpoint_every=50, batch_size=8,
        ) as server:
            server.push_many(elements)
            result = server.drain()
        oracle = reference_states(
            scheme, elements, key_field=1, value_field=0, extra=extra
        )
        assert states_match(result, oracle)

    def test_latencies_recorded(self, tmp_path):
        scheme = sum_scheme()
        with StreamServer(
            scheme, shards=2, checkpoint_dir=tmp_path, key_field=1, value_field=0,
            batch_size=8,
        ) as server:
            server.push_many(keyed_stream(200))
            result = server.drain()
        assert result.latencies_s and all(t >= 0 for t in result.latencies_s)
        assert result.p99_latency_s() >= 0


class TestServerResume:
    def test_second_server_resumes_checkpoints(self, tmp_path):
        scheme = sum_scheme()
        elements = keyed_stream(800)
        with StreamServer(
            scheme, shards=2, checkpoint_dir=tmp_path, key_field=1, value_field=0,
            checkpoint_every=10, batch_size=8,
        ) as first:
            first.push_many(elements[:400])
            first.drain()
        with StreamServer(
            scheme, shards=2, checkpoint_dir=tmp_path, key_field=1, value_field=0,
            checkpoint_every=10, batch_size=8,
        ) as second:
            second.push_many(elements[400:])
            result = second.drain()
        oracle = reference_states(scheme, elements, key_field=1, value_field=0)
        assert states_match(result, oracle)

    def test_fresh_wipes_previous_deployment(self, tmp_path):
        scheme = sum_scheme()
        elements = keyed_stream(200)
        for _ in range(2):  # second run must NOT resume the first's counts
            with StreamServer(
                scheme, shards=2, checkpoint_dir=tmp_path, key_field=1,
                value_field=0, fresh=True,
            ) as server:
                server.push_many(elements)
                result = server.drain()
        oracle = reference_states(scheme, elements, key_field=1, value_field=0)
        assert states_match(result, oracle)

    def test_shard_count_mismatch_rejected(self, tmp_path):
        scheme = sum_scheme()
        with StreamServer(
            scheme, shards=2, checkpoint_dir=tmp_path, key_field=1, value_field=0,
        ) as server:
            server.push_many(keyed_stream(50))
            server.drain()
        with pytest.raises(ServeError, match="2-shard"):
            StreamServer(
                scheme, shards=3, checkpoint_dir=tmp_path, key_field=1,
                value_field=0,
            ).start()

    def test_different_scheme_rejected(self, tmp_path):
        with StreamServer(
            sum_scheme(), shards=2, checkpoint_dir=tmp_path, key_field=1,
            value_field=0,
        ) as server:
            server.push_many(keyed_stream(50))
            server.drain()
        with pytest.raises(ServeError, match="different\\s+scheme"):
            StreamServer(
                rate_scheme(), shards=2, checkpoint_dir=tmp_path, key_field=1,
                value_field=0, extra={"rate": 1},
            ).start()

    def test_restart_budget_gives_up(self, tmp_path):
        scheme = sum_scheme()
        with StreamServer(
            scheme, shards=1, checkpoint_dir=tmp_path, key_field=1, value_field=0,
            batch_size=4, restart_budget=0,
        ) as server:
            server.push_many(keyed_stream(40))
            server.kill_shard(0)
            with pytest.raises(ServeError, match="restart budget"):
                server.drain()

    def test_config_validation(self, tmp_path):
        for kwargs in (
            {"shards": 0},
            {"batch_size": 0},
            {"max_inflight": 0},
            {"checkpoint_every": 0},
        ):
            with pytest.raises(ValueError):
                StreamServer(
                    sum_scheme(), checkpoint_dir=tmp_path, key_field=1,
                    **{"shards": 2, **kwargs},
                )


class TestServeCli:
    @pytest.fixture()
    def scheme_file(self, tmp_path):
        path = tmp_path / "sum.scheme.json"
        path.write_text(json.dumps(sum_scheme().to_dict()), encoding="utf-8")
        return str(path)

    def test_serve_verify(self, scheme_file, tmp_path, capsys):
        code = main([
            "serve", scheme_file, "--source", "zipf-keys:300:10:5",
            "--key-field", "1", "--value-field", "0", "--shards", "2",
            "--checkpoint-dir", str(tmp_path / "ck"), "--checkpoint-every", "50",
            "--batch-size", "16", "--verify",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "verify: OK" in out
        assert "consumed 300 elements" in out

    def test_serve_kill_shard_recovers(self, scheme_file, tmp_path, capsys):
        code = main([
            "serve", scheme_file, "--source", "zipf-keys:400:10:5",
            "--key-field", "1", "--value-field", "0", "--shards", "2",
            "--checkpoint-dir", str(tmp_path / "ck"), "--checkpoint-every", "50",
            "--batch-size", "8", "--kill-shard", "0:200", "--verify",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "killed shard 0" in out
        assert "1 restart(s)" in out
        assert "verify: OK" in out

    def test_serve_rejects_bad_kill_spec(self, scheme_file, tmp_path, capsys):
        assert main([
            "serve", scheme_file, "--source", "zipf-keys:10",
            "--key-field", "1", "--checkpoint-dir", str(tmp_path / "ck"),
            "--kill-shard", "9:5",
        ]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_serve_rejects_unbounded_source(self, scheme_file, tmp_path, capsys):
        assert main([
            "serve", scheme_file, "--source", "zipf-keys",
            "--key-field", "1", "--checkpoint-dir", str(tmp_path / "ck"),
        ]) == 2
        assert "--max-elements" in capsys.readouterr().err


class TestServeBench:
    def test_report_shape_and_self_compare(self, tmp_path):
        from repro.evaluation.benchstats import compare_reports
        from repro.evaluation.history import append_report, latest, report_kind
        from repro.evaluation.serve_bench import (
            format_report,
            run_serve_benchmark,
        )

        report = run_serve_benchmark(
            elements=400, repeats=3, shards=2, keys=10, batch_size=64,
            checkpoint_every=200,
        )
        assert report["format"] == "repro/bench-serve"
        assert report["version"] == 3
        assert report["serve"]["states_match"] is True
        assert len(report["serve"]["raw"]["wall_s"]) == 3
        assert len(report["serve"]["raw"]["p99_latency_s"]) == 3
        assert report["serve"]["eps"] > 0
        assert report["single_process"]["eps"] > 0
        assert "meta" in report and "git_commit" in report["meta"]
        assert "serve throughput" in format_report(report)

        # The statistics layer accepts the new kind...
        assert report_kind(report) == "serve"
        comparison = compare_reports(report, report)
        assert comparison["kind"] == "serve"
        assert comparison["summary"]["regressed"] == 0
        assert set(comparison["metrics"]) == {
            "serve/eps", "serve/p99_latency", "single_process/eps",
        }
        # ...and so does the history store.
        dest = append_report(report, tmp_path)
        assert dest.exists()
        assert latest("serve", tmp_path) == dest

    def test_workload_mismatch_is_incomparable(self):
        from repro.evaluation.benchstats import compare_reports
        from repro.evaluation.serve_bench import run_serve_benchmark

        a = run_serve_benchmark(
            elements=200, repeats=3, shards=2, keys=10, batch_size=64,
            checkpoint_every=100,
        )
        b = dict(a, shards=4)
        comparison = compare_reports(a, b)
        assert all(
            entry["verdict"] == "incomparable"
            for entry in comparison["metrics"].values()
        )
