"""Tests over the benchmark suites: registry integrity, ground-truth
correctness (Definition 3.3) and inductiveness of ground truths where the
accumulator layout matches an RFS."""

import pytest

from repro.core import SynthesisConfig, check_scheme_equivalence
from repro.ir import run_offline
from repro.ir.traversal import ast_size, inline_lets, validate_online_expr
from repro.suites import all_benchmarks, benchmarks_for, get_benchmark


class TestRegistry:
    def test_counts_match_paper(self):
        assert len(benchmarks_for("stats")) == 34
        assert len(benchmarks_for("auction")) == 17
        assert len(all_benchmarks()) == 51

    def test_names_unique(self):
        names = [b.name for b in all_benchmarks()]
        assert len(names) == len(set(names))

    def test_get_benchmark(self):
        assert get_benchmark("variance").domain == "stats"
        with pytest.raises(KeyError):
            get_benchmark("nope")

    def test_exactly_one_expected_failure(self):
        hard = [b.name for b in all_benchmarks() if b.expected_hard]
        assert hard == ["kurtosis"]

    def test_every_benchmark_has_ground_truth(self):
        assert all(b.ground_truth is not None for b in all_benchmarks())

    def test_every_benchmark_has_description(self):
        assert all(b.description for b in all_benchmarks())

    def test_element_arity_sane(self):
        for b in all_benchmarks():
            assert b.element_arity in (1, 2)

    def test_extra_params_consistency(self):
        for b in all_benchmarks():
            gt = b.ground_truth
            assert gt.program.extra_params == b.program.extra_params, b.name


class TestGroundTruths:
    @pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.name)
    def test_equivalent_to_offline(self, bench):
        config = SynthesisConfig(
            equivalence_tests=10, element_arity=bench.element_arity
        )
        assert check_scheme_equivalence(bench.program, bench.ground_truth, config)

    @pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.name)
    def test_ground_truth_is_online(self, bench):
        for out in bench.ground_truth.program.outputs:
            assert validate_online_expr(out)

    def test_offline_programs_evaluate(self):
        for bench in all_benchmarks():
            elem = (2, 1) if bench.element_arity == 2 else 2
            extras = {p: 3 for p in bench.program.extra_params}
            run_offline(bench.program, [elem, elem], extras)  # must not raise


class TestSuiteShape:
    def test_stats_online_larger_than_offline(self):
        """The Table 1 relationship: online stats programs are bigger."""
        ratio_sum, count = 0.0, 0
        for bench in benchmarks_for("stats"):
            offline = ast_size(inline_lets(bench.program.body))
            online = sum(
                ast_size(o) for o in bench.ground_truth.program.outputs
            )
            ratio_sum += online / offline
            count += 1
        assert ratio_sum / count > 1.1

    def test_paper_examples_present(self):
        """Benchmarks named in the paper's text all exist."""
        for name in ("variance", "skewness", "kurtosis", "sem",
                     "geometric_mean", "logsumexp", "mean"):
            assert get_benchmark(name) is not None

    def test_some_python_sources_provided(self):
        assert sum(1 for b in all_benchmarks() if b.python_source) >= 3

    def test_auction_has_parameterized_queries(self):
        assert any(
            b.program.extra_params for b in benchmarks_for("auction")
        )

    def test_auction_has_record_streams(self):
        assert any(b.element_arity == 2 for b in benchmarks_for("auction"))
