"""Tests for the keyed runtime, checkpoint/restore, and the defined
empty-batch semantics of operators and pipelines."""

from fractions import Fraction

import pytest

from repro.core.scheme import OnlineScheme
from repro.ir.dsl import add, div, mul
from repro.ir.nodes import OnlineProgram
from repro.ir import run_offline
from repro.runtime import (
    CheckpointError,
    KeyedOperator,
    OnlineOperator,
    StreamPipeline,
    load_checkpoint,
    save_checkpoint,
    sources,
)
from repro.suites import get_benchmark


def sum_scheme() -> OnlineScheme:
    return OnlineScheme((0,), OnlineProgram(("s",), "x", (add("s", "x"),)))


def mean_scheme() -> OnlineScheme:
    return OnlineScheme(
        (0, 0),
        OnlineProgram(
            ("y", "z"),
            "x",
            (div(add(mul("y", "z"), "x"), add("z", 1)), add("z", 1)),
        ),
    )


def rate_scheme() -> OnlineScheme:
    """sum of x * rate, with rate as an extra pass-through parameter."""
    return OnlineScheme(
        (0,), OnlineProgram(("s",), "x", (add("s", mul("x", "rate")),), ("rate",))
    )


class TestDefinedEmptyBatches:
    def test_push_many_empty_on_fresh_operator(self):
        # Rule Lift-Nil: the defined value for zero elements is fst(I).
        op = OnlineOperator(mean_scheme())
        assert op.push_many([]) == 0
        assert op.count == 0

    def test_push_many_empty_preserves_state(self):
        op = OnlineOperator(sum_scheme())
        op.push_many([1, 2, 3])
        assert op.push_many([]) == 6
        assert op.count == 3

    def test_pipeline_push_many_empty(self):
        pipeline = StreamPipeline(
            {"sum": OnlineOperator(sum_scheme()), "mean": OnlineOperator(mean_scheme())}
        )
        assert pipeline.push_many([]) == {"sum": 0, "mean": 0}

    def test_pipeline_push_many(self):
        pipeline = StreamPipeline({"sum": OnlineOperator(sum_scheme())})
        assert pipeline.push_many([1, 2, 3]) == {"sum": 6}

    def test_pipeline_run_empty_source_yields_nothing(self):
        pipeline = StreamPipeline({"sum": OnlineOperator(sum_scheme())})
        assert list(pipeline.run([])) == []
        assert pipeline.snapshot() == {"sum": 0}

    def test_keyed_push_many_empty(self):
        keyed = KeyedOperator(sum_scheme(), key_fn=lambda e: e[1])
        assert keyed.push_many([]) == {}


class TestKeyedOperator:
    def events(self, n=60):
        return [(Fraction((i * 13) % 31), i % 4) for i in range(n)]

    def test_push_returns_key_and_value(self):
        keyed = KeyedOperator(
            sum_scheme(), key_fn=lambda e: e[1], value_fn=lambda e: e[0]
        )
        assert keyed.push((Fraction(3), "a")) == ("a", 3)
        assert keyed.push((Fraction(4), "a")) == ("a", 7)
        assert keyed.push((Fraction(5), "b")) == ("b", 5)
        assert keyed.count == 3
        assert len(keyed) == 2

    def test_matches_per_key_batch_recomputation(self):
        """The group-by contract: each partition's final value equals the
        batch program run over just that key's elements."""
        bench = get_benchmark("mean")
        keyed = KeyedOperator(
            bench.ground_truth, key_fn=lambda e: e[1], value_fn=lambda e: e[0]
        )
        events = self.events()
        snapshot = keyed.push_many(events)
        assert set(snapshot) == {0, 1, 2, 3}
        for key in snapshot:
            per_key = [price for price, k in events if k == key]
            assert snapshot[key] == run_offline(bench.program, per_key)

    def test_matches_bids_source(self):
        # Nexmark flavour: per-category highest bid over the bids source.
        bench = get_benchmark("q_highest_bid")
        keyed = KeyedOperator(
            bench.ground_truth, key_fn=lambda e: e[1], value_fn=lambda e: e[0]
        )
        bids = list(sources.bids(200))
        keyed.push_many(bids)
        for key in keyed.keys():
            per_key = [price for price, cat in bids if cat == key]
            assert keyed.value(key) == run_offline(bench.program, per_key)

    def test_whole_element_by_default(self):
        # Without value_fn the partition's scheme sees the element itself.
        keyed = KeyedOperator(sum_scheme(), key_fn=lambda e: "k")
        keyed.push(Fraction(2))
        keyed.push(Fraction(3))
        assert keyed.value("k") == 5

    def test_value_default_for_unknown_key(self):
        keyed = KeyedOperator(sum_scheme(), key_fn=lambda e: e)
        assert keyed.value("missing") is None
        assert keyed.value("missing", default=0) == 0

    def test_reset_one_key_and_all(self):
        keyed = KeyedOperator(sum_scheme(), key_fn=lambda e: e % 2)
        keyed.push_many([1, 2, 3, 4])
        keyed.reset(0)
        assert keyed.keys() == [1]
        # count tracks the elements held by the remaining partitions.
        assert keyed.count == 2
        keyed.reset("never seen")  # unknown keys are a no-op
        assert keyed.count == 2
        keyed.reset()
        assert keyed.keys() == [] and keyed.count == 0

    def test_extra_params_reach_partitions(self):
        keyed = KeyedOperator(
            rate_scheme(), key_fn=lambda e: e[1], value_fn=lambda e: e[0],
            extra={"rate": 3},
        )
        keyed.push((2, "a"))
        keyed.push((5, "a"))
        assert keyed.value("a") == 21


class TestCheckpointRestore:
    def test_operator_resume_identical_outputs(self):
        stream = [Fraction(v) for v in range(100)]
        op = OnlineOperator(mean_scheme(), name="mean")
        for x in stream[:60]:
            op.push(x)
        data = op.checkpoint()

        resumed = OnlineOperator.restore(data)
        reference = op  # keep pushing the original
        tail_resumed = [resumed.push(x) for x in stream[60:]]
        tail_reference = [reference.push(x) for x in stream[60:]]
        assert tail_resumed == tail_reference
        assert resumed.count == reference.count == 100
        assert resumed.name == "mean"

    def test_round_trips_through_json_file(self, tmp_path):
        op = OnlineOperator(rate_scheme(), extra={"rate": Fraction(1, 3)})
        op.push_many([1, 2, 3])
        path = tmp_path / "op.ck.json"
        save_checkpoint(op, path)
        resumed = load_checkpoint(path)
        assert resumed.state == op.state
        assert resumed.extra == {"rate": Fraction(1, 3)}
        assert type(resumed.extra["rate"]) is Fraction
        assert resumed.push(3) == op.push(3)

    def test_pipeline_checkpoint(self, tmp_path):
        pipeline = StreamPipeline(
            {"sum": OnlineOperator(sum_scheme()), "mean": OnlineOperator(mean_scheme())}
        )
        pipeline.push_many([1, 2, 3])
        path = tmp_path / "pipe.ck.json"
        save_checkpoint(pipeline, path)
        resumed = load_checkpoint(path)
        assert resumed.snapshot() == pipeline.snapshot()
        assert resumed.push(5) == pipeline.push(5)

    def test_keyed_checkpoint(self, tmp_path):
        events = [(Fraction(i), i % 3) for i in range(30)]
        keyed = KeyedOperator(
            sum_scheme(), key_fn=lambda e: e[1], value_fn=lambda e: e[0]
        )
        keyed.push_many(events[:20])
        path = tmp_path / "keyed.ck.json"
        save_checkpoint(keyed, path)

        resumed = load_checkpoint(
            path, key_fn=lambda e: e[1], value_fn=lambda e: e[0]
        )
        keyed.push_many(events[20:])
        resumed.push_many(events[20:])
        assert resumed.snapshot() == keyed.snapshot()
        assert resumed.count == keyed.count

    def test_string_keys_checkpoint(self, tmp_path):
        # Partition keys are routinely strings (user IDs, category names).
        keyed = KeyedOperator(
            sum_scheme(), key_fn=lambda e: e[1], value_fn=lambda e: e[0]
        )
        keyed.push_many([(1, "alice"), (2, "bob"), (3, "alice")])
        path = tmp_path / "str-keys.ck.json"
        save_checkpoint(keyed, path)
        resumed = load_checkpoint(
            path, key_fn=lambda e: e[1], value_fn=lambda e: e[0]
        )
        assert resumed.snapshot() == {"alice": 4, "bob": 2}

    def test_failed_push_does_not_advance_count(self):
        # An element that blows up mid-step must not be counted as folded,
        # or a later checkpoint would overstate the consumed prefix.
        broken = OnlineScheme(
            (0,), OnlineProgram(("s",), "x", (add("s", "unbound_name"),))
        )
        keyed = KeyedOperator(broken, key_fn=lambda e: 0)
        with pytest.raises(Exception):
            keyed.push(1)
        assert keyed.count == 0

    def test_keyed_restore_requires_key_fn(self, tmp_path):
        keyed = KeyedOperator(sum_scheme(), key_fn=lambda e: 0)
        path = tmp_path / "keyed.ck.json"
        save_checkpoint(keyed, path)
        with pytest.raises(CheckpointError, match="key_fn"):
            load_checkpoint(path)

    def test_key_fn_rejected_for_plain_operator(self, tmp_path):
        op = OnlineOperator(sum_scheme())
        path = tmp_path / "op.ck.json"
        save_checkpoint(op, path)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, key_fn=lambda e: 0)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(kind="repro/unknown"),
            lambda d: d.update(version=99),
            lambda d: d.update(state=[["int", "0"], ["int", "0"], ["int", "0"]]),
            lambda d: d.update(state="zero"),
            lambda d: d.update(count=-1),
            lambda d: d.update(count="many"),
            lambda d: d.update(scheme={"format": "wrong"}),
        ],
    )
    def test_tampered_checkpoints_rejected(self, mutate, tmp_path):
        op = OnlineOperator(mean_scheme())
        op.push_many([1, 2, 3])
        data = op.checkpoint()
        mutate(data)
        path = tmp_path / "bad.ck.json"
        save_checkpoint(data, path)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{nope")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)


class TestSourceSpecs:
    def test_counter(self):
        assert list(sources.from_spec("counter:5")) == [0, 1, 2, 3, 4]

    def test_counter_with_start(self):
        assert list(sources.from_spec("counter:3:10")) == [10, 11, 12]

    def test_list_literal(self):
        values = list(sources.from_spec("list:1,2,5/2"))
        assert values == [1, 2, Fraction(5, 2)]

    def test_bids_are_pairs(self):
        bids = list(sources.from_spec("bids:10"))
        assert len(bids) == 10
        assert all(isinstance(b, tuple) and len(b) == 2 for b in bids)

    @pytest.mark.parametrize("bad", ["nope:3", "list:", "counter:x:y:z:w:v"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            list(sources.from_spec(bad))
