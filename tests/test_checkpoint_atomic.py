"""Atomicity of checkpoint writes: a crash mid-write must leave the
previous complete checkpoint on disk, never a torn file."""

import json
import os

import pytest

from repro.core.scheme import OnlineScheme
from repro.ir.dsl import add
from repro.ir.nodes import OnlineProgram
from repro.runtime import OnlineOperator, load_checkpoint, save_checkpoint
from repro.runtime.checkpoint import atomic_write_text


def sum_scheme() -> OnlineScheme:
    return OnlineScheme((0,), OnlineProgram(("s",), "x", (add("s", "x"),)))


class TestAtomicWriteText:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, '{"v": 1}\n')
        assert path.read_text() == '{"v": 1}\n'
        atomic_write_text(path, '{"v": 2}\n')
        assert path.read_text() == '{"v": 2}\n'

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "out.json", "data\n")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.json"]

    def test_interrupted_write_preserves_previous_contents(self, tmp_path, monkeypatch):
        # Simulate a crash partway through the new write: the replace never
        # happens, so the previous complete file must survive untouched.
        path = tmp_path / "ck.json"
        atomic_write_text(path, "previous complete checkpoint\n")

        real_fsync = os.fsync

        def exploding_fsync(fd):
            real_fsync(fd)
            raise OSError("disk gone")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="disk gone"):
            atomic_write_text(path, "torn")
        monkeypatch.undo()
        assert path.read_text() == "previous complete checkpoint\n"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ck.json"]

    def test_interrupted_first_write_leaves_nothing(self, tmp_path, monkeypatch):
        path = tmp_path / "ck.json"
        monkeypatch.setattr(os, "fsync", lambda fd: (_ for _ in ()).throw(OSError("x")))
        with pytest.raises(OSError):
            atomic_write_text(path, "torn")
        monkeypatch.undo()
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_fsyncs_containing_directory_after_replace(self, tmp_path, monkeypatch):
        # The rename itself must be made durable: without fsyncing the
        # directory, a power cut after os.replace can forget the new entry.
        import stat

        real_fsync = os.fsync
        synced_dirs = []

        def recording_fsync(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                synced_dirs.append(fd)
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        atomic_write_text(tmp_path / "out.json", "data\n")
        monkeypatch.undo()
        assert synced_dirs, "atomic_write_text never fsynced the directory"

    def test_directory_fsync_failure_is_not_fatal(self, tmp_path, monkeypatch):
        # Some filesystems refuse fsync on a directory fd; the write (which
        # already completed atomically) must not be reported as failed.
        from repro.runtime import checkpoint as ckpt_mod

        monkeypatch.setattr(
            ckpt_mod.os, "open",
            lambda *a, **k: (_ for _ in ()).throw(OSError("no dir fds here")),
        )
        path = tmp_path / "out.json"
        atomic_write_text(path, "data\n")
        monkeypatch.undo()
        assert path.read_text() == "data\n"


class TestSaveCheckpointAtomicity:
    def test_torn_save_keeps_previous_checkpoint_loadable(self, tmp_path, monkeypatch):
        path = tmp_path / "op.json"
        op = OnlineOperator(sum_scheme())
        op.push_many([1, 2, 3])
        save_checkpoint(op, path)

        op.push_many([4, 5])
        monkeypatch.setattr(os, "replace", lambda a, b: (_ for _ in ()).throw(OSError("crash")))
        with pytest.raises(OSError):
            save_checkpoint(op, path)
        monkeypatch.undo()

        restored = load_checkpoint(path)  # the old file, complete and valid
        assert restored.count == 3
        assert restored.state == (6,)

    def test_save_accepts_ready_made_dicts(self, tmp_path):
        # The serve worker merges/relays checkpoint dicts; save_checkpoint
        # must write them unchanged.
        op = OnlineOperator(sum_scheme())
        op.push_many([2, 2])
        path = tmp_path / "dict.json"
        save_checkpoint(op.checkpoint(), path)
        assert json.loads(path.read_text())["count"] == 2
        assert load_checkpoint(path).state == (4,)
