"""Property-based tests: the axiom rewriter and the unroller are
semantics-preserving transformations.

These are the load-bearing invariants behind FindImplicate and
MineExpressions — if either transformation changed meaning, the whole
pipeline would quietly synthesize wrong programs that only the testing
oracle might catch.
"""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.axioms import push_snoc
from repro.core.unroll import unroll_on_elements
from repro.ir.dsl import (
    XS,
    add,
    div,
    ffilter,
    fmap,
    fold,
    fold_sum,
    gt,
    lam,
    length,
    mul,
    powi,
    sub,
)
from repro.ir.evaluator import evaluate
from repro.ir.nodes import Expr, Snoc, Var

small_fracs = st.fractions(min_value=-10, max_value=10, max_denominator=4)
small_lists = st.lists(small_fracs, max_size=6)

#: Offline expressions over ``xs`` covering each axiom of Figure 10.
SNOC_EXPRS: list[Expr] = [
    fold_sum(Snoc(XS, Var("x"))),
    length(Snoc(XS, Var("x"))),
    fold(lam("a", "v", mul("a", "v")), 1, Snoc(XS, Var("x"))),
    fold_sum(fmap(lam("v", powi("v", 2)), Snoc(XS, Var("x")))),
    length(ffilter(lam("v", gt("v", 0)), Snoc(XS, Var("x")))),
    fold(
        lam("a", "v", add("a", powi("v", 2))),
        0,
        ffilter(lam("v", gt("v", 0)), Snoc(XS, Var("x"))),
    ),
    div(fold_sum(Snoc(XS, Var("x"))), length(Snoc(XS, Var("x")))),
    fold(
        lam(
            "acc",
            "v",
            add(
                "acc",
                powi(
                    sub(
                        "v",
                        div(
                            fold_sum(Snoc(XS, Var("x"))),
                            length(Snoc(XS, Var("x"))),
                        ),
                    ),
                    2,
                ),
            ),
        ),
        0,
        Snoc(XS, Var("x")),
    ),
]


class TestPushSnocPreservesSemantics:
    @settings(max_examples=30, deadline=None)
    @given(xs=small_lists, x=small_fracs)
    def test_all_axiom_shapes(self, xs, x):
        env = {"xs": list(xs), "x": x}
        for expr in SNOC_EXPRS:
            before = evaluate(expr, env)
            after = evaluate(push_snoc(expr), env)
            assert before == after, expr

    @settings(max_examples=30, deadline=None)
    @given(xs=small_lists, x=small_fracs)
    def test_rewrite_removes_all_snocs_under_combinators(self, xs, x):
        from repro.ir.nodes import Filter, Fold, Map
        from repro.ir.traversal import iter_subexprs

        for expr in SNOC_EXPRS:
            rewritten = push_snoc(expr)
            for node in iter_subexprs(rewritten):
                if isinstance(node, (Fold, Map, Filter)):
                    assert not isinstance(node.lst, Snoc)


#: Unrollable offline expressions (no filter — element-dependent branching).
UNROLL_EXPRS: list[Expr] = [
    fold_sum(XS),
    length(XS),
    div(fold_sum(XS), length(XS)),
    fold(lam("a", "v", mul("a", "v")), 1, XS),
    fold_sum(fmap(lam("v", powi("v", 2)), XS)),
    fold(
        lam(
            "acc",
            "v",
            add("acc", powi(sub("v", div(fold_sum(XS), length(XS))), 2)),
        ),
        0,
        XS,
    ),
]


class TestUnrollPreservesSemantics:
    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(small_fracs, min_size=3, max_size=3),
    )
    def test_unroll_at_depth_3(self, values):
        env_concrete = {"xs": list(values)}
        env_symbolic = {f"_e{i + 1}": v for i, v in enumerate(values)}
        for expr in UNROLL_EXPRS:
            expected = evaluate(expr, env_concrete)
            unrolled = unroll_on_elements(expr, "xs", 3)
            assert evaluate(unrolled, env_symbolic) == expected, expr

    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(small_fracs, min_size=1, max_size=5),
    )
    def test_unroll_any_depth(self, values):
        k = len(values)
        env_concrete = {"xs": list(values)}
        env_symbolic = {f"_e{i + 1}": v for i, v in enumerate(values)}
        expr = div(fold_sum(XS), length(XS))
        unrolled = unroll_on_elements(expr, "xs", k)
        assert evaluate(unrolled, env_symbolic) == evaluate(expr, env_concrete)
