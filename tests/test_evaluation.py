"""Tests for the evaluation harness: runner, tables, CDFs."""

import math

from repro.baselines import OperaFull
from repro.core import SynthesisConfig
from repro.core.report import SynthesisReport
from repro.evaluation import (
    ascii_cdf,
    cdf_series,
    default_timeout,
    qualitative,
    run_matrix,
    run_suite,
    table1,
    table2,
)
from repro.evaluation.runner import SuiteResult
from repro.suites import all_benchmarks, get_benchmark


def small_suite():
    return [get_benchmark(n) for n in ("sum", "mean", "max")]


class TestRunner:
    def test_run_suite_collects_all(self):
        result = run_suite(OperaFull(), small_suite(), SynthesisConfig(timeout_s=20))
        assert set(result.reports) == {"sum", "mean", "max"}
        assert result.percent_solved() == 100.0

    def test_element_arity_propagated(self):
        bench = get_benchmark("weighted_mean")
        result = run_suite(OperaFull(), [bench], SynthesisConfig(timeout_s=30))
        assert result.reports["weighted_mean"].success

    def test_run_matrix_keys(self):
        matrix = run_matrix([OperaFull()], small_suite(), SynthesisConfig(timeout_s=20))
        assert set(matrix) == {"opera"}

    def test_average_time_nan_when_empty(self):
        result = SuiteResult(solver="none")
        assert math.isnan(result.average_time())

    def test_default_timeout_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "42.5")
        assert default_timeout() == 42.5
        monkeypatch.delenv("REPRO_BENCH_TIMEOUT")
        assert default_timeout(7.0) == 7.0


class TestTables:
    def test_table1_contains_domains(self):
        text = table1(all_benchmarks())
        assert "Stats" in text and "Auction" in text

    def test_table2_renders_matrix(self):
        suite = SuiteResult(solver="opera")
        suite.reports["sum"] = SynthesisReport("sum", True, 0.1)
        text = table2({"opera": {"stats": suite}})
        assert "opera" in text
        assert "100%" in text

    def test_qualitative_counts(self):
        suite = run_suite(OperaFull(), small_suite(), SynthesisConfig(timeout_s=20))
        text = qualitative(small_suite(), suite)
        assert "solved tasks" in text


class TestCdf:
    def _suite(self, times):
        suite = SuiteResult(solver="s")
        for i, t in enumerate(times):
            suite.reports[f"t{i}"] = SynthesisReport(f"t{i}", True, t)
        return suite

    def test_series_is_cumulative(self):
        series = cdf_series(self._suite([1.0, 2.0, 3.0]))
        assert [t for t, _ in series] == [1.0, 3.0, 6.0]
        assert series[-1][1] == 100.0

    def test_series_accounts_for_failures(self):
        suite = self._suite([1.0])
        suite.reports["fail"] = SynthesisReport("fail", False, 5.0)
        series = cdf_series(suite)
        assert series[-1][1] == 50.0

    def test_empty_suite(self):
        assert cdf_series(SuiteResult(solver="e")) == []

    def test_ascii_render(self):
        plot = ascii_cdf({"a": self._suite([0.5, 1.0]), "b": self._suite([2.0])})
        assert "o a" in plot and "x b" in plot
        assert "100%" in plot


class TestExport:
    def _matrix(self):
        suite = SuiteResult(solver="opera")
        suite.reports["sum"] = SynthesisReport("sum", True, 0.25)
        suite.reports["kurtosis"] = SynthesisReport(
            "kurtosis", False, 5.0, failure_reason="SynthesisTimeout: budget"
        )
        return {"opera": suite}

    def test_records(self):
        from repro.evaluation import suite_to_records

        records = suite_to_records(self._matrix()["opera"])
        by_task = {r["task"]: r for r in records}
        assert by_task["sum"]["success"] is True
        assert by_task["kurtosis"]["failure_reason"].startswith("SynthesisTimeout")

    def test_json_roundtrip(self):
        import json

        from repro.evaluation import matrix_to_json

        payload = json.loads(matrix_to_json(self._matrix()))
        assert payload["opera"]["percent_solved"] == 50.0
        assert len(payload["opera"]["tasks"]) == 2

    def test_csv_shape(self):
        from repro.evaluation import matrix_to_csv

        lines = matrix_to_csv(self._matrix()).strip().splitlines()
        assert lines[0].startswith("solver,task,")
        assert len(lines) == 3

    def test_write_artifacts(self, tmp_path):
        from repro.evaluation import write_artifacts

        jp, cp = tmp_path / "m.json", tmp_path / "m.csv"
        write_artifacts(self._matrix(), str(jp), str(cp))
        assert jp.exists() and cp.exists()
