"""Differential tests: the codegen backend vs the definitional interpreter.

The compiled execution paths of :mod:`repro.ir.compile` claim bit-for-bit
equivalence with :mod:`repro.ir.evaluator` over exact rationals — same
values, same Python types (``int`` vs ``Fraction`` vs ``bool``), same
exception classes on ill-formed input.  These tests enforce the claim on:

* every ground-truth scheme of the suite, over adversarial streams (zeros
  for safe-division, denominator-1 fractions for normalization, negatives,
  int/Fraction mixes);
* serialize -> load round-tripped schemes and keyed/checkpoint-resume runs;
* hundreds of randomly enumerated candidate expressions per seed (the
  population the equivalence oracle compiles);
* the error contract (holes, unbound names, arity mismatches, projections);
* the arithmetic fast-path helpers against the registry impls, including
  the big-number float-degrade boundary.
"""

from __future__ import annotations

import pickle
import random
from fractions import Fraction

import pytest

from repro.core import SynthesisConfig
from repro.core.equivalence import check_expr_equivalence
from repro.core.rfs import RFS
from repro.core.scheme import OnlineScheme
from repro.ir.compile import (
    IRCompileError,
    _fast_add,
    _fast_div,
    _fast_mul,
    _fast_neg,
    _fast_sub,
    compile_expr,
    compile_online_step,
    jit_enabled,
)
from repro.ir.builtins import get_builtin
from repro.ir.evaluator import EvaluationError, evaluate, step_online
from repro.ir.nodes import (
    Call,
    Const,
    Hole,
    If,
    Lambda,
    ListVar,
    MakeTuple,
    Map,
    OnlineProgram,
    Proj,
    Var,
)
from repro.runtime import KeyedOperator, OnlineOperator
from repro.runtime.checkpoint import restore_keyed
from repro.suites import all_benchmarks, get_benchmark

#: Exception classes the oracle treats as a failing candidate; "raises
#: equivalently" means both backends raise the same class from this set.
ORACLE_ERRORS = (EvaluationError, ArithmeticError, TypeError, ValueError)


def assert_same_value(a, b, where=""):
    """Bit-for-bit: equal values of identical Python types, recursively."""
    assert type(a) is type(b), f"{where}: {type(a).__name__} != {type(b).__name__} ({a!r} vs {b!r})"
    if isinstance(a, (tuple, list)):
        assert len(a) == len(b), f"{where}: {a!r} vs {b!r}"
        for i, (x, y) in enumerate(zip(a, b)):
            assert_same_value(x, y, f"{where}[{i}]")
    elif isinstance(a, float) and a != a:  # nan: both backends produced one
        assert b != b, f"{where}: nan vs {b!r}"
    else:
        assert a == b, f"{where}: {a!r} != {b!r}"


def adversarial_stream(arity: int, seed: str, n: int = 60):
    """Zeros, negatives, denominator-1 fractions, int/Fraction mixes —
    the values where safe division and normalization actually matter."""
    rng = random.Random(seed)
    pool = [
        0,
        1,
        -1,
        2,
        -3,
        7,
        Fraction(0),
        Fraction(1, 3),
        Fraction(-2, 5),
        Fraction(6, 3),  # normalizes to int through arithmetic
        Fraction(22, 7),
        Fraction(-9, 4),
    ]
    if arity <= 1:
        return [rng.choice(pool) for _ in range(n)]
    return [
        (rng.choice(pool), rng.choice((0, 1, 2, Fraction(1), Fraction(3))))
        for _ in range(n)
    ]


def run_differential(scheme, stream, extra):
    """Step the compiled and interpreted backends side by side."""
    compiled = scheme.compiled_step()
    interp = scheme.interpreted_step
    s_c = s_i = scheme.initializer
    for i, element in enumerate(stream):
        s_i = interp(s_i, element, extra)
        s_c = compiled(s_c, element, extra)
        assert_same_value(s_i, s_c, f"step {i}")
    return s_i


class TestGroundTruthSchemes:
    def test_every_ground_truth_differential(self):
        for bench in all_benchmarks():
            scheme = bench.ground_truth
            stream = adversarial_stream(bench.element_arity, bench.name)
            extra = {
                name: value
                for name, value in zip(
                    scheme.program.extra_params,
                    (2, Fraction(1, 2), 0, -3) * 4,
                )
            }
            run_differential(scheme, stream, extra)

    def test_safe_division_edge_cases(self):
        # mean's first step divides by the zero-initialized count; harmonic
        # mean divides by sums that pass through zero on 1, -1 inputs.
        for name in ("mean", "harmonic_mean", "cv", "q_hit_rate"):
            bench = get_benchmark(name)
            stream = [0, 0, 1, -1, Fraction(1, 2), Fraction(-1, 2), 0][: 7]
            if bench.element_arity == 2:
                stream = [(v, 1) for v in stream]
            extra = {p: 0 for p in bench.ground_truth.program.extra_params}
            run_differential(bench.ground_truth, stream, extra)

    def test_scheme_step_uses_compiled_by_default(self):
        scheme = get_benchmark("variance").ground_truth
        if jit_enabled():
            assert scheme._resolve_step() is scheme.compiled_step()

    def test_run_and_final_match_interpreter(self, monkeypatch):
        scheme = get_benchmark("variance").ground_truth
        stream = adversarial_stream(1, "run")
        monkeypatch.setenv("REPRO_JIT", "0")
        interpreted = scheme.run_to_list(stream)
        monkeypatch.setenv("REPRO_JIT", "1")
        compiled = scheme.run_to_list(stream)
        assert_same_value(interpreted, compiled, "run_to_list")
        assert_same_value(
            scheme.final(stream),
            interpreted[-1],
            "final",
        )


class TestRoundTripAndPickle:
    def test_serialized_scheme_compiles_identically(self):
        for name in ("variance", "skewness", "q_category_max", "q_avg_converted"):
            bench = get_benchmark(name)
            original = bench.ground_truth
            loaded = OnlineScheme.loads(original.dumps())
            assert loaded._compiled_step is None  # cold cache on a new object
            stream = adversarial_stream(bench.element_arity, f"rt:{name}")
            extra = {p: 3 for p in original.program.extra_params}
            expected = run_differential(original, stream, extra)
            got = run_differential(loaded, stream, extra)
            assert_same_value(expected, got, name)

    def test_pickle_drops_compiled_closure(self):
        scheme = get_benchmark("variance").ground_truth
        scheme.compiled_step()  # warm the cache
        clone = pickle.loads(pickle.dumps(scheme))
        assert clone._compiled_step is None
        assert clone == scheme
        # and the clone compiles freshly to the same behaviour
        stream = adversarial_stream(1, "pickle")
        assert_same_value(
            run_differential(scheme, stream, {}),
            run_differential(clone, stream, {}),
            "pickled clone",
        )


class TestRuntimeOperators:
    def test_operator_jit_flag_is_bit_for_bit(self):
        scheme = get_benchmark("variance").ground_truth
        stream = adversarial_stream(1, "op")
        fast = OnlineOperator(scheme)
        slow = OnlineOperator(scheme, jit=False)
        assert slow._step == scheme.interpreted_step
        for x in stream:
            assert_same_value(fast.push(x), slow.push(x), "push")
        assert_same_value(fast.state, slow.state, "state")
        assert fast.count == slow.count

    def test_fork_preserves_jit_choice(self):
        scheme = get_benchmark("variance").ground_truth
        clone = OnlineOperator(scheme, jit=False).fork()
        assert clone._step == scheme.interpreted_step
        assert OnlineOperator(scheme).fork()._step is scheme.compiled_step()

    def test_push_many_commits_partial_progress_on_error(self):
        scheme = get_benchmark("sum").ground_truth
        op = OnlineOperator(scheme)
        with pytest.raises(TypeError):
            op.push_many([1, 2, (3, 4), 5])  # tuple: numeric op on non-number
        assert op.count == 2
        assert op.value == 3

    def test_keyed_checkpoint_resume_differential(self, monkeypatch):
        bench = get_benchmark("q_category_max")
        scheme = bench.ground_truth
        stream = adversarial_stream(2, "keyed", n=80)
        key_fn = lambda e: e[1]  # noqa: E731
        extra = {p: 2 for p in scheme.program.extra_params}

        def full_run(jit_env):
            monkeypatch.setenv("REPRO_JIT", jit_env)
            op = KeyedOperator(scheme, key_fn, extra=extra)
            op.push_many(stream)
            return op.snapshot()

        def interrupted_run():
            monkeypatch.setenv("REPRO_JIT", "1")
            op = KeyedOperator(scheme, key_fn, extra=extra)
            op.push_many(stream[:37])
            resumed = restore_keyed(op.checkpoint(), key_fn)
            resumed.push_many(stream[37:])
            return resumed.snapshot()

        compiled, interpreted, resumed = full_run("1"), full_run("0"), interrupted_run()
        assert list(compiled) == list(interpreted) == list(resumed)
        for key in compiled:
            assert_same_value(compiled[key], interpreted[key], f"key {key!r}")
            assert_same_value(compiled[key], resumed[key], f"resumed key {key!r}")


# -- randomly enumerated candidates ------------------------------------------

_BINOPS = ("add", "sub", "mul", "div", "min", "max", "pow")
_UNOPS = ("neg", "abs", "sqrt", "not", "sign")
_PREDICATES = ("lt", "le", "gt", "ge", "eq", "ne", "and", "or")


def random_candidate(rng: random.Random, names, depth: int):
    """Random expressions over the online-candidate grammar (the population
    ``check_expr_equivalence`` compiles: no lambdas, no combinators)."""
    if depth <= 0 or rng.random() < 0.3:
        roll = rng.random()
        if roll < 0.55:
            return Var(rng.choice(names))
        if roll < 0.8:
            return Const(rng.choice((0, 1, 2, -1, 3)))
        if roll < 0.95:
            return Const(rng.choice((Fraction(1, 2), Fraction(-2, 3), Fraction(5, 1))))
        return Const(rng.choice((True, False)))
    roll = rng.random()
    sub = lambda: random_candidate(rng, names, depth - 1)  # noqa: E731
    if roll < 0.45:
        return Call(rng.choice(_BINOPS), (sub(), sub()))
    if roll < 0.6:
        return Call(rng.choice(_UNOPS), (sub(),))
    if roll < 0.75:
        return If(Call(rng.choice(_PREDICATES), (sub(), sub())), sub(), sub())
    if roll < 0.85:
        return MakeTuple((sub(), sub()))
    return Proj(sub(), rng.randint(0, 2))


def random_env(rng: random.Random, names):
    pool = (0, 1, -2, Fraction(1, 3), Fraction(-7, 2), Fraction(4, 2), (1, 2), True)
    return {name: rng.choice(pool) for name in names}


@pytest.mark.parametrize("seed", [2024, 2025, 2026])
def test_random_candidates_differential(seed):
    """>= 200 random candidates per seed: compiled evaluation must produce
    the same value (type included) or raise the same exception class as the
    interpreter on every environment."""
    rng = random.Random(seed)
    names = ("y1", "y2", "x")
    envs = [random_env(rng, names) for _ in range(8)]
    checked = 0
    while checked < 200:
        expr = random_candidate(rng, names, rng.randint(1, 4))
        fn = compile_expr(expr, names, name=f"candidate:{seed}:{checked}")
        for env in envs:
            args = [env[n] for n in names]
            try:
                expected = evaluate(expr, env)
                raised = None
            except ORACLE_ERRORS as exc:
                raised = type(exc)
            if raised is None:
                got = fn(*args)
                assert_same_value(expected, got, f"seed {seed} #{checked}")
            else:
                with pytest.raises(raised):
                    fn(*args)
        checked += 1


def test_oracle_agrees_with_and_without_jit(monkeypatch):
    """check_expr_equivalence must accept/reject identically either way."""
    rfs = RFS(entries={"s": Call("length", (ListVar("xs"),))}, list_param="xs")
    config = SynthesisConfig(timeout_s=10)
    good = Call("add", (Var("s"), Const(1)))  # len(xs ++ [x]) == s + 1
    bad = Call("add", (Var("s"), Var("x")))
    spec = Call("length", (ListVar("xs"),))
    results = {}
    for env_value in ("1", "0"):
        monkeypatch.setenv("REPRO_JIT", env_value)
        results[env_value] = (
            check_expr_equivalence(spec, good, rfs, config),
            check_expr_equivalence(spec, bad, rfs, config),
        )
    assert results["1"] == results["0"]
    assert results["1"][0] is True
    assert results["1"][1] is False


# -- the error contract -------------------------------------------------------


class TestErrorContract:
    def test_hole_fails_at_compile_time(self):
        with pytest.raises(IRCompileError):
            compile_expr(Call("add", (Hole(0), Const(1))), ("x",))
        program = OnlineProgram(("y",), "x", (Hole(0),))
        with pytest.raises(IRCompileError):
            compile_online_step(program)
        # ...and the scheme transparently falls back to the interpreter,
        # which raises exactly as it always did.
        scheme = OnlineScheme((0,), program)
        assert scheme._resolve_step() == scheme.interpreted_step
        with pytest.raises(EvaluationError):
            scheme.step((0,), 1)

    def test_unbound_variable_fails_at_compile_time(self):
        with pytest.raises(IRCompileError):
            compile_expr(Var("nope"), ("x",))

    def test_state_arity_mismatch(self):
        scheme = get_benchmark("variance").ground_truth
        with pytest.raises(EvaluationError):
            scheme.compiled_step()((1, 2), 3)
        with pytest.raises(EvaluationError):
            scheme.interpreted_step((1, 2), 3)

    def test_extra_used_only_in_untaken_branch(self):
        """An extra referenced only inside a never-taken If branch must not
        be required eagerly: the interpreter only looks names up when the
        branch runs, and compiled steps must match (fetch-at-use-site)."""
        program = OnlineProgram(
            ("s",),
            "x",
            (
                If(
                    Call("gt", (Var("x"), Const(0))),
                    Call("add", (Var("s"), Var("x"))),
                    Var("opt"),  # only reachable when x <= 0
                ),
            ),
        )
        compiled = compile_online_step(program)
        # x > 0: both backends succeed without the binding
        assert_same_value(
            step_online(program, (0,), 5, {}), compiled((0,), 5, {}), "taken"
        )
        assert_same_value(
            step_online(program, (0,), 5, None), compiled((0,), 5, None), "none"
        )
        # x <= 0: both raise; with the binding, both use it
        with pytest.raises(EvaluationError):
            compiled((0,), -1, {})
        with pytest.raises(EvaluationError):
            step_online(program, (0,), -1, {})
        assert_same_value(
            step_online(program, (0,), -1, {"opt": Fraction(1, 2)}),
            compiled((0,), -1, {"opt": Fraction(1, 2)}),
            "bound branch",
        )

    def test_missing_extra_binding(self):
        bench = get_benchmark("count_above")  # needs extra param 't'
        scheme = bench.ground_truth
        for step in (scheme.compiled_step(), scheme.interpreted_step):
            with pytest.raises(EvaluationError):
                step(scheme.initializer, 1, {})
            with pytest.raises(EvaluationError):
                step(scheme.initializer, 1, None)

    def test_lambda_arity_mismatch_inside_map(self):
        two_arg = Lambda(("a", "b"), Call("add", (Var("a"), Var("b"))))
        expr = Map(two_arg, Var("xs"))
        fn = compile_expr(expr, ("xs",))
        assert fn([]) == []  # empty list: the closure is never invoked
        with pytest.raises(EvaluationError):
            fn([1, 2])
        with pytest.raises(EvaluationError):
            evaluate(expr, {"xs": [1, 2]})

    def test_direct_call_arity_mismatch(self):
        expr = Call(Lambda(("a",), Var("a")), (Const(1), Const(2)))
        fn = compile_expr(expr, ())
        with pytest.raises(EvaluationError):
            fn()
        with pytest.raises(EvaluationError):
            evaluate(expr, {})

    def test_projection_errors(self):
        expr = Proj(Var("x"), 5)
        fn = compile_expr(expr, ("x",))
        for value in (3, (1, 2)):
            with pytest.raises(EvaluationError):
                fn(value)
            with pytest.raises(EvaluationError):
                evaluate(expr, {"x": value})

    def test_numeric_op_on_non_numbers(self):
        expr = Call("add", (Var("x"), Var("y")))
        fn = compile_expr(expr, ("x", "y"))
        with pytest.raises(TypeError):
            fn((1, 2), (3, 4))  # tuple + tuple must not concatenate
        with pytest.raises(TypeError):
            evaluate(expr, {"x": (1, 2), "y": (3, 4)})

    def test_unknown_builtin_fails_at_compile_time(self):
        with pytest.raises(IRCompileError):
            compile_expr(Call("frobnicate", (Var("x"),)), ("x",))


# -- fast-path helpers vs registry impls --------------------------------------

_GRID = (
    0,
    1,
    -1,
    2,
    -7,
    10**6,
    True,
    False,
    Fraction(1, 3),
    Fraction(-2, 5),
    Fraction(7, 1),
    Fraction(0, 3),
    0.5,
    -2.25,
    float("inf"),
)


@pytest.mark.parametrize(
    "fast,name",
    [
        (_fast_add, "add"),
        (_fast_sub, "sub"),
        (_fast_mul, "mul"),
        (_fast_div, "div"),
    ],
)
def test_fast_binary_ops_match_registry(fast, name):
    impl = get_builtin(name).impl
    for a in _GRID:
        for b in _GRID:
            try:
                expected = impl(a, b)
                raised = None
            except ORACLE_ERRORS as exc:
                expected, raised = None, type(exc)
            if raised is None:
                assert_same_value(expected, fast(a, b), f"{name}({a!r}, {b!r})")
            else:
                with pytest.raises(raised):
                    fast(a, b)


def test_fast_neg_matches_registry():
    impl = get_builtin("neg").impl
    for a in _GRID:
        if isinstance(a, bool):
            continue  # -True is 'defined' by Python; impl and fast agree anyway
        assert_same_value(impl(a), _fast_neg(a), f"neg({a!r})")


def test_fast_ops_respect_big_number_degrade():
    """Past a combined 2**20 bits the registry wrapper degrades to floats;
    the fast paths must take the same route (via the wrapper fallback)."""
    impl = get_builtin("mul").impl
    big = 1 << (1 << 20)
    assert_same_value(impl(big, big), _fast_mul(big, big), "mul(big, big)")
    assert_same_value(impl(big, 3), _fast_mul(big, 3), "mul(big, 3)")
    huge_frac = Fraction(big, 7)
    assert_same_value(
        impl(huge_frac, Fraction(1, 3)),
        _fast_mul(huge_frac, Fraction(1, 3)),
        "mul(huge_frac, 1/3)",
    )


def test_fast_div_safe_conventions():
    assert _fast_div(5, 0) == 0
    assert _fast_div(Fraction(1, 2), 0) == 0
    assert _fast_div(Fraction(1, 2), Fraction(0, 3)) == 0
    assert_same_value(_fast_div(1, 3), Fraction(1, 3), "1/3")
    assert_same_value(_fast_div(6, 3), 2, "6/3 normalizes to int")
    assert_same_value(_fast_div(Fraction(1, 2), -2), Fraction(-1, 4), "sign")
