"""Tests for the atom table (opaque-subterm interning)."""

from repro.algebra.atoms import AtomTable
from repro.algebra.ratfunc import RatFunc

X = RatFunc.var("x")
Y = RatFunc.var("y")
Z = RatFunc.var("z")


class TestInterning:
    def test_same_structure_same_atom(self):
        t = AtomTable()
        a1 = t.intern("min", (X, Y))
        a2 = t.intern("min", (X, Y))
        assert a1 == a2
        assert len(t) == 1

    def test_different_args_different_atoms(self):
        t = AtomTable()
        assert t.intern("min", (X, Y)) != t.intern("min", (X, Z))

    def test_different_ops_different_atoms(self):
        t = AtomTable()
        assert t.intern("min", (X, Y)) != t.intern("max", (X, Y))

    def test_meta_distinguishes(self):
        t = AtomTable()
        assert t.intern("proj", (X,), 0) != t.intern("proj", (X,), 1)

    def test_atom_var_naming(self):
        t = AtomTable()
        name = t.intern("sqrt", (X,))
        assert t.is_atom_var(name)
        assert not t.is_atom_var("x")

    def test_lookup(self):
        t = AtomTable()
        name = t.intern("sqrt", (X + Y,))
        atom = t.lookup(name)
        assert atom.op == "sqrt"
        assert atom.args[0] == X + Y


class TestBaseVariables:
    def test_flat(self):
        t = AtomTable()
        name = t.intern("min", (X, Y))
        assert t.base_variables(name) == frozenset({"x", "y"})

    def test_nested(self):
        t = AtomTable()
        inner = t.intern("sqrt", (X,))
        outer = t.intern("min", (RatFunc.var(inner), Y))
        assert t.base_variables(outer) == frozenset({"x", "y"})

    def test_term_base_variables(self):
        t = AtomTable()
        atom = t.intern("sqrt", (X,))
        term = RatFunc.var(atom) + Z
        assert t.term_base_variables(term) == frozenset({"x", "z"})


class TestSubstitution:
    def test_plain_variable(self):
        t = AtomTable()
        term = X + 1
        result = t.substitute_term(term, {"x": Y})
        assert result == Y + 1

    def test_substitutes_inside_atom(self):
        t = AtomTable()
        atom = t.intern("min", (X, Y))
        term = RatFunc.var(atom) * 2
        result = t.substitute_term(term, {"x": Z + 1})
        (new_atom,) = [v for v in result.variables() if t.is_atom_var(v)]
        assert t.lookup(new_atom).args[0] == Z + 1

    def test_nested_atom_substitution(self):
        t = AtomTable()
        inner = t.intern("sqrt", (X,))
        outer = t.intern("min", (RatFunc.var(inner), Y))
        term = RatFunc.var(outer)
        result = t.substitute_term(term, {"x": Z})
        (new_outer,) = [v for v in result.variables() if t.is_atom_var(v)]
        new_inner_term = t.lookup(new_outer).args[0]
        (new_inner,) = [
            v for v in new_inner_term.variables() if t.is_atom_var(v)
        ]
        assert t.lookup(new_inner).args[0] == Z

    def test_untouched_atom_preserved(self):
        t = AtomTable()
        atom = t.intern("min", (Y, Z))
        term = RatFunc.var(atom) + X
        result = t.substitute_term(term, {"x": RatFunc.const(3)})
        assert atom in result.variables()

    def test_rebuild_interns_consistently(self):
        # Substituting the same thing twice must give the same atom name.
        t = AtomTable()
        atom = t.intern("min", (X, Y))
        r1 = t.substitute_term(RatFunc.var(atom), {"x": Z})
        r2 = t.substitute_term(RatFunc.var(atom), {"x": Z})
        assert r1 == r2

    def test_atoms_in(self):
        t = AtomTable()
        inner = t.intern("sqrt", (X,))
        outer = t.intern("min", (RatFunc.var(inner), Y))
        found = t.atoms_in(RatFunc.var(outer))
        assert found == frozenset({inner, outer})
