"""Tests for the symbolic synthesis machinery: encoding, implicates,
unrolling, mining, power-sum rewriting and template solving."""

from fractions import Fraction

from repro.algebra.polynomial import Poly
from repro.algebra.symmetric import psum_name, rewrite_symmetric
from repro.core import (
    SynthesisConfig,
    check_expr_equivalence,
    construct_rfs,
)
from repro.core.encode import EncodingContext, decode_term, encode_expr, replace_list_exprs
from repro.core.implicate import find_implicate, find_implicates
from repro.core.mining import mine_expressions
from repro.core.templates import solve_template, templatize
from repro.core.unroll import UnrollFailure, unroll, unroll_on_elements
from repro.ir.dsl import (
    XS,
    add,
    div,
    ffilter,
    fold,
    fold_sum,
    gt,
    ite,
    lam,
    length,
    maximum,
    minimum,
    mul,
    powi,
    program,
    proj,
    sub,
    tup,
)
from repro.ir.nodes import Const, If, MakeTuple, Var
from repro.ir.pretty import pretty


def cfg(**kw) -> SynthesisConfig:
    config = SynthesisConfig(**kw)
    config.start_clock()
    return config


class TestEncodeDecode:
    def test_arithmetic_roundtrip(self):
        ctx = EncodingContext()
        expr = add(mul("a", "a"), div("b", 2))
        term = encode_expr(expr, ctx)
        decoded = decode_term(term, ctx)
        # Semantically equal (2a^2 + b) / 2
        env = {"a": Fraction(3), "b": Fraction(4)}
        from repro.ir.evaluator import evaluate

        assert evaluate(decoded, env) == evaluate(expr, env)

    def test_min_becomes_atom(self):
        ctx = EncodingContext()
        term = encode_expr(minimum("a", "b"), ctx)
        assert len(ctx.table) == 1
        assert decode_term(term, ctx) == minimum("a", "b")

    def test_conditional_becomes_atom(self):
        ctx = EncodingContext()
        expr = ite(gt("a", 0), "a", 0)
        term = encode_expr(expr, ctx)
        decoded = decode_term(term, ctx)
        assert isinstance(decoded, If)

    def test_tuple_projection_roundtrip(self):
        ctx = EncodingContext()
        expr = proj(tup("a", "b"), 1)
        decoded = decode_term(encode_expr(expr, ctx), ctx)
        assert decoded == expr

    def test_replace_list_exprs_shares_variables(self):
        ctx = EncodingContext()
        body = div(fold_sum(XS), fold_sum(XS))
        replaced = replace_list_exprs(body, ctx)
        assert len(ctx.list_expr_vars) == 1
        assert replaced == div(Var("_v1"), Var("_v1"))

    def test_pow_integer_is_polynomial(self):
        ctx = EncodingContext()
        term = encode_expr(powi("a", 3), ctx)
        assert len(ctx.table) == 0  # no atoms needed
        assert term.num.degree() == 3


class TestFindImplicate:
    def test_sum_is_example_from_section_2(self):
        rfs = construct_rfs(program(div(fold_sum(XS), length(XS))))
        result = find_implicate(rfs, fold_sum(XS))
        names = {n for n, s in rfs.entries.items() if s == fold_sum(XS)}
        # The expression y_sum + x (possibly reordered).
        assert result is not None
        rendered = pretty(result)
        assert "x" in rendered and any(n in rendered for n in names)

    def test_length_increments(self):
        rfs = construct_rfs(program(div(fold_sum(XS), length(XS))))
        result = find_implicate(rfs, length(XS))
        assert result is not None
        assert check_expr_equivalence(length(XS), result, rfs, cfg())

    def test_min_fold_through_atom(self):
        spec = fold(lam("a", "b", minimum("a", "b")), 10**9, XS)
        rfs = construct_rfs(program(spec))
        result = find_implicate(rfs, spec)
        assert result is not None
        assert check_expr_equivalence(spec, result, rfs, cfg())

    def test_conditional_fold(self):
        spec = fold(lam("a", "v", ite(gt("v", 0), add("a", 1), Var("a"))), 0, XS)
        rfs = construct_rfs(program(spec))
        result = find_implicate(rfs, spec)
        assert result is not None
        assert check_expr_equivalence(spec, result, rfs, cfg())

    def test_tuple_accumulator_fold(self):
        top2 = fold(
            lam(
                "t",
                "v",
                tup(
                    maximum(proj("t", 0), "v"),
                    maximum(proj("t", 1), minimum(proj("t", 0), "v")),
                ),
            ),
            tup(-100, -100),
            XS,
        )
        rfs = construct_rfs(program(proj(top2, 1)))
        result = find_implicate(rfs, top2)
        assert result is not None
        assert isinstance(result, MakeTuple)

    def test_captured_avg_defeats_axioms(self):
        # The sq fold of variance: implicates alone cannot solve it
        # (Example 5.6's "true is not useful" situation).
        avg = div(fold_sum(XS), length(XS))
        sq = fold(lam("acc", "v", add("acc", powi(sub("v", avg), 2))), 0, XS)
        rfs = construct_rfs(program(div(sq, length(XS))))
        candidates = find_implicates(rfs, sq)
        config = cfg()
        assert all(
            not check_expr_equivalence(sq, c, rfs, config) for c in candidates
        )


class TestUnroll:
    def test_fold_unrolls_to_nested_sum(self):
        expr = unroll_on_elements(fold_sum(XS), "xs", 3)
        from repro.ir.evaluator import evaluate

        env = {"_e1": 1, "_e2": 2, "_e3": 3}
        assert evaluate(expr, env) == 6

    def test_length_becomes_constant(self):
        assert unroll_on_elements(length(XS), "xs", 4) == Const(4)

    def test_constant_folding(self):
        expr = unroll_on_elements(add(length(XS), length(XS)), "xs", 2)
        assert expr == Const(4)

    def test_filter_fails(self):
        expr = length(ffilter(lam("v", gt("v", 0)), XS))
        try:
            unroll_on_elements(expr, "xs", 3)
            raised = False
        except UnrollFailure:
            raised = True
        assert raised

    def test_map_unrolls_pointwise(self):
        from repro.ir.dsl import fmap

        expr = fold_sum(fmap(lam("v", mul("v", "v")), XS))
        unrolled = unroll_on_elements(expr, "xs", 2)
        from repro.ir.evaluator import evaluate

        assert evaluate(unrolled, {"_e1": 2, "_e2": 3}) == 13

    def test_captured_list_var_resolves(self):
        avg = div(fold_sum(XS), length(XS))
        sq = fold(lam("acc", "v", add("acc", powi(sub("v", avg), 2))), 0, XS)
        unrolled = unroll_on_elements(sq, "xs", 2)
        from repro.ir.evaluator import evaluate

        # variance numerator of [1, 3]: (1-2)^2 + (3-2)^2 = 2
        assert evaluate(unrolled, {"_e1": 1, "_e2": 3}) == 2


class TestPowerSums:
    def test_p2(self):
        poly = (
            Poly.var("x1", 2) + Poly.var("x2", 2) + Poly.var("x3", 2)
        )
        assert rewrite_symmetric(poly, ["x1", "x2", "x3"]) == Poly.var(psum_name(2))

    def test_square_of_sum(self):
        p = (Poly.var("x1") + Poly.var("x2") + Poly.var("x3")) ** 2
        rewritten = rewrite_symmetric(p, ["x1", "x2", "x3"])
        assert rewritten == Poly.var(psum_name(1)) ** 2

    def test_mixed_with_other_vars(self):
        p = Poly.var("y") * (Poly.var("x1") + Poly.var("x2"))
        rewritten = rewrite_symmetric(p, ["x1", "x2"])
        assert rewritten == Poly.var("y") * Poly.var(psum_name(1))

    def test_asymmetric_fails(self):
        p = Poly.var("x1") * 2 + Poly.var("x2")
        assert rewrite_symmetric(p, ["x1", "x2"]) is None

    def test_elementary_symmetric_e2(self):
        # x1 x2 + x1 x3 + x2 x3 = (p1^2 - p2)/2
        p = (
            Poly.var("x1") * Poly.var("x2")
            + Poly.var("x1") * Poly.var("x3")
            + Poly.var("x2") * Poly.var("x3")
        )
        rewritten = rewrite_symmetric(p, ["x1", "x2", "x3"])
        p1, p2 = Poly.var(psum_name(1)), Poly.var(psum_name(2))
        assert rewritten == (p1 * p1 - p2).scale(Fraction(1, 2))


class TestMiningAndTemplates:
    def _variance_parts(self):
        avg = div(fold_sum(XS), length(XS))
        sq = fold(lam("acc", "v", add("acc", powi(sub("v", avg), 2))), 0, XS)
        prog = program(div(sq, length(XS)))
        return construct_rfs(prog), sq

    def test_variance_sq_mines(self):
        rfs, sq = self._variance_parts()
        mined = mine_expressions(rfs, sq, cfg())
        assert mined is not None
        # The mined term mentions the new element and some accumulators.
        assert "x" in mined.term.variables()

    def test_variance_template_solves(self):
        rfs, sq = self._variance_parts()
        config = cfg()
        mined = mine_expressions(rfs, sq, config)
        template = templatize(mined)
        solved = solve_template(template, rfs, sq, config, salt="test")
        assert solved is not None
        assert check_expr_equivalence(sq, solved, rfs, config)

    def test_template_has_basis_and_hints(self):
        rfs, sq = self._variance_parts()
        mined = mine_expressions(rfs, sq, cfg())
        template = templatize(mined)
        assert template.unknowns == len(template.num_terms) + len(template.den_terms)
        assert len(template.num_hints) == len(template.num_terms)

    def test_filter_spec_does_not_mine(self):
        spec = length(ffilter(lam("v", gt("v", 0)), XS))
        rfs = construct_rfs(program(spec))
        assert mine_expressions(rfs, spec, cfg()) is None
