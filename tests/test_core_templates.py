"""Focused tests for the template machinery (Appendix B)."""

from fractions import Fraction

from repro.core import SynthesisConfig, construct_rfs
from repro.core.mining import mine_expressions
from repro.core.templates import (
    Template,
    _poly_in_n,
    _projective_fits,
    solve_template,
    templatize,
)
from repro.ir.dsl import XS, add, div, fold, fold_sum, lam, length, powi, program, sub
from repro.ir.evaluator import evaluate
from repro.ir.nodes import Const, Var

F = Fraction


def cfg(**kw):
    config = SynthesisConfig(**kw)
    config.start_clock()
    return config


class TestPolyInN:
    def test_constant(self):
        expr = _poly_in_n([F(3)], Var("n"))
        assert evaluate(expr, {"n": 7}) == 3

    def test_linear(self):
        expr = _poly_in_n([F(1), F(2)], Var("n"))
        assert evaluate(expr, {"n": 5}) == 11

    def test_quadratic(self):
        expr = _poly_in_n([F(0), F(1), F(1)], Var("n"))  # n + n^2
        assert evaluate(expr, {"n": 4}) == 20

    def test_zero(self):
        assert _poly_in_n([F(0)], Var("n")) == Const(0)


class TestProjectiveFits:
    def _fit(self, alphas, max_degree=4):
        config = SynthesisConfig(interpolation_max_degree=max_degree)
        lengths = sorted(alphas)
        return list(_projective_fits(alphas, lengths, config))

    def test_recovers_polynomial_vector(self):
        # alpha(l) proportional to (l, l^2) with per-length noise scales.
        alphas = {
            l: [F(l) * F(s), F(l * l) * F(s)]
            for l, s in zip(range(1, 9), (1, 3, 2, 5, 1, 2, 7, 1))
        }
        fits = self._fit(alphas)
        assert fits
        q1, q2 = fits[0]

        def evaluate_poly(coeffs, x):
            total = F(0)
            for c in reversed(coeffs):
                total = total * x + c
            return total

        # The fit is projective: q must be proportional to alpha at every
        # sampled length, i.e. q1(l)·α2(l) == q2(l)·α1(l).
        for length, (a1, a2) in alphas.items():
            v1 = evaluate_poly(q1, F(length))
            v2 = evaluate_poly(q2, F(length))
            assert v1 * a2 == v2 * a1
            assert (v1, v2) != (0, 0)

    def test_integer_normalized(self):
        alphas = {
            l: [F(l, 3), F(2 * l, 3)] for l in range(1, 9)
        }
        fits = self._fit(alphas)
        assert fits
        q1, q2 = fits[0]
        # Cleared denominators: coefficients are integers with gcd 1.
        values = [c for poly in (q1, q2) for c in poly if c != 0]
        assert all(v.denominator == 1 for v in values)

    def test_non_polynomial_relationship_fails(self):
        # alpha2/alpha1 = 2^l cannot be matched by bounded degree.
        alphas = {l: [F(1), F(2**l)] for l in range(1, 10)}
        assert self._fit(alphas, max_degree=3) == []


class TestEndToEndTemplates:
    def test_variance_coefficients_match_example_5_6(self):
        """The solved template instantiates the paper's Example 5.6 pattern:
        sq' = (s² - 2n·sx + n(n+1)·sq + n²·x²) / (n(n+1))."""
        avg = div(fold_sum(XS), length(XS))
        sq = fold(lam("acc", "v", add("acc", powi(sub("v", avg), 2))), 0, XS)
        prog = program(div(sq, length(XS)))
        rfs = construct_rfs(prog)
        config = cfg()
        mined = mine_expressions(rfs, sq, config)
        solved = solve_template(templatize(mined), rfs, sq, config, "t")
        assert solved is not None
        # Check it numerically against the closed form at a concrete point.
        sum_name = rfs.param_for_spec(fold_sum(XS))
        n_name = rfs.length_param
        sq_name = rfs.param_for_spec(sq)
        env = {sum_name: F(10), n_name: F(4), sq_name: F(5), "x": F(2)}
        expected = (
            F(10) ** 2 - 2 * 4 * F(10) * F(2) + 4 * 5 * F(5) + 16 * F(2) ** 2
        ) / (4 * 5)
        assert evaluate(solved, env) == expected

    def test_template_requires_length_param(self):
        template = Template([Var("y1")], [Const(1)], [F(1)], [F(1)])
        rfs = construct_rfs(program(fold_sum(XS)), add_length=False)
        assert rfs.length_param is None
        assert solve_template(template, rfs, fold_sum(XS), cfg(), "x") is None
