"""Node-complete coverage of :mod:`repro.ir.infer`.

``test_ir_infer_values`` exercises the common shapes; this file walks every
``Expr`` node class through ``infer_type`` — including the ones only the
synthesizer internals build (``Hole``, ``Snoc``, sketchy ``Proj`` indices)
— and every ``TypeError_`` path, so a new node class or a changed rule
cannot slip through untyped.
"""

from __future__ import annotations

import pytest

from repro.ir.infer import (
    TypeError_,
    check_well_typed,
    infer_program_type,
    infer_type,
)
from repro.ir.nodes import (
    Call,
    Const,
    Expr,
    Filter,
    Fold,
    Hole,
    If,
    Lambda,
    Let,
    ListVar,
    MakeTuple,
    Map,
    Program,
    Proj,
    Snoc,
    Var,
)
from repro.ir.types import (
    BOOL,
    NUM,
    FunType,
    ListType,
    TupleType,
    TypeEnvironment,
)


class TestEveryNodeClass:
    def test_const(self):
        assert infer_type(Const(3)) is NUM
        assert infer_type(Const(True)) is BOOL
        assert infer_type(Const(False)) is BOOL

    def test_var_defaults_to_num(self):
        assert infer_type(Var("anything")) is NUM

    def test_var_respects_environment(self):
        env = TypeEnvironment({"b": BOOL})
        assert infer_type(Var("b"), env) is BOOL

    def test_list_var(self):
        assert infer_type(ListVar("xs")) == ListType(NUM)
        env = TypeEnvironment({"xs": ListType(BOOL)})
        assert infer_type(ListVar("xs"), env) == ListType(BOOL)

    def test_lambda(self):
        fn = infer_type(Lambda(("a", "b"), Call("add", (Var("a"), Var("b")))))
        assert fn == FunType((NUM, NUM), NUM)

    def test_call_builtin(self):
        assert infer_type(Call("add", (Const(1), Const(2)))) is NUM
        assert infer_type(Call("lt", (Const(1), Const(2)))) is BOOL

    def test_call_lambda_inlines_argument_types(self):
        call = Call(Lambda(("p",), Var("p")), (Const(True),))
        assert infer_type(call) is BOOL

    def test_if_unifies_branches(self):
        same = If(Call("lt", (Var("a"), Var("b"))), Const(1), Const(2))
        assert infer_type(same) is NUM

    def test_map(self):
        m = Map(Lambda(("v",), Call("lt", (Var("v"), Const(0)))), ListVar("xs"))
        assert infer_type(m) == ListType(BOOL)

    def test_filter(self):
        f = Filter(Lambda(("v",), Call("gt", (Var("v"), Const(0)))), ListVar("xs"))
        assert infer_type(f) == ListType(NUM)

    def test_fold(self):
        body = Call("add", (Var("acc"), Var("v")))
        fold = Fold(Lambda(("acc", "v"), body), Const(0), ListVar("xs"))
        assert infer_type(fold) is NUM

    def test_fold_without_binary_lambda_takes_init_type(self):
        fold = Fold(Var("f"), Const(True), ListVar("xs"))
        assert infer_type(fold) is BOOL

    def test_let(self):
        expr = Let("t", Const(True), Var("t"))
        assert infer_type(expr) is BOOL

    def test_snoc(self):
        assert infer_type(Snoc(ListVar("xs"), Const(5))) == ListType(NUM)

    def test_make_tuple(self):
        t = infer_type(MakeTuple((Const(1), Const(True))))
        assert t == TupleType((NUM, BOOL))

    def test_proj_in_range(self):
        tup = MakeTuple((Const(1), Const(True)))
        assert infer_type(Proj(tup, 1)) is BOOL

    def test_proj_out_of_range_defaults_to_num(self):
        tup = MakeTuple((Const(1), Const(True)))
        assert infer_type(Proj(tup, 7)) is NUM
        assert infer_type(Proj(Var("unknown"), 0)) is NUM

    def test_hole(self):
        assert infer_type(Hole(0)) is NUM

    def test_unknown_node_class_is_rejected(self):
        class Mystery(Expr):
            def children(self):
                return ()

        with pytest.raises(TypeError_):
            infer_type(Mystery())


class TestErrorPaths:
    def test_list_into_scalar_builtin(self):
        with pytest.raises(TypeError_):
            infer_type(Call("add", (ListVar("xs"), Const(1))))

    def test_list_typed_condition(self):
        with pytest.raises(TypeError_):
            infer_type(If(ListVar("xs"), Const(1), Const(2)))

    def test_map_over_non_list(self):
        with pytest.raises(TypeError_):
            infer_type(Map(Lambda(("v",), Var("v")), Const(3)))

    def test_filter_over_non_list(self):
        with pytest.raises(TypeError_):
            infer_type(Filter(Lambda(("v",), Var("v")), Const(3)))

    def test_fold_over_non_list(self):
        with pytest.raises(TypeError_):
            infer_type(Fold(Lambda(("a", "b"), Var("a")), Const(0), Const(3)))

    def test_snoc_onto_non_list(self):
        with pytest.raises(TypeError_):
            infer_type(Snoc(Const(1), Const(2)))


class TestProgramLevel:
    def test_infer_program_type(self):
        body = Fold(
            Lambda(("acc", "v"), Call("add", (Var("acc"), Var("v")))),
            Const(0),
            ListVar("xs"),
        )
        program = Program("xs", body)
        assert infer_program_type(program) is NUM
        assert check_well_typed(program)

    def test_list_result_is_not_well_typed(self):
        program = Program("xs", ListVar("xs"))
        assert not check_well_typed(program)

    def test_type_error_is_not_well_typed(self):
        program = Program("xs", Call("add", (ListVar("xs"), Const(1))))
        assert not check_well_typed(program)

    def test_extra_params_are_nums(self):
        body = Call("mul", (Var("scale"), Hole(0)))
        program = Program("xs", body, extra_params=("scale",))
        assert infer_program_type(program) is NUM
