"""Tests for the fault-injection layer (``repro.faults``), the hardened
crash-restore machinery (checkpoint generations, hung-worker liveness,
restart budget, poison quarantine), and the ``repro chaos`` harness."""

import json

import pytest

from repro.cli import main
from repro.core.scheme import OnlineScheme
from repro.evaluation import chaos
from repro.faults import (
    DEFAULT_STALL_SECS,
    POISON,
    FaultPlan,
    FaultSpecError,
    parse_fault,
    poison_element,
)
from repro.ir.dsl import add
from repro.ir.nodes import OnlineProgram
from repro.runtime import sources
from repro.runtime.checkpoint import (
    CheckpointError,
    list_generations,
    load_latest_generation,
    save_generation,
    verify_generation,
)
from repro.serve import ServeError, StreamServer, reference_states, states_match


def sum_scheme() -> OnlineScheme:
    return OnlineScheme((0,), OnlineProgram(("s",), "x", (add("s", "x"),)))


def keyed_stream(n, keys=16, seed=3):
    return list(sources.zipf_keys(n, keys=keys, seed=seed))


class TestFaultSpecs:
    @pytest.mark.parametrize("spec", [
        "kill:1:100",
        "stall:0:50:2.5",
        "corrupt-checkpoint:1:3",
        "torn-write:2",
        "poison:0",
    ])
    def test_parse_roundtrip(self, spec):
        assert parse_fault(spec).spec() == spec

    def test_stall_default_secs(self):
        fault = parse_fault("stall:0:10")
        assert fault.secs == DEFAULT_STALL_SECS

    @pytest.mark.parametrize("spec", [
        "explode:1:2",            # unknown kind
        "kill:1",                 # missing AFTER
        "kill:1:0",               # AFTER must be >= 1
        "kill:a:5",               # non-integer shard
        "stall:0:5:0",            # SECS must be > 0
        "stall:0:5:soon",         # SECS must be a number
        "corrupt-checkpoint:0:0",  # GEN must be >= 1
        "torn-write:0",           # NTH must be >= 1
        "torn-write:1:2",         # too many args
        "poison:-1",              # OFFSET must be >= 0
        "poison:",                # missing OFFSET
    ])
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault(spec)

    def test_validate_rejects_out_of_range_shard(self):
        with pytest.raises(FaultSpecError, match="2 shard"):
            FaultPlan(["kill:5:100"]).validate(2)
        FaultPlan(["kill:1:100", "torn-write:1"]).validate(2)  # in range: fine

    def test_kills_at(self):
        plan = FaultPlan(["kill:0:10", "kill:1:10", "kill:0:99"])
        assert sorted(plan.kills_at(10)) == [0, 1]
        assert plan.kills_at(99) == [0]
        assert plan.kills_at(11) == []

    def test_shard_plan_slices_per_worker(self):
        plan = FaultPlan(["stall:1:80:5", "corrupt-checkpoint:0:2", "torn-write:3"])
        assert plan.shard_plan(0).corrupt_generations == {2}
        assert plan.shard_plan(0).stall_after is None
        assert plan.shard_plan(1).stall_after == 80
        # torn-write is per-worker, so every shard's slice carries it
        assert plan.shard_plan(1).torn_writes == {3}

    def test_shard_plan_none_when_untouched(self):
        assert FaultPlan(["kill:0:10", "poison:5"]).shard_plan(0) is None

    def test_should_stall_first_incarnation_once(self):
        sp = FaultPlan(["stall:0:10:1"]).shard_plan(0)
        assert not sp.should_stall(9, incarnation=0, stalled=False)
        assert sp.should_stall(10, incarnation=0, stalled=False)
        assert not sp.should_stall(10, incarnation=0, stalled=True)
        assert not sp.should_stall(10, incarnation=1, stalled=False)

    def test_apply_stream_poisons_value_keeps_key(self):
        plan = FaultPlan(["poison:1"])
        out = list(plan.apply_stream([(10, "a"), (20, "b"), (30, "c")]))
        assert out == [(10, "a"), (POISON, "b"), (30, "c")]

    def test_poison_element_plain_value(self):
        assert poison_element(7) == POISON
        assert poison_element((7, 3), None) == POISON

    def test_allows_refusal(self):
        assert FaultPlan(["poison:0"]).allows_refusal("fail")
        assert not FaultPlan(["poison:0"]).allows_refusal("quarantine")
        assert FaultPlan(["corrupt-checkpoint:0:1"]).allows_refusal("fail")
        assert FaultPlan(["torn-write:1"]).allows_refusal("quarantine")
        assert not FaultPlan(["kill:0:5", "stall:0:5"]).allows_refusal("fail")


class TestCheckpointGenerations:
    def test_save_verify_roundtrip(self, tmp_path):
        base = tmp_path / "shard-00"
        path = save_generation({"count": 5}, base, generation=1, consumed=5)
        assert verify_generation(path) == (1, 5, {"count": 5})

    def test_load_latest_picks_newest(self, tmp_path):
        base = tmp_path / "shard-00"
        for gen in (1, 2, 3):
            save_generation({"count": gen * 10}, base, generation=gen, consumed=gen * 10)
        assert load_latest_generation(base) == (3, 30, {"count": 30})

    def test_pruning_keeps_newest_generations(self, tmp_path):
        base = tmp_path / "shard-00"
        for gen in range(1, 7):
            save_generation({}, base, generation=gen, consumed=gen, keep=3)
        assert [g for g, _ in list_generations(base)] == [4, 5, 6]

    def test_digest_catches_payload_tamper(self, tmp_path):
        base = tmp_path / "shard-00"
        path = save_generation({"count": 5}, base, generation=1, consumed=5)
        data = json.loads(path.read_text())
        data["payload"]["count"] = 6
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="digest"):
            verify_generation(path)

    def test_digest_catches_envelope_tamper(self, tmp_path):
        # The digest covers consumed/generation too, not just the payload.
        base = tmp_path / "shard-00"
        path = save_generation({"count": 5}, base, generation=1, consumed=5)
        data = json.loads(path.read_text())
        data["consumed"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="digest"):
            verify_generation(path)

    def test_fallback_quarantines_and_returns_older(self, tmp_path):
        base = tmp_path / "shard-00"
        save_generation({"count": 10}, base, generation=1, consumed=10)
        newest = save_generation({"count": 20}, base, generation=2, consumed=20)
        newest.write_bytes(b"\x00garbage")
        events = []
        got = load_latest_generation(base, on_quarantine=lambda p, e: events.append(p))
        assert got == (1, 10, {"count": 10})
        assert len(events) == 1 and events[0].name.endswith(".corrupt")
        assert not newest.exists()

    def test_all_corrupt_refuses(self, tmp_path):
        base = tmp_path / "shard-00"
        for gen in (1, 2):
            save_generation({}, base, generation=gen, consumed=gen).write_bytes(b"xx")
        with pytest.raises(CheckpointError, match="refusing to restart from scratch"):
            load_latest_generation(base)
        # evidence preserved, lineage emptied
        assert list_generations(base) == []
        assert len(list(tmp_path.glob("*.corrupt*"))) == 2

    def test_no_files_means_fresh_start(self, tmp_path):
        assert load_latest_generation(tmp_path / "shard-00") is None

    def test_pruning_spares_quarantined_files(self, tmp_path):
        base = tmp_path / "shard-00"
        bad = save_generation({}, base, generation=1, consumed=1)
        bad.write_bytes(b"xx")
        with pytest.raises(CheckpointError):
            load_latest_generation(base)
        for gen in range(2, 8):
            save_generation({}, base, generation=gen, consumed=gen, keep=2)
        assert len(list(tmp_path.glob("*.corrupt"))) == 1


class TestServeHardening:
    def _serve(self, stream, tmp_path, with_oracle=True, **kwargs):
        scheme = sum_scheme()
        with StreamServer(
            scheme, shards=2, checkpoint_dir=tmp_path, key_field=1, value_field=0,
            batch_size=8, checkpoint_every=32, fresh=True, **kwargs,
        ) as server:
            for pushed, element in enumerate(stream, start=1):
                server.push(element)
                if kwargs.get("faults") is not None:
                    for sid in kwargs["faults"].kills_at(pushed):
                        server.kill_shard(sid)
            result = server.drain()
        if not with_oracle:  # a poisoned stream would raise in the oracle
            return result, None
        oracle = reference_states(scheme, stream, key_field=1, value_field=0)
        return result, oracle

    def test_corrupt_checkpoint_falls_back_bit_identical(self, tmp_path):
        # The newest generation of shard 0 is corrupted on disk, then the
        # worker is killed: restore must quarantine the damaged file, fall
        # back to an older generation, replay, and still match the oracle.
        stream = keyed_stream(400)
        plan = FaultPlan(["corrupt-checkpoint:0:2", "kill:0:300"]).validate(2)
        result, oracle = self._serve(stream, tmp_path, faults=plan)
        assert states_match(result, oracle)
        assert result.count == len(stream)

    def test_torn_write_falls_back_bit_identical(self, tmp_path):
        stream = keyed_stream(400)
        plan = FaultPlan(["torn-write:2", "kill:0:300", "kill:1:350"]).validate(2)
        result, oracle = self._serve(stream, tmp_path, faults=plan)
        assert states_match(result, oracle)

    def test_fully_corrupt_lineage_refuses_cleanly(self, tmp_path):
        # Every generation shard 0 ever writes is corrupted; when its worker
        # dies there is nothing intact to restore from.  The server must
        # refuse with a ServeError — never silently restart from zero.
        stream = keyed_stream(400)
        plan = FaultPlan(
            ["corrupt-checkpoint:0:%d" % g for g in range(1, 30)] + ["kill:0:350"]
        ).validate(2)
        with pytest.raises(ServeError, match="cannot be restored"):
            self._serve(stream, tmp_path, faults=plan)
        assert list(tmp_path.glob("*.corrupt*")), "no quarantined evidence on disk"

    def test_hung_worker_tripped_by_liveness_deadline(self, tmp_path):
        # A stalled worker never crashes — only the heartbeat deadline can
        # catch it.  The restored replacement (incarnation > 0) skips the
        # stall and the final states still match the oracle.
        stream = keyed_stream(300)
        plan = FaultPlan(["stall:0:50:30"]).validate(2)
        result, oracle = self._serve(
            stream, tmp_path, faults=plan, liveness_timeout_s=0.5,
        )
        assert result.hung_restarts >= 1
        assert states_match(result, oracle)

    def test_restart_budget_window_allows_spread_out_restarts(self, tmp_path):
        # Three kills with a budget of 2 per window: a tiny window lets the
        # timestamps age out, so the run survives where a lifetime cap of 2
        # would have given up.
        stream = keyed_stream(600)
        plan = FaultPlan(["kill:0:100", "kill:0:300", "kill:0:500"]).validate(2)
        result, oracle = self._serve(
            stream, tmp_path, faults=plan,
            restart_budget=2, restart_window_s=0.05, backoff_base_s=0.1,
        )
        assert result.restarts == 3
        assert states_match(result, oracle)

    def test_poison_fail_mode_refuses(self, tmp_path):
        plan = FaultPlan(["poison:50"])
        stream = list(plan.apply_stream(keyed_stream(200), value_index=0))
        with pytest.raises(ServeError, match="worker failed"):
            self._serve(stream, tmp_path)

    def test_poison_quarantine_dead_letters_and_matches_filtered_oracle(self, tmp_path):
        raw = keyed_stream(300)
        plan = FaultPlan(["poison:50", "poison:170"]).validate(2)
        poisoned = list(plan.apply_stream(raw, value_index=0))
        result, _ = self._serve(
            poisoned, tmp_path, with_oracle=False, on_error="quarantine",
        )
        assert result.dead_lettered == 2
        # the non-poisoned elements must still be bit-identical to an oracle
        # run over the stream with the poisoned offsets removed
        clean = [e for i, e in enumerate(raw) if i not in plan.poison_offsets]
        oracle = reference_states(sum_scheme(), clean, key_field=1, value_field=0)
        assert states_match(result, oracle)
        letters = chaos.read_dead_letters(tmp_path)
        assert len(letters) == 2
        assert all(POISON in rec["element"] for rec in letters)

    def test_quarantine_survives_a_kill_without_reapplying(self, tmp_path):
        # Dead-lettered elements are part of the consumed prefix: a crash
        # after quarantining must not replay them into the state.
        raw = keyed_stream(300)
        plan = FaultPlan(["poison:40", "kill:0:200", "kill:1:250"]).validate(2)
        poisoned = list(plan.apply_stream(raw, value_index=0))
        result, _ = self._serve(
            poisoned, tmp_path, with_oracle=False, on_error="quarantine",
            faults=plan,
        )
        clean = [e for i, e in enumerate(raw) if i not in plan.poison_offsets]
        oracle = reference_states(sum_scheme(), clean, key_field=1, value_field=0)
        assert states_match(result, oracle)
        assert len(chaos.read_dead_letters(tmp_path)) == 1

    def test_garbage_manifest_names_path_and_suggests_fresh(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{torn")
        with pytest.raises(ServeError, match="--fresh|fresh=True") as excinfo:
            StreamServer(
                sum_scheme(), shards=2, checkpoint_dir=tmp_path, key_field=1,
            ).start()
        assert "manifest.json" in str(excinfo.value)

    def test_old_manifest_version_is_refused(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps({
            "format": "repro/serve-manifest", "version": 1,
            "scheme": {}, "shards": 2,
        }))
        with pytest.raises(ServeError, match="version"):
            StreamServer(
                sum_scheme(), shards=2, checkpoint_dir=tmp_path, key_field=1,
            ).start()

    def test_config_validation(self, tmp_path):
        for kwargs in (
            {"keep_generations": 0},
            {"on_error": "explode"},
            {"liveness_timeout_s": 0},
        ):
            with pytest.raises(ValueError):
                StreamServer(
                    sum_scheme(), shards=2, checkpoint_dir=tmp_path, key_field=1,
                    **kwargs,
                )


class TestReseedSpec:
    def test_appends_seed_in_position(self):
        assert sources.reseed_spec("zipf-keys:4000:20", 9) == "zipf-keys:4000:20:9"

    def test_replaces_existing_seed(self):
        assert sources.reseed_spec("zipf-keys:4000:20:1:1.5", 9) == \
            "zipf-keys:4000:20:9:1.5"

    def test_pads_intermediate_args_with_defaults(self):
        assert sources.reseed_spec("sawtooth:100", 5) == "sawtooth:100:17:0:5"

    def test_seedless_specs_pass_through(self):
        assert sources.reseed_spec("counter:10", 9) == "counter:10"
        assert sources.reseed_spec("list:1,2,3", 9) == "list:1,2,3"

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError, match="unknown source"):
            sources.reseed_spec("warp:10", 9)

    def test_unpaddable_default_rejected(self):
        # bids:N has its seed at index 1, reachable; but constant's repeated
        # value has no default, so a hypothetical seeded variant would fail.
        with pytest.raises(ValueError, match="no paddable default"):
            sources.reseed_spec("bids", 9)  # n=None default is unpaddable

    def test_reseeded_stream_differs_only_by_seed(self):
        a = list(sources.from_spec(sources.reseed_spec("zipf-keys:50:8", 1)))
        b = list(sources.from_spec(sources.reseed_spec("zipf-keys:50:8", 2)))
        assert a != b and len(a) == len(b) == 50


class TestChaosHarness:
    def test_normalize_fault_kinds(self):
        assert chaos.normalize_fault_kinds(["kill", "corrupt-checkpoint"]) == \
            ("kill", "corrupt")
        with pytest.raises(ValueError, match="unknown fault kind"):
            chaos.normalize_fault_kinds(["kill", "bogus"])
        with pytest.raises(ValueError, match="at least one fault kind"):
            chaos.normalize_fault_kinds([])

    def test_schedule_is_deterministic_and_valid(self):
        import random

        mk = lambda: chaos.schedule_faults(  # noqa: E731
            random.Random(42), ("kill", "stall", "corrupt", "torn", "poison"),
            shards=2, elements=1000, checkpoint_every=100,
        )
        first, second = mk(), mk()
        assert first == second
        plan = FaultPlan(first).validate(2)
        assert plan.kills_at(0) == []  # all kill offsets >= 1
        assert plan.poison_offsets and max(plan.poison_offsets) < 1000

    def test_run_chaos_same_seed_reproduces(self, tmp_path):
        kwargs = dict(
            trials=2, seed=8, shards=2, elements=400, checkpoint_every=64,
            batch_size=16, fault_kinds=("kill",), liveness_timeout_s=1.0,
        )
        a = chaos.run_chaos(workdir=tmp_path / "a", **kwargs)
        b = chaos.run_chaos(workdir=tmp_path / "b", **kwargs)
        strip = lambda r: [  # noqa: E731
            {k: v for k, v in t.items() if not k.endswith("_s")}
            for t in r["trials"]
        ]
        assert strip(a) == strip(b)
        assert a["ok"] and all(t["verdict"] == "match" for t in a["trials"])

    def test_run_chaos_quarantine_poison(self, tmp_path):
        report = chaos.run_chaos(
            trials=1, seed=3, shards=2, elements=400, checkpoint_every=64,
            batch_size=16, fault_kinds=("poison",), on_error="quarantine",
            workdir=tmp_path, liveness_timeout_s=1.0,
        )
        assert report["ok"]
        assert report["trials"][0]["dead_lettered"] >= 1

    def test_cli_chaos_smoke(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        code = main([
            "chaos", "--trials", "1", "--seed", "8", "--shards", "2",
            "--elements", "400", "--checkpoint-every", "64",
            "--batch-size", "16", "--faults", "kill",
            "--liveness-timeout", "1.0", "--out", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["format"] == chaos.CHAOS_FORMAT and report["ok"]
        assert "chaos: OK" in capsys.readouterr().out

    def test_cli_chaos_usage_errors(self, capsys):
        assert main(["chaos", "--faults", "bogus"]) == 2
        assert main(["chaos", "--trials", "0"]) == 2
        assert "error:" in capsys.readouterr().err
