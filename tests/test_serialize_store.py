"""Tests for scheme serialization (repro.core.serialize) and the persistent
scheme store (repro.store)."""

import json
from fractions import Fraction

import pytest

from repro.core import SynthesisConfig
from repro.core.scheme import OnlineScheme
from repro.core.serialize import (
    SchemeFormatError,
    decode_value,
    encode_value,
    loads_scheme,
)
from repro.ir.dsl import add, div, mul
from repro.ir.nodes import OnlineProgram
from repro.ir.parser import ParseError, parse_online_program
from repro.ir.pretty import online_program_to_sexpr
from repro.store import SchemeStore, scheme_key
from repro.suites import all_benchmarks, get_benchmark


def mean_scheme() -> OnlineScheme:
    return OnlineScheme(
        (0, 0),
        OnlineProgram(
            ("y", "z"),
            "x",
            (div(add(mul("y", "z"), "x"), add("z", 1)), add("z", 1)),
        ),
    )


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            0,
            -17,
            10**40,  # beyond 53-bit JSON float precision
            Fraction(1, 3),
            Fraction(-22, 7),
            2.5,
            float("inf"),
            True,
            False,
            (Fraction(1, 2), 3, (True, -1)),
            [1, Fraction(3, 4)],
        ],
    )
    def test_round_trip_exact(self, value):
        decoded = decode_value(json.loads(json.dumps(encode_value(value))))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_nan_round_trips(self):
        decoded = decode_value(encode_value(float("nan")))
        assert isinstance(decoded, float) and decoded != decoded

    def test_fraction_stays_fraction(self):
        # The whole point: exact rationals must never degrade to floats.
        decoded = decode_value(encode_value(Fraction(1, 3)))
        assert isinstance(decoded, Fraction)
        assert decoded * 3 == 1

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "3",
            3,
            ["int", 3],
            ["int", "x"],
            ["rat", "1", "0"],  # zero denominator
            ["rat", "1"],
            ["float", "spam"],
            ["tuple", "nope"],
            ["mystery", "1"],
            [],
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(SchemeFormatError):
            decode_value(bad)

    def test_unserializable_value_rejected(self):
        with pytest.raises(SchemeFormatError):
            encode_value(object())


class TestOnlineProgramSexpr:
    def test_round_trip(self):
        program = mean_scheme().program
        assert parse_online_program(online_program_to_sexpr(program)) == program

    def test_extra_params_round_trip(self):
        program = OnlineProgram(
            ("s",), "x", (add("s", mul("x", "rate")),), ("rate",)
        )
        assert parse_online_program(online_program_to_sexpr(program)) == program

    @pytest.mark.parametrize(
        "text",
        [
            "(lambda (xs) xs)",  # not an online form
            "(online (state y) (elem x))",  # missing outputs
            "(online (state y) (elem x) (outputs y y))",  # arity mismatch
            "(online (state y y) (elem x) (outputs y y))",  # duplicate name
            "(online (state y) (elem x y) (outputs y))",  # two elem names
            "(online (state y) (elem y) (outputs y))",  # state/elem collide
            "(online (state y) (elem x) (outputs z))",  # unbound variable
            "(online (state y) (elem x) (outputs (foldl add 0 xs)))",  # offline
            "(online (state y) (elem x) (weird) (outputs y))",  # unknown section
            "(online (state y) (elem x) (outputs y)) trailing",
        ],
    )
    def test_strict_validation(self, text):
        with pytest.raises(ParseError):
            parse_online_program(text)


class TestSchemeRoundTrip:
    def test_mean_round_trip(self):
        scheme = mean_scheme()
        assert OnlineScheme.loads(scheme.dumps()) == scheme

    def test_every_suite_ground_truth_round_trips_exactly(self):
        """The headline property: serialization preserves every hand-written
        scheme in the benchmark suite bit-for-bit, rationals included."""
        schemes = [b.ground_truth for b in all_benchmarks() if b.ground_truth]
        assert len(schemes) >= 40  # the suite ships ground truths
        for scheme in schemes:
            restored = OnlineScheme.loads(scheme.dumps())
            assert restored == scheme
            for got, want in zip(restored.initializer, scheme.initializer):
                assert type(got) is type(want)

    def test_save_load_file(self, tmp_path):
        scheme = get_benchmark("variance").ground_truth
        path = tmp_path / "variance.scheme.json"
        scheme.save(path)
        assert OnlineScheme.load(path) == scheme

    def test_dumps_is_stable(self):
        assert mean_scheme().dumps() == mean_scheme().dumps()

    def test_provenance_survives(self):
        scheme = mean_scheme()
        scheme.provenance = "opera:mean"
        assert OnlineScheme.loads(scheme.dumps()).provenance == "opera:mean"

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(format="other/format"),
            lambda d: d.update(version=99),
            lambda d: d.update(initializer=[["int", "0"]]),  # arity mismatch
            lambda d: d.update(program="(lambda (xs) xs)"),
            lambda d: d.update(program=17),
            lambda d: d.update(initializer="zero"),
            lambda d: d.update(provenance=3),
            lambda d: d.pop("program"),
        ],
    )
    def test_strict_load_validation(self, mutate):
        data = mean_scheme().to_dict()
        mutate(data)
        with pytest.raises(SchemeFormatError):
            OnlineScheme.from_dict(data)

    def test_loads_rejects_non_json(self):
        with pytest.raises(SchemeFormatError):
            loads_scheme("not json {")

    def test_from_dict_rejects_non_dict(self):
        with pytest.raises(SchemeFormatError):
            OnlineScheme.from_dict(["nope"])


class TestSchemeStore:
    def program(self):
        return get_benchmark("mean").program

    def test_miss_then_hit(self, tmp_path):
        store = SchemeStore(tmp_path)
        key = scheme_key(self.program(), SynthesisConfig())
        assert store.get(key) is None
        store.put(key, mean_scheme(), task="mean")
        assert store.get(key) == mean_scheme()
        assert (store.hits, store.misses) == (1, 1)

    def test_key_depends_on_program(self):
        config = SynthesisConfig()
        assert scheme_key(self.program(), config) != scheme_key(
            get_benchmark("variance").program, config
        )

    def test_key_depends_on_config(self):
        program = self.program()
        assert scheme_key(program, SynthesisConfig()) != scheme_key(
            program, SynthesisConfig(unroll_depth=4)
        )

    def test_key_ignores_timeout(self):
        # The budget decides whether synthesis finishes, not what it finds.
        program = self.program()
        assert scheme_key(program, SynthesisConfig(timeout_s=1)) == scheme_key(
            program, SynthesisConfig(timeout_s=600)
        )

    def test_key_depends_on_implementation(self, monkeypatch):
        program = self.program()
        before = scheme_key(program, SynthesisConfig())
        import repro.fingerprint as fp

        monkeypatch.setattr(fp, "implementation_digest", lambda: "different")
        assert scheme_key(program, SynthesisConfig()) != before

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = SchemeStore(tmp_path)
        key = scheme_key(self.program(), SynthesisConfig())
        store.put(key, mean_scheme())
        path = store._path(key)
        path.write_text("{broken json", encoding="utf-8")
        assert store.get(key) is None
        path.write_text('{"scheme": {"format": "wrong"}}', encoding="utf-8")
        assert store.get(key) is None

    def test_unwritable_store_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        store = SchemeStore(blocker / "sub")  # parent is a file: mkdir fails
        store.put("ab" * 32, mean_scheme())
        assert store.get("ab" * 32) is None

    def test_stats_clear_gc(self, tmp_path):
        store = SchemeStore(tmp_path)
        for i in range(3):
            store.put(f"{i:02d}" + "e" * 62, mean_scheme())
        count, size = store.entry_stats()
        assert count == 3 and size > 0
        assert store.gc(max_age_s=3600) == 0  # all fresh
        assert store.gc(max_age_s=-1) == 3  # everything is older than -1s
        store.put("ff" + "e" * 62, mean_scheme())
        assert store.clear() == 1
        assert store.entry_stats() == (0, 0)


class TestResultCacheImplDigest:
    def test_task_key_depends_on_implementation(self, monkeypatch):
        from repro.evaluation import ResultCache

        bench = get_benchmark("mean")
        before = ResultCache.task_key("opera", bench, SynthesisConfig())
        import repro.fingerprint as fp

        monkeypatch.setattr(fp, "implementation_digest", lambda: "different")
        after = ResultCache.task_key("opera", bench, SynthesisConfig())
        assert before != after

    def test_implementation_digest_is_stable_hex(self):
        from repro.fingerprint import implementation_digest

        digest = implementation_digest()
        assert digest == implementation_digest()
        assert len(digest) == 64 and int(digest, 16) >= 0
