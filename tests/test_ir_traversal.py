"""Tests for structural traversals: substitution, let-inlining,
list-expression discovery, AST size."""

from repro.ir.dsl import (
    XS,
    add,
    div,
    ffilter,
    fmap,
    fold,
    fold_sum,
    gt,
    lam,
    length,
    let,
    mul,
    powi,
    program,
    sub,
)
from repro.ir.nodes import Const, Lambda, ListVar, Snoc, Var
from repro.ir.traversal import (
    ast_size,
    contains_list_var,
    fill_holes,
    free_vars,
    inline_lets,
    is_list_expr,
    list_exprs,
    substitute,
    substitute_list_var,
    used_builtins,
    validate_online_expr,
)


class TestSubstitution:
    def test_simple(self):
        expr = add("a", "b")
        assert substitute(expr, {"a": Const(1)}) == add(1, "b")

    def test_lambda_shadowing(self):
        lam_expr = lam("a", add("a", "b"))
        result = substitute(lam_expr, {"a": Const(1), "b": Const(2)})
        assert result == lam("a", add("a", 2))

    def test_let_shadowing(self):
        expr = let("t", Const(1), add("t", "u"))
        result = substitute(expr, {"t": Const(9), "u": Const(2)})
        # The bound occurrence of t is untouched; u is replaced.
        assert result == let("t", Const(1), add("t", 2))

    def test_empty_mapping_is_identity(self):
        expr = add("a", 1)
        assert substitute(expr, {}) is expr

    def test_substitute_list_var(self):
        expr = fold_sum(XS)
        snoc = Snoc(XS, Var("x"))
        replaced = substitute_list_var(expr, "xs", snoc)
        assert replaced.lst == snoc


class TestFreeVars:
    def test_lambda_binds(self):
        assert free_vars(lam("a", add("a", "b"))) == frozenset({"b"})

    def test_let_binds_body_only(self):
        expr = let("t", Var("u"), add("t", "v"))
        assert free_vars(expr) == frozenset({"u", "v"})

    def test_listvar_not_a_free_scalar(self):
        assert free_vars(fold_sum(XS)) == frozenset()


class TestInlineLets:
    def test_single_let(self):
        expr = let("t", add(1, 2), mul("t", "t"))
        assert inline_lets(expr) == mul(add(1, 2), add(1, 2))

    def test_nested_lets(self):
        expr = let("a", Const(1), let("b", add("a", 1), add("a", "b")))
        assert inline_lets(expr) == add(Const(1), add(Const(1), 1))

    def test_let_under_lambda(self):
        # The variance program of Figure 3a uses a let whose value is
        # captured inside a fold's lambda.
        avg = div(fold_sum(XS), length(XS))
        expr = let(
            "avg",
            avg,
            fold(lam("acc", "v", add("acc", powi(sub("v", "avg"), 2))), 0, XS),
        )
        inlined = inline_lets(expr)
        assert "avg" not in free_vars(inlined)
        assert contains_list_var(inlined.func.body)


class TestListExprs:
    def test_fold_is_list_expr(self):
        assert is_list_expr(fold_sum(XS))

    def test_length_is_list_expr(self):
        assert is_list_expr(length(XS))

    def test_length_of_filter_is_list_expr(self):
        assert is_list_expr(length(ffilter(lam("v", gt("v", 0)), XS)))

    def test_composition_is_not(self):
        assert not is_list_expr(div(fold_sum(XS), length(XS)))

    def test_fold_over_map_is_single_list_expr(self):
        expr = fold_sum(fmap(lam("v", mul("v", "v")), XS))
        assert is_list_expr(expr)
        assert list_exprs(expr) == [expr]

    def test_variance_has_three_list_exprs(self):
        avg = div(fold_sum(XS), length(XS))
        body = div(
            fold(lam("acc", "v", add("acc", powi(sub("v", avg), 2))), 0, XS),
            length(XS),
        )
        found = list_exprs(body)
        # outer fold, inner sum fold, length
        assert len(found) == 3

    def test_duplicates_collapsed(self):
        body = div(fold_sum(XS), fold_sum(XS))
        assert len(list_exprs(body)) == 1


class TestOnlineValidation:
    def test_accepts_scalar_expr(self):
        assert validate_online_expr(add("y1", "x"))

    def test_rejects_fold(self):
        assert not validate_online_expr(fold_sum(XS))

    def test_rejects_length(self):
        assert not validate_online_expr(length(XS))

    def test_rejects_hole(self):
        from repro.ir.nodes import Hole

        assert not validate_online_expr(add(Hole(1), Const(1)))


class TestMisc:
    def test_ast_size_counts_nodes(self):
        assert ast_size(Const(1)) == 1
        assert ast_size(add(1, 2)) == 3
        # Lambda counts itself plus body; Fold counts func, init, list.
        assert ast_size(fold_sum(XS)) == 1 + (1 + 3) + 1 + 1

    def test_used_builtins(self):
        expr = add(mul(1, 2), length(XS))
        assert used_builtins(expr) == frozenset({"add", "mul", "length"})

    def test_fill_holes(self):
        from repro.ir.nodes import Hole

        expr = add(Hole(1), Hole(2))
        filled = fill_holes(expr, {1: Const(10), 2: Var("y")})
        assert filled == add(10, "y")

    def test_program_inlines_to_figure_6_fragment(self):
        # After inlining, the two-pass variance contains no Let nodes.
        from repro.ir.nodes import Let
        from repro.ir.traversal import iter_subexprs

        avg = div(fold_sum(XS), length(XS))
        prog = program(
            let(
                "avg",
                avg,
                div(
                    fold(lam("acc", "v", add("acc", powi(sub("v", "avg"), 2))), 0, XS),
                    length(XS),
                ),
            )
        )
        inlined = inline_lets(prog.body)
        assert not any(isinstance(e, Let) for e in iter_subexprs(inlined))
