"""Differential tests for batch-compiled step kernels.

The :class:`~repro.ir.compile.StepKernel` plan claims to be *semantically
invisible*: ``push_many`` through a kernel — the codegen-compiled batch
loop, the fused pipeline loop, or the interpreter-driven fallback — must
equal sequential per-element ``push`` bit-for-bit over exact rationals
(states, outputs, counts, exception classes, partial progress on failure).
These tests enforce the claim on every ground-truth scheme of the suite,
jit on and off, including keyed and checkpoint-resume paths.
"""

from __future__ import annotations

import pickle
from fractions import Fraction

import pytest

from repro.core.scheme import OnlineScheme
from repro.ir.compile import (
    IRCompileError,
    StepKernel,
    compile_fused_steps,
    compile_online_step,
    compile_step_batch,
    kernel_partial,
)
from repro.ir.dsl import add, eq, ite, mul
from repro.ir.evaluator import EvaluationError
from repro.ir.nodes import OnlineProgram, Var
from repro.runtime import KeyedOperator, OnlineOperator, StreamPipeline
from repro.runtime.checkpoint import load_checkpoint, save_checkpoint
from repro.suites import all_benchmarks, get_benchmark


def assert_same_value(a, b, where=""):
    """Bit-for-bit: equal values of identical Python types, recursively."""
    assert type(a) is type(b), (
        f"{where}: {type(a).__name__} != {type(b).__name__} ({a!r} vs {b!r})"
    )
    if isinstance(a, (tuple, list)):
        assert len(a) == len(b), f"{where}: {a!r} vs {b!r}"
        for i, (x, y) in enumerate(zip(a, b)):
            assert_same_value(x, y, f"{where}[{i}]")
    elif isinstance(a, float) and a != a:
        assert b != b, f"{where}: nan vs {b!r}"
    else:
        assert a == b, f"{where}: {a!r} != {b!r}"


def ground_truths():
    return [b for b in all_benchmarks() if b.ground_truth is not None]


def stream_for(bench, n=60):
    """Zeros, negatives, denominator-1 fractions, int/Fraction mixes."""
    scalars = []
    for i in range(n):
        if i % 4 == 0:
            scalars.append(i % 5 - 2)
        elif i % 4 == 1:
            scalars.append(Fraction(i % 7 - 3, 1 + i % 3))
        elif i % 4 == 2:
            scalars.append(Fraction(i % 9, 1))
        else:
            scalars.append(0)
    if bench.element_arity <= 1:
        return scalars
    return [(value, (i * 3) % 4) for i, value in enumerate(scalars)]


def extras_for(scheme):
    return {name: 500 for name in scheme.program.extra_params}


class TestBatchKernelEquivalence:
    @pytest.mark.parametrize("jit", [True, False], ids=["jit", "nojit"])
    def test_push_many_equals_push_on_all_ground_truths(self, jit):
        for bench in ground_truths():
            scheme = bench.ground_truth
            elements = stream_for(bench)
            extra = extras_for(scheme)
            batched = OnlineOperator(scheme, extra, jit=jit)
            stepped = OnlineOperator(scheme, extra, jit=jit)
            batched.push_many(elements)
            for element in elements:
                stepped.push(element)
            assert_same_value(batched.state, stepped.state, bench.name)
            assert batched.count == stepped.count == len(elements)
            assert batched._kernel.compiled is jit

    def test_chunked_push_many_equals_one_shot(self):
        for bench in ground_truths()[::5]:
            scheme = bench.ground_truth
            elements = stream_for(bench)
            extra = extras_for(scheme)
            whole = OnlineOperator(scheme, extra)
            chunked = OnlineOperator(scheme, extra)
            whole.push_many(elements)
            i = 0
            for size in (0, 1, 3, 7, 11, len(elements)):
                chunked.push_many(elements[i : i + size])
                i += size
            chunked.push_many(elements[i:])
            assert_same_value(whole.state, chunked.state, bench.name)
            assert whole.count == chunked.count

    def test_kernel_against_scalar_step_directly(self):
        for bench in ground_truths():
            scheme = bench.ground_truth
            kernel = compile_step_batch(scheme.program, name=bench.name)
            step = compile_online_step(scheme.program, name=bench.name)
            elements = stream_for(bench)
            extra = extras_for(scheme)
            state = scheme.initializer
            for element in elements:
                state = step(state, element, extra)
            batch_state, consumed = kernel.run(
                scheme.initializer, elements, extra
            )
            assert consumed == len(elements)
            assert_same_value(batch_state, state, bench.name)
            assert kernel.compiled and not kernel.fused
            assert kernel.source is not None

    def test_empty_batch_is_identity(self):
        scheme = get_benchmark("variance").ground_truth
        op = OnlineOperator(scheme)
        before = op.state
        assert op.push_many([]) == op.value
        assert op.state == before and op.count == 0
        kernel = scheme.compiled_kernel()
        assert kernel.run(scheme.initializer, [], None) == (scheme.initializer, 0)

    def test_generator_input(self):
        scheme = get_benchmark("mean").ground_truth
        from_list = OnlineOperator(scheme)
        from_gen = OnlineOperator(scheme)
        elements = [Fraction(i, 3) for i in range(20)]
        from_list.push_many(elements)
        from_gen.push_many(iter(elements))
        assert_same_value(from_gen.state, from_list.state)

    @pytest.mark.parametrize("jit", [True, False], ids=["jit", "nojit"])
    def test_partial_progress_on_mid_batch_error(self, jit):
        # The If branch referencing an unbound extra only evaluates when
        # x == 3 — the kernel must fail exactly there, with the state and
        # count of the elements before it, like per-element push does.
        program = OnlineProgram(
            ("s",), "x", (ite(eq(Var("x"), 3), add("s", "missing"), add("s", "x")),)
        )
        scheme = OnlineScheme((0,), program, provenance="partial-test")
        elements = [1, 2, 3, 4]
        stepped = OnlineOperator(scheme, jit=jit)
        with pytest.raises(EvaluationError):
            for element in elements:
                stepped.push(element)
        batched = OnlineOperator(scheme, jit=jit)
        with pytest.raises(EvaluationError):
            batched.push_many(elements)
        assert batched.state == stepped.state == (3,)
        assert batched.count == stepped.count == 2

    def test_error_on_first_element_preserves_state(self):
        program = OnlineProgram(("s",), "x", (add("s", "missing"),))
        scheme = OnlineScheme((0,), program, provenance="eager-missing")
        op = OnlineOperator(scheme)
        with pytest.raises(EvaluationError):
            op.push_many([1, 2, 3])
        assert op.state == (0,) and op.count == 0

    def test_kernel_partial_consumes_marker(self):
        exc = EvaluationError("boom")
        assert kernel_partial(exc, (7,)) == ((7,), 0)
        exc.__repro_partial__ = ((1,), 4)
        assert kernel_partial(exc, (7,)) == ((1,), 4)
        assert kernel_partial(exc, (7,)) == ((7,), 0)  # consumed

    def test_declined_shapes_fall_back_to_step_loop(self):
        # Element parameter shadowing a state parameter: batch codegen
        # declines, the resolver wraps the scalar step, results still match.
        program = OnlineProgram(("x", "n"), "x", (add("x", "n"), add("n", 1)))
        with pytest.raises(IRCompileError):
            compile_step_batch(program)
        scheme = OnlineScheme((0, 0), program, provenance="shadowed")
        kernel = scheme._resolve_kernel()
        assert not kernel.compiled
        batched = OnlineOperator(scheme)
        stepped = OnlineOperator(scheme)
        elements = [5, 7, 9]
        batched.push_many(elements)
        for element in elements:
            stepped.push(element)
        assert_same_value(batched.state, stepped.state)

    def test_holes_fall_back_to_interpreter_loop(self):
        from repro.ir.nodes import Hole

        program = OnlineProgram(("s",), "x", (add("s", Hole(0)),))
        scheme = OnlineScheme((0,), program, provenance="holey")
        kernel = scheme._resolve_kernel()
        assert not kernel.compiled
        with pytest.raises(EvaluationError):
            OnlineOperator(scheme).push_many([1])

    def test_pickle_drops_kernel_cache(self):
        scheme = get_benchmark("variance").ground_truth
        scheme.compiled_kernel()
        assert scheme._compiled_kernel is not None
        clone = pickle.loads(pickle.dumps(scheme))
        assert clone._compiled_kernel is None and clone._compiled_step is None
        elements = [Fraction(i, 2) for i in range(9)]
        a = OnlineOperator(scheme)
        b = OnlineOperator(clone)
        a.push_many(elements)
        b.push_many(elements)
        assert_same_value(a.state, b.state)

    def test_invalidate_compiled_clears_kernel(self):
        scheme = get_benchmark("mean").ground_truth
        scheme.compiled_kernel()
        scheme.invalidate_compiled()
        assert scheme._compiled_kernel is None and scheme._compiled_step is None

    def test_final_routes_through_kernel(self):
        for name in ("mean", "variance", "q_category_volume"):
            bench = get_benchmark(name)
            scheme = bench.ground_truth
            elements = stream_for(bench, n=25)
            extra = extras_for(scheme)
            assert_same_value(
                scheme.final(elements, extra),
                list(scheme.run(elements, extra))[-1],
                name,
            )
        assert scheme.final([]) == scheme.initializer[0]


class TestKeyedBatch:
    def _events(self, n=48):
        return [(Fraction(1 + (i * 7) % 11, 1 + i % 2), i % 5) for i in range(n)]

    @pytest.mark.parametrize("jit", [True, False], ids=["jit", "nojit"])
    def test_grouped_push_many_equals_push(self, jit):
        scheme = get_benchmark("q_avg_price").ground_truth
        make = lambda: KeyedOperator(  # noqa: E731
            scheme, key_fn=lambda e: e[1], value_fn=lambda e: e[0], jit=jit
        )
        events = self._events()
        batched, stepped = make(), make()
        snapshot = batched.push_many(events)
        for event in events:
            stepped.push(event)
        assert snapshot == stepped.snapshot()
        assert list(batched.partitions) == list(stepped.partitions)  # arrival order
        for key, part in stepped.partitions.items():
            assert_same_value(batched.partitions[key].state, part.state, f"key {key}")
            assert batched.partitions[key].count == part.count
        assert batched.count == stepped.count == len(events)

    def test_extractor_error_processes_prefix(self):
        scheme = get_benchmark("q_bid_volume").ground_truth
        boom_at = 5

        def key_fn(event):
            if event[1] == "boom":
                raise ValueError("bad key")
            return event[1]

        events = [(Fraction(i), i % 2) for i in range(boom_at)]
        events.append((Fraction(99), "boom"))
        events.extend((Fraction(i), i % 2) for i in range(boom_at, 10))
        keyed = KeyedOperator(scheme, key_fn=key_fn, value_fn=lambda e: e[0])
        with pytest.raises(ValueError):
            keyed.push_many(events)
        # Elements before the raising one are all applied, later ones not.
        reference = KeyedOperator(scheme, key_fn=key_fn, value_fn=lambda e: e[0])
        for event in events[:boom_at]:
            reference.push(event)
        assert keyed.snapshot() == reference.snapshot()
        assert keyed.count == boom_at

    @pytest.mark.parametrize("jit", [True, False], ids=["jit", "nojit"])
    def test_step_failure_has_per_push_parity(self, jit):
        # Batch [a:1, b:2, a:boom, b:4]: the step raises on key a's second
        # payload (global element index 2).  Per-push parity: b's later
        # element 4 must NOT be consumed even though b's group drains
        # independently, and count must stay a resumable stream offset.
        scheme = OnlineScheme(
            (0,),
            OnlineProgram(
                ("s",), "x",
                (ite(eq(Var("x"), 99), add("s", "missing"), add("s", "x")),),
            ),
            provenance="boom-at-99",
        )
        events = [("a", 1), ("b", 2), ("a", 99), ("b", 4), ("c", 5)]
        batched = KeyedOperator(
            scheme, key_fn=lambda e: e[0], value_fn=lambda e: e[1], jit=jit
        )
        with pytest.raises(EvaluationError):
            batched.push_many(events)
        stepped = KeyedOperator(
            scheme, key_fn=lambda e: e[0], value_fn=lambda e: e[1], jit=jit
        )
        with pytest.raises(EvaluationError):
            for event in events:
                stepped.push(event)
        assert batched.snapshot() == stepped.snapshot() == {"a": 1, "b": 2}
        assert batched.count == stepped.count == 2
        assert list(batched.partitions) == ["a", "b"]  # no 'c' partition

    @pytest.mark.parametrize("jit", [True, False], ids=["jit", "nojit"])
    def test_checkpoint_resume_with_batches(self, tmp_path, jit):
        scheme = get_benchmark("q_avg_price").ground_truth
        events = self._events()
        key_fn = lambda e: e[1]  # noqa: E731
        value_fn = lambda e: e[0]  # noqa: E731
        keyed = KeyedOperator(scheme, key_fn=key_fn, value_fn=value_fn, jit=jit)
        keyed.push_many(events[:20])
        path = tmp_path / "keyed.ck.json"
        save_checkpoint(keyed, path)
        resumed = load_checkpoint(path, key_fn=key_fn, value_fn=value_fn)
        resumed.push_many(events[20:])
        uninterrupted = KeyedOperator(scheme, key_fn=key_fn, value_fn=value_fn)
        for event in events:
            uninterrupted.push(event)
        assert resumed.snapshot() == uninterrupted.snapshot()
        assert resumed.count == uninterrupted.count

    def test_operator_checkpoint_resume_with_batches(self, tmp_path):
        scheme = get_benchmark("variance").ground_truth
        elements = [Fraction(i % 9, 1 + i % 4) for i in range(30)]
        op = OnlineOperator(scheme)
        op.push_many(elements[:13])
        path = tmp_path / "op.ck.json"
        save_checkpoint(op, path)
        resumed = load_checkpoint(path)
        resumed.push_many(elements[13:])
        uninterrupted = OnlineOperator(scheme)
        for element in elements:
            uninterrupted.push(element)
        assert_same_value(resumed.state, uninterrupted.state)
        assert resumed.count == uninterrupted.count


class TestFusedPipeline:
    def _schemes(self):
        return {
            name: get_benchmark(name).ground_truth
            for name in ("mean", "max", "variance", "count")
        }

    def _pipeline(self, jit=None):
        return StreamPipeline(
            {
                name: OnlineOperator(scheme, jit=jit)
                for name, scheme in self._schemes().items()
            }
        )

    def _elements(self, n=50):
        return [Fraction(i % 11 - 4, 1 + i % 3) for i in range(n)]

    def test_fused_equals_per_element_push(self):
        elements = self._elements()
        batched = self._pipeline()
        stepped = self._pipeline()
        snapshot = batched.push_many(elements)
        for element in elements:
            last = stepped.push(element)
        assert snapshot == last == stepped.snapshot()
        for name, op in batched.operators.items():
            assert_same_value(op.state, stepped.operators[name].state, name)
            assert op.count == stepped.operators[name].count
        plan = batched._fused_plan
        assert plan is not None and plan[1] is not None and plan[1].fused

    def test_fused_kernel_against_per_scheme_kernels(self):
        schemes = list(self._schemes().values())
        fused = compile_fused_steps([s.program for s in schemes])
        elements = self._elements()
        states, consumed = fused.run(
            tuple(s.initializer for s in schemes),
            elements,
            tuple({} for _ in schemes),
        )
        assert consumed == len(elements)
        for scheme, state in zip(schemes, states):
            expected, _ = scheme.compiled_kernel().run(
                scheme.initializer, elements, {}
            )
            assert_same_value(state, expected, scheme.provenance)

    def test_fused_with_extra_params(self):
        # Two programs whose extras live in *separate* slots, one of them
        # sharing the extra name — fusion must not cross the streams.
        p1 = OnlineProgram(("s",), "x", (add("s", mul("x", "k")),), ("k",))
        p2 = OnlineProgram(("t",), "x", (add("t", add("x", "k")),), ("k",))
        fused = compile_fused_steps([p1, p2])
        states, consumed = fused.run(
            ((0,), (0,)), [1, 2, 3], ({"k": 10}, {"k": Fraction(1, 2)})
        )
        assert consumed == 3
        assert states == ((60,), (Fraction(15, 2),))

    def test_no_jit_operator_disables_fusion_but_not_equality(self):
        elements = self._elements()
        mixed = StreamPipeline(
            {
                "mean": OnlineOperator(get_benchmark("mean").ground_truth),
                "max": OnlineOperator(
                    get_benchmark("max").ground_truth, jit=False
                ),
            }
        )
        stepped = StreamPipeline(
            {
                "mean": OnlineOperator(get_benchmark("mean").ground_truth),
                "max": OnlineOperator(get_benchmark("max").ground_truth),
            }
        )
        snapshot = mixed.push_many(elements)
        for element in elements:
            stepped.push(element)
        assert snapshot == stepped.snapshot()
        assert mixed._fused_plan[1] is None  # fusion declined, fallback used

    def test_single_operator_pipeline_does_not_fuse(self):
        pipeline = StreamPipeline(
            {"mean": OnlineOperator(get_benchmark("mean").ground_truth)}
        )
        pipeline.push_many(self._elements(10))
        assert pipeline._fused_plan[1] is None

    def test_operator_swap_recompiles_plan(self):
        elements = self._elements(20)
        pipeline = self._pipeline()
        pipeline.push_many(elements)
        first_plan = pipeline._fused_plan[1]
        pipeline.operators["sum"] = OnlineOperator(
            get_benchmark("sum").ground_truth
        )
        snapshot = pipeline.push_many(elements)
        assert pipeline._fused_plan[1] is not first_plan
        ref_mean = OnlineOperator(get_benchmark("mean").ground_truth)
        for element in elements + elements:  # the mean op saw both batches
            ref_mean.push(element)
        ref_sum = OnlineOperator(get_benchmark("sum").ground_truth)
        for element in elements:  # the swapped-in op saw only the second
            ref_sum.push(element)
        assert snapshot["mean"] == ref_mean.value
        assert snapshot["sum"] == ref_sum.value
        assert pipeline.operators["sum"].count == len(elements)

    def test_fused_partial_progress_on_error(self):
        # Second program raises at x == 3 (element index 2).  Per-push
        # parity: the first operator — evaluated earlier within that
        # element — applied it too (count 3), the raiser stopped before it
        # (count 2).
        ok = OnlineScheme(
            (0,), OnlineProgram(("a",), "x", (add("a", "x"),)), provenance="ok"
        )
        bad = OnlineScheme(
            (0,),
            OnlineProgram(
                ("b",), "x",
                (ite(eq(Var("x"), 3), add("b", "missing"), add("b", "x")),),
            ),
            provenance="bad",
        )
        pipeline = StreamPipeline(
            {"ok": OnlineOperator(ok), "bad": OnlineOperator(bad)}
        )
        with pytest.raises(EvaluationError):
            pipeline.push_many([1, 2, 3, 4])
        assert pipeline._fused_plan[1] is not None  # the fused path ran
        assert pipeline.operators["ok"].state == (6,)
        assert pipeline.operators["ok"].count == 3
        assert pipeline.operators["bad"].state == (3,)
        assert pipeline.operators["bad"].count == 2

    def test_duplicate_operator_object_declines_fusion(self):
        # One operator under two names: fused slots would overwrite each
        # other's writes to the shared state.  Fusion must decline, and the
        # sequential-drain result must match in both jit modes.
        elements = self._elements(12)
        op = OnlineOperator(get_benchmark("mean").ground_truth)
        pipeline = StreamPipeline({"a": op, "b": op})
        snapshot = pipeline.push_many(elements)
        assert pipeline._fused_plan[1] is None
        reference = OnlineOperator(get_benchmark("mean").ground_truth)
        reference.push_many(elements)
        reference.push_many(elements)  # drained once per name
        assert snapshot == {"a": reference.value, "b": reference.value}
        assert op.count == reference.count

    @pytest.mark.parametrize("jit", [True, False], ids=["jit", "nojit"])
    def test_error_semantics_identical_across_backends(self, jit):
        # Per-push failure parity on BOTH paths: whatever backend runs, a
        # mid-batch error leaves every operator exactly where sequential
        # push would — so a checkpoint taken after catching the error is
        # bit-for-bit identical across jit modes.
        def build():
            return StreamPipeline(
                {
                    "var": OnlineOperator(
                        get_benchmark("variance").ground_truth, jit=jit
                    ),
                    "bad": OnlineOperator(
                        OnlineScheme(
                            (0,),
                            OnlineProgram(
                                ("b",), "x",
                                (ite(eq(Var("x"), 3), add("b", "missing"),
                                     add("b", "x")),),
                            ),
                            provenance="bad",
                        ),
                        jit=jit,
                    ),
                }
            )

        pipeline = build()
        with pytest.raises(EvaluationError):
            pipeline.push_many([1, 2, 3, 4])
        reference = build()
        with pytest.raises(EvaluationError):
            for element in [1, 2, 3, 4]:
                reference.push(element)
        for name in ("var", "bad"):
            assert_same_value(
                pipeline.operators[name].state,
                reference.operators[name].state,
                f"{name} jit={jit}",
            )
            assert (
                pipeline.operators[name].count
                == reference.operators[name].count
            )
        # 'var' is evaluated before the raiser within element index 2.
        assert reference.operators["var"].count == 3
        assert reference.operators["bad"].count == 2

    def test_source_iterator_error_keeps_counts_exact(self):
        # The elements iterable itself raising between elements must record
        # only fully-applied elements — for the single-program kernel and
        # for the fused kernel's per-program counts alike.
        def two_then_boom():
            yield 1
            yield 2
            raise RuntimeError("source died")

        scheme = get_benchmark("sum").ground_truth
        op = OnlineOperator(scheme)
        with pytest.raises(RuntimeError):
            op.push_many(two_then_boom())
        assert op.state == (3,) and op.count == 2

        schemes = [get_benchmark(n).ground_truth for n in ("sum", "count")]
        fused = compile_fused_steps([s.program for s in schemes])
        with pytest.raises(RuntimeError) as info:
            fused.run(((0,), (0,)), two_then_boom(), ({}, {}))
        states, counts = info.value.__repro_partial__
        assert states == ((3,), (2,))
        assert counts == (2, 2)

    def test_from_step_wrapper_contract(self):
        scheme = get_benchmark("mean").ground_truth
        kernel = StepKernel.from_step(scheme.interpreted_step)
        state, consumed = kernel.run(scheme.initializer, [1, 2, 3], None)
        expected, _ = scheme.compiled_kernel().run(scheme.initializer, [1, 2, 3], None)
        assert_same_value(state, expected)
        assert consumed == 3 and not kernel.compiled
