"""Tests for :class:`repro.supervisor.ServiceSupervisor` — the long-lived
restartable-service layer under ``repro.serve``."""

import os
import signal
import time

import pytest

from repro.supervisor import ServiceSupervisor


def _echo(value):
    return value


def _sleep_forever():
    while True:
        time.sleep(60)


def _fail(message):
    raise RuntimeError(message)


def _sleep_then_return(seconds, value):
    time.sleep(seconds)
    return value


def _wait_for(supervisor, key, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if supervisor.poll(timeout=0.2) or supervisor.result(key) is not None:
            result = supervisor.result(key)
            if result is not None:
                return result
    raise AssertionError(f"service {key!r} did not finish within {timeout}s")


class TestServiceLifecycle:
    def test_ok_result_ships_back(self):
        with ServiceSupervisor() as sup:
            sup.start("echo", _echo, ({"answer": 42},))
            result = _wait_for(sup, "echo")
        assert result.kind == "ok"
        assert result.value == {"answer": 42}

    def test_error_result(self):
        with ServiceSupervisor() as sup:
            sup.start("bad", _fail, ("boom",))
            result = _wait_for(sup, "bad")
        assert result.kind == "error"
        assert "boom" in result.message

    def test_alive_and_pid(self):
        with ServiceSupervisor() as sup:
            sup.start("svc", _sleep_forever)
            assert sup.alive("svc")
            assert isinstance(sup.pid("svc"), int)
        assert not sup.alive("svc")  # shutdown killed it

    def test_duplicate_running_key_rejected(self):
        with ServiceSupervisor() as sup:
            sup.start("svc", _sleep_forever)
            with pytest.raises(ValueError, match="already running"):
                sup.start("svc", _sleep_forever)

    def test_unknown_key_raises(self):
        with ServiceSupervisor() as sup:
            with pytest.raises(KeyError):
                sup.result("ghost")


class TestRestart:
    def test_sigkill_reports_crashed_then_restart_works(self):
        with ServiceSupervisor() as sup:
            sup.start("svc", _sleep_forever)
            os.kill(sup.pid("svc"), signal.SIGKILL)
            result = _wait_for(sup, "svc")
            assert result.kind == "crashed"
            assert result.exitcode == -signal.SIGKILL
            # Crash-restore: respawn with fresh args, count the incarnation.
            assert sup.restarts("svc") == 0
            assert sup.restart("svc", args=(0.0, "recovered")) == 1
            # _Service.fn is unchanged; swap to a terminating payload via a
            # second restart to prove stored-recipe restarts also work.
            sup._services["svc"].fn = _sleep_then_return
            assert sup.restart("svc") == 2
            result = _wait_for(sup, "svc")
        assert result.kind == "ok"
        assert result.value == "recovered"
        assert sup.restarts("svc") == 2

    def test_restart_kills_live_incarnation(self):
        with ServiceSupervisor() as sup:
            sup.start("svc", _sleep_forever)
            first_pid = sup.pid("svc")
            sup.restart("svc")
            assert sup.alive("svc")
            assert sup.pid("svc") != first_pid

    def test_finished_service_refuses_restart(self):
        with ServiceSupervisor() as sup:
            sup.start("done", _echo, (1,))
            assert _wait_for(sup, "done").kind == "ok"
            with pytest.raises(ValueError, match="already finished"):
                sup.restart("done")


class TestCancel:
    def test_cancel_kills_and_marks_cancelled(self):
        with ServiceSupervisor() as sup:
            sup.start("svc", _sleep_forever)
            pid = sup.pid("svc")
            sup.cancel("svc")
            assert sup.result("svc").kind == "cancelled"
            assert not sup.alive("svc")
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("cancelled worker still running")

    def test_cancelled_service_refuses_restart(self):
        # Restore logic must not resurrect something the caller shut down.
        with ServiceSupervisor() as sup:
            sup.start("svc", _sleep_forever)
            sup.cancel("svc")
            with pytest.raises(ValueError, match="cancelled"):
                sup.restart("svc")

    def test_cancel_after_finish_keeps_result(self):
        with ServiceSupervisor() as sup:
            sup.start("done", _echo, ("kept",))
            assert _wait_for(sup, "done").kind == "ok"
            sup.cancel("done")
            assert sup.result("done").kind == "ok"
            assert sup.result("done").value == "kept"

    def test_shutdown_cancels_everything_running(self):
        sup = ServiceSupervisor()
        sup.start("a", _sleep_forever)
        sup.start("b", _echo, (7,))
        assert _wait_for(sup, "b").kind == "ok"
        sup.shutdown()
        assert sup.result("a").kind == "cancelled"
        assert sup.result("b").kind == "ok"  # finished results survive


class TestDeadline:
    def test_deadline_kills_runaway_service(self):
        with ServiceSupervisor(kill_grace_s=0.2) as sup:
            sup.start("svc", _sleep_forever, timeout_s=0.5)
            result = _wait_for(sup, "svc", timeout=30.0)
        assert result.kind == "timeout"

    def test_deadline_is_absolute_across_restarts(self):
        # The wall-clock budget anchors at the FIRST start: a crashing
        # service cannot buy itself more time by being restarted.
        with ServiceSupervisor(kill_grace_s=0.2) as sup:
            sup.start("svc", _sleep_forever, timeout_s=1.2)
            started = time.monotonic()
            time.sleep(0.3)
            sup.restart("svc")
            result = _wait_for(sup, "svc", timeout=30.0)
            elapsed = time.monotonic() - started
        assert result.kind == "timeout"
        # Killed near the original deadline (1.2s + grace), NOT restart+1.2s.
        assert elapsed < 3.0

    def test_within_deadline_completes(self):
        with ServiceSupervisor() as sup:
            sup.start("svc", _sleep_then_return, (0.1, "done"), timeout_s=30.0)
            result = _wait_for(sup, "svc")
        assert result.kind == "ok"
        assert result.value == "done"
