"""Tests for the compile/load/deploy API (repro.api) and the new CLI verbs.

The central property under test is the compile-once contract: the second
compile of the same task is served from the persistent scheme store without
invoking the synthesizer, observed via repro.api.synthesis_count().
"""

from fractions import Fraction

import pytest

from repro import api
from repro.cli import main
from repro.core import SynthesisConfig
from repro.store import SchemeStore
from repro.suites import get_benchmark

MEAN_SRC = """
def mean(xs):
    s = 0
    for x in xs:
        s += x
    return s / len(xs)
"""

MEAN_SEXPR = "(lambda (xs) (div (foldl add 0 xs) (length xs)))"


def _mean_fn(xs):
    s = 0
    for x in xs:
        s += x
    return s / len(xs)


@pytest.fixture
def store(tmp_path):
    return SchemeStore(tmp_path)


class TestCompile:
    def test_compile_once_second_is_store_served(self, store):
        before = api.synthesis_count()
        first = api.compile(MEAN_SRC, store=store, name="mean")
        assert not first.from_store
        assert api.synthesis_count() == before + 1

        second = api.compile(MEAN_SRC, store=store, name="mean")
        assert second.from_store
        assert api.synthesis_count() == before + 1  # no synthesis ran
        assert second.scheme == first.scheme
        assert second.key == first.key

    def test_cross_process_shape(self, store):
        # A "new process" is just a fresh store handle over the same root.
        api.compile(MEAN_SRC, store=store, name="mean")
        fresh = SchemeStore(store.root)
        before = api.synthesis_count()
        served = api.compile(MEAN_SRC, store=fresh, name="mean")
        assert served.from_store and api.synthesis_count() == before

    def test_accepts_callable_sexpr_and_program(self, store):
        by_fn = api.compile(_mean_fn, store=store)
        assert by_fn.name == "_mean_fn"
        by_sexpr = api.compile(MEAN_SEXPR, store=store)
        by_program = api.compile(
            get_benchmark("mean").program, store=store, name="mean"
        )
        # Input forms differ syntactically (store entries are per canonical
        # program), but all compile to equivalent online behaviour.
        stream = [Fraction(v) for v in (2, 4, 9)]
        assert by_fn(stream) == by_sexpr(stream) == by_program(stream) == 5

    def test_same_function_source_is_one_store_entry(self, store):
        api.compile(MEAN_SRC, store=store, name="a")
        before = api.synthesis_count()
        # Task identity is the canonical program, not the name.
        hit = api.compile(MEAN_SRC, store=store, name="b")
        assert hit.from_store and api.synthesis_count() == before

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            api.compile(42, store=None)

    def test_store_none_always_synthesizes(self):
        before = api.synthesis_count()
        api.compile(MEAN_SRC, store=None)
        api.compile(MEAN_SRC, store=None)
        assert api.synthesis_count() == before + 2

    def test_force_recompiles(self, store):
        api.compile(MEAN_SRC, store=store)
        before = api.synthesis_count()
        forced = api.compile(MEAN_SRC, store=store, force=True)
        assert api.synthesis_count() == before + 1
        assert not forced.from_store

    def test_config_change_misses(self, store):
        api.compile(MEAN_SRC, store=store)
        before = api.synthesis_count()
        api.compile(
            MEAN_SRC, store=store, config=SynthesisConfig(unroll_depth=4)
        )
        assert api.synthesis_count() == before + 1

    def test_compile_error_carries_report(self):
        with pytest.raises(api.CompileError) as exc_info:
            api.compile(
                MEAN_SRC, store=None, config=SynthesisConfig(timeout_s=1e-9)
            )
        assert exc_info.value.report.failure_reason

    def test_compiled_scheme_batch_call(self, store):
        compiled = api.compile(MEAN_SRC, store=store)
        stream = [Fraction(v) for v in (2, 4, 6)]
        assert compiled(stream) == 4
        assert list(compiled.run(stream)) == [2, 3, 4]

    def test_save_load(self, store, tmp_path):
        compiled = api.compile(MEAN_SRC, store=store)
        path = tmp_path / "mean.scheme.json"
        compiled.save(path)
        loaded = api.CompiledScheme.load(path)
        assert loaded.scheme == compiled.scheme
        # A file load is not a store hit; the flag stays honest.
        assert not loaded.from_store


class TestStreamify:
    def test_decorator_is_lazy_then_compiles_once(self, store):
        before = api.synthesis_count()

        @api.streamify(store=store)
        def mean(xs):
            s = 0
            for x in xs:
                s += x
            return s / len(xs)

        assert api.synthesis_count() == before  # decoration is free
        assert mean(2) == 2
        assert mean(4) == 3
        assert mean.value == 3 and mean.count == 2
        assert api.synthesis_count() == before + 1

        mean.reset()
        assert mean.count == 0
        assert mean.push(10) == 10

    def test_matches_batch_function(self, store):
        @api.streamify(store=store)
        def total(xs):
            s = 0
            for x in xs:
                s += x
            return s

        values = [Fraction(v) for v in (1, 2, 3, 4)]
        online = [total(v) for v in values]
        assert online[-1] == total.batch(values)

    def test_independent_operators(self, store):
        @api.streamify(store=store)
        def total(xs):
            s = 0
            for x in xs:
                s += x
            return s

        a, b = total.operator(), total.operator()
        a.push(5)
        assert a.value == 5 and b.value == 0

    def test_second_stream_function_hits_store(self, store):
        def total(xs):
            s = 0
            for x in xs:
                s += x
            return s

        api.streamify(total, store=store)(1)
        before = api.synthesis_count()
        again = api.streamify(total, store=store)
        assert again(1) == 1
        assert api.synthesis_count() == before  # store-served

    def test_extra_params(self, store):
        @api.streamify(store=store, extra={"rate": Fraction(2)})
        def scaled(xs, rate):
            s = 0
            for x in xs:
                s += x * rate
            return s

        assert scaled(3) == 6
        assert scaled(4) == 14


class TestCli:
    def compile_twice(self, tmp_path, capsys):
        out = tmp_path / "s.json"
        argv = [
            "compile", "examples/batch_mean.py", "-o", str(out),
            "--store-dir", str(tmp_path / "store"), "--timeout", "60",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        return out, first, second

    def test_compile_run_end_to_end(self, tmp_path, capsys):
        """The acceptance pipeline: repro compile ... && repro run ... with
        the second compile served from the scheme store."""
        out, first, second = self.compile_twice(tmp_path, capsys)
        assert "scheme store: miss" in first
        assert "scheme store: hit" in second and "without synthesis" in second
        assert out.exists()

        before = api.synthesis_count()
        assert main(["run", str(out), "--source", "counter:100"]) == 0
        run_out = capsys.readouterr().out
        assert "consumed 100 elements" in run_out
        assert "99/2" in run_out  # mean of 0..99
        assert api.synthesis_count() == before  # run never synthesizes

    def test_run_keyed(self, tmp_path, capsys):
        out, _, _ = self.compile_twice(tmp_path, capsys)
        code = main([
            "run", str(out), "--source", "bids:40",
            "--key-field", "1", "--value-field", "0",
        ])
        assert code == 0
        run_out = capsys.readouterr().out
        assert "over" in run_out and "keys" in run_out

    def test_run_checkpoint_resume(self, tmp_path, capsys):
        out, _, _ = self.compile_twice(tmp_path, capsys)
        ck = tmp_path / "ck.json"
        assert main(["run", str(out), "--source", "counter:50",
                     "--checkpoint", str(ck)]) == 0
        capsys.readouterr()
        assert main(["run", str(out), "--source", "counter:50:50",
                     "--resume", str(ck)]) == 0
        resumed = capsys.readouterr().out
        assert "consumed 100 elements" in resumed
        assert "99/2" in resumed  # identical to the uninterrupted run

    def test_run_rejects_bad_scheme(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["run", str(bad), "--source", "counter:5"]) == 2

    def test_run_rejects_bad_source(self, tmp_path, capsys):
        out, _, _ = self.compile_twice(tmp_path, capsys)
        assert main(["run", str(out), "--source", "warp:10"]) == 2

    def test_compile_stdout_without_output_is_pure_json(self, tmp_path, capsys):
        # `repro compile f.py > s.json` must produce a loadable scheme file:
        # diagnostics go to stderr when the JSON goes to stdout.
        from repro.core.scheme import OnlineScheme

        argv = [
            "compile", "examples/batch_mean.py",
            "--store-dir", str(tmp_path), "--timeout", "60",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        scheme = OnlineScheme.loads(captured.out)
        assert scheme.final([2, 4, 6]) == 4
        assert "scheme store:" in captured.err

    def test_run_rejects_pipeline_checkpoint(self, tmp_path, capsys):
        from repro.runtime import StreamPipeline, save_checkpoint
        from repro.core.scheme import OnlineScheme as _OS

        out, _, _ = self.compile_twice(tmp_path, capsys)
        pipeline = StreamPipeline({"mean": api.CompiledScheme.load(out).operator()})
        ck = tmp_path / "pipe.ck.json"
        save_checkpoint(pipeline, ck)
        assert main(["run", str(out), "--source", "counter:5",
                     "--resume", str(ck)]) == 2
        assert "cannot resume" in capsys.readouterr().err
        assert isinstance(_OS.load(out), _OS)

    def test_keyed_resume_without_flag_mentions_key_field(self, tmp_path, capsys):
        out, _, _ = self.compile_twice(tmp_path, capsys)
        ck = tmp_path / "keyed.ck.json"
        assert main(["run", str(out), "--source", "bids:20",
                     "--key-field", "1", "--value-field", "0",
                     "--checkpoint", str(ck)]) == 0
        capsys.readouterr()
        assert main(["run", str(out), "--source", "bids:20",
                     "--resume", str(ck)]) == 2
        err = capsys.readouterr().err
        assert "--key-field" in err  # CLI vocabulary, not key_fn=

    def test_resume_applies_fresh_extra_bindings(self, tmp_path, capsys):
        from repro.core.scheme import OnlineScheme
        from repro.ir.dsl import add, mul
        from repro.ir.nodes import OnlineProgram
        from repro.runtime import OnlineOperator, save_checkpoint

        scheme = OnlineScheme(
            (0,),
            OnlineProgram(("s",), "x", (add("s", mul("x", "rate")),), ("rate",)),
        )
        spath = tmp_path / "rate.scheme.json"
        scheme.save(spath)
        op = OnlineOperator(scheme, extra={"rate": 1})
        op.push_many([1, 2])  # state 3 under rate=1
        ck = tmp_path / "rate.ck.json"
        save_checkpoint(op, ck)
        assert main(["run", str(spath), "--source", "list:10",
                     "--resume", str(ck), "--extra", "rate=2"]) == 0
        run_out = capsys.readouterr().out
        assert "result: 23" in run_out  # 3 + 10*2, not 3 + 10*1

    def test_cache_stats_clear_gc(self, tmp_path, capsys):
        root = tmp_path / "store"
        self.compile_twice(tmp_path, capsys)
        assert main(["cache", "stats", "--cache-dir", str(root)]) == 0
        stats = capsys.readouterr().out
        assert "schemes: 1 entries" in stats

        assert main(["cache", "gc", "--older-than", "30d",
                     "--cache-dir", str(root)]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", str(root)]) == 0
        assert "schemes: removed 1" in capsys.readouterr().out

        assert main(["cache", "stats", "--cache-dir", str(root)]) == 0
        assert "schemes: 0 entries" in capsys.readouterr().out

    def test_cache_gc_requires_age(self, tmp_path, capsys):
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 2

    def test_cache_gc_rejects_bad_age(self, tmp_path, capsys):
        assert main(["cache", "gc", "--older-than", "soon",
                     "--cache-dir", str(tmp_path)]) == 2
