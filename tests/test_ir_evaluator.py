"""Unit tests for the definitional interpreter."""

from fractions import Fraction

import pytest

from repro.ir.dsl import (
    XS,
    add,
    div,
    ffilter,
    fmap,
    fold,
    fold_max,
    fold_sum,
    gt,
    ite,
    lam,
    length,
    lt,
    mul,
    powi,
    program,
    proj,
    sub,
    tup,
)
from repro.ir.evaluator import EvaluationError, evaluate, run_offline, step_online
from repro.ir.nodes import Const, Let, OnlineProgram, Snoc, Var


class TestScalarEvaluation:
    def test_constant(self):
        assert evaluate(Const(5), {}) == 5

    def test_variable_lookup(self):
        assert evaluate(Var("a"), {"a": 7}) == 7

    def test_unbound_variable_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(Var("nope"), {})

    def test_arithmetic_exact(self):
        expr = div(add(1, 2), 4)
        assert evaluate(expr, {}) == Fraction(3, 4)

    def test_safe_division_by_zero(self):
        assert evaluate(div(5, 0), {}) == 0

    def test_pow_integer(self):
        assert evaluate(powi(Fraction(1, 2), 2), {}) == Fraction(1, 4)

    def test_conditional_branches(self):
        expr = ite(lt("a", 0), sub(0, "a"), "a")
        assert evaluate(expr, {"a": -3}) == 3
        assert evaluate(expr, {"a": 3}) == 3

    def test_let_binding(self):
        expr = Let("t", add(1, 2), mul("t", "t"))
        assert evaluate(expr, {}) == 9

    def test_let_shadowing(self):
        expr = Let("t", Const(1), Let("t", Const(2), Var("t")))
        assert evaluate(expr, {}) == 2

    def test_tuple_and_projection(self):
        expr = proj(tup(1, add(2, 3)), 1)
        assert evaluate(expr, {}) == 5


class TestListCombinators:
    def test_fold_sum(self):
        assert evaluate(fold_sum(XS), {"xs": [1, 2, 3]}) == 6

    def test_fold_on_empty_list_gives_init(self):
        assert evaluate(fold_sum(XS), {"xs": []}) == 0

    def test_fold_left_associativity(self):
        # foldl (-) 0 [1,2,3] = ((0-1)-2)-3 = -6
        f = fold(lam("a", "b", sub("a", "b")), 0, XS)
        assert evaluate(f, {"xs": [1, 2, 3]}) == -6

    def test_map(self):
        expr = fold_sum(fmap(lam("v", mul("v", "v")), XS))
        assert evaluate(expr, {"xs": [1, 2, 3]}) == 14

    def test_filter(self):
        expr = length(ffilter(lam("v", gt("v", 0)), XS))
        assert evaluate(expr, {"xs": [1, -2, 3, -4, 5]}) == 3

    def test_nested_combinators(self):
        expr = fold_sum(fmap(lam("v", add("v", 1)), ffilter(lam("v", gt("v", 0)), XS)))
        assert evaluate(expr, {"xs": [1, -1, 2]}) == 5

    def test_snoc(self):
        assert evaluate(Snoc(XS, Const(9)), {"xs": [1, 2]}) == [1, 2, 9]

    def test_length(self):
        assert evaluate(length(XS), {"xs": [5, 5, 5]}) == 3

    def test_fold_max_sentinel(self):
        assert evaluate(fold_max(XS), {"xs": []}) == -(10**9)
        assert evaluate(fold_max(XS), {"xs": [3, 9, 1]}) == 9


class TestProgramExecution:
    def test_run_offline_mean(self):
        mean = program(div(fold_sum(XS), length(XS)))
        assert run_offline(mean, [1, 2, 3, 4]) == Fraction(5, 2)

    def test_run_offline_empty(self):
        mean = program(div(fold_sum(XS), length(XS)))
        assert run_offline(mean, []) == 0  # safe division

    def test_extra_params(self):
        count_above = program(
            length(ffilter(lam("v", gt("v", "t")), XS)), extra=("t",)
        )
        assert run_offline(count_above, [1, 5, 9], {"t": 4}) == 2

    def test_step_online(self):
        prog = OnlineProgram(("s", "n"), "x", (add("s", "x"), add("n", 1)))
        assert step_online(prog, (10, 3), 5) == (15, 4)

    def test_step_online_arity_mismatch(self):
        prog = OnlineProgram(("s",), "x", (add("s", "x"),))
        with pytest.raises(EvaluationError):
            step_online(prog, (1, 2), 5)
