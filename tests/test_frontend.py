"""Tests for the Python-to-IR frontend."""

from fractions import Fraction

import pytest

from repro.frontend import FrontendError, python_to_ir
from repro.ir import run_offline
from repro.ir.nodes import Fold, MakeTuple, Proj
from repro.ir.traversal import iter_subexprs


def translate_and_run(source: str, xs, extra=None):
    program = python_to_ir(source)
    return run_offline(program, xs, extra or {})


class TestBasics:
    def test_sum_loop(self):
        src = "def f(xs):\n    s = 0\n    for x in xs:\n        s += x\n    return s\n"
        assert translate_and_run(src, [1, 2, 3]) == 6

    def test_mean(self):
        src = (
            "def f(xs):\n"
            "    s = 0\n"
            "    for x in xs:\n"
            "        s = s + x\n"
            "    return s / len(xs)\n"
        )
        assert translate_and_run(src, [1, 2, 3, 4]) == Fraction(5, 2)

    def test_variance_matches_figure_2a(self):
        src = (
            "def variance(xs):\n"
            "    s = 0\n"
            "    for x in xs:\n"
            "        s += x\n"
            "    avg = s / len(xs)\n"
            "    sq = 0\n"
            "    for x in xs:\n"
            "        sq += (x - avg) ** 2\n"
            "    return sq / len(xs)\n"
        )
        assert translate_and_run(src, [1, 2, 3, 4]) == Fraction(5, 4)

    def test_sum_builtin(self):
        src = "def f(xs):\n    return sum(xs) / len(xs)\n"
        assert translate_and_run(src, [2, 4]) == 3

    def test_generator_expression(self):
        src = "def f(xs):\n    return sum(x * x for x in xs)\n"
        assert translate_and_run(src, [1, 2, 3]) == 14

    def test_list_comprehension_with_guard(self):
        src = "def f(xs):\n    return len([x for x in xs if x > 0])\n"
        assert translate_and_run(src, [1, -2, 3]) == 2

    def test_min_max_builtins(self):
        src = "def f(xs):\n    return max(xs) - min(xs)\n"
        assert translate_and_run(src, [3, 9, 1]) == 8

    def test_conditional_expression_in_loop(self):
        src = (
            "def f(xs):\n"
            "    c = 0\n"
            "    for x in xs:\n"
            "        c = c + 1 if x > 0 else c\n"
            "    return c\n"
        )
        assert translate_and_run(src, [5, -1, 2]) == 2

    def test_extra_parameters(self):
        src = (
            "def f(xs, t):\n"
            "    c = 0\n"
            "    for x in xs:\n"
            "        c = c + 1 if x > t else c\n"
            "    return c\n"
        )
        assert translate_and_run(src, [1, 5, 9], {"t": 4}) == 2

    def test_math_functions(self):
        src = "def f(xs):\n    import_unused = 0\n    return abs(sum(xs))\n"
        # simple expression statements are skipped; abs works
        src = "def f(xs):\n    return abs(sum(xs))\n"
        assert translate_and_run(src, [-1, -2]) == 3

    def test_power_operator(self):
        src = "def f(xs):\n    return sum(xs) ** 2\n"
        assert translate_and_run(src, [1, 2]) == 9

    def test_unary_minus(self):
        src = "def f(xs):\n    return -sum(xs)\n"
        assert translate_and_run(src, [1, 2]) == -3


class TestLoopTranslation:
    def test_independent_accumulators_become_separate_folds(self):
        src = (
            "def f(xs):\n"
            "    s = 0\n"
            "    q = 0\n"
            "    for x in xs:\n"
            "        s += x\n"
            "        q += x * x\n"
            "    return q - s\n"
        )
        program = python_to_ir(src)
        folds = [e for e in iter_subexprs(program.body) if isinstance(e, Fold)]
        assert len(folds) == 2
        assert run_offline(program, [1, 2]) == 5 - 3

    def test_coupled_accumulators_become_tuple_fold(self):
        # b reads a inside the loop -> single tuple-accumulator fold.
        src = (
            "def f(xs):\n"
            "    a = 0\n"
            "    b = 0\n"
            "    for x in xs:\n"
            "        b = b + a\n"
            "        a = a + x\n"
            "    return b\n"
        )
        program = python_to_ir(src)
        assert any(isinstance(e, MakeTuple) for e in iter_subexprs(program.body))
        assert any(isinstance(e, Proj) for e in iter_subexprs(program.body))
        # reference semantics
        def ref(xs):
            a = b = 0
            for x in xs:
                b = b + a
                a = a + x
            return b

        for xs in ([], [1], [1, 2, 3], [5, -2, 7, 0]):
            assert run_offline(program, xs) == ref(xs)


class TestErrors:
    def test_uninitialized_accumulator(self):
        src = "def f(xs):\n    for x in xs:\n        s += x\n    return s\n"
        with pytest.raises(FrontendError):
            python_to_ir(src)

    def test_if_statement_in_loop_rejected_with_hint(self):
        src = (
            "def f(xs):\n"
            "    c = 0\n"
            "    for x in xs:\n"
            "        if x > 0:\n"
            "            c += 1\n"
            "    return c\n"
        )
        with pytest.raises(FrontendError):
            python_to_ir(src)

    def test_no_return(self):
        src = "def f(xs):\n    s = 0\n"
        with pytest.raises(FrontendError):
            python_to_ir(src)

    def test_two_functions_rejected(self):
        src = "def f(xs):\n    return 0\n\ndef g(xs):\n    return 1\n"
        with pytest.raises(FrontendError):
            python_to_ir(src)

    def test_while_loop_rejected(self):
        src = "def f(xs):\n    while True:\n        pass\n    return 0\n"
        with pytest.raises(FrontendError):
            python_to_ir(src)


class TestEndToEnd:
    def test_suite_python_sources_match_ir(self):
        """Benchmarks that carry Python source must agree with their IR."""
        from repro.suites import all_benchmarks

        for bench in all_benchmarks():
            if bench.python_source is None:
                continue
            translated = python_to_ir(bench.python_source)
            for xs in ([], [1], [1, 2, 3, 4], [2, 2, 2]):
                assert run_offline(translated, xs) == run_offline(
                    bench.program, xs
                ), bench.name
