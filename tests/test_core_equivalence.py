"""Tests for the testing-based equivalence oracles."""

from fractions import Fraction

from repro.core import SynthesisConfig
from repro.core.equivalence import (
    check_expr_equivalence,
    check_inductiveness,
    check_scheme_equivalence,
    make_rng,
    random_element,
    random_list,
    random_rational,
    rfs_environment,
)
from repro.core.rfs import construct_rfs
from repro.core.scheme import OnlineScheme
from repro.ir.dsl import XS, add, div, fold_sum, length, mul, program, sub
from repro.ir.nodes import OnlineProgram, Var


def cfg(**kw):
    return SynthesisConfig(**kw)


def mean_prog():
    return program(div(fold_sum(XS), length(XS)))


class TestGenerators:
    def test_deterministic_rng(self):
        a = [random_rational(make_rng(cfg(), "s")) for _ in range(10)]
        b = [random_rational(make_rng(cfg(), "s")) for _ in range(10)]
        assert a == b

    def test_salt_changes_stream(self):
        a = [random_rational(make_rng(cfg(), "s1")) for _ in range(10)]
        b = [random_rational(make_rng(cfg(), "s2")) for _ in range(10)]
        assert a != b

    def test_zero_frequency(self):
        """The distribution must hit exact zeros (safe-division probes)."""
        rng = make_rng(cfg(), "zeros")
        values = [random_rational(rng) for _ in range(300)]
        assert values.count(Fraction(0)) >= 5

    def test_tuple_elements(self):
        rng = make_rng(cfg(), "t")
        elem = random_element(rng, 2)
        assert isinstance(elem, tuple) and len(elem) == 2

    def test_list_bounds(self):
        rng = make_rng(cfg(), "l")
        for _ in range(50):
            xs = random_list(rng, max_len=4, min_len=1)
            assert 1 <= len(xs) <= 4


class TestRfsEnvironment:
    def test_bindings_match_specs(self):
        rfs = construct_rfs(mean_prog())
        env = rfs_environment(rfs, [1, 2, 3], {})
        assert env is not None
        assert env[rfs.result_param] == 2  # mean of [1,2,3]


class TestExprEquivalence:
    def test_accepts_correct_candidate(self):
        rfs = construct_rfs(mean_prog())
        sum_name = rfs.param_for_spec(fold_sum(XS))
        candidate = add(Var(sum_name), Var("x"))
        assert check_expr_equivalence(fold_sum(XS), candidate, rfs, cfg())

    def test_rejects_wrong_candidate(self):
        rfs = construct_rfs(mean_prog())
        sum_name = rfs.param_for_spec(fold_sum(XS))
        candidate = sub(Var(sum_name), Var("x"))
        assert not check_expr_equivalence(fold_sum(XS), candidate, rfs, cfg())

    def test_rejects_safe_division_mismatch(self):
        # (x*y + 1)/x equals y + 1/x except at x = 0; the oracle must see it.
        rfs = construct_rfs(program(fold_sum(XS)))
        y = rfs.result_param
        recombined = div(add(mul("x", Var(y)), 1), "x")
        spec = fold_sum(XS)  # not actually this spec; candidate is just wrong
        assert not check_expr_equivalence(spec, recombined, rfs, cfg())


class TestSchemeEquivalence:
    def good_scheme(self):
        return OnlineScheme(
            (0, 0),
            OnlineProgram(
                ("m", "n"),
                "x",
                (div(add(mul("m", "n"), "x"), add("n", 1)), add("n", 1)),
            ),
        )

    def bad_scheme(self):
        return OnlineScheme(
            (0, 0),
            OnlineProgram(
                ("m", "n"),
                "x",
                (div(add("m", "x"), add("n", 1)), add("n", 1)),
            ),
        )

    def test_accepts_correct(self):
        assert check_scheme_equivalence(mean_prog(), self.good_scheme(), cfg())

    def test_rejects_wrong(self):
        assert not check_scheme_equivalence(mean_prog(), self.bad_scheme(), cfg())

    def test_checks_initializer(self):
        scheme = OnlineScheme(
            (99, 0),
            self.good_scheme().program,
        )
        assert not check_scheme_equivalence(mean_prog(), scheme, cfg())


class TestInductiveness:
    def test_mean_scheme_inductive(self):
        rfs = construct_rfs(mean_prog(), add_length=True)
        # Build the online program matching the RFS layout exactly:
        # y1 = mean, y2 = sum, y3 = length.
        y1, y2, y3 = rfs.names
        scheme = OnlineScheme(
            (0, 0, 0),
            OnlineProgram(
                (y1, y2, y3),
                "x",
                (
                    div(add(Var(y2), Var("x")), add(Var(y3), 1)),
                    add(Var(y2), Var("x")),
                    add(Var(y3), 1),
                ),
            ),
        )
        assert check_inductiveness(rfs, scheme, cfg())

    def test_non_inductive_rejected(self):
        rfs = construct_rfs(mean_prog())
        y1, y2, y3 = rfs.names
        scheme = OnlineScheme(
            (0, 0, 0),
            OnlineProgram(
                (y1, y2, y3),
                "x",
                (Var(y1), add(Var(y2), Var("x")), add(Var(y3), 2)),
            ),
        )
        assert not check_inductiveness(rfs, scheme, cfg())
