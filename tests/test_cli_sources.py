"""Tests for the CLI and the synthetic stream sources."""

from fractions import Fraction

import pytest

from repro.cli import build_parser, main
from repro.runtime.sources import (
    bids,
    constant,
    counter,
    gaussian_like,
    merge_round_robin,
    pairs,
    random_walk,
    sawtooth,
)


class TestSources:
    def test_constant(self):
        assert list(constant(5, 3)) == [5, 5, 5]

    def test_counter(self):
        assert list(counter(4)) == [0, 1, 2, 3]

    def test_sawtooth_deterministic(self):
        assert list(sawtooth(10, noise=2, seed=1)) == list(
            sawtooth(10, noise=2, seed=1)
        )

    def test_sawtooth_period(self):
        values = list(sawtooth(34, period=17))
        assert values[0] == values[17]

    def test_random_walk_steps_bounded(self):
        values = list(random_walk(50, step=2))
        diffs = [b - a for a, b in zip([Fraction(0)] + values, values)]
        assert all(abs(d) <= 2 for d in diffs)

    def test_gaussian_like_exact(self):
        assert all(isinstance(v, Fraction) for v in gaussian_like(20))

    def test_bids_shape(self):
        for price, category in bids(20, low=10, high=20, categories=3):
            assert 10 <= price <= 20
            assert 1 <= category <= 3

    def test_pairs_near_line(self):
        for x, y in pairs(20, slope=Fraction(2), intercept=Fraction(1), noise=0):
            assert y == 2 * x + 1

    def test_merge_round_robin(self):
        merged = list(merge_round_robin(iter([1, 2]), iter([10])))
        assert merged == [1, 10, 2]


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["list", "--domain", "stats"])
        assert args.command == "list"

    def test_list_runs(self, capsys):
        assert main(["list", "--domain", "auction"]) == 0
        out = capsys.readouterr().out
        assert "q_highest_bid" in out

    def test_synthesize_benchmark(self, capsys):
        assert main(["synthesize", "--benchmark", "sum", "--timeout", "30"]) == 0
        out = capsys.readouterr().out
        assert "initializer" in out

    def test_synthesize_requires_input(self, capsys):
        assert main(["synthesize"]) == 2

    def test_synthesize_python_file(self, tmp_path, capsys):
        src = tmp_path / "prog.py"
        src.write_text(
            "def total(xs):\n    s = 0\n    for x in xs:\n        s += x\n    return s\n"
        )
        assert main(["synthesize", "--python", str(src), "--timeout", "30"]) == 0

    def test_synthesize_sexpr_file(self, tmp_path, capsys):
        src = tmp_path / "prog.sexp"
        src.write_text("(lambda (xs) (foldl add 0 xs))")
        assert main(["synthesize", "--sexpr", str(src), "--timeout", "30"]) == 0

    def test_bench_single_task(self, capsys):
        code = main(
            ["bench", "--solver", "opera", "--task", "max", "--timeout", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1/1 solved" in out

    def test_bench_unknown_solver_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "--solver", "z3"])


class TestKeyedLoadGenSources:
    """The seeded keyed/infinite load-generator specs that feed `repro
    serve` and `repro bench serve` (PR 7)."""

    def test_zipf_keys_shape_and_bounds(self):
        from repro.runtime.sources import zipf_keys

        for value, key in zipf_keys(100, keys=8, low=5, high=9):
            assert isinstance(value, Fraction) and 5 <= value <= 9
            assert isinstance(key, int) and 1 <= key <= 8

    def test_zipf_keys_deterministic_per_seed(self):
        from repro.runtime.sources import zipf_keys

        assert list(zipf_keys(50, keys=10, seed=4)) == list(
            zipf_keys(50, keys=10, seed=4)
        )
        assert list(zipf_keys(50, keys=10, seed=4)) != list(
            zipf_keys(50, keys=10, seed=5)
        )

    def test_zipf_keys_skewed_toward_low_ranks(self):
        from collections import Counter

        from repro.runtime.sources import zipf_keys

        counts = Counter(key for _, key in zipf_keys(3000, keys=10, skew=1.2))
        assert counts[1] > counts[10]  # rank 1 is the hot key
        assert counts[1] > 3000 / 10  # and hotter than uniform

    def test_zipf_keys_infinite_without_n(self):
        import itertools

        from repro.runtime.sources import zipf_keys

        assert len(list(itertools.islice(zipf_keys(), 25))) == 25

    def test_zipf_keys_rejects_no_keys(self):
        from repro.runtime.sources import zipf_keys

        with pytest.raises(ValueError):
            next(zipf_keys(1, keys=0))

    def test_bids_infinite_without_n(self):
        import itertools

        assert len(list(itertools.islice(bids(), 25))) == 25

    def test_bids_seed_is_second_positional(self):
        # bids:N:SEED — the spec grammar varies traffic via the seed.
        assert list(bids(10, 1)) == list(bids(10, seed=1))
        assert list(bids(10, 1)) != list(bids(10, 2))

    def test_specs_build_keyed_sources(self):
        from repro.runtime.sources import from_spec

        records = list(from_spec("zipf-keys:20:5:9"))
        assert len(records) == 20
        assert all(1 <= key <= 5 for _, key in records)
        assert records == list(from_spec("zipf-keys:20:5:9"))

    def test_unbounded_specs_need_opt_in(self):
        from repro.runtime.sources import from_spec

        for spec in ("zipf-keys", "bids", "zipf-keys:"):
            with pytest.raises(ValueError, match="unbounded"):
                from_spec(spec)
        import itertools

        stream = from_spec("zipf-keys", allow_unbounded=True)
        assert len(list(itertools.islice(stream, 7))) == 7

    def test_spec_grammar_documents_every_source(self):
        from repro.runtime.sources import SPEC_GRAMMAR, SPEC_SOURCES

        for name in SPEC_SOURCES:
            assert name in SPEC_GRAMMAR
        assert "list:" in SPEC_GRAMMAR

    def test_run_help_shows_spec_grammar(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "zipf-keys" in out and "source specs" in out

    def test_serve_help_shows_spec_grammar(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "zipf-keys" in out and "source specs" in out
