"""Tests for the parallel suite runner and the persistent result cache."""

import os
import pickle
import time
from dataclasses import replace

import pytest

from repro.baselines import OperaFull
from repro.core import SynthesisConfig
from repro.core.report import SynthesisReport
from repro.evaluation import (
    ResultCache,
    Task,
    default_timeout,
    default_workers,
    execute_tasks,
    resolve_cache,
    run_suite,
)
from repro.evaluation.runner import SuiteResult
from repro.suites import get_benchmark


class RunawaySolver:
    """Ignores the cooperative budget entirely — must be hard-killed."""

    name = "runaway"

    def synthesize(self, program, config, task_name):
        while True:
            time.sleep(0.02)


class CrashingSolver:
    name = "crashy"

    def synthesize(self, program, config, task_name):
        raise RuntimeError("boom")


class DyingSolver:
    """Exits without reporting, as a segfaulting native helper would."""

    name = "dying"

    def synthesize(self, program, config, task_name):
        os._exit(3)


def small_suite():
    return [get_benchmark(n) for n in ("sum", "mean", "max")]


class TestHardTimeout:
    def test_runaway_worker_is_killed_at_budget(self):
        tasks = [
            Task(0, RunawaySolver(), get_benchmark("sum"),
                 SynthesisConfig(timeout_s=0.6))
        ]
        start = time.monotonic()
        [(_, report)] = list(execute_tasks(tasks, workers=1, kill_grace_s=0.2))
        wall = time.monotonic() - start
        assert not report.success
        assert "Timeout" in report.failure_reason
        assert report.elapsed_s == 0.6  # the budget, as in the paper's regime
        assert wall < 5.0

    def test_siblings_not_stalled_by_runaway(self):
        """A runaway task must not delay other workers past its own budget."""
        runaway = Task(0, RunawaySolver(), get_benchmark("sum"),
                       SynthesisConfig(timeout_s=1.0))
        quick = [
            Task(i + 1, OperaFull(), bench, SynthesisConfig(timeout_s=20))
            for i, bench in enumerate(small_suite())
        ]
        start = time.monotonic()
        results = dict()
        for task, report in execute_tasks([runaway] + quick, workers=4):
            results[task.index] = report
        wall = time.monotonic() - start
        assert not results[0].success
        assert all(results[i].success for i in (1, 2, 3))
        assert wall < 10.0

    def test_crashing_solver_reports_failure(self):
        tasks = [Task(0, CrashingSolver(), get_benchmark("sum"),
                      SynthesisConfig(timeout_s=5))]
        [(_, report)] = list(execute_tasks(tasks, workers=1))
        assert not report.success
        assert "RuntimeError" in report.failure_reason

    def test_dead_worker_reports_crash(self):
        tasks = [Task(0, DyingSolver(), get_benchmark("sum"),
                      SynthesisConfig(timeout_s=5))]
        [(_, report)] = list(execute_tasks(tasks, workers=1))
        assert not report.success
        assert "WorkerCrashed" in report.failure_reason

    def test_run_suite_applies_hard_kill(self):
        result = run_suite(
            RunawaySolver(), small_suite(), SynthesisConfig(timeout_s=0.5),
            workers=3,
        )
        assert len(result.reports) == 3
        assert all("Timeout" in r.failure_reason
                   for r in result.reports.values())


class TestDeterminism:
    def test_parallel_equals_sequential(self):
        config = SynthesisConfig(timeout_s=20)
        seq = run_suite(OperaFull(), small_suite(), config)
        par = run_suite(OperaFull(), small_suite(), config, workers=3)
        assert list(par.reports) == list(seq.reports)  # benchmark order
        for name, expected in seq.reports.items():
            got = par.reports[name]
            assert got.success == expected.success
            assert got.scheme == expected.scheme
            assert got.holes == expected.holes
            assert got.method_counts == expected.method_counts
            assert got.failure_reason == expected.failure_reason

    def test_report_and_config_are_picklable(self):
        config = SynthesisConfig(timeout_s=5)
        config.start_clock()
        clone = pickle.loads(pickle.dumps(config))
        assert clone._deadline is None  # deadlines never cross processes
        assert clone.fingerprint() == config.fingerprint()

        bench = get_benchmark("mean")
        report = OperaFull().synthesize(
            bench.program, SynthesisConfig(timeout_s=20), "mean"
        )
        assert pickle.loads(pickle.dumps(report)).scheme == report.scheme


class TestCache:
    def _run(self, cache, config=None, solver=None):
        return run_suite(
            solver or OperaFull(),
            small_suite(),
            config or SynthesisConfig(timeout_s=20),
            cache=cache,
        )

    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = self._run(cache)
        assert (cache.hits, cache.misses) == (0, 3)
        again = self._run(cache)
        assert cache.hits == 3
        for name in first.reports:
            assert again.reports[name].scheme == first.reports[name].scheme
            # Cached reports replay even elapsed_s verbatim.
            assert again.reports[name].elapsed_s == first.reports[name].elapsed_s

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._run(cache)
        cache.hits = cache.misses = 0
        self._run(cache, config=SynthesisConfig(timeout_s=20, unroll_depth=4))
        assert cache.hits == 0 and cache.misses == 3

    def test_timeout_change_does_not_invalidate_successes(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._run(cache, config=SynthesisConfig(timeout_s=20))
        cache.hits = cache.misses = 0
        self._run(cache, config=SynthesisConfig(timeout_s=30))
        assert cache.hits == 3

    def test_failures_rerun_under_larger_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        bench = get_benchmark("sum")
        key = cache.task_key("opera", bench, SynthesisConfig(timeout_s=1))
        failure = SynthesisReport("sum", False, 1.0, failure_reason="Timeout")
        cache.put(key, 1.0, failure)
        assert cache.get(key, 0.5) is not None  # smaller budget: still fails
        assert cache.get(key, 5.0) is None      # larger budget: worth a retry

    def test_benchmark_fingerprint_keys_task_content(self):
        sum_bench = get_benchmark("sum")
        assert sum_bench.source_fingerprint() == sum_bench.source_fingerprint()
        assert (sum_bench.source_fingerprint()
                != get_benchmark("mean").source_fingerprint())
        # Doc-only edits do not invalidate cached results.
        redoc = replace(sum_bench, description="something else")
        assert redoc.source_fingerprint() == sum_bench.source_fingerprint()

    def test_config_fingerprint_ignores_budget_only(self):
        base = SynthesisConfig()
        assert base.fingerprint() == SynthesisConfig(timeout_s=999).fingerprint()
        assert base.fingerprint() != SynthesisConfig(unroll_depth=4).fingerprint()
        assert base.fingerprint() != SynthesisConfig(seed=7).fingerprint()

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        bench = get_benchmark("sum")
        key = cache.task_key("opera", bench, SynthesisConfig(timeout_s=5))
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(key, 5.0) is None

    def test_foreign_entry_shapes_degrade_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        bench = get_benchmark("sum")
        key = cache.task_key("opera", bench, SynthesisConfig(timeout_s=5))
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        for foreign in ({"a": 1}, (1, 2, 3), ("x", SynthesisReport("s", True, 0.1))):
            path.write_bytes(pickle.dumps(foreign))
            assert cache.get(key, 5.0) is None

    def test_worker_crashes_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        suite = run_suite(
            DyingSolver(), [get_benchmark("sum")],
            SynthesisConfig(timeout_s=5), workers=2, cache=cache,
        )
        assert "WorkerCrashed" in suite.reports["sum"].failure_reason
        # An environment failure must not be replayed on the next run.
        cache.hits = cache.misses = 0
        run_suite(
            DyingSolver(), [get_benchmark("sum")],
            SynthesisConfig(timeout_s=5), workers=2, cache=cache,
        )
        assert (cache.hits, cache.misses) == (0, 1)

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._run(cache)
        assert cache.clear() == 3
        assert cache.clear() == 0

    def test_resolve_cache_knobs(self, tmp_path, monkeypatch):
        assert resolve_cache(enabled=False) is None
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert resolve_cache() is None
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "here"))
        cache = resolve_cache()
        assert cache is not None and cache.root == tmp_path / "here"


class TestEnvValidation:
    def test_default_timeout_rejects_garbage(self, monkeypatch):
        for bad in ("abc", "-5", "0", "inf", "nan"):
            monkeypatch.setenv("REPRO_BENCH_TIMEOUT", bad)
            with pytest.raises(ValueError, match="REPRO_BENCH_TIMEOUT"):
                default_timeout()

    def test_default_timeout_accepts_numbers(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "42.5")
        assert default_timeout() == 42.5

    def test_default_workers_rejects_garbage(self, monkeypatch):
        for bad in ("two", "0", "-3", "1.5"):
            monkeypatch.setenv("REPRO_BENCH_WORKERS", bad)
            with pytest.raises(ValueError, match="REPRO_BENCH_WORKERS"):
                default_workers()

    def test_default_workers_accepts_integers(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "8")
        assert default_workers() == 8
        monkeypatch.delenv("REPRO_BENCH_WORKERS")
        assert default_workers(fallback=3) == 3


class TestSuiteResultHelpers:
    def test_average_time_default_param(self):
        empty = SuiteResult(solver="none")
        assert empty.average_time(default=0.0) == 0.0

    def test_merged(self):
        a = SuiteResult(solver="s")
        a.reports["x"] = SynthesisReport("x", True, 0.1)
        b = SuiteResult(solver="s")
        b.reports["y"] = SynthesisReport("y", False, 0.2)
        merged = SuiteResult.merged("s", [a, b])
        assert set(merged.reports) == {"x", "y"}


class TestCliIntegration:
    def test_bench_workers_and_cache_flags(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "bench", "stats", "--task", "sum", "--task", "max",
            "--workers", "2", "--timeout", "20",
            "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2/2 solved" in out
        assert "0 hits, 2 misses" in out

        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 hits, 0 misses" in out

    def test_bench_rejects_bad_timeout_env(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "soon")
        assert main(["bench", "--task", "sum"]) == 2
        assert "REPRO_BENCH_TIMEOUT" in capsys.readouterr().err

    def test_bench_rejects_bad_flag_values(self, capsys):
        from repro.cli import main

        # nan/inf would disable both budget mechanisms; negatives are junk.
        for bad in ("nan", "inf", "-5", "0"):
            assert main(["bench", "--task", "sum", "--timeout", bad]) == 2
            assert "--timeout" in capsys.readouterr().err
        assert main(["bench", "--task", "sum", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err

    def test_bench_no_cache(self, capsys):
        from repro.cli import main

        code = main(["bench", "--task", "max", "--timeout", "20", "--no-cache"])
        assert code == 0
        assert "cache:" not in capsys.readouterr().out
