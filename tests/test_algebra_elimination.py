"""Tests for the quantifier-elimination engine."""


from repro.algebra.atoms import AtomTable
from repro.algebra.elimination import (
    Equation,
    eliminate_variables,
    equation,
    find_definition,
    find_definitions,
    solve_linear,
    solve_target,
)
from repro.algebra.polynomial import Poly
from repro.algebra.ratfunc import RatFunc

X = RatFunc.var("x")
Y1 = RatFunc.var("y1")
Y2 = RatFunc.var("y2")
V1 = RatFunc.var("v1")
V2 = RatFunc.var("v2")
V3 = RatFunc.var("v3")


def table() -> AtomTable:
    return AtomTable()


class TestSolveLinear:
    def test_simple(self):
        # 2v + y = 0  ->  v = -y/2
        poly = Poly.var("v") * 2 + Poly.var("y")
        sol = solve_linear(poly, "v", table())
        assert sol == RatFunc(-Poly.var("y"), Poly.const(2))

    def test_polynomial_coefficient(self):
        # y*v - z = 0 -> v = z/y
        poly = Poly.var("y") * Poly.var("v") - Poly.var("z")
        sol = solve_linear(poly, "v", table())
        assert sol == RatFunc.var("z") / RatFunc.var("y")

    def test_quadratic_occurrence_fails(self):
        poly = Poly.var("v") ** 2 - Poly.var("y")
        assert solve_linear(poly, "v", table()) is None

    def test_absent_variable_fails(self):
        poly = Poly.var("y") + 1
        assert solve_linear(poly, "v", table()) is None

    def test_variable_inside_atom_blocks(self):
        t = table()
        atom = t.intern("min", (RatFunc.var("v"), RatFunc.var("x")))
        poly = Poly.var("v") + Poly.var(atom)
        assert solve_linear(poly, "v", t) is None


class TestEliminate:
    def test_paper_example_5_5(self):
        """The mean example: y1 = v1/v2, y2 = v2, v3 = v1 + x, T = v3."""
        t = table()
        eqs = [
            equation(Y1, V1 / V2),
            equation(Y2, V2),
            equation(V3, V1 + X),
            equation(RatFunc.var("T"), V3),
        ]
        sol = find_definition(eqs, ["v1", "v2", "v3"], "T", ["y1", "y2", "x"], t)
        assert sol == Y1 * Y2 + X

    def test_unresolvable_variable_reported(self):
        t = table()
        polys = [Poly.var("v") ** 2 - Poly.var("y")]  # only quadratic
        result = eliminate_variables(polys, ["v"], t)
        assert "v" in result.unresolved

    def test_stale_variables_dropped(self):
        t = table()
        polys = [Poly.var("y") - 1]
        result = eliminate_variables(polys, ["v"], t)
        assert result.unresolved == frozenset()

    def test_chain_substitution(self):
        # a = b + 1, b = c + 1, target = a  ->  target = c + 2
        t = table()
        eqs = [
            equation(RatFunc.var("a"), RatFunc.var("b") + 1),
            equation(RatFunc.var("b"), RatFunc.var("c") + 1),
            equation(RatFunc.var("T"), RatFunc.var("a")),
        ]
        sol = find_definition(eqs, ["a", "b"], "T", ["c"], t)
        assert sol == RatFunc.var("c") + 2

    def test_atom_substitution(self):
        # T = min(v, x), v = y  ->  T = min(y, x)
        t = table()
        atom = t.intern("min", (RatFunc.var("v"), X))
        eqs = [
            equation(RatFunc.var("v"), Y1),
            equation(RatFunc.var("T"), RatFunc.var(atom)),
        ]
        sol = find_definition(eqs, ["v"], "T", ["y1", "x"], t)
        assert sol is not None
        (atom_var,) = sol.variables()
        rebuilt = t.lookup(atom_var)
        assert rebuilt.op == "min"
        assert rebuilt.args[0] == Y1

    def test_keep_vars_respected(self):
        t = table()
        eqs = [equation(RatFunc.var("T"), RatFunc.var("secret") + 1)]
        assert find_definition(eqs, [], "T", ["x"], t) is None

    def test_multiple_definitions_ranked(self):
        # Two ways to express T: via y1 (with division) and via y2 (linear).
        t = table()
        eqs = [
            equation(Y1 * RatFunc.var("v"), RatFunc.const(1)),  # v = 1/y1
            equation(Y2, RatFunc.var("v")),  # v = y2
            equation(RatFunc.var("T"), RatFunc.var("v")),
        ]
        solutions = find_definitions(eqs, ["v"], "T", ["y1", "y2"], t)
        assert solutions
        # The best-ranked solution avoids the division.
        assert solutions[0] == Y2

    def test_avoid_vars_penalty(self):
        t = table()
        eqs = [
            equation(Y1, RatFunc.var("v")),
            equation(Y2, RatFunc.var("v")),
            equation(RatFunc.var("T"), RatFunc.var("v")),
        ]
        sols = find_definitions(
            eqs, ["v"], "T", ["y1", "y2"], t, avoid_vars=frozenset({"y1"})
        )
        assert sols[0] == Y2


class TestEquation:
    def test_cross_multiplication(self):
        eq = Equation(Y1, V1 / V2)
        poly = eq.to_poly()
        # y1*v2 - v1 = 0
        assert poly == Poly.var("y1") * Poly.var("v2") - Poly.var("v1")

    def test_solve_target_prefers_small(self):
        t = table()
        big = Poly.var("T") - (Poly.var("x") + 1) ** 3
        small = Poly.var("T") - Poly.var("y1")
        sol = solve_target([big, small], "T", frozenset({"x", "y1"}), t)
        assert sol == Y1
