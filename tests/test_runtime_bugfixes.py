"""Regression tests for the runtime/CLI bugfix batch that rode along with
the hole-sharding PR: pipeline batched ingestion, sliding-window operator
reuse, unbounded source specs, exact-rational spec values, and keyed
``jit=`` forwarding."""

from fractions import Fraction

import pytest

from repro.cli import main
from repro.runtime import KeyedOperator, OnlineOperator, StreamPipeline
from repro.runtime import stream as stream_mod
from repro.runtime.checkpoint import restore_keyed
from repro.runtime.sources import counter, from_spec
from repro.runtime.stream import sliding
from repro.suites import get_benchmark


def _scheme(name):
    scheme = get_benchmark(name).ground_truth
    assert scheme is not None
    return scheme


class TestPipelinePushMany:
    def _sample(self):
        return [Fraction(i % 7) - 2 for i in range(40)]

    def _fresh(self):
        return StreamPipeline(
            {
                "mean": OnlineOperator(_scheme("mean")),
                "max": OnlineOperator(_scheme("max")),
                "variance": OnlineOperator(_scheme("variance")),
            }
        )

    def test_batch_equals_per_push(self):
        elements = self._sample()
        batched = self._fresh()
        stepped = self._fresh()
        snapshot = batched.push_many(elements)
        for element in elements:
            expected = stepped.push(element)
        assert snapshot == expected
        for name, op in batched.operators.items():
            assert op.state == stepped.operators[name].state
            assert op.count == stepped.operators[name].count

    def test_batch_uses_per_operator_push_many(self, monkeypatch):
        """The whole point of the fix: the batch must drain through each
        operator's hoisted push_many loop, not element-by-element push."""
        pipeline = self._fresh()
        for op in pipeline.operators.values():
            monkeypatch.setattr(
                op, "push", lambda element: pytest.fail("push_many bypassed")
            )
        pipeline.push_many(self._sample())

    def test_generator_batch_is_materialized_once(self):
        elements = self._sample()
        from_generator = self._fresh().push_many(iter(elements))
        from_list = self._fresh().push_many(elements)
        assert from_generator == from_list

    def test_empty_batch_semantics(self):
        pipeline = self._fresh()
        snapshot = pipeline.push_many([])
        assert snapshot == pipeline.snapshot()
        assert all(op.count == 0 for op in pipeline.operators.values())


class TestSlidingReuse:
    def test_single_operator_for_whole_stream(self, monkeypatch):
        constructed = []
        real_operator = stream_mod.OnlineOperator

        class CountingOperator(real_operator):
            def __init__(self, *args, **kwargs):
                constructed.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(stream_mod, "OnlineOperator", CountingOperator)
        results = list(sliding(_scheme("mean"), counter(25), 4))
        assert len(results) == 25
        assert len(constructed) == 1  # was one per element before the fix

    def test_results_match_batch_recomputation(self):
        scheme = _scheme("variance")
        elements = [Fraction(i % 5) for i in range(12)]
        got = list(sliding(scheme, elements, 4))
        for i, value in enumerate(got):
            window = elements[max(0, i - 3) : i + 1]
            assert value == scheme.final(window)


class TestSourceSpecs:
    def test_unbounded_specs_rejected(self):
        for spec in ("constant:3", "counter"):
            with pytest.raises(ValueError, match="unbounded"):
                from_spec(spec)

    def test_unbounded_allowed_explicitly(self):
        import itertools

        stream = from_spec("constant:3", allow_unbounded=True)
        assert list(itertools.islice(stream, 4)) == [Fraction(3)] * 4

    def test_bounded_specs_still_work(self):
        assert list(from_spec("counter:4")) == [0, 1, 2, 3]
        assert list(from_spec("constant:3:2")) == [Fraction(3)] * 2
        assert len(list(from_spec("sawtooth:10:5"))) == 10

    def test_list_and_constant_yield_exact_fractions(self):
        values = list(from_spec("list:1,2,5/2"))
        assert values == [Fraction(1), Fraction(2), Fraction(5, 2)]
        assert all(type(v) is Fraction for v in values)
        repeated = list(from_spec("constant:7:3"))
        assert all(type(v) is Fraction for v in repeated)


class TestCliMaxElements:
    def _scheme_file(self, tmp_path):
        path = tmp_path / "mean.scheme.json"
        _scheme("mean").save(path)
        return str(path)

    def test_unbounded_source_is_an_error_without_guard(self, tmp_path, capsys):
        code = main(["run", self._scheme_file(tmp_path), "--source", "constant:3"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unbounded" in err and "--max-elements" in err

    def test_max_elements_bounds_an_unbounded_source(self, tmp_path, capsys):
        code = main(
            ["run", self._scheme_file(tmp_path), "--source", "constant:3",
             "--max-elements", "5"]
        )
        assert code == 0
        assert "consumed 5 elements; result: 3" in capsys.readouterr().out

    def test_max_elements_truncates_bounded_sources_too(self, tmp_path, capsys):
        code = main(
            ["run", self._scheme_file(tmp_path), "--source", "counter:100",
             "--max-elements", "10"]
        )
        assert code == 0
        assert "consumed 10 elements" in capsys.readouterr().out

    def test_negative_max_elements_rejected(self, tmp_path, capsys):
        code = main(
            ["run", self._scheme_file(tmp_path), "--source", "counter:10",
             "--max-elements", "-1"]
        )
        assert code == 2
        assert "--max-elements" in capsys.readouterr().err


class TestKeyedJit:
    def _keyed(self, **kwargs):
        scheme = _scheme("mean")
        return scheme, KeyedOperator(
            scheme, key_fn=lambda e: e[1], value_fn=lambda e: e[0], **kwargs
        )

    def test_jit_false_reaches_partitions(self):
        scheme, keyed = self._keyed(jit=False)
        keyed.push((Fraction(10), "a"))
        partition = keyed.partitions["a"]
        assert partition._step == scheme.interpreted_step

    def test_default_still_compiles(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT", raising=False)
        scheme, keyed = self._keyed()
        keyed.push((Fraction(10), "a"))
        partition = keyed.partitions["a"]
        assert partition._step != scheme.interpreted_step

    def test_jit_false_survives_checkpoint_restore(self):
        scheme, keyed = self._keyed(jit=False)
        keyed.push((Fraction(10), "a"))
        restored = restore_keyed(
            keyed.checkpoint(),
            key_fn=lambda e: e[1],
            value_fn=lambda e: e[0],
            jit=False,
        )
        assert restored.partitions["a"]._step == restored.scheme.interpreted_step
        restored.push((Fraction(4), "b"))  # new partitions inherit the choice
        assert restored.partitions["b"]._step == restored.scheme.interpreted_step

    def test_results_identical_both_backends(self):
        _, compiled = self._keyed()
        _, interpreted = self._keyed(jit=False)
        events = [(Fraction(i), i % 3) for i in range(30)]
        assert compiled.push_many(events) == interpreted.push_many(events)
