"""Tests for the perf-statistics layer: Mann-Whitney U, bootstrap CIs,
report comparison verdicts, the append-only bench history, and the
``repro bench compare`` CLI contract (exit codes 0/1/2)."""

import itertools
import json
import subprocess
from statistics import median

import pytest

from repro.cli import main
from repro.evaluation import (
    bench_metadata,
    bootstrap_ci,
    bootstrap_ratio_ci,
    compare_reports,
    comparison_exit_code,
    format_comparison,
    mann_whitney_u,
    run_runtime_benchmark,
)
from repro.evaluation.benchstats import (
    VERDICT_IMPROVED,
    VERDICT_INCOMPARABLE,
    VERDICT_NO_CHANGE,
    VERDICT_REGRESSED,
    CompareError,
)
from repro.evaluation.history import (
    append_report,
    git_commit,
    latest,
    report_kind,
    resolve_history_dir,
)

# --------------------------------------------------------------------------
# Report builders
# --------------------------------------------------------------------------

#: Tight/slow per-repeat wall-clocks (seconds) with zero overlap, so the
#: exact Mann-Whitney p-value is 2/C(10,5) ~ 0.0079 < alpha.
FAST = [0.010, 0.011, 0.012, 0.0105, 0.0115]
SLOW = [0.020, 0.021, 0.022, 0.0205, 0.0215]

#: Near-constant sample: a 1% shift of it is fully separated (significant)
#: but below the default 2% minimum effect size.
TIGHT = [0.010000, 0.010005, 0.010010, 0.010015, 0.010020]


def runtime_report(times, *, cpu_count=4, elements=1000, schemes=("count",), stream="int"):
    report = {
        "format": "repro/bench-runtime",
        "version": 3,
        "meta": {"git_commit": "a" * 40, "timestamp": "2026-08-08T00:00:00Z"},
        "cpu_count": cpu_count,
        "elements": elements,
        "stream": stream,
        "schemes": {},
    }
    for scheme in schemes:
        report["schemes"][scheme] = {
            "raw": {
                "interpreted_s": list(times),
                "compiled_s": list(times),
                "batch_s": list(times),
            }
        }
    return report


def holes_report(seq, par, *, cpu_count=4, hole_workers=2, timeout_s=60.0):
    return {
        "format": "repro/bench-holes",
        "version": 3,
        "meta": {"git_commit": "b" * 40, "timestamp": "2026-08-08T00:00:00Z"},
        "cpu_count": cpu_count,
        "hole_workers": hole_workers,
        "timeout_s": timeout_s,
        "benchmarks": {
            "skewness": {"raw": {"sequential_s": list(seq), "parallel_s": list(par)}}
        },
    }


# --------------------------------------------------------------------------
# Mann-Whitney U
# --------------------------------------------------------------------------


def brute_force_p(xs, ys):
    """Two-sided exact p (2 * lower tail of U1, like the implementation and
    scipy) by enumerating every label arrangement."""
    pooled = list(xs) + list(ys)
    m = len(xs)

    def u1_of(indices):
        chosen = set(indices)
        first = [pooled[i] for i in chosen]
        rest = [pooled[i] for i in range(len(pooled)) if i not in chosen]
        return sum(1 for a in first for b in rest if a > b)

    u1 = u1_of(range(m))
    observed = min(u1, m * (len(pooled) - m) - u1)
    arrangements = list(itertools.combinations(range(len(pooled)), m))
    tail = sum(1 for arr in arrangements if u1_of(arr) <= observed)
    return min(1.0, 2.0 * tail / len(arrangements))


class TestMannWhitney:
    def test_fully_separated_small_samples(self):
        result = mann_whitney_u([1.0, 2.0, 3.0], [4.0, 5.0, 6.0])
        assert result.method == "exact"
        assert result.u == 0
        assert result.p_value == pytest.approx(0.1)

    def test_textbook_five_vs_four(self):
        # Classic tie-free example: U = 3, two-sided exact p = 2 * 7/126.
        result = mann_whitney_u([19, 22, 16, 29, 24], [20, 11, 17, 12])
        assert result.method == "exact"
        assert result.u == 3
        assert result.p_value == pytest.approx(2 * 7 / 126)

    def test_exact_matches_brute_force(self):
        cases = [
            ([1.0, 5.0, 8.0], [2.0, 3.0, 9.0, 11.0]),
            ([0.5, 2.5, 4.5, 6.5], [1.5, 3.5, 5.5]),
            ([10.0, 20.0], [5.0, 15.0, 25.0, 35.0]),
        ]
        for xs, ys in cases:
            result = mann_whitney_u(xs, ys)
            assert result.method == "exact"
            assert result.p_value == pytest.approx(brute_force_p(xs, ys))

    def test_symmetry(self):
        a, b = [1.0, 4.0, 6.0, 7.0], [2.0, 3.0, 5.0, 8.0, 9.0]
        assert mann_whitney_u(a, b).p_value == pytest.approx(mann_whitney_u(b, a).p_value)

    def test_ties_use_normal_method(self):
        result = mann_whitney_u([1.0, 2.0, 2.0, 3.0], [2.0, 4.0, 5.0, 6.0])
        assert result.method == "normal"
        assert 0.0 < result.p_value <= 1.0

    def test_all_identical_is_no_evidence(self):
        result = mann_whitney_u([3.0] * 5, [3.0] * 5)
        assert result.p_value == 1.0

    def test_large_samples_use_normal_method(self):
        xs = [float(i) for i in range(30)]
        ys = [float(i) + 0.5 for i in range(30)]
        assert mann_whitney_u(xs, ys).method == "normal"

    def test_clear_shift_is_significant_both_methods(self):
        xs = [float(i) for i in range(26)]
        ys = [float(i) + 100 for i in range(26)]
        assert mann_whitney_u(xs, ys).p_value < 1e-6

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])


class TestBootstrap:
    def test_median_ci_brackets_true_median(self):
        samples = [float(i) for i in range(1, 101)]
        lo, hi = bootstrap_ci(samples)
        assert lo < median(samples) < hi
        assert 35.0 < lo and hi < 66.0

    def test_constant_sample_zero_width(self):
        assert bootstrap_ci([7.0] * 10) == (7.0, 7.0)

    def test_single_observation_zero_width(self):
        assert bootstrap_ci([42.0]) == (42.0, 42.0)

    def test_deterministic_for_fixed_seed(self):
        # A wide sample keeps the percentile tails off the extremes, so two
        # seeds virtually never produce the same interval.
        samples = [float(i) ** 1.5 for i in range(30)]
        assert bootstrap_ci(samples, seed=1) == bootstrap_ci(samples, seed=1)
        assert bootstrap_ci(samples, seed=1) != bootstrap_ci(samples, seed=2)

    def test_ratio_ci_excludes_one_on_clear_shift(self):
        old = [1.0, 1.1, 0.9, 1.05, 0.95]
        new = [2.0, 2.2, 1.8, 2.1, 1.9]
        lo, hi = bootstrap_ratio_ci(old, new)
        assert 1.0 < lo <= hi
        assert lo == pytest.approx(2.0, abs=0.5)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ratio_ci([], [1.0])


# --------------------------------------------------------------------------
# compare_reports verdicts
# --------------------------------------------------------------------------


class TestCompareVerdicts:
    def test_runtime_speedup_is_improved(self):
        # Lower wall-clock -> higher eps -> improved (runtime is higher-better).
        comparison = compare_reports(runtime_report(SLOW), runtime_report(FAST))
        assert comparison["verdict"] == VERDICT_IMPROVED
        for entry in comparison["metrics"].values():
            assert entry["verdict"] == VERDICT_IMPROVED
            assert entry["ratio"] == pytest.approx(2.0, rel=0.1)
            assert entry["p_value"] < 0.05
        assert comparison_exit_code(comparison) == 0

    def test_runtime_slowdown_is_regression(self):
        comparison = compare_reports(runtime_report(FAST), runtime_report(SLOW))
        assert comparison["verdict"] == VERDICT_REGRESSED
        assert comparison_exit_code(comparison) == 1

    def test_identical_samples_no_change(self):
        comparison = compare_reports(runtime_report(FAST), runtime_report(FAST))
        assert comparison["verdict"] == VERDICT_NO_CHANGE
        assert comparison_exit_code(comparison) == 0

    def test_significant_but_tiny_effect_is_no_change(self):
        # Perfectly separated samples (p < alpha) but a ~1% shift < min_effect.
        nudged = [t * 1.01 for t in TIGHT]
        comparison = compare_reports(runtime_report(TIGHT), runtime_report(nudged))
        assert comparison["verdict"] == VERDICT_NO_CHANGE
        entry = next(iter(comparison["metrics"].values()))
        assert entry["p_value"] < 0.05  # significant, just too small to matter

    def test_holes_direction_lower_is_better(self):
        faster = compare_reports(holes_report(SLOW, SLOW), holes_report(FAST, FAST))
        assert faster["verdict"] == VERDICT_IMPROVED
        slower = compare_reports(holes_report(FAST, FAST), holes_report(SLOW, SLOW))
        assert slower["verdict"] == VERDICT_REGRESSED
        assert comparison_exit_code(slower) == 1

    def test_single_core_is_incomparable_not_skipped(self):
        comparison = compare_reports(
            runtime_report(FAST, cpu_count=1), runtime_report(SLOW, cpu_count=1)
        )
        assert comparison["verdict"] == VERDICT_INCOMPARABLE
        for entry in comparison["metrics"].values():
            assert entry["verdict"] == VERDICT_INCOMPARABLE
            assert "single-core" in entry["reason"]
        # The gate passes: incomparable is visible, never a failure.
        assert comparison_exit_code(comparison) == 0

    def test_cpu_count_mismatch_is_incomparable(self):
        comparison = compare_reports(
            runtime_report(FAST, cpu_count=4), runtime_report(FAST, cpu_count=8)
        )
        assert comparison["verdict"] == VERDICT_INCOMPARABLE
        assert "cpu_count mismatch" in next(iter(comparison["metrics"].values()))["reason"]

    def test_workload_mismatch_is_incomparable(self):
        comparison = compare_reports(
            runtime_report(FAST, elements=1000), runtime_report(FAST, elements=2000)
        )
        assert comparison["verdict"] == VERDICT_INCOMPARABLE
        assert "elements differs" in next(iter(comparison["metrics"].values()))["reason"]

    def test_mismatched_scheme_sets_are_incomparable_per_metric(self):
        old = runtime_report(FAST, schemes=("count",))
        new = runtime_report(FAST, schemes=("count", "variance"))
        comparison = compare_reports(old, new)
        assert comparison["metrics"]["variance/batch"]["verdict"] == VERDICT_INCOMPARABLE
        assert comparison["metrics"]["variance/batch"]["reason"] == "only in the new report"
        assert comparison["metrics"]["count/batch"]["verdict"] == VERDICT_NO_CHANGE

    def test_pre_v3_report_without_raw_is_incomparable(self):
        old = runtime_report(FAST)
        for entry in old["schemes"].values():
            del entry["raw"]
        comparison = compare_reports(old, runtime_report(FAST))
        assert comparison["verdict"] == VERDICT_INCOMPARABLE
        assert "pre-v3" in next(iter(comparison["metrics"].values()))["reason"]

    def test_too_few_repeats_is_incomparable(self):
        comparison = compare_reports(runtime_report(FAST[:2]), runtime_report(SLOW[:2]))
        assert comparison["verdict"] == VERDICT_INCOMPARABLE
        assert "too few repeats" in next(iter(comparison["metrics"].values()))["reason"]

    def test_kind_mismatch_raises(self):
        with pytest.raises(CompareError):
            compare_reports(runtime_report(FAST), holes_report(FAST, FAST))

    def test_non_bench_report_raises(self):
        with pytest.raises(CompareError):
            compare_reports({"format": "something-else"}, runtime_report(FAST))

    def test_bad_alpha_raises(self):
        with pytest.raises(CompareError):
            compare_reports(runtime_report(FAST), runtime_report(FAST), alpha=1.5)

    def test_comparison_is_json_serializable_and_formats(self):
        comparison = compare_reports(runtime_report(SLOW), runtime_report(FAST))
        text = format_comparison(json.loads(json.dumps(comparison)))
        assert "verdict: improved" in text
        assert "count/batch" in text

    def test_deterministic_output(self):
        a = compare_reports(runtime_report(SLOW), runtime_report(FAST))
        b = compare_reports(runtime_report(SLOW), runtime_report(FAST))
        assert a == b


# --------------------------------------------------------------------------
# History store
# --------------------------------------------------------------------------


class TestHistory:
    def test_append_and_latest_round_trip(self, tmp_path):
        report = runtime_report(FAST)
        dest = append_report(report, tmp_path)
        assert dest.exists()
        assert dest.parent.name == "runtime"
        assert json.loads(dest.read_text()) == report
        index = json.loads((tmp_path / "index.json").read_text())
        assert len(index["entries"]) == 1
        entry = index["entries"][0]
        assert entry["kind"] == "runtime"
        assert entry["commit"] == "a" * 40
        assert entry["cpu_count"] == 4
        assert latest("runtime", tmp_path) == dest
        assert latest("holes", tmp_path) is None

    def test_same_second_appends_both_survive(self, tmp_path):
        report = runtime_report(FAST)
        first = append_report(report, tmp_path)
        second = append_report(report, tmp_path)
        assert first != second
        assert second.name.endswith("-2.json")
        assert latest("runtime", tmp_path) == second

    def test_latest_skips_pruned_files(self, tmp_path):
        older = append_report(runtime_report(FAST), tmp_path)
        newer = append_report(runtime_report(SLOW), tmp_path)
        newer.unlink()
        assert latest("runtime", tmp_path) == older

    def test_kinds_are_separated(self, tmp_path):
        append_report(runtime_report(FAST), tmp_path)
        holes_dest = append_report(holes_report(FAST, FAST), tmp_path)
        assert holes_dest.parent.name == "holes"
        assert latest("holes", tmp_path) == holes_dest

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            append_report({"format": "not-a-bench"}, tmp_path)
        with pytest.raises(ValueError):
            report_kind({})

    def test_resolve_history_dir_precedence(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_HISTORY", raising=False)
        assert str(resolve_history_dir()) == "bench_history"
        monkeypatch.setenv("REPRO_BENCH_HISTORY", str(tmp_path))
        assert resolve_history_dir() == tmp_path
        assert resolve_history_dir(tmp_path / "explicit") == tmp_path / "explicit"


class TestMetadata:
    def test_bench_metadata_shape(self):
        meta = bench_metadata()
        assert set(meta) == {"git_commit", "timestamp", "clock"}
        assert meta["timestamp"].endswith("Z")
        assert "monotonic" in meta["clock"]

    def test_git_commit_matches_rev_parse_in_checkout(self):
        expected = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True
        )
        if expected.returncode != 0:
            pytest.skip("not running inside a git checkout")
        assert git_commit() == expected.stdout.strip()

    def test_git_commit_unknown_outside_checkout(self, tmp_path):
        assert git_commit(cwd=str(tmp_path)) == "unknown"


class TestReportFormatV3:
    def test_runtime_report_embeds_raw_and_meta(self):
        report = run_runtime_benchmark(["count"], elements=200, repeats=3, fused=False)
        assert report["version"] == 3
        assert set(report["meta"]) == {"git_commit", "timestamp", "clock"}
        raw = report["schemes"]["count"]["raw"]
        for key in ("interpreted_s", "compiled_s", "batch_s"):
            assert len(raw[key]) == 3
            assert all(t >= 0 for t in raw[key])
        # Headline numbers stay best-of-repeats (eps = elements / min time).
        assert report["schemes"]["count"]["interpreted_eps"] == pytest.approx(
            200 / min(raw["interpreted_s"])
        )
        assert report_kind(report) == "runtime"


# --------------------------------------------------------------------------
# CLI: repro bench compare + history wiring
# --------------------------------------------------------------------------


def write_json(path, payload):
    path.write_text(json.dumps(payload) + "\n", encoding="utf-8")
    return str(path)


class TestCompareCli:
    def test_exit_zero_on_improvement(self, tmp_path, capsys):
        old = write_json(tmp_path / "old.json", runtime_report(SLOW))
        new = write_json(tmp_path / "new.json", runtime_report(FAST))
        assert main(["bench", "compare", old, new]) == 0
        assert "verdict: improved" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        old = write_json(tmp_path / "old.json", runtime_report(FAST))
        new = write_json(tmp_path / "new.json", runtime_report(SLOW))
        assert main(["bench", "compare", old, new]) == 1
        assert "verdict: regressed" in capsys.readouterr().out

    def test_exit_two_on_usage_and_format_errors(self, tmp_path, capsys):
        runtime = write_json(tmp_path / "r.json", runtime_report(FAST))
        holes = write_json(tmp_path / "h.json", holes_report(FAST, FAST))
        bad = write_json(tmp_path / "bad.json", {"format": "nope"})
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json", encoding="utf-8")
        assert main(["bench", "compare", runtime]) == 2  # one positional, no baseline
        assert main(["bench", "compare", runtime, holes]) == 2  # kind mismatch
        assert main(["bench", "compare", runtime, bad]) == 2
        assert main(["bench", "compare", runtime, str(garbled)]) == 2
        assert main(["bench", "compare", runtime, str(tmp_path / "absent.json")]) == 2
        capsys.readouterr()

    def test_min_effect_gate_suppresses_tiny_shift(self, tmp_path, capsys):
        nudged = runtime_report([t * 1.01 for t in TIGHT])
        old = write_json(tmp_path / "old.json", runtime_report(TIGHT))
        new = write_json(tmp_path / "new.json", nudged)
        assert main(["bench", "compare", old, new]) == 0
        assert main(["bench", "compare", old, new, "--min-effect", "0.001"]) == 1
        capsys.readouterr()

    def test_compare_out_writes_machine_readable_verdict(self, tmp_path, capsys):
        old = write_json(tmp_path / "old.json", runtime_report(FAST))
        new = write_json(tmp_path / "new.json", runtime_report(SLOW))
        out = tmp_path / "cmp.json"
        assert main(["bench", "compare", old, new, "--compare-out", str(out)]) == 1
        payload = json.loads(out.read_text())
        assert payload["format"] == "repro/bench-compare"
        assert payload["verdict"] == VERDICT_REGRESSED
        assert payload["new"]["path"] == new
        capsys.readouterr()

    def test_baseline_latest_resolves_from_history(self, tmp_path, capsys):
        hist = tmp_path / "hist"
        append_report(runtime_report(SLOW), hist)
        new = write_json(tmp_path / "new.json", runtime_report(FAST))
        code = main(
            ["bench", "compare", new, "--baseline", "latest", "--history-dir", str(hist)]
        )
        assert code == 0
        assert "verdict: improved" in capsys.readouterr().out
        # No history at all -> usage/format error, not a crash.
        assert (
            main(
                [
                    "bench",
                    "compare",
                    new,
                    "--baseline",
                    "latest",
                    "--history-dir",
                    str(tmp_path / "empty"),
                ]
            )
            == 2
        )
        capsys.readouterr()

    def test_baseline_path_and_two_positionals_conflict(self, tmp_path, capsys):
        old = write_json(tmp_path / "old.json", runtime_report(SLOW))
        new = write_json(tmp_path / "new.json", runtime_report(FAST))
        assert main(["bench", "compare", new, "--baseline", old]) == 0
        assert main(["bench", "compare", old, new, "--baseline", old]) == 2
        capsys.readouterr()


class TestBenchHistoryCli:
    def test_bench_runtime_appends_history(self, tmp_path, capsys):
        hist = tmp_path / "hist"
        out = tmp_path / "report.json"
        code = main(
            [
                "bench",
                "runtime",
                "--schemes",
                "count",
                "--elements",
                "200",
                "--repeats",
                "3",
                "--no-fused",
                "--out",
                str(out),
                "--history-dir",
                str(hist),
            ]
        )
        assert code == 0
        assert "bench history: appended" in capsys.readouterr().out
        index = json.loads((hist / "index.json").read_text())
        assert len(index["entries"]) == 1
        assert latest("runtime", hist) is not None
        report = json.loads(out.read_text())
        assert report["version"] == 3

    def test_no_history_flag_skips_append(self, tmp_path, capsys):
        hist = tmp_path / "hist"
        code = main(
            [
                "bench",
                "runtime",
                "--schemes",
                "count",
                "--elements",
                "200",
                "--repeats",
                "3",
                "--no-fused",
                "--out",
                str(tmp_path / "report.json"),
                "--history-dir",
                str(hist),
                "--no-history",
            ]
        )
        assert code == 0
        assert "bench history" not in capsys.readouterr().out
        assert not hist.exists()
