"""Tests for RFS inference (Algorithm 2) and initializer construction."""

import pytest

from repro.core.exceptions import UnsupportedProgram
from repro.core.initializer import build_initializer
from repro.core.rfs import construct_rfs
from repro.ir.dsl import (
    XS,
    add,
    div,
    fold,
    fold_max,
    fold_sum,
    gt,
    ite,
    lam,
    length,
    powi,
    program,
    sub,
)
from repro.ir.nodes import ListVar, Var


def mean_program():
    return program(div(fold_sum(XS), length(XS)))


def variance_program():
    avg = div(fold_sum(XS), length(XS))
    sq = fold(lam("acc", "v", add("acc", powi(sub("v", avg), 2))), 0, XS)
    return program(div(sq, length(XS)))


class TestConstructRFS:
    def test_first_entry_is_body(self):
        rfs = construct_rfs(mean_program())
        assert rfs.spec_of(rfs.result_param) == mean_program().body

    def test_mean_has_three_entries(self):
        # body, sum fold, length
        rfs = construct_rfs(mean_program())
        assert len(rfs) == 3

    def test_variance_matches_figure_4(self):
        # v (body), sq fold, s fold, n — the RFS of Figure 4.
        rfs = construct_rfs(variance_program())
        assert len(rfs) == 4
        specs = list(rfs.entries.values())
        assert specs[0] == variance_program().body

    def test_length_param_detected(self):
        rfs = construct_rfs(mean_program())
        assert rfs.length_param is not None
        assert rfs.spec_of(rfs.length_param) == length(XS)

    def test_length_added_when_missing(self):
        rfs = construct_rfs(program(fold_sum(XS)))
        assert rfs.length_param is not None

    def test_length_not_added_in_baseline_mode(self):
        rfs = construct_rfs(program(fold_sum(XS)), add_length=False)
        assert rfs.length_param is None
        assert len(rfs) == 1

    def test_extra_params_carried(self):
        prog = program(
            fold(lam("a", "v", ite(gt("v", "t"), add("a", 1), Var("a"))), 0, XS),
            ("t",),
        )
        rfs = construct_rfs(prog)
        assert rfs.extra_params == ("t",)

    def test_lets_are_inlined(self):
        from repro.ir.dsl import let

        prog = program(
            let("s", fold_sum(XS), div("s", length(XS)))
        )
        rfs = construct_rfs(prog)
        # After inlining, the body is the mean; the sum fold appears as entry.
        assert any(spec == fold_sum(XS) for spec in rfs.entries.values())

    def test_duplicate_list_exprs_get_one_entry(self):
        prog = program(div(fold_sum(XS), fold_sum(XS)))
        rfs = construct_rfs(prog)
        folds = [s for s in rfs.entries.values() if s == fold_sum(XS)]
        assert len(folds) == 1

    def test_describe_renders_every_entry(self):
        rfs = construct_rfs(mean_program())
        text = rfs.describe()
        assert text.count("↦") == len(rfs)


class TestInitializer:
    def test_mean_initializer_is_zero(self):
        rfs = construct_rfs(mean_program())
        init = build_initializer(rfs)
        assert init == (0,) * len(rfs)

    def test_max_initializer_is_sentinel(self):
        rfs = construct_rfs(program(fold_max(XS)))
        init = build_initializer(rfs)
        assert init[0] == -(10**9)

    def test_variance_initializer_matches_figure_4(self):
        rfs = construct_rfs(variance_program())
        assert build_initializer(rfs) == (0, 0, 0, 0)

    def test_extra_param_independent_initializer(self):
        prog = program(
            fold(lam("a", "v", ite(gt("v", "t"), add("a", 1), Var("a"))), 0, XS),
            ("t",),
        )
        rfs = construct_rfs(prog)
        init = build_initializer(rfs)
        assert init[0] == 0

    def test_extra_param_dependent_initializer_rejected(self):
        # A body whose empty-list value depends on the extra parameter is
        # outside Figure 7's constant-initializer scheme.
        prog = program(add(fold_sum(XS), Var("t")), ("t",))
        rfs = construct_rfs(prog)
        with pytest.raises(UnsupportedProgram):
            build_initializer(rfs)

    def test_tuple_initializer(self):
        from repro.ir.dsl import maximum, minimum, proj, tup

        top2 = fold(
            lam(
                "t",
                "v",
                tup(
                    maximum(proj("t", 0), "v"),
                    maximum(proj("t", 1), minimum(proj("t", 0), "v")),
                ),
            ),
            tup(-100, -100),
            XS,
        )
        rfs = construct_rfs(program(proj(top2, 1)))
        init = build_initializer(rfs)
        assert init[0] == -100
        assert (-100, -100) in init
