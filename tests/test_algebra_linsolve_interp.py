"""Tests for exact linear algebra and polynomial interpolation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.interpolation import fit_polynomial, lagrange_interpolate
from repro.algebra.linsolve import nullspace, rank, rref, solve

F = Fraction


class TestSolve:
    def test_identity(self):
        assert solve([[1, 0], [0, 1]], [3, 4]) == [F(3), F(4)]

    def test_fractions(self):
        # 2x + y = 5; x - y = 1  ->  x = 2, y = 1
        assert solve([[2, 1], [1, -1]], [5, 1]) == [F(2), F(1)]

    def test_inconsistent_returns_none(self):
        assert solve([[1, 1], [1, 1]], [1, 2]) is None

    def test_underdetermined_picks_particular(self):
        sol = solve([[1, 1]], [2])
        assert sol is not None
        assert sol[0] + sol[1] == 2

    def test_empty(self):
        assert solve([], []) == []

    def test_rectangular_tall(self):
        # Overdetermined but consistent.
        sol = solve([[1], [2], [3]], [2, 4, 6])
        assert sol == [F(2)]


class TestNullspace:
    def test_full_rank_trivial(self):
        assert nullspace([[1, 0], [0, 1]]) == []

    def test_one_dimensional(self):
        basis = nullspace([[1, -1]])
        assert len(basis) == 1
        v = basis[0]
        assert v[0] == v[1] != 0

    def test_orthogonality(self):
        matrix = [[2, 1, -1], [1, 0, 1]]
        for vec in nullspace(matrix):
            for row in matrix:
                assert sum(F(a) * b for a, b in zip(row, vec)) == 0

    def test_rank_nullity(self):
        matrix = [[1, 2, 3], [2, 4, 6], [1, 0, 1]]
        assert rank(matrix) + len(nullspace(matrix)) == 3


class TestRref:
    def test_pivots(self):
        reduced, pivots = rref([[0, 1], [1, 0]])
        assert pivots == [0, 1]
        assert reduced == [[F(1), F(0)], [F(0), F(1)]]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(-5, 5), min_size=3, max_size=3),
            min_size=1,
            max_size=4,
        )
    )
    def test_rref_idempotent(self, rows):
        reduced, _ = rref(rows)
        again, _ = rref(reduced)
        assert again == reduced


class TestInterpolation:
    def test_line(self):
        pts = [(F(0), F(1)), (F(1), F(3))]
        assert lagrange_interpolate(pts) == [F(1), F(2)]

    def test_quadratic(self):
        # n^2 + n through 3 points
        pts = [(F(1), F(2)), (F(2), F(6)), (F(3), F(12))]
        assert lagrange_interpolate(pts) == [F(0), F(1), F(1)]

    def test_duplicate_abscissae_rejected(self):
        with pytest.raises(ValueError):
            lagrange_interpolate([(F(1), F(1)), (F(1), F(2))])

    def test_fit_uses_extra_points_as_checks(self):
        pts = [(F(i), F(i * i)) for i in range(1, 7)]
        assert fit_polynomial(pts) == [F(0), F(0), F(1)]

    def test_fit_rejects_non_polynomial(self):
        # 2^n is not a polynomial of degree <= 3.
        pts = [(F(i), F(2**i)) for i in range(1, 8)]
        assert fit_polynomial(pts, max_degree=3) is None

    def test_fit_constant(self):
        pts = [(F(i), F(7)) for i in range(1, 5)]
        assert fit_polynomial(pts) == [F(7)]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(-9, 9), min_size=1, max_size=5))
    def test_fit_recovers_coefficients(self, coeffs):
        def poly(x):
            total = F(0)
            for c in reversed(coeffs):
                total = total * x + c
            return total

        pts = [(F(i), poly(F(i))) for i in range(1, len(coeffs) + 3)]
        fitted = fit_polynomial(pts)
        assert fitted is not None
        # Compare as functions (trailing zeros trimmed).
        for x, y in pts:
            total = F(0)
            for c in reversed(fitted):
                total = total * x + c
            assert total == y
