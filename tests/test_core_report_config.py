"""Tests for the report and configuration plumbing."""

import time

from repro.core.config import SynthesisConfig
from repro.core.report import HoleOutcome, SynthesisReport
from repro.core.scheme import OnlineScheme
from repro.ir.dsl import add
from repro.ir.nodes import OnlineProgram


class TestConfig:
    def test_defaults_match_paper_shape(self):
        config = SynthesisConfig()
        assert config.unroll_depth == 3  # Example 5.6's k
        assert config.use_decomposition and config.use_symbolic

    def test_clock(self):
        config = SynthesisConfig(timeout_s=0.05)
        config.start_clock()
        assert not config.expired()
        time.sleep(0.06)
        assert config.expired()
        assert config.remaining() <= 0

    def test_remaining_before_start(self):
        config = SynthesisConfig(timeout_s=9.0)
        assert config.remaining() == 9.0
        assert not config.expired()

    def test_replace_preserves_flags(self):
        from dataclasses import replace

        config = SynthesisConfig(timeout_s=1.0)
        ablated = replace(config, use_symbolic=False)
        assert ablated.timeout_s == 1.0
        assert not ablated.use_symbolic
        assert config.use_symbolic


class TestReport:
    def _scheme(self):
        return OnlineScheme((0,), OnlineProgram(("s",), "x", (add("s", "x"),)))

    def test_record_hole_accumulates_methods(self):
        report = SynthesisReport("t", True, 1.0)
        report.record_hole(HoleOutcome(1, "implicate", 5, 3))
        report.record_hole(HoleOutcome(2, "implicate", 5, 3))
        report.record_hole(HoleOutcome(3, "template", 9, 12))
        assert report.method_counts == {"implicate": 2, "template": 1}

    def test_online_size(self):
        report = SynthesisReport("t", True, 1.0, scheme=self._scheme())
        assert report.online_size() == 3  # add(s, x)

    def test_online_size_none_when_unsolved(self):
        report = SynthesisReport("t", False, 1.0)
        assert report.online_size() is None

    def test_summary_line_failure(self):
        report = SynthesisReport("t", False, 2.0, failure_reason="boom")
        assert "FAIL" in report.summary_line()
        assert "boom" in report.summary_line()


class TestSchemeDescribe:
    def test_describe_contains_init_and_program(self):
        scheme = OnlineScheme(
            (0,), OnlineProgram(("s",), "x", (add("s", "x"),))
        )
        text = scheme.describe()
        assert "initializer" in text
        assert "s + x" in text
