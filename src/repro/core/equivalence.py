"""Testing-based equivalence oracles (Section 6).

The paper checks equivalence modulo the RFS by testing and bounded
verification, acknowledging that fully automatic equivalence checking is out
of scope.  We implement the same regime with deterministic pseudo-random
test generation over exact rationals:

* :func:`check_expr_equivalence` — Definition 5.3: an online candidate ``E'``
  must equal ``E[(xs ++ [x])/xs]`` whenever the auxiliary parameters satisfy
  the RFS;
* :func:`check_scheme_equivalence` — Definition 3.3: the full scheme must
  agree with the offline program on every prefix of random streams;
* :func:`check_inductiveness` — Definition 4.3: the RFS is preserved by one
  online step (used by the property-based tests).
"""

from __future__ import annotations

import random
from fractions import Fraction
from functools import lru_cache
from typing import Mapping, Sequence

from ..ir.compile import IRCompileError, compile_expr, jit_enabled
from ..ir.evaluator import EvaluationError, evaluate, run_offline
from ..ir.nodes import Expr, Program
from ..ir.values import Value, values_close
from .config import SynthesisConfig
from .rfs import RFS
from .scheme import OnlineScheme


def make_rng(config: SynthesisConfig, salt: str = "") -> random.Random:
    return random.Random(f"{config.seed}:{salt}")


def random_rational(rng: random.Random) -> Fraction:
    """Small exact rationals, with deliberately frequent zeros and ±1/±2.

    Safe division makes candidates that recombine fractions (``y + 1/x`` vs
    ``(x*y + 1)/x``) differ exactly at zeros and cancellations, so the test
    distribution must hit those points often.
    """
    roll = rng.random()
    if roll < 0.30:
        return Fraction(rng.choice((-2, -1, 0, 1, 2)))
    if roll < 0.70:
        return Fraction(rng.randint(-8, 12))
    return Fraction(rng.randint(-24, 24), rng.randint(1, 6))


def random_element(rng: random.Random, arity: int = 1) -> Value:
    """One stream element: a rational, or a tuple of them for record-like
    streams (auction bids)."""
    if arity <= 1:
        return random_rational(rng)
    return tuple(random_rational(rng) for _ in range(arity))


def random_list(rng: random.Random, max_len: int, min_len: int = 0, arity: int = 1) -> list[Value]:
    length = rng.randint(min_len, max_len)
    return [random_element(rng, arity) for _ in range(length)]


def random_extras(rng: random.Random, names: Sequence[str]) -> dict[str, Value]:
    """Extra-parameter values.

    Half the time the value is drawn from the same small grid as stream
    elements, so equality-based predicates (``attr == category``) actually
    fire during testing; otherwise equality-guarded branches would be
    invisible to the oracle.
    """
    return {
        name: (
            Fraction(rng.choice((-2, -1, 0, 1, 2)))
            if rng.random() < 0.5
            else Fraction(rng.randint(1, 9))
        )
        for name in names
    }


def rfs_environment(
    rfs: RFS,
    xs: Sequence[Value],
    extras: Mapping[str, Value],
) -> dict[str, Value] | None:
    """Bind every auxiliary parameter to its specification's value on ``xs``.

    Returns ``None`` if a specification fails to evaluate (treated as a
    discarded test)."""
    env: dict[str, Value] = dict(extras)
    env[rfs.list_param] = list(xs)
    bindings: dict[str, Value] = dict(extras)
    try:
        for name, spec in rfs.entries.items():
            bindings[name] = evaluate(spec, env)
    except EvaluationError:
        return None
    return bindings


@lru_cache(maxsize=512)
def _compile_cached(expr: Expr, params: tuple[str, ...]):
    """Memoized positional compilation (IR nodes hash structurally, so the
    offline spec — identical across the thousands of candidates one
    enumeration run tests — compiles once, not once per candidate).
    ``None`` marks uncompilable expressions, caching the failure too."""
    try:
        return compile_expr(expr, params, name="oracle")
    except IRCompileError:
        return None


def _compiled_evaluator(expr: Expr, params: tuple[str, ...], what: str):
    """Compile ``expr`` to ``fn(env) -> value`` over the fixed name set
    ``params``, or ``None`` when compilation is unavailable (JIT disabled,
    holes, free names outside ``params``) — callers then interpret, which is
    behaviourally identical (:mod:`repro.ir.compile`)."""
    if not jit_enabled():
        return None
    fn = _compile_cached(expr, params)
    if fn is None:
        return None

    def call(env):
        return fn(*[env[p] for p in params])

    return call


def check_expr_equivalence(
    spec: Expr,
    candidate: Expr,
    rfs: RFS,
    config: SynthesisConfig,
    elem_param: str = "x",
    salt: str = "expr",
) -> bool:
    """Definition 5.3, decided by testing.

    For random ``xs`` and ``x``: evaluate the offline ``spec`` on
    ``xs ++ [x]`` and the online ``candidate`` under the RFS bindings for
    ``xs``; all pairs must agree.

    Both sides are compiled to native closures *once* before the test
    battery (instead of re-walking the trees per test); anything the codegen
    backend declines falls back to the interpreter, test by test, with
    identical results and exceptions.
    """
    rng = make_rng(config, salt)
    online_params = tuple(dict.fromkeys((*rfs.extra_params, *rfs.names, elem_param)))
    offline_params = tuple(dict.fromkeys((*rfs.extra_params, rfs.list_param)))
    candidate_fn = _compiled_evaluator(candidate, online_params, "oracle-candidate")
    spec_fn = _compiled_evaluator(spec, offline_params, "oracle-spec")
    checked = 0
    attempts = 0
    while checked < config.equivalence_tests and attempts < config.equivalence_tests * 4:
        attempts += 1
        xs = random_list(rng, config.equivalence_max_len, arity=config.element_arity)
        x = random_element(rng, config.element_arity)
        extras = random_extras(rng, rfs.extra_params)
        bindings = rfs_environment(rfs, xs, extras)
        if bindings is None:
            continue
        offline_env: dict[str, Value] = dict(extras)
        offline_env[rfs.list_param] = list(xs) + [x]
        try:
            if spec_fn is not None:
                expected = spec_fn(offline_env)
            else:
                expected = evaluate(spec, offline_env)
        except EvaluationError:
            continue
        online_env = dict(bindings)
        online_env[elem_param] = x
        try:
            if candidate_fn is not None:
                actual = candidate_fn(online_env)
            else:
                actual = evaluate(candidate, online_env)
        except (EvaluationError, ArithmeticError, TypeError, ValueError):
            return False
        if not values_close(expected, actual):
            return False
        checked += 1
    return checked > 0


def check_scheme_equivalence(
    program: Program,
    scheme: OnlineScheme,
    config: SynthesisConfig,
    salt: str = "scheme",
) -> bool:
    """Definition 3.3, decided by testing on every prefix of random streams."""
    rng = make_rng(config, salt)
    step = scheme._resolve_step()  # compiled once for the whole battery
    for _ in range(config.equivalence_tests):
        xs = random_list(rng, config.equivalence_max_len, arity=config.element_arity)
        extras = random_extras(rng, program.extra_params)
        state = scheme.initializer
        try:
            if not values_close(state[0], run_offline(program, [], extras)):
                return False
            for i, element in enumerate(xs):
                state = step(state, element, extras)
                expected = run_offline(program, xs[: i + 1], extras)
                if not values_close(state[0], expected):
                    return False
        except (EvaluationError, ArithmeticError, TypeError, ValueError):
            return False
    return True


def check_inductiveness(
    rfs: RFS,
    scheme: OnlineScheme,
    config: SynthesisConfig,
    salt: str = "inductive",
) -> bool:
    """Definition 4.3, decided by testing: if the state satisfies the RFS on
    ``xs``, the stepped state satisfies it on ``xs ++ [x]``."""
    rng = make_rng(config, salt)
    step = scheme._resolve_step()  # compiled once for the whole battery
    for _ in range(config.equivalence_tests):
        xs = random_list(rng, config.equivalence_max_len, arity=config.element_arity)
        x = random_element(rng, config.element_arity)
        extras = random_extras(rng, rfs.extra_params)
        before = rfs_environment(rfs, xs, extras)
        after = rfs_environment(rfs, list(xs) + [x], extras)
        if before is None or after is None:
            continue
        state = tuple(before[name] for name in rfs.names)
        try:
            stepped = step(state, x, extras)
        except (EvaluationError, ArithmeticError, TypeError, ValueError):
            return False
        expected = tuple(after[name] for name in rfs.names)
        if not values_close(stepped, expected):
            return False
    return True
