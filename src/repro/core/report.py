"""Structured synthesis outcomes for the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.nodes import Program
from ..ir.traversal import ast_size
from .scheme import OnlineScheme


@dataclass
class HoleOutcome:
    """How one sketch hole was solved."""

    hole_id: int
    method: str  # "implicate" | "mined" | "template" | "enumerative"
    spec_size: int
    solution_size: int


@dataclass
class SynthesisReport:
    """Everything Table 2 / Figures 11 and 13 need about one task."""

    task: str
    success: bool
    elapsed_s: float
    scheme: OnlineScheme | None = None
    holes: list[HoleOutcome] = field(default_factory=list)
    failure_reason: str | None = None
    method_counts: dict[str, int] = field(default_factory=dict)

    def record_hole(self, outcome: HoleOutcome) -> None:
        self.holes.append(outcome)
        self.method_counts[outcome.method] = (self.method_counts.get(outcome.method, 0) + 1)

    def online_size(self) -> int | None:
        if self.scheme is None:
            return None
        return sum(ast_size(out) for out in self.scheme.program.outputs)

    @staticmethod
    def offline_size(program: Program) -> int:
        return ast_size(program.body)

    def summary_line(self) -> str:
        status = "ok" if self.success else f"FAIL ({self.failure_reason})"
        methods = ", ".join(f"{k}={v}" for k, v in sorted(self.method_counts.items()))
        return f"{self.task:<28} {self.elapsed_s:7.2f}s  {status}  [{methods}]"
