"""Relational function signatures and their inference (Definition 4.1,
Algorithm 2).

An RFS ``Φ`` maps each auxiliary parameter ``yi`` of the online program to a
list-dependent expression ``fi(xs)`` of the offline program.  By convention
``y1`` maps to the whole body ``E`` (the offline result), and the remaining
parameters map to the *list expressions* of ``E`` — the maximal scalar
expressions that directly consume the input list (each ``foldl``, each
``length(xs)``-style call).

Per the implementation notes of Section 6, inference may produce more
accumulators than necessary; :mod:`repro.core.postprocess` removes unused
ones afterwards.  We additionally always include a ``length(xs)`` accumulator
when it is missing, because the template-solving optimization of Appendix B
interpolates coefficients as polynomials over the stream length ``n`` and
needs that parameter to exist (it is dropped again if unused).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.dsl import length
from ..ir.nodes import Call, Expr, ListVar, Program
from ..ir.pretty import pretty
from ..ir.traversal import inline_lets, list_exprs


@dataclass
class RFS:
    """An ordered relational function signature.

    ``entries`` maps parameter name -> offline specification expression; the
    first entry is always the program body (``y1`` of the paper).
    ``list_param`` is the offline list variable the specs range over, and
    ``extra_params`` are pass-through scalar arguments (Section 6).
    """

    entries: dict[str, Expr]
    list_param: str = "xs"
    extra_params: tuple[str, ...] = ()
    length_param: str | None = field(default=None)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.entries)

    @property
    def result_param(self) -> str:
        return next(iter(self.entries))

    def spec_of(self, name: str) -> Expr:
        return self.entries[name]

    def param_for_spec(self, spec: Expr) -> str | None:
        for name, entry in self.entries.items():
            if entry == spec:
                return name
        return None

    def __len__(self) -> int:
        return len(self.entries)

    def describe(self) -> str:
        width = max(len(n) for n in self.entries)
        lines = [f"  {name:<{width}} ↦ {pretty(spec)}" for name, spec in self.entries.items()]
        return "\n".join(lines)


def _is_length_of_list(expr: Expr, list_param: str) -> bool:
    return (
        isinstance(expr, Call)
        and expr.func == "length"
        and len(expr.args) == 1
        and isinstance(expr.args[0], ListVar)
        and expr.args[0].name == list_param
    )


def construct_rfs(program: Program, add_length: bool = True) -> RFS:
    """Algorithm 2: ``y1 ↦ E`` plus one parameter per list expression.

    The body is let-inlined first so that nested definitions (e.g. ``avg`` in
    the two-pass variance) expose their list expressions.

    ``add_length=False`` suppresses the always-present stream-length
    accumulator; the SyGuS baselines use this mode because the paper hands
    them a manually specified (minimal) signature.
    """
    body = inline_lets(program.body)
    entries: dict[str, Expr] = {}
    names_iter = _name_generator()
    result_name = next(names_iter)
    entries[result_name] = body

    length_param: str | None = None
    for expr in list_exprs(body):
        if expr == body:
            continue  # already covered by y1
        name = next(names_iter)
        entries[name] = expr
        if length_param is None and _is_length_of_list(expr, program.param):
            length_param = name

    if length_param is None and add_length:
        # Ensure a stream-length accumulator exists for template solving.
        name = next(names_iter)
        entries[name] = length(ListVar(program.param))
        length_param = name

    return RFS(
        entries,
        list_param=program.param,
        extra_params=program.extra_params,
        length_param=length_param,
    )


def _name_generator():
    index = 0
    while True:
        index += 1
        yield f"y{index}"
