"""Post-processing: drop auxiliary parameters the online program never uses
(the Remark below Algorithm 2).

``ConstructRFS`` over-approximates the needed accumulators (and we always add
a stream-length accumulator for template solving); after synthesis we keep
only the parameters transitively reachable from the first output.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.nodes import OnlineProgram
from ..ir.traversal import free_vars
from ..ir.values import Value
from .rfs import RFS


@dataclass
class PrunedScheme:
    initializer: tuple[Value, ...]
    program: OnlineProgram
    kept_params: tuple[str, ...]


def prune_unused_accumulators(
    rfs: RFS,
    initializer: tuple[Value, ...],
    program: OnlineProgram,
) -> PrunedScheme:
    """Keep the result accumulator plus everything it transitively reads."""
    names = list(program.state_params)
    outputs = list(program.outputs)
    index_of = {name: i for i, name in enumerate(names)}

    needed: set[str] = {names[0]}
    changed = True
    while changed:
        changed = False
        for name in list(needed):
            referenced = free_vars(outputs[index_of[name]]) & set(names)
            fresh = referenced - needed
            if fresh:
                needed |= fresh
                changed = True

    kept = tuple(name for name in names if name in needed)
    if len(kept) == len(names):
        return PrunedScheme(initializer, program, kept)

    new_program = OnlineProgram(
        state_params=kept,
        elem_param=program.elem_param,
        outputs=tuple(outputs[index_of[name]] for name in kept),
        extra_params=program.extra_params,
    )
    new_init = tuple(initializer[index_of[name]] for name in kept)
    return PrunedScheme(new_init, new_program, kept)
