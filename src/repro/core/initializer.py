"""Initializer construction (line 3 of Algorithm 1).

The initializer is a model of ``Φ[xs ↦ Nil]``: each auxiliary parameter's
initial value is its specification evaluated on the empty list.  With a
concrete interpreter this is a single evaluation per entry rather than a
constraint-solving problem.

Programs with extra scalar parameters (Section 6) are supported as long as
the initial values do not depend on those parameters — fold initial
accumulators are constants in all our benchmarks.  Dependence is detected by
evaluating under two distinct parameter valuations.
"""

from __future__ import annotations

from typing import Mapping

from ..ir.evaluator import evaluate
from ..ir.values import Value, values_close
from .exceptions import UnsupportedProgram
from .rfs import RFS


def _evaluate_on_nil(rfs: RFS, extra: Mapping[str, Value]) -> tuple[Value, ...]:
    env: dict[str, Value] = dict(extra)
    env[rfs.list_param] = []
    return tuple(evaluate(spec, env) for spec in rfs.entries.values())


def build_initializer(rfs: RFS) -> tuple[Value, ...]:
    """Evaluate every RFS entry on the empty list."""
    if not rfs.extra_params:
        return _evaluate_on_nil(rfs, {})
    probe_a = {name: 1 for name in rfs.extra_params}
    probe_b = {name: 2 for name in rfs.extra_params}
    init_a = _evaluate_on_nil(rfs, probe_a)
    init_b = _evaluate_on_nil(rfs, probe_b)
    if not values_close(init_a, init_b):
        raise UnsupportedProgram(
            "initializer depends on extra parameters; constant initializers "
            "are required (Figure 7)"
        )
    return init_a
