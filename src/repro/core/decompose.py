"""Syntax-directed sketch generation (Figure 9).

``decompose`` turns the RFS into a program sketch for the online program:
one output expression per RFS entry, built by copying the offline structure
and replacing every list expression with a hole.  The crucial property
(Lemma 1) is that each hole carries its *own* offline specification, so the
holes can be solved completely independently.

Structurally identical list expressions share a hole (this is what makes the
variance sketch of Figure 5 reuse ``□1`` and ``□2`` across outputs).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.nodes import Expr, Hole, OnlineProgram
from ..ir.pretty import pretty
from ..ir.traversal import is_list_expr, rebuild
from .exceptions import UnsupportedProgram
from .rfs import RFS

#: Default name of the new-element parameter of online programs.
ELEM_PARAM = "x"


@dataclass
class Sketch:
    """A program sketch plus the hole-specification context ``Δ``."""

    program: OnlineProgram
    specs: dict[int, Expr]  # hole id -> offline specification

    def describe(self) -> str:
        lines = []
        for hole_id, spec in sorted(self.specs.items()):
            lines.append(f"  □{hole_id} ↦ {pretty(spec)}")
        return "\n".join(lines)


class _Decomposer:
    def __init__(self) -> None:
        self.specs: dict[int, Expr] = {}
        self._by_spec: dict[Expr, int] = {}

    def hole_for(self, spec: Expr) -> Hole:
        existing = self._by_spec.get(spec)
        if existing is not None:
            return Hole(existing)
        hole_id = len(self.specs) + 1
        self.specs[hole_id] = spec
        self._by_spec[spec] = hole_id
        return Hole(hole_id)

    def sketch_expr(self, expr: Expr) -> Expr:
        """The judgment ``Φ ⊢ E ↩→ Ω, Δ`` of Figure 9."""
        # Rule List: maximal scalar expressions consuming the input list
        # become holes with the expression itself as specification.
        if is_list_expr(expr):
            return self.hole_for(expr)
        from ..ir.nodes import Lambda, ListVar, Map, Filter, Fold, Snoc

        if isinstance(expr, (ListVar, Map, Filter, Fold, Snoc, Lambda)):
            # A bare list value (or stray lambda) cannot appear in an online
            # program and is not a scalar list expression either.
            raise UnsupportedProgram(f"cannot sketch list-typed expression {pretty(expr)}")
        # Rules Leaf / Func / ITE: copy structure, recurse into children.
        new_children = tuple(self.sketch_expr(c) for c in expr.children())
        return rebuild(expr, new_children)


def decompose(rfs: RFS) -> Sketch:
    """Rule Prog of Figure 9: sketch every RFS entry, union the contexts."""
    decomposer = _Decomposer()
    outputs = tuple(decomposer.sketch_expr(spec) for spec in rfs.entries.values())
    program = OnlineProgram(
        state_params=rfs.names,
        elem_param=ELEM_PARAM,
        outputs=outputs,
        extra_params=rfs.extra_params,
    )
    return Sketch(program, decomposer.specs)
