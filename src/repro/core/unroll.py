"""Symbolic unrolling of offline expressions (the ``Unroll`` procedure of
Algorithm 4).

``MineExpressions`` instantiates the input list with a symbolic list of fixed
size ``k`` and symbolically executes the offline expression on it.  Here this
is a partial evaluator over IR expressions: list values become concrete
Python lists *of IR expressions*, folds unroll to ``k`` nested applications,
maps apply their lambda pointwise, and arithmetic over constants folds.

``filter`` over symbolic elements cannot be unrolled (element-dependent
branching); mining simply fails for such specifications and the synthesizer
falls back to enumerative search, mirroring the paper's design where mining
is a best-effort accelerator.
"""

from __future__ import annotations

from typing import Mapping, Union

from ..ir.builtins import get_builtin
from ..ir.nodes import (
    Call,
    Const,
    Expr,
    Filter,
    Fold,
    If,
    Lambda,
    Let,
    ListVar,
    MakeTuple,
    Map,
    Proj,
    Snoc,
    Var,
    const,
)
from ..ir.values import is_number


class UnrollFailure(Exception):
    """The expression cannot be unrolled on a symbolic list."""


SymVal = Union[Expr, list, Lambda]


def element_var(index: int) -> str:
    """Canonical name of the ``index``-th symbolic list element (1-based)."""
    return f"_e{index}"


def symbolic_list(size: int) -> list[Expr]:
    return [Var(element_var(i)) for i in range(1, size + 1)]


def _apply(func: SymVal, env: Mapping[str, SymVal], *args: Expr) -> Expr:
    """Apply a lambda under ``env``: bind parameters and re-unroll the body,
    so captured list variables (e.g. ``avg``'s ``xs``) resolve correctly."""
    if not isinstance(func, Lambda):
        raise UnrollFailure(f"cannot apply non-lambda {func!r} during unrolling")
    if len(func.params) != len(args):
        raise UnrollFailure("lambda arity mismatch during unrolling")
    inner = dict(env)
    inner.update(zip(func.params, args))
    result = unroll(func.body, inner)
    return _simplify(_expect_scalar(result))


def _simplify(expr: Expr) -> Expr:
    """Light constant folding to keep unrolled terms small."""
    if isinstance(expr, Call) and isinstance(expr.func, str):
        args = tuple(_simplify(a) for a in expr.args)
        if all(isinstance(a, Const) for a in args):
            builtin = get_builtin(expr.func)
            value = builtin.impl(*(a.value for a in args))  # type: ignore[union-attr]
            if is_number(value) or isinstance(value, bool):
                return const(value)
        return Call(expr.func, args)
    if isinstance(expr, If) and isinstance(expr.cond, Const):
        return _simplify(expr.then if expr.cond.value else expr.orelse)
    return expr


def unroll(expr: Expr, env: Mapping[str, SymVal]) -> SymVal:
    """Partially evaluate ``expr``; list variables must be bound to Python
    lists of IR expressions in ``env``."""
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        return env.get(expr.name, expr)
    if isinstance(expr, ListVar):
        value = env.get(expr.name)
        if not isinstance(value, list):
            raise UnrollFailure(f"list variable {expr.name!r} unbound in unroll")
        return value
    if isinstance(expr, Lambda):
        return expr  # applied later under the *current* environment
    if isinstance(expr, Call):
        if isinstance(expr.func, Lambda):
            args = [_expect_scalar(unroll(a, env)) for a in expr.args]
            return _apply(expr.func, env, *args)
        if expr.func == "length":
            lst = unroll(expr.args[0], env)
            if isinstance(lst, list):
                return Const(len(lst))
            raise UnrollFailure("length of non-list during unroll")
        args = [_expect_scalar(unroll(a, env)) for a in expr.args]
        return _simplify(Call(expr.func, tuple(args)))
    if isinstance(expr, If):
        cond = _expect_scalar(unroll(expr.cond, env))
        if isinstance(cond, Const):
            return unroll(expr.then if cond.value else expr.orelse, env)
        return If(
            cond,
            _expect_scalar(unroll(expr.then, env)),
            _expect_scalar(unroll(expr.orelse, env)),
        )
    if isinstance(expr, Map):
        func = unroll(expr.func, env)
        lst = _expect_list(unroll(expr.lst, env))
        return [_apply(func, env, item) for item in lst]
    if isinstance(expr, Filter):
        func = unroll(expr.func, env)
        lst = _expect_list(unroll(expr.lst, env))
        kept = []
        for item in lst:
            verdict = _apply(func, env, item)
            if not isinstance(verdict, Const):
                raise UnrollFailure("filter predicate is element-dependent")
            if verdict.value:
                kept.append(item)
        return kept
    if isinstance(expr, Fold):
        func = unroll(expr.func, env)
        acc = _expect_scalar(unroll(expr.init, env))
        lst = _expect_list(unroll(expr.lst, env))
        for item in lst:
            acc = _apply(func, env, acc, item)
        return acc
    if isinstance(expr, Let):
        value = unroll(expr.value, env)
        inner = dict(env)
        inner[expr.name] = value
        return unroll(expr.body, inner)
    if isinstance(expr, Snoc):
        lst = _expect_list(unroll(expr.lst, env))
        elem = _expect_scalar(unroll(expr.elem, env))
        return lst + [elem]
    if isinstance(expr, MakeTuple):
        return MakeTuple(tuple(_expect_scalar(unroll(i, env)) for i in expr.items))
    if isinstance(expr, Proj):
        tup = unroll(expr.tup, env)
        if isinstance(tup, MakeTuple):
            return tup.items[expr.index]
        return Proj(_expect_scalar(tup), expr.index)
    raise UnrollFailure(f"cannot unroll {type(expr).__name__} node")


def _expect_scalar(value: SymVal) -> Expr:
    if isinstance(value, list):
        raise UnrollFailure("list value where scalar expected")
    if isinstance(value, Lambda):
        raise UnrollFailure("lambda value where scalar expected")
    return value


def _expect_list(value: SymVal) -> list:
    if not isinstance(value, list):
        raise UnrollFailure("scalar value where list expected")
    return value


def unroll_on_elements(expr: Expr, list_param: str, size: int) -> Expr:
    """Unroll ``expr`` with ``list_param`` bound to ``[_e1, ..., _e<size>]``."""
    result = unroll(expr, {list_param: symbolic_list(size)})
    return _expect_scalar(result)
