"""Online schemes and their stream semantics (Figures 7 and 8).

An online scheme is a pair ``(I, P')`` of an initializer tuple and an online
program.  This module implements the big-step semantics of Figure 8 —
running a scheme over a finite stream yields the stream of first components —
plus convenience helpers used by the runtime, the equivalence oracle, and the
examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..ir.compile import (
    IRCompileError,
    StepKernel,
    compile_online_step,
    compile_step_batch,
    jit_enabled,
    kernel_partial,
)
from ..ir.evaluator import step_online
from ..ir.nodes import OnlineProgram
from ..ir.pretty import pretty_online
from ..ir.values import Value

#: Cache marker: the program was tried and cannot be compiled (holes etc.);
#: the scheme then runs on the interpreter without retrying per resolve.
_UNCOMPILABLE = object()


@dataclass
class OnlineScheme:
    """``S = (I, P')`` with optional provenance metadata."""

    initializer: tuple[Value, ...]
    program: OnlineProgram
    #: Human-readable note on how the scheme was obtained (for reports).
    #: Excluded from equality: two schemes that compute the same thing are
    #: the same scheme regardless of where they came from.
    provenance: str = field(default="synthesized", compare=False)
    #: Lazily-built native closure for ``program`` (see
    #: :mod:`repro.ir.compile`).  Per-instance, so deserializing a scheme
    #: starts with a cold cache; dropped on pickling (closures are process
    #: artifacts, not data).
    _compiled_step: object = field(default=None, init=False, repr=False, compare=False)
    #: Lazily-built whole-batch kernel (see
    #: :func:`repro.ir.compile.compile_step_batch`); same lifecycle as
    #: ``_compiled_step`` — per-instance, cold after deserialization,
    #: dropped on pickling.
    _compiled_kernel: object = field(default=None, init=False, repr=False, compare=False)
    #: Lazily-built columnar kernels, one entry per distinct
    #: ``(bounds, allow_float)`` request (see :meth:`compiled_columns`);
    #: same lifecycle as the other caches.
    _columnar_cache: list = field(default_factory=list, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.initializer) != self.program.arity:
            raise ValueError(
                f"initializer arity {len(self.initializer)} != "
                f"program arity {self.program.arity}"
            )

    @property
    def arity(self) -> int:
        return self.program.arity

    # -- execution backends ------------------------------------------------

    def compiled_step(
        self,
    ) -> Callable[[Sequence[Value], Value, Mapping[str, Value] | None], tuple]:
        """The online program as a compiled native closure
        ``step(state, element, extra=None)``, built once and cached.

        Raises :class:`~repro.ir.compile.IRCompileError` if the program
        cannot be compiled (e.g. it still contains sketch holes); the
        interpreter remains available through :meth:`interpreted_step`.
        """
        cached = self._compiled_step
        if cached is None:
            try:
                cached = compile_online_step(self.program, name=self.provenance)
            except IRCompileError:
                cached = _UNCOMPILABLE
            self._compiled_step = cached
        if cached is _UNCOMPILABLE:
            raise IRCompileError(f"online program of {self.provenance!r} is not compilable")
        return cached  # type: ignore[return-value]

    def interpreted_step(
        self,
        state: Sequence[Value],
        element: Value,
        extra: Mapping[str, Value] | None = None,
    ) -> tuple[Value, ...]:
        """One transition on the tree-walking interpreter (the ground truth
        the compiled backend is differential-tested against)."""
        return step_online(self.program, state, element, extra)

    def compiled_kernel(self) -> StepKernel:
        """The whole-batch execution plan as a codegen-backed
        :class:`~repro.ir.compile.StepKernel`, built once and cached.

        Raises :class:`~repro.ir.compile.IRCompileError` when the program
        cannot be batch-compiled (holes, or a shape the loop transformation
        declines); :meth:`_resolve_kernel` then drives the resolved scalar
        step from the generic loop instead.
        """
        cached = self._compiled_kernel
        if cached is None:
            try:
                cached = compile_step_batch(self.program, name=self.provenance)
            except IRCompileError:
                cached = _UNCOMPILABLE
            self._compiled_kernel = cached
        if cached is _UNCOMPILABLE:
            raise IRCompileError(f"online program of {self.provenance!r} is not batch-compilable")
        return cached  # type: ignore[return-value]

    def compiled_columns(
        self, bounds=None, *, allow_float: bool = False, jit: bool | None = None
    ):
        """The certificate-licensed columnar (NumPy) kernel for this scheme
        under ``bounds``, or ``None`` when the fast path is unavailable.

        ``None`` means: NumPy is not installed, the scheme is not
        scan-decomposable, or admission (see
        :func:`repro.ir.vectorize.admit_columnar`) did not yield the
        ``int64`` certificate and ``allow_float`` is False.  Callers fall
        back to :meth:`_resolve_kernel` — the columnar path never changes
        what a scheme computes, only how fast the admitted ones run.
        Results are cached per ``(bounds, allow_float)`` request.
        """
        from ..ir.vectorize import columnar_kernel_for, numpy_or_none

        if numpy_or_none() is None:
            # Checked before the cache so REPRO_NO_NUMPY keeps working after
            # a kernel was compiled (the degraded-path tests flip it live).
            return None
        for cached_bounds, cached_allow, kernel in self._columnar_cache:
            if cached_bounds == bounds and cached_allow == allow_float:
                return kernel
        kernel = columnar_kernel_for(
            self,
            bounds,
            allow_float=allow_float,
            exact=self._resolve_kernel(jit),
        )
        self._columnar_cache.append((bounds, allow_float, kernel))
        return kernel

    def invalidate_compiled(self) -> None:
        """Drop the cached closure and batch kernel.  Only needed if
        ``program`` is mutated in place, which nothing in this codebase
        does (schemes from ``loads``/``from_dict`` are fresh objects with
        cold caches)."""
        self._compiled_step = None
        self._compiled_kernel = None
        self._columnar_cache = []

    def _resolve_step(
        self, jit: bool | None = None
    ) -> Callable[[Sequence[Value], Value, Mapping[str, Value] | None], tuple]:
        """The step callable honouring the ``REPRO_JIT`` escape hatch, with
        automatic interpreter fallback for uncompilable programs."""
        if jit is None:
            jit = jit_enabled()
        if jit:
            try:
                return self.compiled_step()
            except IRCompileError:
                pass
        return self.interpreted_step

    def _resolve_kernel(self, jit: bool | None = None) -> StepKernel:
        """The batch execution plan with the same contract as
        :meth:`_resolve_step`: the codegen-backed kernel by default, an
        interpreter-driven (or scalar-closure-driven) loop under
        ``REPRO_JIT=0`` / ``jit=False`` or when batch codegen declines —
        always bit-for-bit identical results over exact rationals."""
        if jit is None:
            jit = jit_enabled()
        if jit:
            try:
                return self.compiled_kernel()
            except IRCompileError:
                pass
        return StepKernel.from_step(self._resolve_step(jit), name=self.provenance)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_compiled_step"] = None  # exec'd closures do not pickle
        state["_compiled_kernel"] = None
        state["_columnar_cache"] = []
        return state

    # -- semantics ---------------------------------------------------------

    def step(
        self,
        state: Sequence[Value],
        element: Value,
        extra: Mapping[str, Value] | None = None,
    ) -> tuple[Value, ...]:
        """One S-Cons transition: ``(state, element) -> state'``."""
        return self._resolve_step()(state, element, extra)

    def run(
        self,
        stream: Iterable[Value],
        extra: Mapping[str, Value] | None = None,
    ) -> Iterator[Value]:
        """Lazy semantics of Figure 8: yields ``fst`` of each new state.

        For the empty stream this yields the single value ``fst(I)``
        (rule Lift-Nil); otherwise one output per consumed element
        (rule S-Cons via Lift-Cons).
        """
        step = self._resolve_step()
        state = self.initializer
        consumed = False
        for element in stream:
            consumed = True
            state = step(state, element, extra)
            yield state[0]
        if not consumed:
            yield self.initializer[0]

    def run_to_list(
        self,
        stream: Iterable[Value],
        extra: Mapping[str, Value] | None = None,
    ) -> list[Value]:
        return list(self.run(stream, extra))

    def final(
        self,
        stream: Iterable[Value],
        extra: Mapping[str, Value] | None = None,
    ) -> Value:
        """``last([[S]]_stream)`` — the value compared against the offline
        program in Definition 3.3.

        Routed through the batch kernel: the whole stream is folded by one
        compiled loop (see :meth:`_resolve_kernel`) instead of a per-element
        closure call, with identical results.
        """
        try:
            state, _consumed = self._resolve_kernel().run(self.initializer, stream, extra)
        except BaseException as exc:
            # Strip the kernel's partial-progress marker: nothing on this
            # path resumes, and the caught exception must not keep the
            # accumulator state alive (or leak a private side channel).
            kernel_partial(exc, self.initializer)
            raise
        return state[0]

    def trajectory(
        self,
        stream: Iterable[Value],
        extra: Mapping[str, Value] | None = None,
    ) -> list[tuple[Value, ...]]:
        """Full accumulator states after each element (used by the
        inductiveness property tests)."""
        step = self._resolve_step()
        states = [self.initializer]
        state = self.initializer
        for element in stream:
            state = step(state, element, extra)
            states.append(state)
        return states

    def describe(self) -> str:
        init = ", ".join(repr(v) for v in self.initializer)
        return f"initializer: ({init})\nprogram:\n{pretty_online(self.program)}"

    # -- static analysis ---------------------------------------------------

    def analyze(
        self,
        bounds=None,
        name: str | None = None,
        search_witness: bool = True,
    ) -> dict:
        """Run the full static-analysis suite over this scheme.

        Returns the versioned report dict of
        :func:`repro.ir.analysis.report.analyze_online` — verdict
        (``ok``/``warn``/``error``), interval certificates, div-by-zero
        reachability, liveness, well-formedness findings.
        """
        from ..ir.analysis import UNKNOWN_BOUNDS, analyze_online

        return analyze_online(
            self.program,
            self.initializer,
            bounds if bounds is not None else UNKNOWN_BOUNDS,
            name=name,
            search_witness=search_witness,
        )

    def eliminate_dead_state(
        self, element_arity: int | None = None
    ) -> tuple["OnlineScheme", tuple[str, ...]]:
        """Drop dead state components whose updates are provably total.

        Returns ``(scheme, removed_names)``; when nothing is safely
        removable the original scheme object is returned unchanged.  The
        rewrite is fault-preserving by construction (only total updates are
        dropped), so the result is bit-identical on every stream —
        differential tests enforce this on all ground truths.
        """
        from dataclasses import replace

        from ..ir.analysis import eliminate_dead_state as _eds

        program, initializer, removed = _eds(self.program, self.initializer, element_arity)
        if not removed:
            return self, ()
        rewritten = replace(self, initializer=initializer, program=program)
        rewritten.provenance = f"{self.provenance} (dead state removed: {', '.join(removed)})"
        return rewritten, removed

    # -- serialization (compile once, deploy anywhere) --------------------

    def to_dict(self) -> dict:
        """JSON-ready envelope (see :mod:`repro.core.serialize`)."""
        from .serialize import scheme_to_dict

        return scheme_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "OnlineScheme":
        from .serialize import scheme_from_dict

        return scheme_from_dict(data)

    def dumps(self, *, indent: int | None = 2) -> str:
        """Serialize to versioned JSON text; exact values (rationals included)
        survive the round trip bit-for-bit."""
        from .serialize import dumps_scheme

        return dumps_scheme(self, indent=indent)

    @classmethod
    def loads(cls, text: str) -> "OnlineScheme":
        """Parse :meth:`dumps` output with strict validation
        (:class:`repro.core.serialize.SchemeFormatError` on anything off)."""
        from .serialize import loads_scheme

        return loads_scheme(text)

    def save(self, path) -> None:
        """Write :meth:`dumps` to ``path`` (text, UTF-8)."""
        from pathlib import Path

        Path(path).write_text(self.dumps() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path) -> "OnlineScheme":
        """Read a scheme previously written by :meth:`save`."""
        from pathlib import Path

        return cls.loads(Path(path).read_text(encoding="utf-8"))
