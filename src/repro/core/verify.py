"""Stronger equivalence checking: bounded-exhaustive and symbolic modes.

Section 6 of the paper: "Opera resorts to unsound equivalence checking
methods based on testing and bounded verification."  The random-testing
oracle lives in :mod:`repro.core.equivalence`; this module adds the other
two regimes:

* :func:`check_bounded_exhaustive` — Definition 5.3 checked on *every* list
  over a small value grid up to a length bound.  Deterministic and much
  denser around the safe-division corner cases than random testing.
* :func:`check_symbolic` — a decision procedure for the division-free
  polynomial fragment: encode both ``E[(xs++[x])/xs]`` (after axiom
  rewriting and list-expression abstraction, under the RFS equations) and
  the candidate, eliminate, and compare rational functions.  Returns
  ``True`` (proved), ``False`` (refuted on a concrete witness), or ``None``
  (fragment not decidable here — fall back to testing).

``verify_scheme`` combines all three for the final acceptance check used by
the examples and the property tests.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Sequence

from ..algebra.elimination import eliminate_variables
from ..ir.evaluator import EvaluationError, evaluate
from ..ir.nodes import Expr, Program
from ..ir.traversal import iter_subexprs, used_builtins
from ..ir.values import Value, values_close
from .config import SynthesisConfig
from .decompose import ELEM_PARAM
from .encode import EncodingContext, encode_expr, replace_list_exprs
from .equivalence import check_scheme_equivalence, rfs_environment
from .exceptions import UnsupportedProgram
from .implicate import TARGET_VAR, build_equations
from .rfs import RFS
from .scheme import OnlineScheme

#: Value grid for bounded-exhaustive checking: dense around 0 and 1 where
#: safe division and cancellation live.
DEFAULT_GRID: tuple[Fraction, ...] = (
    Fraction(-2),
    Fraction(-1),
    Fraction(0),
    Fraction(1),
    Fraction(2),
    Fraction(1, 2),
)


def bounded_streams(
    max_len: int,
    grid: Sequence[Fraction] = DEFAULT_GRID,
    arity: int = 1,
):
    """Every stream over ``grid`` values up to length ``max_len``."""
    elements: list[Value]
    if arity <= 1:
        elements = list(grid)
    else:
        elements = [tuple(c) for c in itertools.product(grid, repeat=arity)]
    for length in range(max_len + 1):
        yield from itertools.product(elements, repeat=length)


def check_bounded_exhaustive(
    spec: Expr,
    candidate: Expr,
    rfs: RFS,
    max_len: int = 3,
    grid: Sequence[Fraction] = DEFAULT_GRID,
    arity: int = 1,
    extras_grid: Sequence[Fraction] = (Fraction(0), Fraction(2)),
) -> bool:
    """Definition 5.3 on every grid stream up to ``max_len`` elements."""
    extra_choices = (
        list(itertools.product(extras_grid, repeat=len(rfs.extra_params)))
        if rfs.extra_params
        else [()]
    )
    for xs in bounded_streams(max_len, grid, arity):
        for x in bounded_streams(1, grid, arity):
            if len(x) != 1:
                continue
            for extra_values in extra_choices:
                extras = dict(zip(rfs.extra_params, extra_values))
                bindings = rfs_environment(rfs, list(xs), extras)
                if bindings is None:
                    continue
                offline_env: dict[str, Value] = dict(extras)
                offline_env[rfs.list_param] = list(xs) + [x[0]]
                try:
                    expected = evaluate(spec, offline_env)
                except EvaluationError:
                    continue
                env = dict(bindings)
                env[ELEM_PARAM] = x[0]
                try:
                    actual = evaluate(candidate, env)
                except (EvaluationError, ArithmeticError, TypeError, ValueError):
                    return False
                if not values_close(expected, actual):
                    return False
    return True


def _division_free(expr: Expr) -> bool:
    """Is the expression in the exactly-decidable fragment (no div, no
    uninterpreted atoms, no conditionals)?"""
    allowed = {"add", "sub", "mul", "neg", "pow", "length"}
    if not used_builtins(expr) <= allowed:
        return False
    from ..ir.nodes import If, MakeTuple, Proj

    return not any(isinstance(sub, (If, MakeTuple, Proj)) for sub in iter_subexprs(expr))


def check_symbolic(
    spec: Expr,
    candidate: Expr,
    rfs: RFS,
) -> bool | None:
    """Prove or refute Definition 5.3 for the division-free fragment.

    Both sides are encoded against the same RFS equation system; the spec
    side goes through the combinator axioms exactly as ``FindImplicate``
    does.  If elimination expresses the spec over the online variables, the
    two rational functions are compared exactly.
    """
    if not (_division_free(spec) and _division_free(candidate)):
        return None
    ctx = EncodingContext()
    try:
        equations, keep = build_equations(rfs, spec, ctx)
        candidate_term = encode_expr(replace_list_exprs(candidate, ctx), ctx)
    except UnsupportedProgram:
        return None
    if ctx.table.atoms_in(candidate_term):
        return None

    elim_vars = list(ctx.list_expr_vars.values())
    polys = [eq.to_poly() for eq in equations]
    try:
        result = eliminate_variables(polys, elim_vars, ctx.table)
    except Exception:  # elimination blow-ups mean "cannot decide"
        return None
    if result.unresolved:
        return None
    from ..algebra.elimination import solve_target

    spec_term = solve_target(result.equations, TARGET_VAR, frozenset(keep), ctx.table)
    if spec_term is None:
        return None
    if any(ctx.table.is_atom_var(v) for v in spec_term.variables()):
        return None
    return spec_term == candidate_term


def verify_scheme(
    program: Program,
    scheme: OnlineScheme,
    config: SynthesisConfig | None = None,
    bounded_len: int = 3,
) -> bool:
    """Belt-and-braces acceptance: random testing (Definition 3.3) plus
    bounded-exhaustive prefix checking over the value grid."""
    config = config or SynthesisConfig()
    if not check_scheme_equivalence(program, scheme, config):
        return False
    grid = DEFAULT_GRID
    arity = config.element_arity
    extra_choices = (
        list(itertools.product((Fraction(0), Fraction(2)), repeat=len(program.extra_params)))
        if program.extra_params
        else [()]
    )
    from ..ir.evaluator import run_offline

    for xs in bounded_streams(bounded_len, grid, arity):
        for extra_values in extra_choices:
            extras = dict(zip(program.extra_params, extra_values))
            try:
                state = scheme.initializer
                for i, element in enumerate(xs):
                    state = scheme.step(state, element, extras)
                    expected = run_offline(program, list(xs[: i + 1]), extras)
                    if not values_close(state[0], expected):
                        return False
            except (EvaluationError, ArithmeticError, TypeError, ValueError):
                return False
    return True
