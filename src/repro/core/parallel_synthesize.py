"""Intra-task parallel synthesis: hole sharding over a process pool.

``--workers N`` parallelizes *across* (solver, benchmark) cells; before this
module, a single hard task with many sketch holes still ran its entire
search on one core.  Lemma 1 (see :mod:`repro.core.decompose`) makes the
fix natural: every hole carries its own offline specification and the holes
share no fill dependencies, so each ``SynthesizeExpr`` call is an
independent, picklable sub-task.  This module dispatches them over the same
:class:`~repro.supervisor.ProcessSupervisor` the benchmark harness uses,
with two extra properties the harness does not need:

**Determinism.** ``hole_workers`` is an execution knob, never a search
knob: parallel and sequential synthesis produce identical
:class:`~repro.core.report.SynthesisReport`\\ s modulo ``elapsed_s``
(whenever the budget does not bind — wall-clock timeouts are inherently
racy in either mode).  Hole outcomes are recorded in sorted hole order
regardless of completion order; a failing hole raises exactly the exception
the sequential loop would raise, after the same prefix of hole outcomes has
been recorded; and when ``config.enum_shards > 1`` splits one hole into a
shard portfolio, the winner is the *lowest-index* accepting shard — the
same candidate the sequential shard loop of
:func:`~repro.core.enumerative.enumerate_sharded` settles on — with
later-index stragglers cancelled, never consulted.  The config fingerprint
therefore *excludes* ``hole_workers`` (cache entries are shared across
worker counts) and *includes* ``enum_shards``.

**Budget accounting.** Every sub-task inherits the task's *remaining*
budget at dispatch, and the supervisor additionally caps every kill
deadline at the task deadline, so the hard wall-clock guarantee of the
outer harness still bounds the whole task: no hole worker survives past
``timeout_s + kill_grace_s``.

Workers are forked where available and spawned elsewhere (payloads are
picklable).  Inside a *daemonic* bench worker the pool is unavailable
(daemonic processes may not have children); ``solve_sketch_parallel``
detects that and declines, and the caller falls back to the sequential
loop — which is why ``execute_tasks`` spawns non-daemonic workers whenever
a task config asks for ``hole_workers > 1``.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import replace

from ..ir.nodes import Expr, OnlineProgram
from ..ir.pretty import pretty
from ..ir.traversal import ast_size, fill_holes
from ..supervisor import Job, ProcessSupervisor
from .config import SynthesisConfig
from .decompose import Sketch
from .exceptions import (
    EnumerationCapExceeded,
    HoleSynthesisFailure,
    SynthesisError,
    SynthesisTimeout,
)
from .report import HoleOutcome, SynthesisReport
from .rfs import RFS
from .simplify import simplify_expr

#: Sub-task outcome tags (the picklable payload of one hole worker).
_OK, _NONE, _TIMEOUT, _ERROR = "ok", "none", "timeout", "error"


def _hole_job(
    rfs: RFS,
    spec: Expr,
    config: SynthesisConfig,
    salt: str,
    enum_shard: int | None,
) -> tuple:
    """Child-process body: solve one hole (optionally restricted to one
    enumeration shard); exceptions become tagged outcomes, not crashes."""
    from .synthesize import synthesize_expr

    config.start_clock()
    try:
        expr, method = synthesize_expr(rfs, spec, config, salt=salt, enum_shard=enum_shard)
        return (_OK, expr, method)
    except HoleSynthesisFailure:
        return (_NONE, None, None)
    except SynthesisTimeout as exc:
        # Carry the concrete class name across the process boundary: the
        # parent must re-raise EnumerationCapExceeded as itself, or the
        # failure_reason diverges from the sequential run's.
        return (_TIMEOUT, str(exc), type(exc).__name__)


def _scan(outcomes: dict, order: tuple) -> tuple | None:
    """Resolve a hole from its per-shard outcomes, replicating the
    sequential shard loop: walk shards in index order; the first ``ok`` or
    ``timeout`` decides, ``none`` keeps scanning, a gap means undecided."""
    for shard in order:
        outcome = outcomes.get(shard)
        if outcome is None:
            return None
        if outcome[0] in (_OK, _TIMEOUT, _ERROR):
            return outcome
    return (_NONE, None, None)


def solve_sketch_parallel(
    rfs: RFS,
    sketch: Sketch,
    config: SynthesisConfig,
    report: SynthesisReport,
) -> OnlineProgram | None:
    """Algorithm 3 with holes sharded over ``config.hole_workers`` processes.

    Returns ``None`` when the pool is unavailable or useless (single
    sub-task, daemonic process) — the caller then runs the sequential loop.
    Otherwise the result, the recorded hole outcomes, and any raised failure
    are identical to :func:`repro.core.synthesize._solve_sketch` (modulo
    wall-clock, and assuming a non-binding budget).
    """
    holes = sorted(sketch.specs.items())
    shards = config.enum_shards
    # Shard indices per hole: one full-pipeline job when unsharded, else one
    # job per enumeration shard plus the unsharded fallback (index K).
    shard_order: tuple = (None,) if shards <= 1 else tuple(range(shards + 1))
    total_jobs = len(holes) * len(shard_order)
    if total_jobs < 2 or mp.current_process().daemon:
        return None

    remaining = config.remaining()
    if remaining <= 0:
        raise SynthesisTimeout(f"budget exhausted at hole {holes[0][0]}")
    job_config = replace(config, timeout_s=remaining, hole_workers=1)
    jobs = [
        Job(
            key=(hole_id, shard),
            fn=_hole_job,
            args=(rfs, spec, job_config, str(hole_id), shard),
            timeout_s=remaining,
        )
        for hole_id, spec in holes
        for shard in shard_order
    ]

    supervisor = ProcessSupervisor(min(config.hole_workers, len(jobs)))
    outcomes: dict[int, dict] = {hole_id: {} for hole_id, _ in holes}
    resolved: dict[int, tuple] = {}
    fills: dict[int, Expr] = {}
    cursor = 0  # holes[:cursor] are recorded in the report, in sorted order

    def settle() -> None:
        """Advance through holes in sorted order as decisions land: record
        successes (before any later failure, exactly as the sequential loop
        does) and raise the first decisive failure."""
        nonlocal cursor
        while cursor < len(holes):
            hole_id, spec = holes[cursor]
            decision = resolved.get(hole_id)
            if decision is None:
                return  # this hole is still open: nothing to conclude yet
            tag, value, method = decision
            if tag == _OK:
                fills[hole_id] = value
                report.record_hole(HoleOutcome(hole_id, method, ast_size(spec), ast_size(value)))
                cursor += 1
                continue
            if tag == _NONE:
                raise HoleSynthesisFailure(hole_id, pretty(spec))
            if tag == _TIMEOUT:
                if method == EnumerationCapExceeded.__name__:
                    raise EnumerationCapExceeded(value)
                raise SynthesisTimeout(value)
            raise SynthesisError(f"hole {hole_id} worker failed: {value}")

    results = supervisor.run(jobs, deadline=time.monotonic() + remaining)
    try:
        for result in results:
            hole_id, shard = result.job.key
            if hole_id in resolved:
                continue  # a straggler the cancel raced with
            if result.kind == "ok":
                outcome = result.value
            elif result.kind == "timeout":
                outcome = (
                    _TIMEOUT,
                    f"budget exhausted at hole {hole_id} "
                    f"(worker killed after {result.elapsed_s:.1f}s)",
                    None,
                )
            else:  # "error" / "crashed"
                detail = result.message or f"exit code {result.exitcode}"
                outcome = (_ERROR, detail, None)
            outcomes[hole_id][shard] = outcome
            decision = _scan(outcomes[hole_id], shard_order)
            if decision is not None:
                resolved[hole_id] = decision
                supervisor.cancel(lambda key, h=hole_id: key[0] == h)
                settle()  # raises on a decisive failure
            if len(resolved) == len(holes):
                break
    finally:
        results.close()  # kills any straggling workers promptly

    settle()
    if cursor < len(holes):  # all workers gone, holes still open
        raise SynthesisError(f"hole workers exited without deciding hole {holes[cursor][0]}")

    outputs = tuple(simplify_expr(fill_holes(out, fills)) for out in sketch.program.outputs)
    return OnlineProgram(
        state_params=sketch.program.state_params,
        elem_param=sketch.program.elem_param,
        outputs=outputs,
        extra_params=sketch.program.extra_params,
    )
