"""Algebraic tidying of synthesized online expressions.

The decoder and template solver can leave arithmetic noise behind
(``x * 1``, ``0 + e``, constant subtrees).  This pass performs local,
semantics-preserving rewrites only — it exists so that reported AST sizes and
pretty-printed schemes are comparable with the hand-written ground truth, not
for correctness.

The safe-division convention makes some classical identities unsound
(``e / e`` is 0, not 1, when ``e = 0``), so only identities valid under the
paper's semantics are applied.
"""

from __future__ import annotations

from fractions import Fraction

from ..ir.builtins import get_builtin, is_builtin
from ..ir.nodes import Call, Const, Expr, If, MakeTuple, Proj, const
from ..ir.traversal import transform_bottom_up
from ..ir.values import is_number


def _is_const(expr: Expr, value=None) -> bool:
    if not isinstance(expr, Const):
        return False
    return value is None or expr.value == value


def _fold_constants(node: Expr) -> Expr:
    if isinstance(node, Call) and isinstance(node.func, str):
        if all(isinstance(a, Const) for a in node.args) and is_builtin(node.func):
            builtin = get_builtin(node.func)
            try:
                value = builtin.impl(*(a.value for a in node.args))  # type: ignore[union-attr]
            except (ArithmeticError, ValueError, OverflowError, TypeError):
                # A constant subtree that faults (e.g. a bool fed to numeric
                # arithmetic) is left in place so the fault stays at runtime.
                return node
            if is_number(value) and not isinstance(value, float):
                return const(value)
            if isinstance(value, bool):
                return Const(value)
    return node


def _local(node: Expr) -> Expr:
    node = _fold_constants(node)
    if isinstance(node, Call) and isinstance(node.func, str):
        a = node.args[0] if node.args else None
        b = node.args[1] if len(node.args) > 1 else None
        op = node.func
        if op == "add":
            if _is_const(a, 0):
                return b  # type: ignore[return-value]
            if _is_const(b, 0):
                return a  # type: ignore[return-value]
        elif op == "sub":
            if _is_const(b, 0):
                return a  # type: ignore[return-value]
            if a == b:
                return Const(0)
        elif op == "mul":
            if _is_const(a, 0) or _is_const(b, 0):
                return Const(0)
            if _is_const(a, 1):
                return b  # type: ignore[return-value]
            if _is_const(b, 1):
                return a  # type: ignore[return-value]
        elif op == "div":
            if _is_const(a, 0):
                return Const(0)
            if _is_const(b, 1):
                return a  # type: ignore[return-value]
            # Nested constant denominators: (e / c1) / c2 -> e / (c1*c2).
            if (
                isinstance(a, Call)
                and a.func == "div"
                and isinstance(a.args[1], Const)
                and isinstance(b, Const)
                and not isinstance(a.args[1].value, bool)
                and not isinstance(b.value, bool)
            ):
                merged = Fraction(a.args[1].value) * Fraction(b.value)
                return Call("div", (a.args[0], const(merged)))
        elif op == "pow":
            if _is_const(b, 1):
                return a  # type: ignore[return-value]
            if _is_const(b, 0):
                return Const(1)
        elif op == "neg" and isinstance(a, Call) and a.func == "neg":
            return a.args[0]
    if isinstance(node, If):
        if _is_const(node.cond, True):
            return node.then
        if _is_const(node.cond, False):
            return node.orelse
        if node.then == node.orelse:
            return node.then
    if isinstance(node, Proj) and isinstance(node.tup, MakeTuple):
        if 0 <= node.index < len(node.tup.items):
            return node.tup.items[node.index]
    return node


def simplify_expr(expr: Expr) -> Expr:
    """Bottom-up local simplification to a fixpoint (bounded)."""
    current = expr
    for _ in range(8):
        simplified = transform_bottom_up(current, _local)
        if simplified == current:
            return current
        current = simplified
    return current
