"""Bridge between the IR and the symbolic algebra layer.

``encode_expr`` maps a scalar, combinator-free IR expression onto a
:class:`~repro.algebra.ratfunc.RatFunc` over variables, interning every
non-polynomial operation (``min``, ``sqrt``, predicates, conditionals,
tuples, ...) as an atom.  ``decode_term`` inverts the mapping, producing an
online-syntax IR expression.

``replace_list_exprs`` implements the ``ReplaceListExprs`` step of
Algorithm 4: maximal list expressions are swapped for fresh variables
(``_v1``, ``_v2``, ...) so that formulas fall into a theory the eliminator
understands; the returned table remembers which offline expression each
variable stands for.

Safe-division caveat: the algebra treats ``div`` as exact field division,
whereas the IR's ``div`` yields 0 on zero denominators.  Candidates produced
through this encoding are therefore re-validated by the testing oracle
(:mod:`repro.core.equivalence`) — the same compromise the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..algebra.atoms import AtomTable
from ..algebra.polynomial import Poly, mono_degree
from ..algebra.ratfunc import RatFunc
from ..ir.nodes import (
    Call,
    Const,
    Expr,
    If,
    MakeTuple,
    Proj,
    Var,
    const,
)
from ..ir.builtins import get_builtin
from ..ir.traversal import is_list_expr, rebuild
from .exceptions import UnsupportedProgram


@dataclass
class EncodingContext:
    """Shared state for one expression-synthesis problem."""

    table: AtomTable = field(default_factory=AtomTable)
    #: offline list expression -> fresh variable name
    list_expr_vars: dict[Expr, str] = field(default_factory=dict)

    def var_for_list_expr(self, expr: Expr) -> str:
        existing = self.list_expr_vars.get(expr)
        if existing is not None:
            return existing
        name = f"_v{len(self.list_expr_vars) + 1}"
        self.list_expr_vars[expr] = name
        return name


def replace_list_exprs(expr: Expr, ctx: EncodingContext) -> Expr:
    """Swap maximal list expressions for fresh scalar variables."""
    if is_list_expr(expr):
        return Var(ctx.var_for_list_expr(expr))
    new_children = tuple(replace_list_exprs(c, ctx) for c in expr.children())
    return rebuild(expr, new_children)


def encode_expr(expr: Expr, ctx: EncodingContext) -> RatFunc:
    """Encode a scalar combinator-free expression as a rational function."""
    if isinstance(expr, Const):
        value = expr.value
        if isinstance(value, bool):
            return RatFunc.var(ctx.table.intern("boolconst", (), value))
        if isinstance(value, float):
            value = Fraction(value).limit_denominator(10**9)
        return RatFunc.const(value)
    if isinstance(expr, Var):
        return RatFunc.var(expr.name)
    if isinstance(expr, If):
        args = (
            encode_expr(expr.cond, ctx),
            encode_expr(expr.then, ctx),
            encode_expr(expr.orelse, ctx),
        )
        return RatFunc.var(ctx.table.intern("ite", args))
    if isinstance(expr, MakeTuple):
        args = tuple(encode_expr(item, ctx) for item in expr.items)
        return RatFunc.var(ctx.table.intern("tuple", args))
    if isinstance(expr, Proj):
        arg = encode_expr(expr.tup, ctx)
        return RatFunc.var(ctx.table.intern("proj", (arg,), expr.index))
    if isinstance(expr, Call) and isinstance(expr.func, str):
        name = expr.func
        if name == "add":
            return encode_expr(expr.args[0], ctx) + encode_expr(expr.args[1], ctx)
        if name == "sub":
            return encode_expr(expr.args[0], ctx) - encode_expr(expr.args[1], ctx)
        if name == "mul":
            return encode_expr(expr.args[0], ctx) * encode_expr(expr.args[1], ctx)
        if name == "neg":
            return -encode_expr(expr.args[0], ctx)
        if name == "div":
            num = encode_expr(expr.args[0], ctx)
            den = encode_expr(expr.args[1], ctx)
            if den.is_zero():
                return RatFunc.const(0)  # safe-division convention
            return num / den
        if name == "pow":
            base = encode_expr(expr.args[0], ctx)
            exponent = expr.args[1]
            if isinstance(exponent, Const) and isinstance(exponent.value, int):
                return base**exponent.value
            args = (base, encode_expr(exponent, ctx))
            return RatFunc.var(ctx.table.intern("pow", args))
        builtin = get_builtin(name)
        if builtin.kind in ("uninterp", "predicate"):
            args = tuple(encode_expr(a, ctx) for a in expr.args)
            return RatFunc.var(ctx.table.intern(name, args))
        raise UnsupportedProgram(f"cannot encode call to {name!r}")
    raise UnsupportedProgram(f"cannot encode {type(expr).__name__} node")


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def decode_term(term: RatFunc, ctx: EncodingContext) -> Expr:
    num = decode_poly(term.num, ctx)
    if term.den == Poly.one():
        return num
    den = decode_poly(term.den, ctx)
    return Call("div", (num, den))


def decode_poly(poly: Poly, ctx: EncodingContext) -> Expr:
    if poly.is_zero():
        return Const(0)
    positives: list[Expr] = []
    negatives: list[Expr] = []
    for mono, coeff in sorted(poly.terms.items(), key=lambda mc: (-mono_degree(mc[0]), mc[0])):
        target = positives if coeff > 0 else negatives
        target.append(_decode_monomial(mono, abs(coeff), ctx))
    result: Expr | None = None
    for part in positives:
        result = part if result is None else Call("add", (result, part))
    if result is None:
        result = Const(0)
    for part in negatives:
        result = Call("sub", (result, part))
    return result


def _decode_monomial(mono, coeff: Fraction, ctx: EncodingContext) -> Expr:
    factors: list[Expr] = []
    for var, exp in mono:
        base = decode_atom(var, ctx) if ctx.table.is_atom_var(var) else Var(var)
        if exp == 1:
            factors.append(base)
        else:
            factors.append(Call("pow", (base, Const(exp))))
    result: Expr | None = None
    for factor in factors:
        result = factor if result is None else Call("mul", (result, factor))
    if result is None:
        return const(coeff)
    if coeff != 1:
        if coeff.denominator == 1:
            result = Call("mul", (const(coeff), result))
        elif coeff.numerator == 1:
            result = Call("div", (result, const(Fraction(coeff.denominator))))
        else:
            result = Call(
                "div",
                (
                    Call("mul", (const(Fraction(coeff.numerator)), result)),
                    const(Fraction(coeff.denominator)),
                ),
            )
    return result


def decode_monomial(mono, ctx: EncodingContext) -> Expr:
    """Decode a bare monomial (no coefficient) — template basis terms."""
    return _decode_monomial(mono, Fraction(1), ctx)


def decode_atom(name: str, ctx: EncodingContext) -> Expr:
    atom = ctx.table.lookup(name)
    if atom.op == "boolconst":
        return Const(bool(atom.meta))
    if atom.op == "ite":
        cond, then, orelse = (decode_term(a, ctx) for a in atom.args)
        return If(cond, then, orelse)
    if atom.op == "tuple":
        return MakeTuple(tuple(decode_term(a, ctx) for a in atom.args))
    if atom.op == "proj":
        return Proj(decode_term(atom.args[0], ctx), int(atom.meta))  # type: ignore[arg-type]
    if atom.op == "opaque":
        payload = atom.meta
        if isinstance(payload, Expr):
            return payload
        raise UnsupportedProgram(f"opaque atom without IR payload: {name}")
    # Built-in operator (uninterpreted or predicate).
    args = tuple(decode_term(a, ctx) for a in atom.args)
    return Call(atom.op, args)
