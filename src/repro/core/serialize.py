"""Versioned JSON serialization of online schemes (compile once, deploy anywhere).

A synthesized :class:`~repro.core.scheme.OnlineScheme` is a *compilation
artifact*: producing it can take minutes of search, running it is O(1) per
element.  This module gives schemes a canonical, human-readable on-disk form
so the two phases can happen in different processes (and on different
machines)::

    {
      "format": "repro/online-scheme",
      "version": 1,
      "provenance": "opera:variance",
      "initializer": [["int", "0"], ["int", "0"], ["int", "0"]],
      "program": "(online (state v s n) (elem x) (outputs ...))"
    }

Design notes:

* the online program is stored as one canonical s-expression
  (:func:`repro.ir.pretty.online_program_to_sexpr`), re-parsed with strict
  validation by :func:`repro.ir.parser.parse_online_program` — arity, name
  scoping, and online-ness are all re-checked on load;
* initializer values use a small tagged encoding (below) so exact rationals
  survive the round trip bit-for-bit — serializing Welford's scheme must not
  quietly turn ``1/3`` into ``0.3333...``;
* the envelope is versioned; loading rejects unknown formats/versions
  instead of guessing.

Value encoding
    ``true``/``false`` stay JSON booleans; other values are tagged arrays:
    ``["int", "<decimal>"]`` (string, so bignums survive JSON readers with
    53-bit numbers), ``["rat", "<num>", "<den>"]``, ``["float", "<repr>"]``
    (``repr`` round-trips exactly, including ``inf``/``nan``),
    ``["str", "<text>"]`` (checkpoint partition keys), and
    ``["tuple", [...]]`` / ``["list", [...]]`` for containers.
"""

from __future__ import annotations

import json
import re
from fractions import Fraction
from typing import Any

from ..ir.nodes import OnlineProgram
from ..ir.parser import ParseError, parse_online_program
from ..ir.pretty import online_program_to_sexpr
from ..ir.values import Value

#: Envelope identifiers checked on load.
SCHEME_FORMAT = "repro/online-scheme"
SCHEME_FORMAT_VERSION = 1

_INT_RE = re.compile(r"^-?\d+$")
_POS_INT_RE = re.compile(r"^\d+$")


class SchemeFormatError(ValueError):
    """The serialized form is malformed, inconsistent, or from the future."""


def encode_value(value: Value) -> Any:
    """Encode one runtime value as a JSON-safe tagged form.

    Strings are not IR values, but checkpoint partition keys (user IDs,
    category names) routinely are strings, so the codec carries them too.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        return ["str", value]
    if isinstance(value, int):
        return ["int", str(value)]
    if isinstance(value, Fraction):
        return ["rat", str(value.numerator), str(value.denominator)]
    if isinstance(value, float):
        return ["float", repr(value)]
    if isinstance(value, tuple):
        return ["tuple", [encode_value(v) for v in value]]
    if isinstance(value, list):
        return ["list", [encode_value(v) for v in value]]
    raise SchemeFormatError(f"cannot serialize value of type {type(value).__name__}")


def decode_value(data: Any) -> Value:
    """Strict inverse of :func:`encode_value`."""
    if isinstance(data, bool):
        return data
    if not (isinstance(data, list) and data and isinstance(data[0], str)):
        raise SchemeFormatError(f"malformed encoded value: {data!r}")
    tag, *rest = data
    if tag == "str" and len(rest) == 1 and isinstance(rest[0], str):
        return rest[0]
    if tag == "int" and len(rest) == 1 and isinstance(rest[0], str):
        if not _INT_RE.match(rest[0]):
            raise SchemeFormatError(f"malformed int literal {rest[0]!r}")
        return int(rest[0])
    if (
        tag == "rat"
        and len(rest) == 2
        and all(isinstance(r, str) for r in rest)
        and _INT_RE.match(rest[0])
        and _POS_INT_RE.match(rest[1])
        and rest[1] != "0"
    ):
        return Fraction(int(rest[0]), int(rest[1]))
    if tag == "float" and len(rest) == 1 and isinstance(rest[0], str):
        try:
            return float(rest[0])
        except ValueError:
            raise SchemeFormatError(f"malformed float literal {rest[0]!r}") from None
    if tag in ("tuple", "list") and len(rest) == 1 and isinstance(rest[0], list):
        items = [decode_value(v) for v in rest[0]]
        return tuple(items) if tag == "tuple" else items
    raise SchemeFormatError(f"malformed encoded value: {data!r}")


def scheme_to_dict(scheme) -> dict:
    """The JSON-ready envelope for one scheme (see module docstring)."""
    return {
        "format": SCHEME_FORMAT,
        "version": SCHEME_FORMAT_VERSION,
        "provenance": scheme.provenance,
        "initializer": [encode_value(v) for v in scheme.initializer],
        "program": online_program_to_sexpr(scheme.program),
    }


def scheme_from_dict(data: dict):
    """Rebuild a scheme from its envelope, validating everything.

    Raises :class:`SchemeFormatError` on any malformed, inconsistent, or
    unknown-version input; never returns a partially-valid scheme.
    """
    from .scheme import OnlineScheme

    if not isinstance(data, dict):
        raise SchemeFormatError(f"scheme envelope must be an object, got {type(data).__name__}")
    if data.get("format") != SCHEME_FORMAT:
        raise SchemeFormatError(f"not a serialized online scheme: format={data.get('format')!r}")
    if data.get("version") != SCHEME_FORMAT_VERSION:
        raise SchemeFormatError(
            f"unsupported scheme format version {data.get('version')!r} "
            f"(this build reads version {SCHEME_FORMAT_VERSION})"
        )
    provenance = data.get("provenance", "deserialized")
    if not isinstance(provenance, str):
        raise SchemeFormatError("provenance must be a string")
    raw_init = data.get("initializer")
    if not isinstance(raw_init, list):
        raise SchemeFormatError("initializer must be an array of encoded values")
    initializer = tuple(decode_value(v) for v in raw_init)
    raw_program = data.get("program")
    if not isinstance(raw_program, str):
        raise SchemeFormatError("program must be an s-expression string")
    try:
        program: OnlineProgram = parse_online_program(raw_program)
    except ParseError as exc:
        raise SchemeFormatError(f"invalid online program: {exc}") from None
    if len(initializer) != program.arity:
        raise SchemeFormatError(
            f"initializer arity {len(initializer)} != program arity {program.arity}"
        )
    return OnlineScheme(initializer, program, provenance=provenance)


def dumps_scheme(scheme, *, indent: int | None = 2) -> str:
    """Serialize to canonical JSON text (stable key order)."""
    return json.dumps(scheme_to_dict(scheme), indent=indent, sort_keys=True)


def loads_scheme(text: str):
    """Parse JSON text produced by :func:`dumps_scheme`, strictly validated."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SchemeFormatError(f"not valid JSON: {exc}") from None
    return scheme_from_dict(data)
