"""The ``FindImplicate`` procedure of Algorithm 4.

Given the RFS ``Φ`` and the implicate template
``E[(xs ++ [x])/xs] = □``, build the formula ``Φ ∧ T ∧ axioms``, replace
list expressions with fresh variables, and eliminate those variables; a
result matching ``□ = E'`` is the synthesized online expression.

The combinator axioms of Figure 10 enter as *oriented rewrites*
(:func:`repro.core.axioms.push_snoc`) applied to the substituted
specification, which is equivalent to asserting the axiom instances the
paper's AddAxioms would generate, but keeps the equation system small.
"""

from __future__ import annotations

from ..algebra.elimination import Equation, find_definitions
from ..algebra.ratfunc import RatFunc
from ..ir.nodes import Expr, Snoc, Var, ListVar
from ..ir.traversal import substitute_list_var
from .axioms import push_snoc
from .decompose import ELEM_PARAM
from .encode import EncodingContext, decode_term, encode_expr, replace_list_exprs
from .exceptions import UnsupportedProgram
from .rfs import RFS

#: Variable standing for the hole ``□`` in the implicate template.
TARGET_VAR = "_target"


def build_equations(
    rfs: RFS, spec: Expr, ctx: EncodingContext
) -> tuple[list[Equation], frozenset[str]]:
    """Encode ``Φ ∧ T`` after axiom rewriting and list-expression abstraction.

    Returns the equation system and the set of *keep* variables
    (``y1..yn``, the new element, extra parameters).
    """
    # T: □ = E[(xs ++ [x])/xs], with Snoc pushed through the combinators.
    shifted = substitute_list_var(
        spec, rfs.list_param, Snoc(ListVar(rfs.list_param), Var(ELEM_PARAM))
    )
    shifted = push_snoc(shifted)

    equations: list[Equation] = []
    for name, entry in rfs.entries.items():
        abstracted = replace_list_exprs(entry, ctx)
        equations.append(Equation(RatFunc.var(name), encode_expr(abstracted, ctx)))
    target_rhs = replace_list_exprs(shifted, ctx)
    equations.append(Equation(RatFunc.var(TARGET_VAR), encode_expr(target_rhs, ctx)))

    keep = frozenset(rfs.names) | {ELEM_PARAM} | frozenset(rfs.extra_params)
    return equations, keep


def find_implicates(rfs: RFS, spec: Expr, limit: int = 4) -> list[Expr]:
    """Online-expression candidates equivalent to ``spec`` modulo ``Φ`` (best
    first); empty when symbolic reasoning alone produces nothing.

    Several candidates are returned because an implicate can be valid only
    where some denominator is nonzero — the testing oracle downstream decides
    which (if any) is equivalent under the safe-division semantics.
    """
    ctx = EncodingContext()
    try:
        equations, keep = build_equations(rfs, spec, ctx)
    except UnsupportedProgram:
        return []
    elim_vars = list(ctx.list_expr_vars.values())
    avoid = frozenset({rfs.result_param}) if len(rfs) > 1 else frozenset()
    solutions = find_definitions(equations, elim_vars, TARGET_VAR, keep, ctx.table, avoid)
    decoded: list[Expr] = []
    for solution in solutions[:limit]:
        try:
            decoded.append(decode_term(solution, ctx))
        except UnsupportedProgram:
            continue
    return decoded


def find_implicate(rfs: RFS, spec: Expr) -> Expr | None:
    """The best implicate candidate, if any (convenience wrapper)."""
    candidates = find_implicates(rfs, spec)
    return candidates[0] if candidates else None
