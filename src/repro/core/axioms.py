"""Combinator axioms (Figure 10) as a rewriting system.

``FindImplicate`` needs to relate combinator applications over ``xs ++ [x]``
to applications over ``xs``.  Rather than asserting the axioms as formulas,
we *orient* them left-to-right and rewrite the specification
``E[(xs ++ [x])/xs]`` to a normal form in which every ``Snoc`` has been
pushed out of the combinators:

    foldl(g, c, xs ++ [x])   ->  g(foldl(g, c, xs), x)
    map(g, xs ++ [x])        ->  map(g, xs) ++ [g(x)]
    filter(g, xs ++ [x])     ->  g(x) ? filter(g, xs) ++ [x] : filter(g, xs)
    length(xs ++ [x])        ->  length(xs) + 1

The ``filter`` rule introduces conditionals *at list type*; these are floated
out of enclosing combinators by the distribution rules

    foldl(g, c, b ? L1 : L2) -> b ? foldl(g, c, L1) : foldl(g, c, L2)

(and similarly for ``map``, ``filter``, ``length`` and ``Snoc``), so that the
normal form only applies combinators to plain list expressions over ``xs``.
Rewriting runs to a fixpoint; the system terminates because every rule
strictly moves ``Snoc``/``If`` nodes toward the root or eliminates them.
"""

from __future__ import annotations

from ..ir.builtins import is_builtin
from ..ir.nodes import (
    Call,
    Const,
    Expr,
    Filter,
    Fold,
    If,
    Lambda,
    Snoc,
)
from ..ir.nodes import Map as MapNode
from ..ir.traversal import rebuild, substitute

_MAX_REWRITE_PASSES = 64


def apply_lambda(func: Expr, *args: Expr) -> Expr:
    """Beta-reduce a lambda application; builtin names become calls."""
    if isinstance(func, Lambda):
        if len(func.params) != len(args):
            raise ValueError(f"lambda arity {len(func.params)} vs {len(args)} arguments")
        return substitute(func.body, dict(zip(func.params, args)))
    if isinstance(func, str) and is_builtin(func):  # defensive; not produced by parser
        return Call(func, tuple(args))
    raise ValueError(f"cannot apply non-lambda {func!r}")


def _rewrite_once(expr: Expr) -> Expr:
    """One bottom-up pass of the oriented axioms; returns a (possibly)
    rewritten tree."""
    new_children = tuple(_rewrite_once(c) for c in expr.children())
    node = rebuild(expr, new_children)

    # -- axioms of Figure 10 ------------------------------------------------
    if isinstance(node, Fold) and isinstance(node.lst, Snoc):
        rest = Fold(node.func, node.init, node.lst.lst)
        return apply_lambda(node.func, rest, node.lst.elem)
    if isinstance(node, MapNode) and isinstance(node.lst, Snoc):
        mapped_rest = MapNode(node.func, node.lst.lst)
        return Snoc(mapped_rest, apply_lambda(node.func, node.lst.elem))
    if isinstance(node, Filter) and isinstance(node.lst, Snoc):
        kept = Filter(node.func, node.lst.lst)
        cond = apply_lambda(node.func, node.lst.elem)
        return If(cond, Snoc(kept, node.lst.elem), kept)
    if (
        isinstance(node, Call)
        and node.func == "length"
        and len(node.args) == 1
        and isinstance(node.args[0], Snoc)
    ):
        return Call("add", (Call("length", (node.args[0].lst,)), Const(1)))

    # -- distribution of list-typed conditionals -----------------------------
    if isinstance(node, Fold) and isinstance(node.lst, If):
        cond = node.lst
        return If(
            cond.cond,
            Fold(node.func, node.init, cond.then),
            Fold(node.func, node.init, cond.orelse),
        )
    if isinstance(node, MapNode) and isinstance(node.lst, If):
        cond = node.lst
        return If(
            cond.cond,
            MapNode(node.func, cond.then),
            MapNode(node.func, cond.orelse),
        )
    if isinstance(node, Filter) and isinstance(node.lst, If):
        cond = node.lst
        return If(
            cond.cond,
            Filter(node.func, cond.then),
            Filter(node.func, cond.orelse),
        )
    if (
        isinstance(node, Call)
        and node.func == "length"
        and len(node.args) == 1
        and isinstance(node.args[0], If)
    ):
        cond = node.args[0]
        return If(
            cond.cond,
            Call("length", (cond.then,)),
            Call("length", (cond.orelse,)),
        )
    if isinstance(node, Snoc) and isinstance(node.lst, If):
        cond = node.lst
        return If(
            cond.cond,
            Snoc(cond.then, node.elem),
            Snoc(cond.orelse, node.elem),
        )
    return node


def push_snoc(expr: Expr) -> Expr:
    """Rewrite to fixpoint with the oriented axioms of Figure 10."""
    current = expr
    for _ in range(_MAX_REWRITE_PASSES):
        rewritten = _rewrite_once(current)
        if rewritten == current:
            return current
        current = rewritten
    return current
