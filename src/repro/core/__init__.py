"""Opera's synthesis pipeline (the paper's primary contribution).

Entry point: :func:`repro.core.synthesize.synthesize`.
"""

from .config import SynthesisConfig
from .decompose import Sketch, decompose
from .equivalence import (
    check_expr_equivalence,
    check_inductiveness,
    check_scheme_equivalence,
)
from .exceptions import (
    HoleSynthesisFailure,
    SynthesisError,
    SynthesisTimeout,
    UnsupportedProgram,
)
from .implicate import find_implicate, find_implicates
from .initializer import build_initializer
from .mining import mine_expressions
from .report import HoleOutcome, SynthesisReport
from .rfs import RFS, construct_rfs
from .scheme import OnlineScheme
from .serialize import (
    SchemeFormatError,
    dumps_scheme,
    loads_scheme,
    scheme_from_dict,
    scheme_to_dict,
)
from .simplify import simplify_expr
from .synthesize import synthesize, synthesize_expr
from .templates import solve_template, templatize
from .verify import (
    check_bounded_exhaustive,
    check_symbolic,
    verify_scheme,
)

__all__ = [
    "HoleOutcome",
    "HoleSynthesisFailure",
    "OnlineScheme",
    "RFS",
    "SchemeFormatError",
    "Sketch",
    "SynthesisConfig",
    "SynthesisError",
    "SynthesisReport",
    "SynthesisTimeout",
    "UnsupportedProgram",
    "build_initializer",
    "check_bounded_exhaustive",
    "check_expr_equivalence",
    "check_symbolic",
    "check_inductiveness",
    "check_scheme_equivalence",
    "construct_rfs",
    "decompose",
    "dumps_scheme",
    "find_implicate",
    "find_implicates",
    "loads_scheme",
    "mine_expressions",
    "scheme_from_dict",
    "scheme_to_dict",
    "simplify_expr",
    "solve_template",
    "synthesize",
    "synthesize_expr",
    "templatize",
    "verify_scheme",
]
