"""Top-level synthesis (Algorithms 1, 3 and 4).

``synthesize`` strings the pipeline together:

1. ``ConstructRFS`` — :mod:`repro.core.rfs`;
2. initializer — :mod:`repro.core.initializer`;
3. ``Decompose`` — :mod:`repro.core.decompose` (one independent sub-task per
   hole; the Opera-NoDecomp ablation instead poses a single tuple-valued
   task);
4. per-hole ``SynthesizeExpr`` — symbolic first (``FindImplicate``), then
   mined term / template interpolation, then seeded enumerative search (the
   Opera-NoSymbolic ablation skips straight to unseeded enumeration);
5. post-processing (drop unused accumulators) and a final whole-scheme
   equivalence check (Definition 3.3) before the scheme is reported.
"""

from __future__ import annotations

import time

from ..ir.nodes import Expr, MakeTuple, OnlineProgram, Program, Proj
from ..ir.pretty import pretty
from ..ir.traversal import ast_size, fill_holes, validate_online_expr
from .config import SynthesisConfig
from .decompose import Sketch, decompose
from .enumerative import (
    enumerate_expression,
    enumerate_sharded,
    seeds_from_template,
)
from .equivalence import check_expr_equivalence, check_scheme_equivalence
from .exceptions import (
    HoleSynthesisFailure,
    SynthesisError,
    SynthesisTimeout,
    UnsupportedProgram,
)
from .implicate import find_implicates
from .initializer import build_initializer
from .mining import mine_expressions
from .postprocess import prune_unused_accumulators
from .report import HoleOutcome, SynthesisReport
from .rfs import RFS, construct_rfs
from .scheme import OnlineScheme
from .simplify import simplify_expr
from .templates import solve_template, templatize


def synthesize_expr(
    rfs: RFS,
    spec: Expr,
    config: SynthesisConfig,
    salt: str = "",
    enum_shard: int | None = None,
) -> tuple[Expr, str]:
    """Algorithm 4: find an online expression equivalent to ``spec`` modulo
    the RFS.  Returns ``(expression, method)``; raises on failure.

    ``enum_shard`` restricts the enumerative fallback to one shard of the
    ``config.enum_shards`` portfolio (see
    :func:`~repro.core.enumerative.enumerate_sharded`); the symbolic phases
    always run in full, so every shard of a symbolically-solvable hole
    agrees on the same answer.
    """
    if config.expired():
        raise SynthesisTimeout("budget exhausted before expression synthesis")

    seeds: list[Expr] = []
    if config.use_symbolic:
        for candidate in find_implicates(rfs, spec):
            candidate = simplify_expr(candidate)
            if validate_online_expr(candidate) and check_expr_equivalence(
                spec, candidate, rfs, config, salt=f"imp:{salt}"
            ):
                return candidate, "implicate"

        mined = mine_expressions(rfs, spec, config)
        if mined is not None:
            from .encode import decode_term

            direct = simplify_expr(decode_term(mined.term, mined.ctx))
            if validate_online_expr(direct) and check_expr_equivalence(
                spec, direct, rfs, config, salt=f"mine:{salt}"
            ):
                return direct, "mined"
            template = templatize(mined)
            solved = solve_template(template, rfs, spec, config, salt=salt)
            if solved is not None:
                solved = simplify_expr(solved)
                if validate_online_expr(solved):
                    return solved, "template"
            seeds = seeds_from_template(template)

    if config.enum_shards > 1:
        found = enumerate_sharded(rfs, spec, config, seeds=seeds, salt=salt, only_shard=enum_shard)
    else:
        found = enumerate_expression(rfs, spec, config, seeds=seeds, salt=salt)
    if found is not None:
        return simplify_expr(found), "enumerative"
    raise HoleSynthesisFailure(0, pretty(spec))


def _solve_sketch(
    rfs: RFS, sketch: Sketch, config: SynthesisConfig, report: SynthesisReport
) -> OnlineProgram:
    """Algorithm 3: solve every hole independently and fill the sketch.

    With ``config.hole_workers > 1`` the independent holes (Lemma 1) are
    dispatched over a process pool instead — same report, same failures,
    modulo wall-clock; see :mod:`repro.core.parallel_synthesize`.
    """
    if config.hole_workers > 1:
        from .parallel_synthesize import solve_sketch_parallel

        online = solve_sketch_parallel(rfs, sketch, config, report)
        if online is not None:
            return online
        # The pool declined (single sub-task, or we are already inside a
        # daemonic worker): fall through to the sequential loop.
    fills: dict[int, Expr] = {}
    for hole_id, spec in sorted(sketch.specs.items()):
        if config.expired():
            raise SynthesisTimeout(f"budget exhausted at hole {hole_id}")
        try:
            expr, method = synthesize_expr(rfs, spec, config, salt=str(hole_id))
        except HoleSynthesisFailure:
            raise HoleSynthesisFailure(hole_id, pretty(spec)) from None
        fills[hole_id] = expr
        report.record_hole(HoleOutcome(hole_id, method, ast_size(spec), ast_size(expr)))
    outputs = tuple(simplify_expr(fill_holes(out, fills)) for out in sketch.program.outputs)
    return OnlineProgram(
        state_params=sketch.program.state_params,
        elem_param=sketch.program.elem_param,
        outputs=outputs,
        extra_params=sketch.program.extra_params,
    )


def _solve_monolithic(rfs: RFS, config: SynthesisConfig, report: SynthesisReport) -> OnlineProgram:
    """Opera-NoDecomp: synthesize the whole output tuple as one expression."""
    spec = MakeTuple(tuple(rfs.entries.values()))
    expr, method = synthesize_expr(rfs, spec, config, salt="monolith")
    report.record_hole(HoleOutcome(0, method, ast_size(spec), ast_size(expr)))
    if isinstance(expr, MakeTuple) and expr.arity == len(rfs):
        outputs = expr.items
    else:
        outputs = tuple(simplify_expr(Proj(expr, i)) for i in range(len(rfs)))
    return OnlineProgram(
        state_params=rfs.names,
        elem_param="x",
        outputs=outputs,
        extra_params=rfs.extra_params,
    )


def synthesize(
    program: Program,
    config: SynthesisConfig | None = None,
    task_name: str = "task",
) -> SynthesisReport:
    """Algorithm 1: offline program in, equivalent online scheme out."""
    config = config or SynthesisConfig()
    config.start_clock()
    started = time.monotonic()
    report = SynthesisReport(task=task_name, success=False, elapsed_s=0.0)

    try:
        rfs = construct_rfs(program)
        initializer = build_initializer(rfs)
        if config.use_decomposition:
            sketch = decompose(rfs)
            online = _solve_sketch(rfs, sketch, config, report)
        else:
            online = _solve_monolithic(rfs, config, report)

        pruned = prune_unused_accumulators(rfs, initializer, online)
        scheme = OnlineScheme(pruned.initializer, pruned.program, provenance=f"opera:{task_name}")
        if not check_scheme_equivalence(program, scheme, config):
            raise SynthesisError("final scheme failed Definition 3.3 testing")
        report.scheme = scheme
        report.success = True
    except (SynthesisError, UnsupportedProgram) as exc:
        report.failure_reason = f"{type(exc).__name__}: {exc}"
    finally:
        report.elapsed_s = time.monotonic() - started
    return report
