"""The ``MineExpressions`` procedure of Algorithm 4.

When the axioms are insufficient (the fold's accumulator function captures
list-dependent values, as in the ``sq`` fold of variance), ``FindImplicate``
produces nothing useful.  ``MineExpressions`` instead *unrolls* the RFS and
the specification on a symbolic list of fixed size ``k`` (``k + 1`` for the
specification), yielding a polynomial equation system over the symbolic
elements, and eliminates the elements to express the target over the online
variables.

The paper hands the unrolled system to REDUCE.  Our eliminator is equational,
so nonlinear element occurrences are first removed by the *power-sum
rewrite*: every way a fold can observe the list is a symmetric polynomial,
hence expressible over ``p_d = Σ_i x_i^d``, and the ``p_d`` occur linearly.
Atom arguments (e.g. the operand of a ``sqrt``) are rewritten the same way so
opaque operations do not block elimination.

The mined result is exact *for lists of length k* — constants in it may
secretly be functions of the length (Example 5.6's ``1/12``); turning them
back into expressions over ``n`` is the job of :mod:`repro.core.templates`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algebra.elimination import (
    EliminationBlowup,
    Equation,
    eliminate_variables,
    solve_target,
)
from ..algebra.polynomial import Poly
from ..algebra.ratfunc import RatFunc
from ..algebra.symmetric import PSUM_PREFIX, rewrite_symmetric, rewrite_symmetric_ratfunc
from ..ir.nodes import Expr, Var
from .config import SynthesisConfig
from .decompose import ELEM_PARAM
from .encode import EncodingContext, encode_expr
from .exceptions import UnsupportedProgram
from .implicate import TARGET_VAR
from .rfs import RFS
from .unroll import UnrollFailure, element_var, symbolic_list, unroll


@dataclass
class MinedTerm:
    """A candidate definition for the hole, valid at unroll depth ``k``."""

    term: RatFunc
    ctx: EncodingContext
    unroll_depth: int


def _unrolled_equations(rfs: RFS, spec: Expr, k: int, ctx: EncodingContext) -> list[Poly]:
    """Lines 14-17 of Algorithm 4: unroll ``Φ`` at depth ``k`` and the
    specification at depth ``k + 1`` (the extra element is the new ``x``)."""
    polys: list[Poly] = []
    for name, entry in rfs.entries.items():
        unrolled = unroll(entry, {rfs.list_param: symbolic_list(k)})
        if isinstance(unrolled, list):
            raise UnrollFailure("list-valued RFS entry")
        rhs = encode_expr(unrolled, ctx)
        polys.append(Equation(RatFunc.var(name), rhs).to_poly())

    extended = symbolic_list(k) + [Var(ELEM_PARAM)]
    unrolled_spec = unroll(spec, {rfs.list_param: extended})
    if isinstance(unrolled_spec, list):
        raise UnrollFailure("list-valued specification")
    polys.append(Equation(RatFunc.var(TARGET_VAR), encode_expr(unrolled_spec, ctx)).to_poly())
    return polys


def _rewrite_system(
    polys: list[Poly], ctx: EncodingContext, elem_vars: tuple[str, ...]
) -> list[Poly] | None:
    """Rewrite the equation system (and atom arguments) in power sums."""
    table = ctx.table
    atom_mapping: dict[str, str] = {}

    def process_atom(name: str) -> str:
        cached = atom_mapping.get(name)
        if cached is not None:
            return cached
        atom = table.lookup(name)
        new_args = []
        rewritable = True
        for arg in atom.args:
            rewritten = rewrite_arg(arg)
            if rewritten is None:
                rewritable = False
                break
            new_args.append(rewritten)
        new_name = (table.intern(atom.op, tuple(new_args), atom.meta) if rewritable else name)
        atom_mapping[name] = new_name
        return new_name

    def rewrite_arg(term: RatFunc) -> RatFunc | None:
        subs = {}
        for var in term.variables():
            if table.is_atom_var(var):
                new_var = process_atom(var)
                if new_var != var:
                    subs[var] = RatFunc.var(new_var)
        if subs:
            term = term.substitute(subs)
        return rewrite_symmetric_ratfunc(term, elem_vars)

    rewritten_polys: list[Poly] = []
    for poly in polys:
        subs = {
            var: Poly.var(process_atom(var)) for var in poly.variables() if table.is_atom_var(var)
        }
        if subs:
            poly = poly.substitute_poly(subs)
        rewritten = rewrite_symmetric(poly, elem_vars)
        if rewritten is None:
            return None
        rewritten_polys.append(rewritten)
    return rewritten_polys


def mine_expressions(rfs: RFS, spec: Expr, config: SynthesisConfig) -> MinedTerm | None:
    """Unroll, rewrite, eliminate; return the mined target definition."""
    k = config.unroll_depth
    ctx = EncodingContext()
    try:
        polys = _unrolled_equations(rfs, spec, k, ctx)
    except (UnrollFailure, UnsupportedProgram):
        return None
    if config.expired():
        return None

    elem_vars = tuple(element_var(i) for i in range(1, k + 1))
    rewritten = _rewrite_system(polys, ctx, elem_vars)
    if rewritten is None or config.expired():
        return None

    psum_vars = sorted(
        {var for poly in rewritten for var in poly.variables() if var.startswith(PSUM_PREFIX)}
    )
    keep = frozenset(rfs.names) | {ELEM_PARAM} | frozenset(rfs.extra_params)
    avoid = frozenset({rfs.result_param}) if len(rfs) > 1 else frozenset()
    try:
        result = eliminate_variables(rewritten, psum_vars, ctx.table, avoid)
    except (EliminationBlowup, ZeroDivisionError):
        return None
    solution = solve_target(result.equations, TARGET_VAR, keep, ctx.table, avoid)
    if solution is None:
        return None
    return MinedTerm(solution, ctx, k)
