"""Exception hierarchy for the synthesizer."""

from __future__ import annotations


class SynthesisError(Exception):
    """Base class for synthesis failures."""


class SynthesisTimeout(SynthesisError):
    """The per-task time budget was exhausted (10 minutes in the paper)."""


class EnumerationCapExceeded(SynthesisTimeout):
    """A *deterministic* enumeration work cap was hit (candidates kept or
    generated).  Unlike its wall-clock parent this is a pure function of the
    search, not of the machine — enumeration shards rely on that to give up
    identically in any process (:func:`repro.core.enumerative
    .enumerate_sharded` treats it as "this shard found nothing" and moves
    on, while a wall-clock timeout still aborts the whole task)."""


class HoleSynthesisFailure(SynthesisError):
    """No online expression was found for a sketch hole."""

    def __init__(self, hole_id: int, spec_text: str):
        super().__init__(f"hole □{hole_id} unsolved (spec: {spec_text})")
        self.hole_id = hole_id
        self.spec_text = spec_text


class UnsupportedProgram(SynthesisError):
    """The offline program falls outside the supported IR fragment."""
