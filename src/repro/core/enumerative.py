"""Enumerative expression synthesis (the ``EnumSynthesize`` fallback of
Algorithm 4).

Bottom-up enumeration over the online expression grammar of Figure 7, with
the two standard accelerations:

* **observational equivalence pruning** — candidates are deduplicated by
  their value vector on a bank of random RFS-consistent environments, so the
  search space stays polynomial in practice;
* **mined seeds** — the templatized building blocks produced by
  ``MineExpressions`` enter the terminal pool at cost 1 (this is how "the
  templatized expressions are added to the grammar" in the paper), letting
  the search assemble large solutions like Welford's update from a handful of
  mined monomials.

Correctness of an accepted candidate is established by the testing oracle
(equivalence modulo the RFS, Definition 5.3), exactly as in Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..ir.analysis.prune import statically_redundant
from ..ir.evaluator import EvaluationError, evaluate
from ..ir.nodes import Call, Const, Expr, If, MakeTuple, Proj, Var
from ..ir.traversal import ast_size, used_builtins
from ..ir.values import Value, is_number
from .config import SynthesisConfig
from .decompose import ELEM_PARAM
from .equivalence import (
    check_expr_equivalence,
    make_rng,
    random_element,
    random_extras,
    random_list,
    rfs_environment,
)
from .exceptions import EnumerationCapExceeded, SynthesisTimeout
from .rfs import RFS

#: Binary arithmetic always available to the online grammar.
_CORE_BINOPS = ("add", "sub", "mul", "div")
#: Offline-program builtins that may be inherited by the grammar.
_INHERITABLE = ("min", "max", "abs", "sqrt", "exp", "log", "pow")
_PREDICATES = ("lt", "le", "gt", "ge", "eq")


@dataclass
class Bank:
    """Test environments plus the specification's value vector."""

    envs: list[dict[str, Value]]
    spec_signature: tuple


def _signature(expr: Expr, envs: Sequence[dict[str, Value]]) -> tuple | None:
    values = []
    for env in envs:
        try:
            value = evaluate(expr, env)
        except (EvaluationError, ArithmeticError, TypeError, ValueError):
            return None
        if isinstance(value, float):
            value = round(value, 9)
        # NaN hashes are id-based since Python 3.10; canonicalize so
        # NaN-valued behaviours deduplicate deterministically (and the
        # static prune's value-identity reasoning stays exact).
        values.append(_canon_nan(value))
    try:
        return tuple(values) if all(_hashable(v) for v in values) else None
    except TypeError:
        return None


def _canon_nan(value: Value) -> Value:
    if isinstance(value, float) and value != value:
        return "nan"
    if isinstance(value, tuple):
        return tuple(_canon_nan(v) for v in value)
    return value


def _hashable(value: Value) -> bool:
    return isinstance(value, (int, float, bool, tuple, str)) or is_number(value)


def build_bank(rfs: RFS, spec: Expr, config: SynthesisConfig, salt: str) -> Bank | None:
    """Random RFS-consistent environments and the spec's target values."""
    rng = make_rng(config, f"enum:{salt}")
    envs: list[dict[str, Value]] = []
    targets: list[Value] = []
    attempts = 0
    wanted = max(8, config.equivalence_tests // 2)
    while len(envs) < wanted and attempts < wanted * 6:
        attempts += 1
        xs = random_list(rng, config.equivalence_max_len, arity=config.element_arity)
        x = random_element(rng, config.element_arity)
        extras = random_extras(rng, rfs.extra_params)
        bindings = rfs_environment(rfs, xs, extras)
        if bindings is None:
            continue
        offline_env: dict[str, Value] = dict(extras)
        offline_env[rfs.list_param] = list(xs) + [x]
        try:
            target = evaluate(spec, offline_env)
        except EvaluationError:
            continue
        env = dict(bindings)
        env[ELEM_PARAM] = x
        envs.append(env)
        if isinstance(target, float):
            target = round(target, 9)
        targets.append(target)
    if not envs:
        return None
    try:
        signature = tuple(targets)
        hash(signature)
    except TypeError:
        return None
    return Bank(envs, signature)


@dataclass
class EnumStats:
    generated: int = 0
    kept: int = 0
    checked: int = 0
    #: Candidates discarded by the static redundancy test before their
    #: oracle-env evaluation (see :mod:`repro.ir.analysis.prune`).
    pruned: int = 0


def enumerate_expression(
    rfs: RFS,
    spec: Expr,
    config: SynthesisConfig,
    seeds: Iterable[Expr] = (),
    salt: str = "",
    stats: EnumStats | None = None,
    terminal_tail: Sequence[Expr] | None = None,
    generated_cap: int | None = None,
) -> Expr | None:
    """Size-bounded bottom-up search for an online expression matching the
    specification modulo the RFS.

    ``terminal_tail`` overrides the constant/seed portion of the terminal
    pool (the variables always stay) — the hook enumeration sharding uses to
    give each shard its own deterministic slice of the pool.
    ``generated_cap`` bounds the number of candidates *generated* — a
    deterministic work cap (machine-independent, unlike the wall clock) that
    lets a portfolio shard give up cheaply and identically everywhere.
    """
    stats = stats if stats is not None else EnumStats()
    bank = build_bank(rfs, spec, config, salt)
    if bank is None:
        return None

    terminals: list[Expr] = [Var(name) for name in rfs.names]
    terminals.append(Var(ELEM_PARAM))
    terminals.extend(Var(name) for name in rfs.extra_params)
    if terminal_tail is None:
        terminal_tail = _terminal_tail(seeds)
    for extra in terminal_tail:
        if extra not in terminals:
            terminals.append(extra)

    offline_ops = used_builtins(spec)
    binops = list(_CORE_BINOPS) + [
        op for op in _INHERITABLE if op in offline_ops and op not in ("abs", "sqrt", "exp", "log")
    ]
    unops = [op for op in ("neg", "abs", "sqrt", "exp", "log") if op in offline_ops or op == "neg"]
    want_conditionals = bool(offline_ops & set(_PREDICATES))
    predicates = [op for op in _PREDICATES if op in offline_ops]
    tuple_arities = sorted({len(v) for v in bank.spec_signature if isinstance(v, tuple)})
    want_tuples = bool(tuple_arities)
    # Pair-shaped stream elements need projections even for scalar outputs.
    want_projections = want_tuples or any(
        isinstance(env.get(ELEM_PARAM), tuple) for env in bank.envs
    )

    # by_size[s] = distinct-behaviour expressions of each size; ``seen``
    # stores signature *hashes* only (storing millions of value tuples was a
    # memory hazard on long runs; a 64-bit hash collision merely prunes one
    # candidate).
    by_size: dict[int, list[Expr]] = {1: []}
    seen: set[int] = set()
    bool_by_size: dict[int, list[Expr]] = {}
    bool_seen: set[int] = set()
    spec_hash = hash(bank.spec_signature)

    def consider(expr: Expr, size: int) -> Expr | None:
        stats.generated += 1
        if stats.generated % 2048 == 0 and config.expired():
            raise SynthesisTimeout("enumeration budget exhausted")
        if generated_cap is not None and stats.generated > generated_cap:
            raise EnumerationCapExceeded("enumeration work cap exhausted")
        if stats.kept > config.enumeration_max_kept:
            raise EnumerationCapExceeded("enumeration memory budget exhausted")
        if config.enum_static_prune and statically_redundant(expr):
            # Provably faults everywhere or duplicates a banked signature:
            # skipping the env sweep cannot change what the search finds.
            stats.pruned += 1
            return None
        signature = _signature(expr, bank.envs)
        if signature is None:
            return None
        h = hash(signature)
        if h in seen:
            return None
        seen.add(h)
        by_size.setdefault(size, []).append(expr)
        stats.kept += 1
        if h == spec_hash and signature == bank.spec_signature:
            stats.checked += 1
            if check_expr_equivalence(spec, expr, rfs, config, salt=f"enum:{salt}"):
                return expr
        return None

    for term in terminals:
        found = consider(term, 1)
        if found is not None:
            return found

    # Within each size tier the cheap, high-yield productions run first
    # (projections, conditionals, tuples); the binary-operator flood — by far
    # the largest population — runs last so it cannot starve them.
    for size in range(2, config.enumeration_max_size + 1):
        if config.expired():
            raise SynthesisTimeout("enumeration budget exhausted")
        # Projections of tuple-valued expressions.
        if want_projections:
            for expr in by_size.get(size - 1, []):
                for index in (0, 1, 2):
                    found = consider(Proj(expr, index), size)
                    if found is not None:
                        return found
        # Unary operators.
        for op in unops:
            for expr in by_size.get(size - 1, []):
                found = consider(Call(op, (expr,)), size)
                if found is not None:
                    return found
        # pow with small constant exponents.
        for exponent in (2, 3):
            for expr in by_size.get(size - 2, []):
                found = consider(Call("pow", (expr, Const(exponent))), size)
                if found is not None:
                    return found
        # Conditionals: first extend the predicate pool, then build Ifs from
        # smaller (already complete) expression tiers.
        if want_conditionals:
            for op in predicates:
                for left_size in range(1, size - 1):
                    right_size = size - 1 - left_size
                    for left in by_size.get(left_size, []):
                        for right in by_size.get(right_size, []):
                            cond = Call(op, (left, right))
                            csig = _signature(cond, bank.envs)
                            if csig is None or hash(csig) in bool_seen:
                                continue
                            bool_seen.add(hash(csig))
                            bool_by_size.setdefault(size, []).append(cond)
            for cond_size in range(2, size - 2):
                branch_budget = size - 1 - cond_size
                for cond in bool_by_size.get(cond_size, []):
                    for then_size in range(1, branch_budget):
                        else_size = branch_budget - then_size
                        for then in by_size.get(then_size, []):
                            for orelse in by_size.get(else_size, []):
                                found = consider(If(cond, then, orelse), size)
                                if found is not None:
                                    return found
        # Tuples (paired accumulators / whole-program tuple specs).
        if want_tuples:
            for arity in tuple_arities:
                for parts in _compositions(size - 1, arity):
                    for combo in _pool_product(by_size, parts):
                        found = consider(MakeTuple(combo), size)
                        if found is not None:
                            return found
        # Binary operators (the flood).
        for left_size in range(1, size - 1):
            right_size = size - 1 - left_size
            for left in by_size.get(left_size, []):
                for right in by_size.get(right_size, []):
                    for op in binops:
                        found = consider(Call(op, (left, right)), size)
                        if found is not None:
                            return found
            if config.expired():
                raise SynthesisTimeout("enumeration budget exhausted")
    return None


def _terminal_tail(seeds: Iterable[Expr]) -> list[Expr]:
    """The non-variable terminal pool: small constants plus mined seeds."""
    tail: list[Expr] = [Const(0), Const(1), Const(2)]
    for seed in seeds:
        if seed not in tail:
            tail.append(seed)
    return tail


def shard_terminal_tail(seeds: Iterable[Expr], shard: int, shards: int) -> list[Expr]:
    """Deterministic round-robin slice of the constant/seed pool for one
    enumeration shard (variables are shared by every shard)."""
    return _terminal_tail(seeds)[shard::shards]


def enumerate_sharded(
    rfs: RFS,
    spec: Expr,
    config: SynthesisConfig,
    seeds: Iterable[Expr] = (),
    salt: str = "",
    only_shard: int | None = None,
    stats: EnumStats | None = None,
) -> Expr | None:
    """Portfolio enumeration over ``config.enum_shards`` deterministic shards.

    Shard ``s < K`` enumerates with the ``s``-th round-robin slice of the
    constant/seed pool, its own observational-equivalence bank (the bank
    salt includes the shard index), and a deterministic work cap so a
    fruitless shard gives up cheaply — and *identically* on any machine or
    process.  Shard ``K`` is the plain unsharded search — the completeness
    fallback, byte-identical to ``enum_shards == 1``.  Shards are tried in
    index order and the first accepting shard wins, so the result is
    reproducible and independent of *how* the shards execute:
    :mod:`repro.core.parallel_synthesize` runs them as concurrent
    sub-processes and applies the same lowest-shard-index-wins rule.

    ``only_shard`` restricts the call to a single shard index (``K`` for the
    fallback) — the picklable unit the parallel dispatcher runs per worker.
    """
    seeds = list(seeds)
    shards = config.enum_shards
    order = range(shards + 1) if only_shard is None else (only_shard,)
    for shard in order:
        if shard >= shards:  # the unsharded completeness fallback
            found = enumerate_expression(rfs, spec, config, seeds=seeds, salt=salt, stats=stats)
        else:
            try:
                found = enumerate_expression(
                    rfs,
                    spec,
                    config,
                    salt=f"{salt}@shard{shard}/{shards}",
                    stats=stats,
                    terminal_tail=shard_terminal_tail(seeds, shard, shards),
                    generated_cap=config.enum_shard_generated_cap,
                )
            except EnumerationCapExceeded:
                found = None  # this shard gave up; the next one still runs
        if found is not None:
            return found
    return None


def _compositions(total: int, parts: int):
    """All ways to split ``total`` into ``parts`` positive integers."""
    if parts == 1:
        if total >= 1:
            yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


def _pool_product(by_size: dict[int, list[Expr]], parts: tuple[int, ...]):
    """Cartesian product of the size-indexed expression pools."""
    import itertools

    pools = [by_size.get(p, []) for p in parts]
    if any(not pool for pool in pools):
        return
    yield from itertools.product(*pools)


def seeds_from_template(template) -> list[Expr]:
    """Grammar seeds from a mined template: its basis monomials."""
    seeds = []
    for term in template.basis_exprs():
        if not isinstance(term, Const) and ast_size(term) > 1:
            seeds.append(term)
    return seeds
