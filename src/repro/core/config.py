"""Tunable knobs of the synthesizer, with the paper's defaults.

A single :class:`SynthesisConfig` travels through the pipeline; the ablations
of Section 7.2 are expressed as flags here (``use_decomposition``,
``use_symbolic``), and the evaluation harness scales ``timeout_s``.

Configs are picklable (they cross process boundaries in the parallel suite
runner) and expose a stable :meth:`SynthesisConfig.fingerprint` used as part
of the on-disk result-cache key (:mod:`repro.evaluation.cache`).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, fields


@dataclass
class SynthesisConfig:
    #: Wall-clock budget per task in seconds (600 s in the paper, Section 7).
    timeout_s: float = 60.0

    #: Unrolling depth ``k`` for MineExpressions (the paper uses a small
    #: constant; Example 5.6 shows k = 3).
    unroll_depth: int = 3

    #: Number of sample lengths for SolveTemplate (the paper picks 11,
    #: bounding interpolated polynomials to degree <= 10; degree 4 suffices
    #: in practice, so the default trades a little generality for speed).
    interpolation_lengths: int = 12

    #: Maximum degree for interpolated coefficient polynomials over ``n``.
    interpolation_max_degree: int = 6

    #: Maximum AST size explored by the enumerative fallback.
    enumeration_max_size: int = 11

    #: Cap on distinct behaviours kept by the enumerator (memory bound).
    enumeration_max_kept: int = 150_000

    #: Number of random tests used by the equivalence oracle.
    equivalence_tests: int = 24

    #: Maximum list length in randomly generated equivalence tests.
    equivalence_max_len: int = 7

    #: RNG seed for the testing oracle (determinism across runs).
    seed: int = 2024

    #: Arity of stream elements: 1 for plain numbers, k for k-tuples (e.g.
    #: auction bids modelled as (price, category) pairs).  Drives the test
    #: generators of the equivalence oracle.
    element_arity: int = 1

    #: Ablation switches (Section 7.2): Opera-NoDecomp / Opera-NoSymbolic.
    use_decomposition: bool = True
    use_symbolic: bool = True

    #: Worker processes for *intra-task* parallelism: independent sketch
    #: holes (and enumeration shards, see ``enum_shards``) are dispatched
    #: over a process pool (:mod:`repro.core.parallel_synthesize`).  Purely
    #: an execution knob — it decides which process solves each sub-task,
    #: never what is synthesized, so it is excluded from the fingerprint.
    hole_workers: int = 1

    #: Deterministic enumeration shards per hole (1 = the plain bottom-up
    #: search).  K > 1 splits the enumerator's constant/seed pool round-robin
    #: across K portfolio shards, each with its own observational-equivalence
    #: bank, tried in shard order with an unsharded completeness fallback;
    #: the first (lowest-index) accepting shard wins.  This restructures the
    #: search — it can change which of several equivalent solutions is found
    #: — so unlike ``hole_workers`` it is *included* in the fingerprint.
    enum_shards: int = 1

    #: Deterministic per-shard work cap: a portfolio shard that *generates*
    #: this many candidates without an accepted one gives up (identically on
    #: any machine), leaving the search to later shards and the unsharded
    #: fallback.  Only consulted when ``enum_shards > 1``.
    enum_shard_generated_cap: int = 20_000

    #: Skip statically-redundant candidates (guaranteed-faulting or
    #: provably duplicating an already-banked signature — see
    #: :mod:`repro.ir.analysis.prune`) before paying for their oracle-env
    #: evaluation.  By construction this cannot change what the enumerator
    #: finds (tests enforce prune-on/off identity), so like
    #: ``hole_workers`` it is excluded from the fingerprint.
    enum_static_prune: bool = True

    #: Internal: deadline computed at synthesis start.
    _deadline: float | None = field(default=None, repr=False)

    def start_clock(self) -> None:
        self._deadline = time.monotonic() + self.timeout_s

    def remaining(self) -> float:
        if self._deadline is None:
            return self.timeout_s
        return self._deadline - time.monotonic()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def fingerprint(self) -> str:
        """Stable hex digest of every behaviour-relevant knob.

        Two configs with equal fingerprints make the synthesizer explore the
        same search space in the same order (the RNG is seeded), so cached
        results keyed by this digest are safe to reuse.  ``timeout_s`` is
        deliberately *excluded*: the budget decides only whether the search
        finishes, not what it finds, and the result cache re-checks budgets
        for failed entries itself.  ``hole_workers`` is likewise excluded —
        it only decides which *process* solves each sketch hole, and the
        invariant (enforced by tests) is that parallel and sequential
        synthesis produce identical reports modulo ``elapsed_s``, so cached
        results are shared across worker counts.  ``enum_shards`` *is*
        included: sharding restructures the enumerative search and may
        settle on a different (equivalent) solution.  ``_deadline`` is
        process-local transient state and is excluded.
        """
        payload = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("timeout_s", "hole_workers", "enum_static_prune", "_deadline")
        }
        blob = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __getstate__(self) -> dict:
        # Deadlines are ``time.monotonic()`` instants, meaningless in another
        # process; a config always crosses a process boundary unstarted.
        state = dict(self.__dict__)
        state["_deadline"] = None
        return state
