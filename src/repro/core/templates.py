"""Template solving via polynomial interpolation (Appendix B).

A mined term is exact only at the unroll depth ``k``: its rational constants
may secretly be polynomials in the stream length ``n`` evaluated at ``k``
(Example 5.6: the mined ``1/12`` is really ``1/(n(n+1))`` at ``n = 3``).
Following Algorithms 5 and 6:

1. **Templatize** — keep the monomial structure of the mined numerator and
   denominator, forget the constants: the template is
   ``(Σ ??i · ei) / (Σ ??j · gj)`` over online-variable monomials.
2. **SamplePoints** — for each of several list lengths ``l``, sample enough
   random lists to pin down the coefficient vector ``α(l)`` up to scale (the
   template equation is homogeneous after cross-multiplication, so this is an
   exact nullspace computation).
3. **Interpolate** — fit polynomial coefficient functions of ``n`` to the
   per-length vectors *projectively*: one free scale per length, solved
   jointly as a single exact nullspace problem (see ``_projective_fits``).
   This generalizes per-coefficient interpolation, which needs a normalizer
   dividing every other coefficient — something that rarely exists.
4. Rebuild the online expression with the length accumulator substituted for
   ``n`` and re-validate with the equivalence oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..algebra.linsolve import nullspace
from ..ir.evaluator import EvaluationError, evaluate
from ..ir.nodes import Call, Const, Expr, Var, const
from ..ir.values import Value, is_number
from .config import SynthesisConfig
from .decompose import ELEM_PARAM
from .encode import decode_monomial
from .equivalence import (
    check_expr_equivalence,
    make_rng,
    random_element,
    random_extras,
    rfs_environment,
)
from .mining import MinedTerm
from .rfs import RFS


@dataclass
class Template:
    """``(Σ ??i · num_terms[i]) / (Σ ??j · den_terms[j])`` with unknown
    coefficients; ``hints`` are the mined coefficient values at depth ``k``."""

    num_terms: list[Expr]
    den_terms: list[Expr]
    num_hints: list[Fraction]
    den_hints: list[Fraction]

    @property
    def unknowns(self) -> int:
        return len(self.num_terms) + len(self.den_terms)

    def basis_exprs(self) -> list[Expr]:
        return list(self.num_terms) + list(self.den_terms)


def templatize(mined: MinedTerm) -> Template:
    """Replace the constants of a mined term with holes (line 18 of
    Algorithm 4)."""
    num_terms: list[Expr] = []
    num_hints: list[Fraction] = []
    for mono, coeff in mined.term.num.monomials():
        num_terms.append(decode_monomial(mono, mined.ctx))
        num_hints.append(coeff)
    den_terms: list[Expr] = []
    den_hints: list[Fraction] = []
    for mono, coeff in mined.term.den.monomials():
        den_terms.append(decode_monomial(mono, mined.ctx))
        den_hints.append(coeff)
    if not den_terms:
        den_terms, den_hints = [Const(1)], [Fraction(1)]
    return Template(num_terms, den_terms, num_hints, den_hints)


def _to_fraction(value: Value) -> Fraction | None:
    if isinstance(value, bool) or not is_number(value):
        return None
    if isinstance(value, float):
        return Fraction(value).limit_denominator(10**12)
    return Fraction(value)


def _sample_alpha(
    template: Template,
    rfs: RFS,
    spec: Expr,
    length: int,
    config: SynthesisConfig,
    salt: str,
) -> list[Fraction] | None:
    """One per-length solve of Algorithm 6: the coefficient vector up to scale."""
    rng = make_rng(config, f"template:{salt}:{length}")
    basis = template.basis_exprs()
    n_num = len(template.num_terms)
    rows: list[list[Fraction]] = []
    attempts = 0
    max_rows = template.unknowns + 4
    while len(rows) < max_rows and attempts < max_rows * 6:
        attempts += 1
        xs = [random_element(rng, config.element_arity) for _ in range(length)]
        x = random_element(rng, config.element_arity)
        extras = random_extras(rng, rfs.extra_params)
        bindings = rfs_environment(rfs, xs, extras)
        if bindings is None:
            continue
        env = dict(bindings)
        env[ELEM_PARAM] = x
        offline_env: dict[str, Value] = dict(extras)
        offline_env[rfs.list_param] = list(xs) + [x]
        try:
            spec_value = _to_fraction(evaluate(spec, offline_env))
            term_values = [_to_fraction(evaluate(term, env)) for term in basis]
        except EvaluationError:
            continue
        if spec_value is None or any(v is None for v in term_values):
            continue
        row = [
            value if i < n_num else -spec_value * value
            for i, value in enumerate(term_values)  # type: ignore[misc]
        ]
        rows.append(row)

    if len(rows) < template.unknowns:
        return None
    basis_vectors = nullspace(rows)
    if len(basis_vectors) != 1:
        return None
    return basis_vectors[0]


def _poly_in_n(coeffs: list[Fraction], n_expr: Expr) -> Expr:
    """Build ``c0 + c1*n + c2*n^2 + ...`` as an IR expression."""
    result: Expr | None = None
    for degree, coeff in enumerate(coeffs):
        if coeff == 0:
            continue
        if degree == 0:
            part: Expr = const(coeff)
        else:
            power = n_expr if degree == 1 else Call("pow", (n_expr, Const(degree)))
            part = power if coeff == 1 else Call("mul", (const(coeff), power))
        result = part if result is None else Call("add", (result, part))
    return result if result is not None else Const(0)


def _combine(terms: list[Expr], coeff_exprs: list[Expr | None]) -> Expr | None:
    result: Expr | None = None
    for term, coeff in zip(terms, coeff_exprs):
        if coeff is None:
            continue
        if isinstance(coeff, Const) and coeff.value == 0:
            continue
        if isinstance(coeff, Const) and coeff.value == 1:
            part = term
        elif isinstance(term, Const) and term.value == 1:
            part = coeff
        else:
            part = Call("mul", (coeff, term))
        result = part if result is None else Call("add", (result, part))
    return result


def solve_template(
    template: Template,
    rfs: RFS,
    spec: Expr,
    config: SynthesisConfig,
    salt: str = "",
) -> Expr | None:
    """Algorithm 5: sample, interpolate, rebuild, verify."""
    if rfs.length_param is None:
        return None
    n_expr: Expr = Var(rfs.length_param)

    # Some lengths are degenerate (e.g. at n = 1 a variance accumulator is
    # identically zero, leaving the coefficient vector underdetermined); skip
    # them and keep sampling until enough well-determined lengths are found.
    needed = config.interpolation_max_degree + 2
    alphas: dict[int, list[Fraction]] = {}
    for length in range(1, config.interpolation_lengths + needed + 1):
        if config.expired():
            return None
        alpha = _sample_alpha(template, rfs, spec, length, config, salt)
        if alpha is not None:
            alphas[length] = alpha
        if len(alphas) >= config.interpolation_lengths:
            break
    if len(alphas) < needed:
        return None
    lengths = sorted(alphas)

    for coeff_polys in _projective_fits(alphas, lengths, config):
        coeff_exprs: list[Expr | None] = [_poly_in_n(coeffs, n_expr) for coeffs in coeff_polys]
        num = _combine(template.num_terms, coeff_exprs[: len(template.num_terms)])
        den = _combine(template.den_terms, coeff_exprs[len(template.num_terms) :])
        if num is None:
            num = Const(0)
        if den is None:
            continue
        if isinstance(den, Const) and den.value == 1:
            candidate: Expr = num
        else:
            candidate = Call("div", (num, den))
        if check_expr_equivalence(spec, candidate, rfs, config, salt=f"tmpl:{salt}"):
            return candidate
    return None


def _projective_fits(
    alphas: dict[int, list[Fraction]],
    lengths: list[int],
    config: SynthesisConfig,
):
    """Fit polynomial coefficient vectors to per-length samples *up to scale*.

    Each length only pins the coefficient vector projectively (the template
    equation is homogeneous), so a plain per-coefficient interpolation needs a
    normalizer that divides every other coefficient — which rarely exists.
    Instead, introduce one free scale ``t_l`` per length and solve the
    homogeneous linear system

        for all lengths l, positions j:   q_j(l) - α_j(l) · t_l = 0

    for the polynomial coefficients of the ``q_j`` (degree ≤ D) and the
    ``t_l`` jointly; the nullspace vector recovers polynomial coefficient
    functions exactly.  The smallest degree with a (unique) solution wins.
    """
    unknowns = len(next(iter(alphas.values())))
    n_lengths = len(lengths)
    for degree in range(0, config.interpolation_max_degree + 1):
        n_coeffs = unknowns * (degree + 1)
        # Enough constraints to over-determine the system?
        if unknowns * n_lengths < n_coeffs + n_lengths + 1:
            break
        rows: list[list[Fraction]] = []
        for li, length in enumerate(lengths):
            powers = [Fraction(length) ** d for d in range(degree + 1)]
            for j in range(unknowns):
                row = [Fraction(0)] * (n_coeffs + n_lengths)
                for d in range(degree + 1):
                    row[j * (degree + 1) + d] = powers[d]
                row[n_coeffs + li] = -alphas[length][j]
                rows.append(row)
        basis = nullspace(rows)
        if len(basis) != 1:
            continue
        vec = basis[0]
        # Scale so the first nonzero length-scale is 1 (fixes global sign),
        # then clear denominators so coefficients are coprime integers — the
        # form a human would write (and the paper's figures show).
        scale = next((v for v in vec[n_coeffs:] if v != 0), None)
        if scale is None:
            continue
        coeffs = [v / scale for v in vec[:n_coeffs]]
        nonzero = [c for c in coeffs if c != 0]
        if nonzero:
            from math import gcd

            lcm_den = 1
            for c in nonzero:
                lcm_den = lcm_den * c.denominator // gcd(lcm_den, c.denominator)
            gcd_num = 0
            for c in nonzero:
                gcd_num = gcd(gcd_num, abs(c.numerator) * (lcm_den // c.denominator))
            factor = Fraction(lcm_den, gcd_num or 1)
            coeffs = [c * factor for c in coeffs]
        coeff_polys = [coeffs[j * (degree + 1) : (j + 1) * (degree + 1)] for j in range(unknowns)]
        yield coeff_polys
