"""Opera: automatic generation of online streaming algorithms from their
batch (offline) versions.

Reproduction of Wang, Pailoor, Prakash, Wang, Dillig — *From Batch to Stream:
Automatic Generation of Online Algorithms*, PLDI 2024.

Typical use::

    from repro import synthesize, SynthesisConfig, python_to_ir

    program = python_to_ir('''
    def mean(xs):
        s = 0
        for x in xs:
            s += x
        return s / len(xs)
    ''')
    report = synthesize(program, SynthesisConfig(timeout_s=60), "mean")
    scheme = report.scheme          # (initializer, online program)
    list(scheme.run([1, 2, 3]))     # -> [1, 3/2, 2]

Package map:

* :mod:`repro.ir` — the functional IR (Figures 6-7) with parser, printer and
  interpreter;
* :mod:`repro.frontend` — Python-to-IR translation;
* :mod:`repro.algebra` — exact polynomial/rational symbolic algebra and
  quantifier elimination (the REDUCE replacement);
* :mod:`repro.core` — the synthesis pipeline (RFS, decomposition, implicates,
  mining, templates, enumeration);
* :mod:`repro.runtime` — stream operators for deploying schemes;
* :mod:`repro.suites` — the 51 evaluation benchmarks;
* :mod:`repro.baselines` — SyGuS-style baselines and ablations;
* :mod:`repro.evaluation` — the Table/Figure regeneration harness.
"""

from .core import (
    OnlineScheme,
    SynthesisConfig,
    SynthesisReport,
    synthesize,
    synthesize_expr,
)
from .frontend import python_to_ir
from .ir import parse_program, pretty_online, pretty_program, run_offline
from .runtime import OnlineOperator, StreamPipeline

__version__ = "1.0.0"

__all__ = [
    "OnlineOperator",
    "OnlineScheme",
    "StreamPipeline",
    "SynthesisConfig",
    "SynthesisReport",
    "parse_program",
    "pretty_online",
    "pretty_program",
    "python_to_ir",
    "run_offline",
    "synthesize",
    "synthesize_expr",
]
