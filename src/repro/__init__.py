"""Opera: automatic generation of online streaming algorithms from their
batch (offline) versions.

Reproduction of Wang, Pailoor, Prakash, Wang, Dillig — *From Batch to Stream:
Automatic Generation of Online Algorithms*, PLDI 2024 — grown into a
deployable streaming library around a **compile / load / deploy** lifecycle:

1. **Compile once.** :func:`repro.api.compile` turns a batch Python function
   into an :class:`OnlineScheme`.  Results persist in a content-addressed
   scheme store (:mod:`repro.store`), keyed by task x config x synthesizer
   implementation digest, so every later compile — in any process — is a
   disk read, not a synthesis search::

       from repro import compile

       compiled = compile('''
       def mean(xs):
           s = 0
           for x in xs:
               s += x
           return s / len(xs)
       ''', name="mean")
       compiled.save("mean.scheme.json")      # versioned JSON, exact rationals

   Or, inline, the decorator form::

       from repro import streamify

       @streamify
       def mean(xs): ...

       mean(3); mean(5)        # online updates, O(1) state

2. **Load anywhere.** Serialized schemes are plain validated JSON
   (:mod:`repro.core.serialize`): ``OnlineScheme.load("mean.scheme.json")``
   in a process that never imports the synthesizer.

3. **Deploy.** The runtime (:mod:`repro.runtime`) wraps schemes in stateful
   operators: :class:`OnlineOperator` (one stream),
   :class:`KeyedOperator` (per-key partitions for group-by workloads),
   :class:`StreamPipeline` (lockstep fan-out), windowing helpers, and
   restart-safe ``checkpoint()``/``restore()``
   (:mod:`repro.runtime.checkpoint`).

The same lifecycle drives the CLI: ``repro compile f.py -o s.json``,
``repro run s.json --source counter:100``, ``repro cache stats``.

Package map:

* :mod:`repro.ir` — the functional IR (Figures 6-7) with parser, printer and
  interpreter;
* :mod:`repro.frontend` — Python-to-IR translation;
* :mod:`repro.algebra` — exact polynomial/rational symbolic algebra and
  quantifier elimination (the REDUCE replacement);
* :mod:`repro.core` — the synthesis pipeline (RFS, decomposition, implicates,
  mining, templates, enumeration) and scheme serialization;
* :mod:`repro.api` — the compile/load/deploy surface;
* :mod:`repro.store` — the persistent compiled-scheme store;
* :mod:`repro.runtime` — stream operators, keyed partitioning, checkpoints;
* :mod:`repro.suites` — the 51 evaluation benchmarks;
* :mod:`repro.baselines` — SyGuS-style baselines and ablations;
* :mod:`repro.evaluation` — the Table/Figure regeneration harness.
"""

from .api import (
    CompiledScheme,
    CompileError,
    StreamFunction,
    compile,
    streamify,
)
from .core import (
    OnlineScheme,
    SchemeFormatError,
    SynthesisConfig,
    SynthesisReport,
    synthesize,
    synthesize_expr,
)
from .frontend import python_to_ir
from .ir import parse_program, pretty_online, pretty_program, run_offline
from .runtime import (
    KeyedOperator,
    OnlineOperator,
    StreamPipeline,
    load_checkpoint,
    save_checkpoint,
)
from .store import SchemeStore, resolve_store

__version__ = "1.1.0"

__all__ = [
    "CompileError",
    "CompiledScheme",
    "KeyedOperator",
    "OnlineOperator",
    "OnlineScheme",
    "SchemeFormatError",
    "SchemeStore",
    "StreamFunction",
    "StreamPipeline",
    "SynthesisConfig",
    "SynthesisReport",
    "compile",
    "load_checkpoint",
    "parse_program",
    "pretty_online",
    "pretty_program",
    "python_to_ir",
    "resolve_store",
    "run_offline",
    "save_checkpoint",
    "streamify",
    "synthesize",
    "synthesize_expr",
]
