"""The statistics benchmark suite (34 tasks).

Offline batch computations collected in the spirit of the paper's sources —
SciPy's descriptive statistics and OnlineStats.jl's single-pass estimators —
expressed in the functional IR (several also carry the Python source their
SciPy counterpart would use, exercised through :mod:`repro.frontend`).

Ground-truth online schemes are hand-written classics where they exist
(Welford for the variance family, the Pébay one-pass update formulas for
skewness and kurtosis — the latter is Figure 12 of the paper verbatim) and
straightforward accumulator recomputations otherwise.  Every ground truth is
validated against its offline program by the test suite.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.scheme import OnlineScheme
from ..ir.dsl import (
    XS,
    V,
    absolute,
    add,
    div,
    exp,
    ffilter,
    fold,
    fold_count,
    fold_max,
    fold_min,
    fold_product,
    fold_sum,
    fold_sum_of,
    gt,
    ite,
    lam,
    length,
    log,
    maximum,
    minimum,
    mul,
    powi,
    program,
    proj,
    sqrt,
    sub,
)
from ..ir.nodes import Expr, OnlineProgram, Program
from .registry import Benchmark, register_suite

MIN_SENTINEL = 10**9
MAX_SENTINEL = -(10**9)


def _gt(
    state: tuple[str, ...],
    outputs: tuple[Expr, ...],
    init: tuple,
    extra: tuple[str, ...] = (),
) -> OnlineScheme:
    return OnlineScheme(
        tuple(init),
        OnlineProgram(state, "x", outputs, extra),
        provenance="ground-truth",
    )


# ---------------------------------------------------------------------------
# Shared offline sub-expressions
# ---------------------------------------------------------------------------

_SUM = fold_sum(XS)
_N = length(XS)
_MEAN = div(_SUM, _N)
_SUM_SQ = fold_sum_of("v", powi("v", 2), XS)
_AVG = div(fold_sum(XS), length(XS))
_M2 = fold(lam("acc", "v", add("acc", powi(sub("v", _AVG), 2))), 0, XS)
_M3 = fold(lam("acc", "v", add("acc", powi(sub("v", _AVG), 3))), 0, XS)
_M4 = fold(lam("acc", "v", add("acc", powi(sub("v", _AVG), 4))), 0, XS)


def _welford_outputs(result: Expr) -> tuple[Expr, ...]:
    """Welford-style updates; state is (r, sq, s, n)."""
    new_s = add("s", "x")
    new_n = add("n", 1)
    new_sq = add(
        "sq",
        mul(sub("x", div("s", "n")), sub("x", div(new_s, new_n))),
    )
    return (result, new_sq, new_s, new_n)


_WELFORD_STATE = ("r", "sq", "s", "n")
_WELFORD_INIT = (0, 0, 0, 0)

_NEW_SQ = add("sq", mul(sub("x", div("s", "n")), sub("x", div(add("s", "x"), add("n", 1)))))
_NEW_N = add("n", 1)


def _benchmarks() -> list[Benchmark]:
    benches: list[Benchmark] = []

    def bench(name, body, description, gt=None, python=None, hard=False, arity=1, extra=()):
        benches.append(
            Benchmark(
                name=name,
                domain="stats",
                program=program(body, tuple(extra)),
                description=description,
                ground_truth=gt,
                python_source=python,
                element_arity=arity,
                expected_hard=hard,
            )
        )

    # -- simple single-fold reductions ------------------------------------
    bench(
        "sum",
        _SUM,
        "Sum of the stream",
        _gt(("s",), (add("s", "x"),), (0,)),
        python="def total(xs):\n    s = 0\n    for x in xs:\n        s += x\n    return s\n",
    )
    bench(
        "count",
        fold_count(XS),
        "Number of elements (explicit fold)",
        _gt(("n",), (add("n", 1),), (0,)),
    )
    bench(
        "last",
        fold(lam("a", "b", V("b")), 0, XS),
        "Most recent element",
        _gt(("l",), (V("x"),), (0,)),
    )
    bench(
        "mean",
        _MEAN,
        "Arithmetic mean (Example 3.1)",
        _gt(("m", "n"), (div(add(mul("m", "n"), "x"), add("n", 1)), add("n", 1)), (0, 0)),
        python=(
            "def mean(xs):\n    s = 0\n    for x in xs:\n        s += x\n    return s / len(xs)\n"
        ),
    )
    bench(
        "sum_of_squares",
        _SUM_SQ,
        "Sum of squared elements",
        _gt(("q",), (add("q", powi("x", 2)),), (0,)),
    )
    bench(
        "rms",
        sqrt(div(_SUM_SQ, _N)),
        "Root mean square",
        _gt(
            ("r", "q", "n"),
            (
                sqrt(div(add("q", powi("x", 2)), add("n", 1))),
                add("q", powi("x", 2)),
                add("n", 1),
            ),
            (0, 0, 0),
        ),
    )
    bench(
        "product",
        fold_product(XS),
        "Product of the stream",
        _gt(("p",), (mul("p", "x"),), (1,)),
    )
    bench(
        "geometric_mean",
        exp(div(fold_sum_of("v", log("v"), XS), _N)),
        "exp of the mean of logs (SciPy gmean)",
        _gt(
            ("g", "sl", "n"),
            (
                exp(div(add("sl", log("x")), add("n", 1))),
                add("sl", log("x")),
                add("n", 1),
            ),
            (1, 0, 0),
        ),
    )
    bench(
        "harmonic_mean",
        div(_N, fold_sum_of("v", div(1, "v"), XS)),
        "n over the sum of reciprocals (SciPy hmean)",
        _gt(
            ("h", "sr", "n"),
            (
                div(add("n", 1), add("sr", div(1, "x"))),
                add("sr", div(1, "x")),
                add("n", 1),
            ),
            (0, 0, 0),
        ),
    )
    bench(
        "logsumexp",
        log(fold_sum_of("v", exp("v"), XS)),
        "log of the sum of exponentials (SciPy logsumexp)",
        _gt(
            ("l", "se"),
            (log(add("se", exp("x"))), add("se", exp("x"))),
            (0, 0),
        ),
    )
    bench(
        "sum_exp",
        fold_sum_of("v", exp("v"), XS),
        "Softmax denominator",
        _gt(("se",), (add("se", exp("x")),), (0,)),
    )
    bench(
        "mean_abs",
        div(fold_sum_of("v", absolute("v"), XS), _N),
        "Mean absolute value",
        _gt(
            ("m", "sa", "n"),
            (
                div(add("sa", absolute("x")), add("n", 1)),
                add("sa", absolute("x")),
                add("n", 1),
            ),
            (0, 0, 0),
        ),
    )

    # -- order statistics ---------------------------------------------------
    bench(
        "min",
        fold_min(XS),
        "Minimum element",
        _gt(("m",), (minimum("m", "x"),), (MIN_SENTINEL,)),
    )
    bench(
        "max",
        fold_max(XS),
        "Maximum element",
        _gt(("m",), (maximum("m", "x"),), (MAX_SENTINEL,)),
    )
    bench(
        "range",
        sub(fold_max(XS), fold_min(XS)),
        "max - min",
        _gt(
            ("r", "mx", "mn"),
            (
                sub(maximum("mx", "x"), minimum("mn", "x")),
                maximum("mx", "x"),
                minimum("mn", "x"),
            ),
            (MAX_SENTINEL - MIN_SENTINEL, MAX_SENTINEL, MIN_SENTINEL),
        ),
    )
    bench(
        "midrange",
        div(add(fold_max(XS), fold_min(XS)), 2),
        "(max + min) / 2",
        _gt(
            ("r", "mx", "mn"),
            (
                div(add(maximum("mx", "x"), minimum("mn", "x")), 2),
                maximum("mx", "x"),
                minimum("mn", "x"),
            ),
            (Fraction(MAX_SENTINEL + MIN_SENTINEL, 2), MAX_SENTINEL, MIN_SENTINEL),
        ),
    )

    # -- conditional accumulations -----------------------------------------
    bench(
        "count_positive",
        fold(lam("a", "v", ite(gt("v", 0), add("a", 1), V("a"))), 0, XS),
        "How many elements are positive",
        _gt(("c",), (ite(gt("x", 0), add("c", 1), V("c")),), (0,)),
    )
    bench(
        "count_above",
        fold(lam("a", "v", ite(gt("v", "t"), add("a", 1), V("a"))), 0, XS),
        "How many elements exceed threshold t",
        _gt(("c",), (ite(gt("x", "t"), add("c", 1), V("c")),), (0,), extra=("t",)),
        extra=("t",),
    )
    bench(
        "sum_above",
        fold(lam("a", "v", ite(gt("v", "t"), add("a", "v"), V("a"))), 0, XS),
        "Sum of elements exceeding threshold t",
        _gt(("s",), (ite(gt("x", "t"), add("s", "x"), V("s")),), (0,), extra=("t",)),
        extra=("t",),
    )
    bench(
        "frac_above",
        div(
            length(ffilter(lam("v", gt("v", "t")), XS)),
            _N,
        ),
        "Fraction of elements exceeding threshold t",
        _gt(
            ("f", "c", "n"),
            (
                div(ite(gt("x", "t"), add("c", 1), V("c")), add("n", 1)),
                ite(gt("x", "t"), add("c", 1), V("c")),
                add("n", 1),
            ),
            (0, 0, 0),
            extra=("t",),
        ),
        extra=("t",),
    )

    # -- variance family (two-pass offline, Welford online) ----------------
    bench(
        "variance",
        div(_M2, _N),
        "Population variance, two-pass (Figure 2a)",
        _gt(
            _WELFORD_STATE,
            _welford_outputs(div(_NEW_SQ, _NEW_N)),
            _WELFORD_INIT,
        ),
        python=(
            "def variance(xs):\n"
            "    s = 0\n"
            "    for x in xs:\n"
            "        s += x\n"
            "    avg = s / len(xs)\n"
            "    sq = 0\n"
            "    for x in xs:\n"
            "        sq += (x - avg) ** 2\n"
            "    return sq / len(xs)\n"
        ),
    )
    bench(
        "variance_sample",
        div(_M2, sub(_N, 1)),
        "Sample (Bessel-corrected) variance",
        _gt(
            _WELFORD_STATE,
            _welford_outputs(div(_NEW_SQ, sub(_NEW_N, 1))),
            _WELFORD_INIT,
        ),
    )
    bench(
        "variance_onepass",
        sub(div(_SUM_SQ, _N), powi(div(_SUM, _N), 2)),
        "Variance via raw moments (E[x^2] - E[x]^2)",
        _gt(
            ("v", "q", "s", "n"),
            (
                sub(
                    div(add("q", powi("x", 2)), add("n", 1)),
                    powi(div(add("s", "x"), add("n", 1)), 2),
                ),
                add("q", powi("x", 2)),
                add("s", "x"),
                add("n", 1),
            ),
            (0, 0, 0, 0),
        ),
    )
    bench(
        "sum_sq_dev",
        _M2,
        "Sum of squared deviations from the mean (m2)",
        _gt(
            ("sq", "s", "n"),
            (
                add(
                    "sq",
                    mul(
                        sub("x", div("s", "n")),
                        sub("x", div(add("s", "x"), add("n", 1))),
                    ),
                ),
                add("s", "x"),
                add("n", 1),
            ),
            (0, 0, 0),
        ),
    )
    bench(
        "std",
        sqrt(div(_M2, _N)),
        "Population standard deviation",
        _gt(
            _WELFORD_STATE,
            _welford_outputs(sqrt(div(_NEW_SQ, _NEW_N))),
            _WELFORD_INIT,
        ),
    )
    bench(
        "sem",
        div(sqrt(div(_M2, sub(_N, 1))), sqrt(_N)),
        "Standard error of the mean (sample std / sqrt n)",
        _gt(
            _WELFORD_STATE,
            _welford_outputs(
                div(sqrt(div(_NEW_SQ, sub(_NEW_N, 1))), sqrt(_NEW_N))
            ),
            _WELFORD_INIT,
        ),
    )
    bench(
        "cv",
        div(sqrt(div(_M2, _N)), _MEAN),
        "Coefficient of variation (std / mean)",
        _gt(
            _WELFORD_STATE,
            _welford_outputs(
                div(
                    sqrt(div(_NEW_SQ, _NEW_N)),
                    div(add("s", "x"), _NEW_N),
                )
            ),
            _WELFORD_INIT,
        ),
    )

    # -- higher moments -----------------------------------------------------
    skew_body = div(div(_M3, _N), Call_pow_3_2(div(_M2, _N)))
    bench(
        "skewness",
        skew_body,
        "Fisher skewness m3 / m2^(3/2), two-pass",
        _gt_skewness(),
    )
    bench(
        "kurtosis",
        sub(div(div(_M4, _N), powi(div(_M2, _N), 2)), 3),
        "Excess kurtosis m4 / m2^2 - 3, two-pass (the paper's one failure)",
        _gt_kurtosis(),
        hard=True,
    )

    # -- paired streams -----------------------------------------------------
    p0, p1 = proj("v", 0), proj("v", 1)
    sum_w = fold(lam("a", "v", add("a", p1)), 0, XS)
    sum_vw = fold(lam("a", "v", add("a", mul(p0, p1))), 0, XS)
    bench(
        "weighted_mean",
        div(sum_vw, sum_w),
        "Weighted mean over (value, weight) pairs",
        _gt(
            ("m", "vw", "w"),
            (
                div(
                    add("vw", mul(proj("x", 0), proj("x", 1))),
                    add("w", proj("x", 1)),
                ),
                add("vw", mul(proj("x", 0), proj("x", 1))),
                add("w", proj("x", 1)),
            ),
            (0, 0, 0),
        ),
        arity=2,
    )
    sum_p = fold(lam("a", "v", add("a", p0)), 0, XS)
    sum_q = fold(lam("a", "v", add("a", p1)), 0, XS)
    sum_pq = fold(lam("a", "v", add("a", mul(p0, p1))), 0, XS)
    sum_pp = fold(lam("a", "v", add("a", powi(p0, 2))), 0, XS)
    sum_qq = fold(lam("a", "v", add("a", powi(p1, 2))), 0, XS)
    bench(
        "covariance",
        sub(div(sum_pq, _N), mul(div(sum_p, _N), div(sum_q, _N))),
        "Covariance of paired streams (product-moment form)",
        _gt(
            ("c", "pq", "p", "q", "n"),
            (
                sub(
                    div(add("pq", mul(proj("x", 0), proj("x", 1))), add("n", 1)),
                    mul(
                        div(add("p", proj("x", 0)), add("n", 1)),
                        div(add("q", proj("x", 1)), add("n", 1)),
                    ),
                ),
                add("pq", mul(proj("x", 0), proj("x", 1))),
                add("p", proj("x", 0)),
                add("q", proj("x", 1)),
                add("n", 1),
            ),
            (0, 0, 0, 0, 0),
        ),
        arity=2,
    )
    corr_num = sub(mul(_N, sum_pq), mul(sum_p, sum_q))
    corr_den = mul(
        sqrt(sub(mul(_N, sum_pp), powi(sum_p, 2))),
        sqrt(sub(mul(_N, sum_qq), powi(sum_q, 2))),
    )
    bench(
        "correlation",
        div(corr_num, corr_den),
        "Pearson correlation of paired streams",
        _gt_correlation(),
        arity=2,
    )
    bench(
        "regression_slope",
        div(
            sub(mul(_N, sum_pq), mul(sum_p, sum_q)),
            sub(mul(_N, sum_pp), powi(sum_p, 2)),
        ),
        "Least-squares slope over (x, y) pairs",
        _gt_slope(),
        arity=2,
    )
    bench(
        "dispersion_index",
        div(div(_M2, _N), _MEAN),
        "Variance-to-mean ratio (index of dispersion)",
        _gt(
            _WELFORD_STATE,
            _welford_outputs(
                div(div(_NEW_SQ, _NEW_N), div(add("s", "x"), _NEW_N))
            ),
            _WELFORD_INIT,
        ),
    )
    return benches


def Call_pow_3_2(expr: Expr) -> Expr:
    """``expr ** (3/2)`` (fractional power; uninterpreted for the algebra)."""
    from ..ir.nodes import Call, Const

    return Call("pow", (expr, Const(Fraction(3, 2))))


def _gt_skewness() -> OnlineScheme:
    """Pébay one-pass update for skewness (state: g, m3, m2, s, n)."""
    n1 = add("n", 1)
    delta = sub("x", div("s", "n"))
    delta_n = div(delta, n1)
    new_m2 = add("m2", mul(mul(delta, delta_n), "n"))
    new_m3 = sub(
        add("m3", mul(mul(mul(delta, delta_n), delta_n), mul("n", sub("n", 1)))),
        mul(mul(3, delta_n), "m2"),
    )
    result = div(div(new_m3, n1), Call_pow_3_2(div(new_m2, n1)))
    return OnlineScheme(
        (0, 0, 0, 0, 0),
        OnlineProgram(
            ("g", "m3", "m2", "s", "n"),
            "x",
            (result, new_m3, new_m2, add("s", "x"), n1),
        ),
        provenance="ground-truth",
    )


def _gt_kurtosis() -> OnlineScheme:
    """Figure 12 of the paper (state: k, m4, m3, m2, s, n)."""
    n1 = add("n", 1)
    delta = sub("x", div("s", "n"))
    delta_n = div(delta, n1)
    term = mul(mul(delta, delta_n), "n")
    new_m4 = add(
        add(
            "m4",
            mul(
                term,
                mul(
                    powi(delta_n, 2),
                    add(sub(powi(n1, 2), mul(3, n1)), 3),
                ),
            ),
        ),
        sub(mul(mul(6, powi(delta_n, 2)), "m2"), mul(mul(4, delta_n), "m3")),
    )
    new_m3 = sub(
        add("m3", mul(mul(mul(delta, delta_n), delta_n), mul("n", sub("n", 1)))),
        mul(mul(3, delta_n), "m2"),
    )
    new_m2 = add("m2", term)
    result = sub(
        div(div(new_m4, n1), powi(div(new_m2, n1), 2)),
        3,
    )
    return OnlineScheme(
        (-3, 0, 0, 0, 0, 0),  # kurtosis of the empty stream is -3 (safe div)
        OnlineProgram(
            ("k", "m4", "m3", "m2", "s", "n"),
            "x",
            (result, new_m4, new_m3, new_m2, add("s", "x"), n1),
        ),
        provenance="ground-truth",
    )


def _pair_updates():
    nx = proj("x", 0)
    ny = proj("x", 1)
    return {
        "pq": add("pq", mul(nx, ny)),
        "p": add("p", nx),
        "q": add("q", ny),
        "pp": add("pp", powi(nx, 2)),
        "qq": add("qq", powi(ny, 2)),
        "n": add("n", 1),
    }


def _gt_correlation() -> OnlineScheme:
    u = _pair_updates()
    num = sub(mul(u["n"], u["pq"]), mul(u["p"], u["q"]))
    den = mul(
        sqrt(sub(mul(u["n"], u["pp"]), powi(u["p"], 2))),
        sqrt(sub(mul(u["n"], u["qq"]), powi(u["q"], 2))),
    )
    return OnlineScheme(
        (0, 0, 0, 0, 0, 0, 0),
        OnlineProgram(
            ("r", "pq", "p", "q", "pp", "qq", "n"),
            "x",
            (div(num, den), u["pq"], u["p"], u["q"], u["pp"], u["qq"], u["n"]),
        ),
        provenance="ground-truth",
    )


def _gt_slope() -> OnlineScheme:
    u = _pair_updates()
    num = sub(mul(u["n"], u["pq"]), mul(u["p"], u["q"]))
    den = sub(mul(u["n"], u["pp"]), powi(u["p"], 2))
    return OnlineScheme(
        (0, 0, 0, 0, 0, 0),
        OnlineProgram(
            ("b", "pq", "p", "q", "pp", "n"),
            "x",
            (div(num, den), u["pq"], u["p"], u["q"], u["pp"], u["n"]),
        ),
        provenance="ground-truth",
    )


register_suite("stats", _benchmarks())
