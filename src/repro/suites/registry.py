"""Benchmark registry: the 51 offline-to-online conversion tasks of Section 7.

Two domains, mirroring the paper's Table 1:

* **stats** — 34 statistical computations collected from SciPy-style and
  OnlineStats.jl-style batch code (Section 7, "Sources of benchmarks");
* **auction** — 17 Nexmark-flavoured streaming-auction queries.

Each benchmark records the offline IR program, an optional Python source (for
tasks whose paper counterpart is Python, exercised through the frontend), a
hand-written ground-truth online scheme (used for Table 1's online AST sizes
and the qualitative comparison of Section 7.1), and the element arity of the
stream (auction events are tuples).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..core.scheme import OnlineScheme
from ..ir.nodes import Program
from ..ir.pretty import pretty_program


@dataclass
class Benchmark:
    name: str
    domain: str  # "stats" | "auction"
    program: Program
    description: str
    ground_truth: OnlineScheme | None = None
    python_source: str | None = None
    element_arity: int = 1
    #: the paper's single expected failure (kurtosis, Section 7.1)
    expected_hard: bool = False
    tags: tuple[str, ...] = field(default=())

    def source_fingerprint(self) -> str:
        """Content hash of everything that defines the synthesis *task*.

        The offline program is hashed through its canonical s-expression
        printing, so editing a suite module without changing the program
        (comments, descriptions, ground truths) does not invalidate cached
        results, while any semantic change to the task does.  Used by
        :mod:`repro.evaluation.cache` as the benchmark part of the cache key.
        """
        payload = "\n\x00".join(
            (
                self.name,
                self.domain,
                str(self.element_arity),
                pretty_program(self.program),
                self.python_source or "",
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


_SUITES: dict[str, list[Benchmark]] = {}


def register_suite(domain: str, benchmarks: list[Benchmark]) -> None:
    _SUITES[domain] = benchmarks


def _ensure_loaded() -> None:
    if "stats" not in _SUITES:
        from . import stats  # noqa: F401  (registers on import)
    if "auction" not in _SUITES:
        from . import auction  # noqa: F401


def all_benchmarks() -> list[Benchmark]:
    _ensure_loaded()
    return list(_SUITES.get("stats", [])) + list(_SUITES.get("auction", []))


def benchmarks_for(domain: str) -> list[Benchmark]:
    _ensure_loaded()
    return list(_SUITES.get(domain, []))


def get_benchmark(name: str) -> Benchmark:
    for bench in all_benchmarks():
        if bench.name == name:
            return bench
    raise KeyError(f"unknown benchmark {name!r}")
