"""The auction benchmark suite (17 tasks).

Streaming-auction queries in the spirit of the Nexmark benchmark (the paper
uses 18 of Nexmark's 23 queries; the mini-batching ones are out of scope for
both the paper and this reproduction).  Our event model follows the paper's
scalar-query subset: each stream element is a bid, either a plain price or a
``(price, attribute)`` pair where the attribute is a category / seller id /
quantity, and queries with parameters (reserve price, exchange rate, watched
category) take them as extra scalar arguments (Section 6).

Every task carries a hand-written ground-truth scheme, validated by tests.
"""

from __future__ import annotations

from ..core.scheme import OnlineScheme
from ..ir.dsl import (
    XS,
    V,
    add,
    div,
    eq,
    fold,
    fold_count,
    fold_sum,
    ge,
    gt,
    ite,
    lam,
    length,
    maximum,
    minimum,
    mul,
    proj,
    sub,
    tup,
)
from ..ir.nodes import Expr, OnlineProgram
from ..ir.dsl import program
from .registry import Benchmark, register_suite

LOW = -(10**9)
HIGH = 10**9


def _gt(
    state: tuple[str, ...],
    outputs: tuple[Expr, ...],
    init: tuple,
    extra: tuple[str, ...] = (),
) -> OnlineScheme:
    return OnlineScheme(
        tuple(init),
        OnlineProgram(state, "x", outputs, extra),
        provenance="ground-truth",
    )


def _benchmarks() -> list[Benchmark]:
    benches: list[Benchmark] = []

    def bench(name, body, description, gt=None, arity=1, extra=()):
        benches.append(
            Benchmark(
                name=name,
                domain="auction",
                program=program(body, tuple(extra)),
                description=description,
                ground_truth=gt,
                element_arity=arity,
            )
        )

    price = proj("v", 0)
    attr = proj("v", 1)
    xprice = proj("x", 0)
    xattr = proj("x", 1)

    # -- price aggregates over plain bid streams ---------------------------
    bench(
        "q_highest_bid",
        fold(lam("a", "v", maximum("a", "v")), LOW, XS),
        "Nexmark Q7-style: highest bid so far",
        _gt(("h",), (maximum("h", "x"),), (LOW,)),
    )
    bench(
        "q_lowest_bid",
        fold(lam("a", "v", minimum("a", "v")), HIGH, XS),
        "Lowest bid so far",
        _gt(("l",), (minimum("l", "x"),), (HIGH,)),
    )
    bench(
        "q_bid_count",
        fold_count(XS),
        "Total number of bids",
        _gt(("n",), (add("n", 1),), (0,)),
    )
    bench(
        "q_bid_volume",
        fold_sum(XS),
        "Total bid volume (sum of prices)",
        _gt(("s",), (add("s", "x"),), (0,)),
    )
    bench(
        "q_avg_price",
        div(fold_sum(XS), length(XS)),
        "Nexmark Q4-style: average price",
        _gt(
            ("a", "s", "n"),
            (div(add("s", "x"), add("n", 1)), add("s", "x"), add("n", 1)),
            (0, 0, 0),
        ),
    )
    bench(
        "q_avg_converted",
        mul(div(fold_sum(XS), length(XS)), V("rate")),
        "Nexmark Q1-style: average price after currency conversion",
        _gt(
            ("a", "s", "n"),
            (
                mul(div(add("s", "x"), add("n", 1)), V("rate")),
                add("s", "x"),
                add("n", 1),
            ),
            (0, 0, 0),
            extra=("rate",),
        ),
        extra=("rate",),
    )
    bench(
        "q_price_spread",
        sub(
            fold(lam("a", "v", maximum("a", "v")), LOW, XS),
            fold(lam("a", "v", minimum("a", "v")), HIGH, XS),
        ),
        "Spread between highest and lowest bid",
        _gt(
            ("d", "h", "l"),
            (
                sub(maximum("h", "x"), minimum("l", "x")),
                maximum("h", "x"),
                minimum("l", "x"),
            ),
            (LOW - HIGH, LOW, HIGH),
        ),
    )
    bench(
        "q_top2",
        proj(
            fold(
                lam(
                    "t",
                    "v",
                    tup(
                        maximum(proj("t", 0), "v"),
                        maximum(proj("t", 1), minimum(proj("t", 0), "v")),
                    ),
                ),
                tup(LOW, LOW),
                XS,
            ),
            1,
        ),
        "Second-highest bid (top-2 tuple accumulator)",
        _gt(
            ("r", "t"),
            (
                maximum(proj("t", 1), minimum(proj("t", 0), "x")),
                tup(
                    maximum(proj("t", 0), "x"),
                    maximum(proj("t", 1), minimum(proj("t", 0), "x")),
                ),
            ),
            (LOW, (LOW, LOW)),
        ),
    )

    # -- parameterized filters ----------------------------------------------
    bench(
        "q_count_above_reserve",
        fold(lam("a", "v", ite(ge("v", "reserve"), add("a", 1), V("a"))), 0, XS),
        "How many bids met the reserve price",
        _gt(
            ("c",),
            (ite(ge("x", "reserve"), add("c", 1), V("c")),),
            (0,),
            extra=("reserve",),
        ),
        extra=("reserve",),
    )
    bench(
        "q_volume_above_reserve",
        fold(lam("a", "v", ite(ge("v", "reserve"), add("a", "v"), V("a"))), 0, XS),
        "Bid volume among bids meeting the reserve",
        _gt(
            ("s",),
            (ite(ge("x", "reserve"), add("s", "x"), V("s")),),
            (0,),
            extra=("reserve",),
        ),
        extra=("reserve",),
    )
    bench(
        "q_hit_rate",
        div(
            fold(lam("a", "v", ite(ge("v", "reserve"), add("a", 1), V("a"))), 0, XS),
            length(XS),
        ),
        "Fraction of bids meeting the reserve",
        _gt(
            ("f", "c", "n"),
            (
                div(ite(ge("x", "reserve"), add("c", 1), V("c")), add("n", 1)),
                ite(ge("x", "reserve"), add("c", 1), V("c")),
                add("n", 1),
            ),
            (0, 0, 0),
            extra=("reserve",),
        ),
        extra=("reserve",),
    )

    # -- (price, attribute) bid records --------------------------------------
    bench(
        "q_revenue",
        fold(lam("a", "v", add("a", mul(price, attr))), 0, XS),
        "Total revenue: sum of price * quantity over bid records",
        _gt(
            ("r",),
            (add("r", mul(xprice, xattr)),),
            (0,),
        ),
        arity=2,
    )
    bench(
        "q_avg_revenue",
        div(
            fold(lam("a", "v", add("a", mul(price, attr))), 0, XS),
            length(XS),
        ),
        "Average per-bid revenue",
        _gt(
            ("a", "r", "n"),
            (
                div(add("r", mul(xprice, xattr)), add("n", 1)),
                add("r", mul(xprice, xattr)),
                add("n", 1),
            ),
            (0, 0, 0),
        ),
        arity=2,
    )
    bench(
        "q_max_revenue",
        fold(lam("a", "v", maximum("a", mul(price, attr))), LOW, XS),
        "Largest single price * quantity bid",
        _gt(("m",), (maximum("m", mul(xprice, xattr)),), (LOW,)),
        arity=2,
    )
    bench(
        "q_category_count",
        fold(lam("a", "v", ite(eq(attr, "cat"), add("a", 1), V("a"))), 0, XS),
        "Nexmark Q5-style: bids in a watched category",
        _gt(
            ("c",),
            (ite(eq(xattr, "cat"), add("c", 1), V("c")),),
            (0,),
            extra=("cat",),
        ),
        arity=2,
        extra=("cat",),
    )
    bench(
        "q_category_volume",
        fold(lam("a", "v", ite(eq(attr, "cat"), add("a", price), V("a"))), 0, XS),
        "Bid volume in a watched category",
        _gt(
            ("s",),
            (ite(eq(xattr, "cat"), add("s", xprice), V("s")),),
            (0,),
            extra=("cat",),
        ),
        arity=2,
        extra=("cat",),
    )
    bench(
        "q_category_max",
        fold(
            lam("a", "v", ite(eq(attr, "cat"), maximum("a", price), V("a"))),
            LOW,
            XS,
        ),
        "Nexmark Q2-style: highest bid in a watched category",
        _gt(
            ("m",),
            (ite(eq(xattr, "cat"), maximum("m", xprice), V("m")),),
            (LOW,),
            extra=("cat",),
        ),
        arity=2,
        extra=("cat",),
    )
    return benches


register_suite("auction", _benchmarks())
