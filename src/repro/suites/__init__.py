"""Benchmark suites: the 51 offline-to-online tasks of the evaluation."""

from .registry import Benchmark, all_benchmarks, benchmarks_for, get_benchmark

__all__ = ["Benchmark", "all_benchmarks", "benchmarks_for", "get_benchmark"]
