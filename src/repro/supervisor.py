"""Generic process supervision with hard wall-clock deadlines.

One supervisor, two tenants: the *bench-level* parallelism of
:mod:`repro.evaluation.parallel` (one process per (solver, benchmark) cell)
and the *hole-level* parallelism of :mod:`repro.core.parallel_synthesize`
(one process per sketch-hole sub-task).  Both need exactly the same core —
spawn up to ``workers`` children, reap results from pipes, and SIGKILL any
child that outlives its deadline — so that core lives here, free of any
domain knowledge.

Contract:

* a :class:`Job` is a picklable ``fn(*args)`` call with a per-job budget;
* :meth:`ProcessSupervisor.run` is a generator yielding one
  :class:`JobResult` per job **in completion order**, each tagged ``ok`` /
  ``error`` / ``timeout`` / ``crashed``;
* no result arrives later than ``timeout_s + kill_grace_s`` after its job
  started (the kill is a SIGKILL, not a poll), and an optional absolute
  ``deadline`` additionally caps every job — the knob that lets a caller
  bound a whole *family* of jobs by one outer budget;
* :meth:`ProcessSupervisor.cancel` withdraws jobs between yields (pending
  jobs are dropped, active ones killed) — the mechanism behind
  first-accepted-candidate-wins search portfolios.

The supervisor sleeps until ``min(next deadline, next pipe event)`` — it
does **not** poll on a fixed tick, so a pool of workers that are all
minutes from their deadlines costs zero supervisor wake-ups.

Workers are forked where available (Linux; payloads reach the child by
inheritance) and spawned elsewhere, in which case ``fn``/``args`` must be
picklable.  Children are daemonic by default so a dying supervisor cannot
leak runaway processes; pass ``daemon=False`` when jobs themselves need to
spawn children (multiprocessing forbids daemonic processes from having
children of their own).
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

#: Extra wall-clock slack past a job's budget before the supervisor kills
#: its worker, so cooperative in-process timeouts (which produce richer
#: failure reports) win the race on well-behaved payloads.
KILL_GRACE_S = 0.5


@dataclass(frozen=True)
class Job:
    """One unit of work: ``fn(*args)`` under a wall-clock budget."""

    key: Any  # caller's identifier, echoed back on the result
    fn: Callable
    args: tuple
    timeout_s: float


@dataclass
class JobResult:
    """Outcome of one job, yielded in completion order."""

    job: Job
    kind: str  # "ok" | "error" | "timeout" | "crashed"
    value: Any = None  # fn's return value (kind == "ok")
    message: str = ""  # exception summary (kind == "error")
    elapsed_s: float = 0.0
    exitcode: int | None = None  # kind == "crashed"


def _mp_context() -> mp.context.BaseContext:
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context("spawn")


def _arm_parent_death_signal() -> None:
    """Ask the kernel to SIGKILL this child if its parent dies (Linux).

    SIGKILL of a supervisor bypasses multiprocessing's daemon cleanup, so
    without this a killed bench worker would orphan its hole-worker
    grandchildren, which would keep burning CPU until their cooperative
    timeouts fired.  Best-effort: a no-op on platforms without prctl.
    """
    try:
        import ctypes

        PR_SET_PDEATHSIG = 1
        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(PR_SET_PDEATHSIG, 9)  # SIGKILL
    except Exception:  # pragma: no cover - non-Linux platforms
        pass


def _child_entry(conn, fn, args) -> None:
    """Child-process body: run the payload, ship ``(kind, value, msg)``."""
    _arm_parent_death_signal()
    try:
        payload = ("ok", fn(*args), "")
    except BaseException as exc:  # crashes become error results, not hangs
        payload = ("error", None, f"{type(exc).__name__}: {exc}")
    try:
        conn.send(payload)
    except (BrokenPipeError, OSError):  # supervisor already gave up on us
        pass
    except Exception as exc:  # unpicklable return value
        try:
            conn.send(("error", None, f"unsendable result: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


class ProcessSupervisor:
    """Run jobs across at most ``workers`` concurrent child processes."""

    def __init__(
        self,
        workers: int,
        kill_grace_s: float = KILL_GRACE_S,
        daemon: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.kill_grace_s = kill_grace_s
        self.daemon = daemon
        self._ctx = _mp_context()
        self._pending: list[Job] = []
        self._active: dict = {}  # sentinel -> (proc, conn, job, started, deadline)

    # -- cancellation ------------------------------------------------------

    def cancel(self, predicate: Callable[[Any], bool]) -> int:
        """Withdraw every job whose ``key`` satisfies ``predicate``.

        Pending jobs are dropped, active ones killed; withdrawn jobs yield
        no result.  Only meaningful between ``run()`` yields (the supervisor
        is single-threaded).  Returns the number of jobs withdrawn.
        """
        keep = [job for job in self._pending if not predicate(job.key)]
        withdrawn = len(self._pending) - len(keep)
        self._pending = keep
        doomed = [
            sentinel
            for sentinel, (_, _, job, _, _) in self._active.items()
            if predicate(job.key)
        ]
        for sentinel in doomed:
            proc, conn, _, _, _ = self._active.pop(sentinel)
            self._kill(proc, conn)
            withdrawn += 1
        return withdrawn

    # -- the supervision loop ----------------------------------------------

    def run(
        self, jobs: list[Job], deadline: float | None = None
    ) -> Iterator[JobResult]:
        """Execute ``jobs``; yield a :class:`JobResult` per surviving job in
        completion order.

        ``deadline`` (a ``time.monotonic()`` instant) additionally caps
        every job's kill time at ``deadline + kill_grace_s``, bounding the
        whole batch by one outer budget regardless of per-job budgets.
        """
        # pop() preserves submission order
        self._pending = list(reversed(jobs))
        self._active = {}
        try:
            while self._pending or self._active:
                self._spawn_up_to_capacity(deadline)
                if not self._active:
                    continue  # everything just got cancelled

                now = time.monotonic()
                next_deadline = min(e[4] for e in self._active.values())
                # Sleep until something completes or the nearest deadline —
                # no polling tick (a 100 ms cap here once made the
                # supervisor busy-wake ~10x/s for idle minutes).
                ready = mp.connection.wait(
                    list(self._active), timeout=max(0.0, next_deadline - now)
                )

                for sentinel in ready:
                    # The consumer may cancel() between yields, removing
                    # sentinels this ready-list still mentions.
                    entry = self._active.pop(sentinel, None)
                    if entry is None:
                        continue
                    proc, conn, job, started, _ = entry
                    yield self._reap(proc, conn, job, started)

                now = time.monotonic()
                expired = [
                    sentinel
                    for sentinel, (_, _, _, _, job_deadline) in self._active.items()
                    if now >= job_deadline
                ]
                for sentinel in expired:
                    proc, conn, job, started, _ = self._active.pop(sentinel)
                    proc.kill()
                    proc.join()
                    # The payload may have landed just inside the grace
                    # window while the supervisor was busy reaping
                    # elsewhere; prefer it over fabricating a timeout (pipe
                    # data survives the writer's death).
                    result = self._drain(conn, job, now - started)
                    conn.close()
                    yield result
        finally:
            for proc, conn, _, _, _ in self._active.values():
                self._kill(proc, conn)
            self._active = {}
            self._pending = []

    # -- internals ---------------------------------------------------------

    def _spawn_up_to_capacity(self, deadline: float | None) -> None:
        while self._pending and len(self._active) < self.workers:
            job = self._pending.pop()
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=_child_entry,
                args=(child_conn, job.fn, job.args),
                daemon=self.daemon,
            )
            started = time.monotonic()
            proc.start()
            child_conn.close()  # child owns its end now
            job_deadline = started + job.timeout_s + self.kill_grace_s
            if deadline is not None:
                job_deadline = min(job_deadline, deadline + self.kill_grace_s)
            self._active[proc.sentinel] = (
                proc,
                parent_conn,
                job,
                started,
                job_deadline,
            )

    @staticmethod
    def _kill(proc, conn) -> None:
        proc.kill()
        proc.join()
        conn.close()

    def _reap(self, proc, conn, job: Job, started: float) -> JobResult:
        """Collect the payload from a finished worker (or record a crash)."""
        elapsed = time.monotonic() - started
        proc.join()  # before reading exitcode, which join() publishes
        try:
            if conn.poll():
                result = self._from_payload(conn.recv(), job, elapsed)
            else:
                result = JobResult(
                    job, "crashed", elapsed_s=elapsed, exitcode=proc.exitcode
                )
        except (EOFError, OSError):
            result = JobResult(
                job, "crashed", elapsed_s=elapsed, exitcode=proc.exitcode
            )
        finally:
            conn.close()
        return result

    def _drain(self, conn, job: Job, elapsed: float) -> JobResult:
        """Late payload of a just-killed worker, else a timeout result."""
        try:
            if conn.poll():
                return self._from_payload(conn.recv(), job, elapsed)
        except (EOFError, OSError):
            pass
        return JobResult(job, "timeout", elapsed_s=elapsed)

    @staticmethod
    def _from_payload(payload, job: Job, elapsed: float) -> JobResult:
        if (
            isinstance(payload, tuple)
            and len(payload) == 3
            and payload[0] in ("ok", "error")
        ):
            kind, value, message = payload
            return JobResult(job, kind, value=value, message=message, elapsed_s=elapsed)
        return JobResult(
            job, "error", message=f"malformed worker payload: {payload!r}",
            elapsed_s=elapsed,
        )
