"""Generic process supervision with hard wall-clock deadlines.

One spawn/reap core, three tenants: the *bench-level* parallelism of
:mod:`repro.evaluation.parallel` (one process per (solver, benchmark) cell),
the *hole-level* parallelism of :mod:`repro.core.parallel_synthesize`
(one process per sketch-hole sub-task), and the *shard workers* of
:mod:`repro.serve` (long-lived, restartable — see
:class:`ServiceSupervisor`).  All need exactly the same core — spawn
children, reap results from pipes, and SIGKILL anything that outlives its
deadline — so that core lives here, free of any domain knowledge.

Contract:

* a :class:`Job` is a picklable ``fn(*args)`` call with a per-job budget;
* :meth:`ProcessSupervisor.run` is a generator yielding one
  :class:`JobResult` per job **in completion order**, each tagged ``ok`` /
  ``error`` / ``timeout`` / ``crashed``;
* no result arrives later than ``timeout_s + kill_grace_s`` after its job
  started (the kill is a SIGKILL, not a poll), and an optional absolute
  ``deadline`` additionally caps every job — the knob that lets a caller
  bound a whole *family* of jobs by one outer budget;
* :meth:`ProcessSupervisor.cancel` withdraws jobs between yields (pending
  jobs are dropped, active ones killed) — the mechanism behind
  first-accepted-candidate-wins search portfolios.

The supervisor sleeps until ``min(next deadline, next pipe event)`` — it
does **not** poll on a fixed tick, so a pool of workers that are all
minutes from their deadlines costs zero supervisor wake-ups.

Workers are forked where available (Linux; payloads reach the child by
inheritance) and spawned elsewhere, in which case ``fn``/``args`` must be
picklable.  Children are daemonic by default so a dying supervisor cannot
leak runaway processes; pass ``daemon=False`` when jobs themselves need to
spawn children (multiprocessing forbids daemonic processes from having
children of their own).
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

#: Extra wall-clock slack past a job's budget before the supervisor kills
#: its worker, so cooperative in-process timeouts (which produce richer
#: failure reports) win the race on well-behaved payloads.
KILL_GRACE_S = 0.5


@dataclass(frozen=True)
class Job:
    """One unit of work: ``fn(*args)`` under a wall-clock budget."""

    key: Any  # caller's identifier, echoed back on the result
    fn: Callable
    args: tuple
    timeout_s: float


@dataclass
class JobResult:
    """Outcome of one job, yielded in completion order."""

    job: Job
    kind: str  # "ok" | "error" | "timeout" | "crashed"
    value: Any = None  # fn's return value (kind == "ok")
    message: str = ""  # exception summary (kind == "error")
    elapsed_s: float = 0.0
    exitcode: int | None = None  # kind == "crashed"


def _mp_context() -> mp.context.BaseContext:
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return mp.get_context("spawn")


def _arm_parent_death_signal() -> None:
    """Ask the kernel to SIGKILL this child if its parent dies (Linux).

    SIGKILL of a supervisor bypasses multiprocessing's daemon cleanup, so
    without this a killed bench worker would orphan its hole-worker
    grandchildren, which would keep burning CPU until their cooperative
    timeouts fired.  Best-effort: a no-op on platforms without prctl.
    """
    try:
        import ctypes

        PR_SET_PDEATHSIG = 1
        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(PR_SET_PDEATHSIG, 9)  # SIGKILL
    except Exception:  # pragma: no cover - non-Linux platforms
        pass


def _child_entry(conn, fn, args) -> None:
    """Child-process body: run the payload, ship ``(kind, value, msg)``."""
    _arm_parent_death_signal()
    try:
        payload = ("ok", fn(*args), "")
    except BaseException as exc:  # crashes become error results, not hangs
        payload = ("error", None, f"{type(exc).__name__}: {exc}")
    try:
        conn.send(payload)
    except (BrokenPipeError, OSError):  # supervisor already gave up on us
        pass
    except Exception as exc:  # unpicklable return value
        try:
            conn.send(("error", None, f"unsendable result: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


class ProcessSupervisor:
    """Run jobs across at most ``workers`` concurrent child processes."""

    def __init__(
        self,
        workers: int,
        kill_grace_s: float = KILL_GRACE_S,
        daemon: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.kill_grace_s = kill_grace_s
        self.daemon = daemon
        self._ctx = _mp_context()
        self._pending: list[Job] = []
        self._active: dict = {}  # sentinel -> (proc, conn, job, started, deadline)

    # -- cancellation ------------------------------------------------------

    def cancel(self, predicate: Callable[[Any], bool]) -> int:
        """Withdraw every job whose ``key`` satisfies ``predicate``.

        Pending jobs are dropped, active ones killed; withdrawn jobs yield
        no result.  Only meaningful between ``run()`` yields (the supervisor
        is single-threaded).  Returns the number of jobs withdrawn.
        """
        keep = [job for job in self._pending if not predicate(job.key)]
        withdrawn = len(self._pending) - len(keep)
        self._pending = keep
        doomed = [
            sentinel for sentinel, (_, _, job, _, _) in self._active.items() if predicate(job.key)
        ]
        for sentinel in doomed:
            proc, conn, _, _, _ = self._active.pop(sentinel)
            self._kill(proc, conn)
            withdrawn += 1
        return withdrawn

    # -- the supervision loop ----------------------------------------------

    def run(self, jobs: list[Job], deadline: float | None = None) -> Iterator[JobResult]:
        """Execute ``jobs``; yield a :class:`JobResult` per surviving job in
        completion order.

        ``deadline`` (a ``time.monotonic()`` instant) additionally caps
        every job's kill time at ``deadline + kill_grace_s``, bounding the
        whole batch by one outer budget regardless of per-job budgets.
        """
        # pop() preserves submission order
        self._pending = list(reversed(jobs))
        self._active = {}
        try:
            while self._pending or self._active:
                self._spawn_up_to_capacity(deadline)
                if not self._active:
                    continue  # everything just got cancelled

                now = time.monotonic()
                next_deadline = min(e[4] for e in self._active.values())
                # Sleep until something completes or the nearest deadline —
                # no polling tick (a 100 ms cap here once made the
                # supervisor busy-wake ~10x/s for idle minutes).
                ready = mp.connection.wait(
                    list(self._active), timeout=max(0.0, next_deadline - now)
                )

                for sentinel in ready:
                    # The consumer may cancel() between yields, removing
                    # sentinels this ready-list still mentions.
                    entry = self._active.pop(sentinel, None)
                    if entry is None:
                        continue
                    proc, conn, job, started, _ = entry
                    yield self._reap(proc, conn, job, started)

                now = time.monotonic()
                expired = [
                    sentinel
                    for sentinel, (_, _, _, _, job_deadline) in self._active.items()
                    if now >= job_deadline
                ]
                for sentinel in expired:
                    proc, conn, job, started, _ = self._active.pop(sentinel)
                    proc.kill()
                    proc.join()
                    # The payload may have landed just inside the grace
                    # window while the supervisor was busy reaping
                    # elsewhere; prefer it over fabricating a timeout (pipe
                    # data survives the writer's death).
                    result = self._drain(conn, job, now - started)
                    conn.close()
                    yield result
        finally:
            for proc, conn, _, _, _ in self._active.values():
                self._kill(proc, conn)
            self._active = {}
            self._pending = []

    # -- internals ---------------------------------------------------------

    def _spawn_up_to_capacity(self, deadline: float | None) -> None:
        while self._pending and len(self._active) < self.workers:
            job = self._pending.pop()
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=_child_entry,
                args=(child_conn, job.fn, job.args),
                daemon=self.daemon,
            )
            started = time.monotonic()
            proc.start()
            child_conn.close()  # child owns its end now
            job_deadline = started + job.timeout_s + self.kill_grace_s
            if deadline is not None:
                job_deadline = min(job_deadline, deadline + self.kill_grace_s)
            self._active[proc.sentinel] = (
                proc,
                parent_conn,
                job,
                started,
                job_deadline,
            )

    @staticmethod
    def _kill(proc, conn) -> None:
        proc.kill()
        proc.join()
        conn.close()

    def _reap(self, proc, conn, job: Job, started: float) -> JobResult:
        """Collect the payload from a finished worker (or record a crash)."""
        elapsed = time.monotonic() - started
        proc.join()  # before reading exitcode, which join() publishes
        try:
            if conn.poll():
                result = self._from_payload(conn.recv(), job, elapsed)
            else:
                result = JobResult(job, "crashed", elapsed_s=elapsed, exitcode=proc.exitcode)
        except (EOFError, OSError):
            result = JobResult(job, "crashed", elapsed_s=elapsed, exitcode=proc.exitcode)
        finally:
            conn.close()
        return result

    def _drain(self, conn, job: Job, elapsed: float) -> JobResult:
        """Late payload of a just-killed worker, else a timeout result."""
        try:
            if conn.poll():
                return self._from_payload(conn.recv(), job, elapsed)
        except (EOFError, OSError):
            pass
        return JobResult(job, "timeout", elapsed_s=elapsed)

    @staticmethod
    def _from_payload(payload, job: Job, elapsed: float) -> JobResult:
        if (isinstance(payload, tuple) and len(payload) == 3 and payload[0] in ("ok", "error")):
            kind, value, message = payload
            return JobResult(job, kind, value=value, message=message, elapsed_s=elapsed)
        return JobResult(
            job, "error", message=f"malformed worker payload: {payload!r}",
            elapsed_s=elapsed,
        )


class _Service:
    """Book-keeping for one long-lived service: the current incarnation's
    process/pipe, the spawn recipe for restarts, and the terminal result."""

    __slots__ = (
        "key", "fn", "args", "proc", "conn", "started", "first_started",
        "deadline", "restarts", "result", "cancelled",
    )

    def __init__(self, key, fn, args):
        self.key = key
        self.fn = fn
        self.args = args
        self.proc = None
        self.conn = None
        self.started = 0.0
        self.first_started = 0.0
        self.deadline: float | None = None
        self.restarts = 0
        self.result: JobResult | None = None
        self.cancelled = False


class ServiceSupervisor:
    """Long-lived *restartable* services on the same spawn/reap/deadline
    core as :class:`ProcessSupervisor`.

    Where :meth:`ProcessSupervisor.run` drives a finite batch of jobs to
    completion, a service is a worker that is *supposed* to keep running —
    a shard of a streaming server, say — until its payload returns (its
    result ships over the same ``_child_entry`` pipe protocol) or it dies.
    The supervisor's contract:

    * :meth:`start` spawns a service under ``key``; :meth:`restart` kills
      (if needed) and respawns it with fresh ``args`` — the crash-restore
      hook: the caller rebuilds channels and checkpoint arguments, the
      supervisor reuses the spawn machinery and counts incarnations
      (:meth:`restarts`).
    * A service's optional wall-clock budget (``timeout_s``) is an
      *absolute* deadline anchored at the **first** start: restarting does
      not buy a crashing service more time, exactly like the outer
      ``deadline`` of batch runs.
    * :meth:`poll` waits until a service finishes — payload arrives, the
      process dies, or a deadline expires — and returns the keys that just
      reached a terminal :meth:`result` (``ok`` / ``error`` / ``crashed``
      / ``timeout``, the :class:`JobResult` vocabulary, plus ``cancelled``
      for :meth:`cancel`).  It waits on result pipes *and* process
      sentinels: a service shipping a large final payload blocks in
      ``send`` until the supervisor reads it, so the pipe must be able to
      wake the poll.
    * :meth:`cancel` kills a service and marks it ``cancelled``; cancelled
      (and otherwise finished) services refuse :meth:`restart` — restore
      logic cannot accidentally resurrect something the caller shut down.

    Children are daemonic forks armed with a parent-death SIGKILL (see
    :func:`_arm_parent_death_signal`), so a dying supervisor cannot leak
    shard workers.
    """

    def __init__(self, kill_grace_s: float = KILL_GRACE_S, daemon: bool = True):
        self.kill_grace_s = kill_grace_s
        self.daemon = daemon
        self._ctx = _mp_context()
        self._services: dict = {}

    # -- lifecycle ---------------------------------------------------------

    def start(self, key, fn: Callable, args: tuple = (), timeout_s: float | None = None) -> None:
        """Spawn a service under ``key``; ``timeout_s`` (optional) caps its
        total wall-clock across *all* incarnations."""
        svc = self._services.get(key)
        if svc is not None and svc.result is None:
            raise ValueError(f"service {key!r} is already running")
        svc = _Service(key, fn, args)
        self._services[key] = svc
        self._spawn(svc)
        svc.first_started = svc.started
        if timeout_s is not None:
            svc.deadline = svc.first_started + timeout_s + self.kill_grace_s

    def restart(self, key, args: tuple | None = None) -> int:
        """Kill (if alive) and respawn ``key`` — with fresh ``args`` when
        given, the stored recipe otherwise.  Returns the incarnation count.
        Finished or cancelled services refuse to restart."""
        svc = self._require(key)
        if svc.cancelled:
            raise ValueError(f"service {key!r} was cancelled")
        if svc.result is not None and svc.result.kind == "ok":
            raise ValueError(f"service {key!r} already finished")
        if svc.proc is not None and svc.proc.is_alive():
            _kill_quietly(svc.proc, svc.conn)
        if args is not None:
            svc.args = args
        svc.result = None
        svc.restarts += 1
        self._spawn(svc)
        return svc.restarts

    def kill(self, key) -> None:
        """SIGKILL the live incarnation of ``key`` *without* recording a
        result — the hammer for a hung (not dead) worker.  The corpse
        surfaces through :meth:`poll` as a normal ``crashed`` result, so
        the caller's existing crash-restore path (and :meth:`restart`)
        applies unchanged; a finished or already-dead service is a no-op."""
        svc = self._require(key)
        if svc.result is None and svc.proc is not None and svc.proc.is_alive():
            svc.proc.kill()

    def cancel(self, key) -> None:
        """Kill ``key`` and mark it terminally ``cancelled`` (idempotent on
        finished services: their result is kept)."""
        svc = self._require(key)
        if svc.result is None:
            if svc.proc is not None:
                _kill_quietly(svc.proc, svc.conn)
            svc.result = JobResult(
                Job(svc.key, svc.fn, svc.args, 0.0), "cancelled",
                elapsed_s=time.monotonic() - svc.started,
            )
        svc.cancelled = True

    def shutdown(self) -> None:
        """Kill every still-running service (results of finished ones stay
        readable)."""
        for svc in self._services.values():
            if svc.result is None and svc.proc is not None:
                _kill_quietly(svc.proc, svc.conn)
                svc.result = JobResult(
                    Job(svc.key, svc.fn, svc.args, 0.0), "cancelled",
                    elapsed_s=time.monotonic() - svc.started,
                )
                svc.cancelled = True

    def __enter__(self) -> "ServiceSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- observation -------------------------------------------------------

    def alive(self, key) -> bool:
        svc = self._services.get(key)
        return (
            svc is not None and svc.result is None and svc.proc is not None and svc.proc.is_alive()
        )

    def pid(self, key) -> int | None:
        svc = self._require(key)
        return None if svc.proc is None else svc.proc.pid

    def restarts(self, key) -> int:
        return self._require(key).restarts

    def result(self, key) -> JobResult | None:
        """The terminal result of ``key``, or ``None`` while it runs."""
        return self._require(key).result

    def poll(self, timeout: float | None = 0.0) -> list:
        """Reap services that finished (payload, death, or deadline); block
        up to ``timeout`` seconds for one to do so (``None``: until the
        next event or deadline).  Returns the keys newly holding a
        :meth:`result`, in no particular order."""
        finished = self._reap_ready(timeout=0.0)
        if finished or timeout == 0.0:
            return finished
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            running = [s for s in self._services.values() if s.result is None]
            if not running:
                return []
            wait_until = deadline
            for svc in running:
                if svc.deadline is not None:
                    wait_until = (
                        svc.deadline if wait_until is None else min(wait_until, svc.deadline)
                    )
            waitables = []
            for svc in running:
                waitables.append(svc.proc.sentinel)
                waitables.append(svc.conn)
            mp.connection.wait(
                waitables,
                timeout=None
                if wait_until is None
                else max(0.0, wait_until - time.monotonic()),
            )
            finished = self._reap_ready(timeout=0.0)
            if finished:
                return finished
            if deadline is not None and time.monotonic() >= deadline:
                return []

    # -- internals ---------------------------------------------------------

    def _require(self, key) -> _Service:
        svc = self._services.get(key)
        if svc is None:
            raise KeyError(f"unknown service {key!r}")
        return svc

    def _spawn(self, svc: _Service) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_child_entry,
            args=(child_conn, svc.fn, svc.args),
            daemon=self.daemon,
        )
        svc.started = time.monotonic()
        proc.start()
        child_conn.close()
        svc.proc = proc
        svc.conn = parent_conn

    def _reap_ready(self, timeout: float) -> list:
        """One sweep: collect payloads/corpses, enforce deadlines."""
        finished = []
        now = time.monotonic()
        for key, svc in self._services.items():
            if svc.result is not None:
                continue
            job = Job(svc.key, svc.fn, svc.args, 0.0)
            elapsed = now - svc.started
            try:
                has_payload = svc.conn.poll(timeout)
            except (EOFError, OSError):
                has_payload = False
            if has_payload:
                try:
                    payload = svc.conn.recv()
                except (EOFError, OSError):
                    svc.proc.join()
                    svc.result = JobResult(
                        job, "crashed", elapsed_s=elapsed,
                        exitcode=svc.proc.exitcode,
                    )
                else:
                    svc.proc.join()
                    svc.result = ProcessSupervisor._from_payload(payload, job, elapsed)
                svc.conn.close()
                finished.append(key)
                continue
            if not svc.proc.is_alive():
                svc.proc.join()
                # Prefer a payload that landed between the poll above and
                # the death check (pipe data survives the writer's death).
                try:
                    if svc.conn.poll():
                        svc.result = ProcessSupervisor._from_payload(svc.conn.recv(), job, elapsed)
                    else:
                        svc.result = JobResult(
                            job, "crashed", elapsed_s=elapsed,
                            exitcode=svc.proc.exitcode,
                        )
                except (EOFError, OSError):
                    svc.result = JobResult(
                        job, "crashed", elapsed_s=elapsed,
                        exitcode=svc.proc.exitcode,
                    )
                svc.conn.close()
                finished.append(key)
                continue
            if svc.deadline is not None and now >= svc.deadline:
                svc.proc.kill()
                svc.proc.join()
                try:
                    if svc.conn.poll():
                        svc.result = ProcessSupervisor._from_payload(svc.conn.recv(), job, elapsed)
                    else:
                        svc.result = JobResult(job, "timeout", elapsed_s=elapsed)
                except (EOFError, OSError):
                    svc.result = JobResult(job, "timeout", elapsed_s=elapsed)
                svc.conn.close()
                finished.append(key)
        return finished


def _kill_quietly(proc, conn) -> None:
    proc.kill()
    proc.join()
    try:
        conn.close()
    except OSError:  # pragma: no cover - already closed
        pass
