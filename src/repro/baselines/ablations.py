"""Opera's ablations (Section 7.2).

* **Opera-NoDecomp** — compositional synthesis disabled: the whole online
  program is synthesized as a single tuple-valued expression, but the
  symbolic machinery (implicates, mining, templates) still runs on that
  monolithic specification.
* **Opera-NoSymbolic** — symbolic reasoning disabled: decomposition still
  produces independent holes, but each is solved by plain enumerative search
  (no implicates, no mined seeds, no interpolation).

Both are thin wrappers around the main pipeline driven by
:class:`~repro.core.config.SynthesisConfig` flags, so the ablated runs use
byte-identical code paths for everything that is not ablated — the property
an ablation study needs.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.config import SynthesisConfig
from ..core.report import SynthesisReport
from ..core.synthesize import synthesize
from ..ir.nodes import Program


class OperaFull:
    name = "opera"

    def synthesize(
        self, program: Program, config: SynthesisConfig, task_name: str
    ) -> SynthesisReport:
        return synthesize(program, config, task_name)


class OperaNoDecomp:
    name = "opera-nodecomp"

    def synthesize(
        self, program: Program, config: SynthesisConfig, task_name: str
    ) -> SynthesisReport:
        ablated = replace(config, use_decomposition=False, use_symbolic=True)
        return synthesize(program, ablated, task_name)


class OperaNoSymbolic:
    name = "opera-nosymbolic"

    def synthesize(
        self, program: Program, config: SynthesisConfig, task_name: str
    ) -> SynthesisReport:
        ablated = replace(config, use_decomposition=True, use_symbolic=False)
        return synthesize(program, ablated, task_name)
