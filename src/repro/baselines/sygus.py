"""SyGuS-solver baselines (Section 7.1's comparison points).

There is no off-the-shelf tool for offline-to-online conversion, so — like
the paper, which adapted CVC5 and Sketch — we pose the problem to two
general-purpose grammar-based synthesizers:

* the target grammar is the online-program language of Figure 7;
* the specification is the relational function signature asserted on lists of
  fixed length (the paper's "oracle constraints"), checked by testing;
* the function signature (number and meaning of accumulators) is supplied,
  mirroring "we manually specify their signature";
* crucially, *neither* baseline gets Opera's decomposition or symbolic
  reasoning: both must synthesize the whole output tuple at once.

``Cvc5Style`` models CVC5's strength on this encoding: systematic bottom-up
enumeration with observational-equivalence pruning (smallest-first, complete
up to its size bound).  ``SketchStyle`` models the counterexample-guided
sketch-completion regime: depth-bounded top-down hole filling without
semantic deduplication, which explores far fewer distinct behaviours per
second.  The qualitative outcome — both solve only the small tasks, CVC5
more than Sketch — is the property Table 2 and Figure 11 measure.
"""

from __future__ import annotations

import itertools
import random
import time

from ..core.config import SynthesisConfig
from ..core.enumerative import build_bank
from ..core.equivalence import check_scheme_equivalence
from ..core.exceptions import SynthesisTimeout, UnsupportedProgram
from ..core.initializer import build_initializer
from ..core.report import HoleOutcome, SynthesisReport
from ..core.rfs import RFS, construct_rfs
from ..core.scheme import OnlineScheme
from ..core.simplify import simplify_expr
from ..ir.evaluator import EvaluationError, evaluate
from ..ir.nodes import Call, Const, Expr, If, MakeTuple, Program, Var
from ..ir.traversal import ast_size, used_builtins
from ..ir.values import Value


def _tuple_spec(rfs: RFS) -> Expr:
    return MakeTuple(tuple(rfs.entries.values()))


class Cvc5Style:
    """Whole-program bottom-up enumeration with OE pruning."""

    name = "cvc5"

    def synthesize(
        self, program: Program, config: SynthesisConfig, task_name: str
    ) -> SynthesisReport:
        config.start_clock()
        started = time.monotonic()
        report = SynthesisReport(task=task_name, success=False, elapsed_s=0.0)
        try:
            rfs = construct_rfs(program, add_length=False)
            initializer = build_initializer(rfs)
            spec = _tuple_spec(rfs)
            expr = self._enumerate_tuple(rfs, spec, config)
            if expr is None:
                raise SynthesisTimeout("bottom-up search exhausted its budget")
            scheme = OnlineScheme(
                initializer,
                _program_from_tuple(rfs, expr),
                provenance=f"cvc5:{task_name}",
            )
            if not check_scheme_equivalence(program, scheme, config):
                raise SynthesisTimeout("candidate failed full-stream validation")
            report.scheme = scheme
            report.success = True
            report.record_hole(HoleOutcome(0, "enumerative", ast_size(spec), ast_size(expr)))
        except (SynthesisTimeout, UnsupportedProgram, EvaluationError) as exc:
            report.failure_reason = f"{type(exc).__name__}: {exc}"
        finally:
            report.elapsed_s = time.monotonic() - started
        return report

    def _enumerate_tuple(self, rfs: RFS, spec: Expr, config: SynthesisConfig) -> Expr | None:
        """Joint synthesis: per-component banks, cross-product assembly.

        Components are enumerated bottom-up with shared sub-expression pools;
        a full candidate is accepted only if every component matches its RFS
        entry's value vector (the fixed-length oracle constraint).
        """
        from ..core.enumerative import enumerate_expression

        # A whole-tuple spec with OE pruning on the tuple signature; the
        # enumerator's tuple productions assemble the outputs.
        try:
            return enumerate_expression(rfs, spec, config, salt="cvc5")
        except SynthesisTimeout:
            return None


class SketchStyle:
    """Depth-bounded top-down completion without semantic deduplication."""

    name = "sketch"

    def __init__(self, max_depth: int = 3, max_candidates: int = 200_000):
        self.max_depth = max_depth
        self.max_candidates = max_candidates

    def synthesize(
        self, program: Program, config: SynthesisConfig, task_name: str
    ) -> SynthesisReport:
        config.start_clock()
        started = time.monotonic()
        report = SynthesisReport(task=task_name, success=False, elapsed_s=0.0)
        try:
            rfs = construct_rfs(program, add_length=False)
            initializer = build_initializer(rfs)
            spec = _tuple_spec(rfs)
            expr = self._complete(rfs, spec, config)
            if expr is None:
                raise SynthesisTimeout("sketch completion exhausted its budget")
            scheme = OnlineScheme(
                initializer,
                _program_from_tuple(rfs, expr),
                provenance=f"sketch:{task_name}",
            )
            if not check_scheme_equivalence(program, scheme, config):
                raise SynthesisTimeout("candidate failed full-stream validation")
            report.scheme = scheme
            report.success = True
            report.record_hole(HoleOutcome(0, "enumerative", ast_size(spec), ast_size(expr)))
        except (SynthesisTimeout, UnsupportedProgram, EvaluationError) as exc:
            report.failure_reason = f"{type(exc).__name__}: {exc}"
        finally:
            report.elapsed_s = time.monotonic() - started
        return report

    def _complete(self, rfs: RFS, spec: Expr, config: SynthesisConfig) -> Expr | None:
        bank = build_bank(rfs, spec, config, salt="sketch")
        if bank is None:
            return None
        terminals: list[Expr] = [Var(name) for name in rfs.names]
        terminals.append(Var("x"))
        terminals.extend(Var(name) for name in rfs.extra_params)
        terminals.extend([Const(0), Const(1)])
        ops = sorted(
            (used_builtins(spec) | {"add", "sub", "mul", "div"})
            & {"add", "sub", "mul", "div", "min", "max"}
        )
        rng = random.Random(config.seed)

        def candidates(depth: int):
            """All expressions of exactly the given depth (no dedup)."""
            if depth == 0:
                yield from terminals
                return
            smaller = list(self._upto(depth - 1, terminals, ops))
            for op in ops:
                for left, right in itertools.product(smaller, smaller):
                    yield Call(op, (left, right))

        produced = 0
        arity = len(rfs)
        for depth in range(1, self.max_depth + 1):
            pool = list(self._upto(depth, terminals, ops))
            rng.shuffle(pool)
            for combo in itertools.product(pool, repeat=arity):
                if config.expired() or produced > self.max_candidates:
                    return None
                produced += 1
                candidate = MakeTuple(combo)
                if self._matches(candidate, bank):
                    return candidate
        return None

    def _upto(self, depth: int, terminals: list[Expr], ops: list[str]):
        pool = list(terminals)
        for _ in range(depth):
            extended = list(pool)
            for op in ops:
                for left in terminals:
                    for right in pool:
                        extended.append(Call(op, (left, right)))
            pool = extended[:400]  # Sketch-style bounded unrolling
        return pool

    @staticmethod
    def _matches(candidate: Expr, bank) -> bool:
        for env, expected in zip(bank.envs, bank.spec_signature):
            try:
                value: Value = evaluate(candidate, env)
            except (EvaluationError, ArithmeticError, TypeError, ValueError):
                return False
            if value != expected:
                return False
        return True


def _program_from_tuple(rfs: RFS, expr: Expr):
    from ..ir.nodes import OnlineProgram, Proj

    if isinstance(expr, MakeTuple) and expr.arity == len(rfs):
        outputs = tuple(simplify_expr(e) for e in expr.items)
    else:
        outputs = tuple(simplify_expr(Proj(expr, i)) for i in range(len(rfs)))
    return OnlineProgram(
        state_params=rfs.names,
        elem_param="x",
        outputs=outputs,
        extra_params=rfs.extra_params,
    )
