"""Baseline synthesizers and ablations for the evaluation (Section 7)."""

from .ablations import OperaFull, OperaNoDecomp, OperaNoSymbolic
from .sygus import Cvc5Style, SketchStyle

SOLVERS = {
    "opera": OperaFull,
    "opera-nodecomp": OperaNoDecomp,
    "opera-nosymbolic": OperaNoSymbolic,
    "cvc5": Cvc5Style,
    "sketch": SketchStyle,
}

__all__ = [
    "Cvc5Style",
    "OperaFull",
    "OperaNoDecomp",
    "OperaNoSymbolic",
    "SOLVERS",
    "SketchStyle",
]
