"""Python-to-IR frontend (Section 6, "Conversion to functional IR")."""

from .python_frontend import FrontendError, function_to_ir, python_to_ir

__all__ = ["FrontendError", "function_to_ir", "python_to_ir"]
