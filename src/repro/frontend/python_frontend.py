"""Syntax-directed translation of a Python subset into the functional IR.

The paper's tool accepts Python offline programs (Figure 2a) and transpiles
them to the fold-based IR of Figure 3a, citing prior work for the general
problem.  This frontend implements the rule-based subset their benchmarks
exercise:

* straight-line assignments of pure expressions;
* accumulator ``for`` loops over the input list — each loop-carried variable
  becomes a ``foldl`` (independent accumulators become independent folds;
  mutually dependent ones become a tuple-accumulator fold);
* ``sum`` / ``len`` / ``min`` / ``max`` over the list, generator expressions
  ``sum(f(x) for x in xs)``, and list comprehensions with optional ``if``
  guards (→ ``map`` / ``filter``);
* arithmetic, comparisons, boolean connectives, conditional expressions,
  ``abs``, ``math.sqrt`` / ``log`` / ``exp``, and ``x ** c``;
* a single final ``return``.

Example::

    def variance(xs):
        s = 0
        for x in xs:
            s += x
        avg = s / len(xs)
        sq = 0
        for x in xs:
            sq += (x - avg) ** 2
        return sq / len(xs)

translates to exactly the IR of Figure 3a.
"""

from __future__ import annotations

import ast
import textwrap
from typing import Callable

from ..ir.nodes import (
    Call,
    Const,
    Expr,
    Filter,
    Fold,
    If,
    Lambda,
    ListVar,
    MakeTuple,
    Map,
    Program,
    Proj,
    Var,
    const,
)
from ..ir.traversal import free_vars, substitute


class FrontendError(Exception):
    """The Python source falls outside the supported subset."""


_BINOPS: dict[type, str] = {
    ast.Add: "add",
    ast.Sub: "sub",
    ast.Mult: "mul",
    ast.Div: "div",
    ast.Pow: "pow",
}

_CMPOPS: dict[type, str] = {
    ast.Lt: "lt",
    ast.LtE: "le",
    ast.Gt: "gt",
    ast.GtE: "ge",
    ast.Eq: "eq",
    ast.NotEq: "ne",
}

_CALLS_1: dict[str, str] = {
    "abs": "abs",
    "sqrt": "sqrt",
    "exp": "exp",
    "log": "log",
    "expm1": "expm1",
    "log1p": "log1p",
    "floor": "floor",
    "ceil": "ceil",
}


class _Translator:
    """Translates one function body; ``env`` maps Python names to IR values
    (scalar expressions, or the input list)."""

    def __init__(self, list_param: str, extra_params: tuple[str, ...]):
        self.list_param = list_param
        self.extra_params = extra_params
        self.env: dict[str, Expr] = {name: Var(name) for name in extra_params}
        self._fresh = 0

    # -- expressions ---------------------------------------------------------

    def expr(self, node: ast.expr) -> Expr:
        method: Callable[[ast.expr], Expr] | None = getattr(
            self, f"_expr_{type(node).__name__.lower()}", None
        )
        if method is None:
            raise FrontendError(f"unsupported expression {ast.dump(node)}")
        return method(node)

    def _expr_constant(self, node: ast.Constant) -> Expr:
        if isinstance(node.value, bool):
            return Const(node.value)
        if isinstance(node.value, (int, float)):
            return const(node.value)
        raise FrontendError(f"unsupported constant {node.value!r}")

    def _expr_name(self, node: ast.Name) -> Expr:
        if node.id == self.list_param:
            return ListVar(self.list_param)
        if node.id in self.env:
            return self.env[node.id]
        return Var(node.id)  # lambda-bound loop variables

    def _expr_binop(self, node: ast.BinOp) -> Expr:
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise FrontendError(f"unsupported operator {type(node.op).__name__}")
        return Call(op, (self.expr(node.left), self.expr(node.right)))

    def _expr_unaryop(self, node: ast.UnaryOp) -> Expr:
        operand = self.expr(node.operand)
        if isinstance(node.op, ast.USub):
            if isinstance(operand, Const) and not isinstance(operand.value, bool):
                return const(-operand.value)
            return Call("neg", (operand,))
        if isinstance(node.op, ast.Not):
            return Call("not", (operand,))
        raise FrontendError(f"unsupported unary op {type(node.op).__name__}")

    def _expr_compare(self, node: ast.Compare) -> Expr:
        if len(node.ops) != 1:
            raise FrontendError("chained comparisons are unsupported")
        op = _CMPOPS.get(type(node.ops[0]))
        if op is None:
            raise FrontendError(f"unsupported comparison {type(node.ops[0]).__name__}")
        return Call(op, (self.expr(node.left), self.expr(node.comparators[0])))

    def _expr_boolop(self, node: ast.BoolOp) -> Expr:
        op = "and" if isinstance(node.op, ast.And) else "or"
        result = self.expr(node.values[0])
        for value in node.values[1:]:
            result = Call(op, (result, self.expr(value)))
        return result

    def _expr_ifexp(self, node: ast.IfExp) -> Expr:
        return If(self.expr(node.test), self.expr(node.body), self.expr(node.orelse))

    def _expr_subscript(self, node: ast.Subscript) -> Expr:
        if isinstance(node.slice, ast.Constant) and isinstance(node.slice.value, int):
            return Proj(self.expr(node.value), node.slice.value)
        raise FrontendError("only constant tuple indexing is supported")

    def _expr_tuple(self, node: ast.Tuple) -> Expr:
        return MakeTuple(tuple(self.expr(e) for e in node.elts))

    def _expr_call(self, node: ast.Call) -> Expr:
        name = self._callee_name(node)
        args = node.args
        if name == "len" and len(args) == 1:
            return Call("length", (self._list_operand(args[0]),))
        if name == "sum" and len(args) == 1:
            if isinstance(args[0], ast.GeneratorExp):
                lst, lam = self._comprehension(args[0])
                return Fold(
                    Lambda(("_acc", lam.params[0]), Call("add", (Var("_acc"), lam.body))),
                    Const(0),
                    lst,
                )
            return Fold(
                Lambda(("_a", "_b"), Call("add", (Var("_a"), Var("_b")))),
                Const(0),
                self._list_operand(args[0]),
            )
        if name in ("min", "max") and len(args) == 2:
            return Call(name, (self.expr(args[0]), self.expr(args[1])))
        if name in ("min", "max") and len(args) == 1:
            sentinel = Const(10**9 if name == "min" else -(10**9))
            return Fold(
                Lambda(("_a", "_b"), Call(name, (Var("_a"), Var("_b")))),
                sentinel,
                self._list_operand(args[0]),
            )
        if name in _CALLS_1 and len(args) == 1:
            return Call(_CALLS_1[name], (self.expr(args[0]),))
        raise FrontendError(f"unsupported call to {name!r}")

    def _callee_name(self, node: ast.Call) -> str:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):  # math.sqrt etc.
            return func.attr
        raise FrontendError("unsupported callee")

    def _list_operand(self, node: ast.expr) -> Expr:
        if isinstance(node, ast.ListComp):
            lst, lam = self._comprehension(node)
            return Map(lam, lst)
        value = self.expr(node)
        if isinstance(value, (ListVar, Map, Filter)):
            return value
        raise FrontendError("expected a list-valued operand")

    def _comprehension(self, node: ast.GeneratorExp | ast.ListComp):
        if len(node.generators) != 1:
            raise FrontendError("only single-generator comprehensions supported")
        gen = node.generators[0]
        if not isinstance(gen.target, ast.Name):
            raise FrontendError("comprehension target must be a name")
        var = gen.target.id
        lst = self._list_operand(gen.iter)
        for guard in gen.ifs:
            lst = Filter(Lambda((var,), self.expr(guard)), lst)
        lam = Lambda((var,), self.expr(node.elt))
        return lst, lam

    # -- statements -----------------------------------------------------------

    def fresh(self, prefix: str) -> str:
        self._fresh += 1
        return f"_{prefix}{self._fresh}"

    def statement(self, node: ast.stmt) -> Expr | None:
        """Process one statement; a ``return`` yields the program body."""
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
                raise FrontendError("only simple assignments supported")
            self.env[node.targets[0].id] = self.expr(node.value)
            return None
        if isinstance(node, ast.AugAssign):
            if not isinstance(node.target, ast.Name):
                raise FrontendError("only simple augmented assignments supported")
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise FrontendError("unsupported augmented operator")
            name = node.target.id
            current = self.env.get(name)
            if current is None:
                raise FrontendError(f"augmented assignment to unbound {name!r}")
            self.env[name] = Call(op, (current, self.expr(node.value)))
            return None
        if isinstance(node, ast.For):
            self._for_loop(node)
            return None
        if isinstance(node, ast.Return):
            if node.value is None:
                raise FrontendError("return must carry a value")
            return self.expr(node.value)
        if isinstance(node, (ast.Pass, ast.Expr)):
            return None
        raise FrontendError(f"unsupported statement {type(node).__name__}")

    def _for_loop(self, node: ast.For) -> None:
        """Accumulator loops become folds.

        Reads are sequenced: a statement that reads an accumulator updated
        earlier in the same iteration sees the *new* value (the update is
        inlined), while reads of not-yet-updated accumulators see the fold
        parameter.  If the final updates are mutually independent each
        accumulator becomes its own fold; otherwise the whole group becomes a
        single tuple-accumulator fold.
        """
        if node.orelse:
            raise FrontendError("for/else is unsupported")
        if not isinstance(node.target, ast.Name):
            raise FrontendError("loop target must be a name")
        loop_var = node.target.id
        lst = self._list_operand(node.iter)

        accumulators = self._loop_accumulators(node)
        for name in accumulators:
            if name not in self.env:
                raise FrontendError(
                    f"loop accumulator {name!r} must be initialized before the loop"
                )

        inner = _Translator(self.list_param, self.extra_params)
        inner.env = dict(self.env)
        inner.env.pop(loop_var, None)
        # Within one iteration, every accumulator starts at its fold-parameter
        # value and is rebound as statements execute.
        for name in accumulators:
            inner.env[name] = Var(name)

        updates: dict[str, Expr] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
                    raise FrontendError("unsupported loop-body assignment")
                name = stmt.targets[0].id
                rhs = inner.expr(stmt.value)
            elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                op = _BINOPS.get(type(stmt.op))
                if op is None:
                    raise FrontendError("unsupported augmented operator in loop")
                rhs = Call(op, (inner.env[name], inner.expr(stmt.value)))
            elif isinstance(stmt, ast.If):
                raise FrontendError(
                    "conditional loop bodies: express the branch as a "
                    "conditional expression instead"
                )
            else:
                raise FrontendError("loop bodies must be accumulator updates")
            inner.env[name] = rhs
            updates[name] = rhs

        self._emit_folds(updates, loop_var, lst)

    @staticmethod
    def _loop_accumulators(node: ast.For) -> list[str]:
        names: list[str] = []
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
                targets = [stmt.target.id]
            else:
                targets = []
            for name in targets:
                if name not in names:
                    names.append(name)
        return names

    def _emit_folds(self, updates: dict[str, Expr], loop_var: str, lst: Expr) -> None:
        names = list(updates)
        name_set = set(names)
        # An update is self-contained if it reads no *other* accumulator.
        entangled = any((free_vars(update) & name_set) - {name} for name, update in updates.items())
        if not entangled:
            for name in names:
                init = self.env[name]
                self.env[name] = Fold(Lambda((name, loop_var), updates[name]), init, lst)
            return
        # Mutually dependent accumulators: one tuple-valued fold whose lambda
        # reads all old values through projections.
        tup_var = self.fresh("t")
        projections = {name: Proj(Var(tup_var), i) for i, name in enumerate(names)}
        bodies = tuple(substitute(updates[name], projections) for name in names)
        init = MakeTuple(tuple(self.env[name] for name in names))
        fold = Fold(Lambda((tup_var, loop_var), MakeTuple(bodies)), init, lst)
        for i, name in enumerate(names):
            self.env[name] = Proj(fold, i)


def python_to_ir(source: str) -> Program:
    """Translate the single function defined in ``source`` to a Program."""
    tree = ast.parse(textwrap.dedent(source))
    functions = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(functions) != 1:
        raise FrontendError("source must define exactly one function")
    func = functions[0]
    params = [a.arg for a in func.args.args]
    if not params:
        raise FrontendError("the function must take the input list first")
    list_param, *extra = params

    translator = _Translator(list_param, tuple(extra))
    body: Expr | None = None
    for stmt in func.body:
        result = translator.statement(stmt)
        if result is not None:
            body = result
            break
    if body is None:
        raise FrontendError("the function never returns")
    return Program(list_param, body, tuple(extra))


def function_to_ir(func) -> Program:
    """Translate a live Python function object via its source."""
    import inspect

    return python_to_ir(inspect.getsource(func))
