"""Exact linear algebra over ``Fraction``.

Three consumers inside the synthesizer:

* power-sum rewriting (:mod:`repro.algebra.symmetric`) solves for a
  representation of a symmetric polynomial in a power-sum basis;
* :func:`repro.core.templates.sample_points` solves the per-length linear
  systems of Algorithm 6 (including the homogeneous/nullspace variant needed
  for templates with unknown denominators);
* polynomial interpolation builds small Vandermonde solves.

Everything is exact Gaussian elimination over ``Fraction`` — the matrices
involved have at most a few dozen rows.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

Matrix = list[list[Fraction]]
Vector = list[Fraction]


def _to_matrix(rows: Sequence[Sequence[Fraction | int]]) -> Matrix:
    return [[Fraction(x) for x in row] for row in rows]


def rref(matrix: Sequence[Sequence[Fraction | int]]) -> tuple[Matrix, list[int]]:
    """Reduced row-echelon form; returns (rref, pivot column indices)."""
    m = _to_matrix(matrix)
    if not m:
        return [], []
    rows, cols = len(m), len(m[0])
    pivots: list[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        pivot_row = next((i for i in range(r, rows) if m[i][c] != 0), None)
        if pivot_row is None:
            continue
        m[r], m[pivot_row] = m[pivot_row], m[r]
        pivot = m[r][c]
        m[r] = [x / pivot for x in m[r]]
        for i in range(rows):
            if i != r and m[i][c] != 0:
                factor = m[i][c]
                m[i] = [a - factor * b for a, b in zip(m[i], m[r])]
        pivots.append(c)
        r += 1
    return m, pivots


def solve(
    matrix: Sequence[Sequence[Fraction | int]],
    rhs: Sequence[Fraction | int],
) -> Vector | None:
    """Solve ``A x = b`` exactly.

    Returns one solution (free variables set to 0) or ``None`` when the
    system is inconsistent.
    """
    if not matrix:
        return []
    cols = len(matrix[0])
    augmented = [list(row) + [b] for row, b in zip(matrix, rhs)]
    reduced, pivots = rref(augmented)
    for row in reduced:
        if all(x == 0 for x in row[:-1]) and row[-1] != 0:
            return None
    solution = [Fraction(0)] * cols
    for i, c in enumerate(pivots):
        if c == cols:  # pivot in the RHS column -> inconsistent (caught above)
            return None
        solution[c] = reduced[i][-1]
    return solution


def nullspace(matrix: Sequence[Sequence[Fraction | int]]) -> list[Vector]:
    """Basis of the (right) nullspace of ``A``."""
    if not matrix:
        return []
    cols = len(matrix[0])
    reduced, pivots = rref(matrix)
    free_cols = [c for c in range(cols) if c not in pivots]
    basis: list[Vector] = []
    for free in free_cols:
        vec = [Fraction(0)] * cols
        vec[free] = Fraction(1)
        for i, c in enumerate(pivots):
            vec[c] = -reduced[i][free]
        basis.append(vec)
    return basis


def rank(matrix: Sequence[Sequence[Fraction | int]]) -> int:
    _, pivots = rref(matrix)
    return len(pivots)
