"""Exact univariate polynomial interpolation (Appendix B's ``Interpolate``).

Given sample points ``(l, value)`` for a template unknown, fit the lowest-
degree polynomial in ``n`` that passes through all of them.  The paper uses
SciPy's interpolation here; we use exact Lagrange interpolation over
``Fraction`` (with SciPy available for a float cross-check in the tests) so
that the subsequent equivalence check is not perturbed by rounding.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from .linsolve import solve

Point = tuple[Fraction, Fraction]


def lagrange_interpolate(points: Sequence[Point]) -> list[Fraction]:
    """Coefficients (ascending degree) of the unique polynomial of degree
    ``< len(points)`` through ``points``.

    Implemented as an exact Vandermonde solve, which also detects duplicated
    abscissae (raises ``ValueError``).
    """
    xs = [Fraction(x) for x, _ in points]
    ys = [Fraction(y) for _, y in points]
    if len(set(xs)) != len(xs):
        raise ValueError("duplicate sample abscissae")
    n = len(points)
    matrix = [[x**j for j in range(n)] for x in xs]
    coeffs = solve(matrix, ys)
    if coeffs is None:  # Vandermonde with distinct nodes is invertible.
        raise ValueError("interpolation system unexpectedly singular")
    return _trim(coeffs)


def fit_polynomial(points: Sequence[Point], max_degree: int | None = None) -> list[Fraction] | None:
    """Fit the lowest-degree polynomial consistent with *all* points.

    Unlike :func:`lagrange_interpolate`, the number of points may exceed the
    degree; extra points act as checks.  Returns ascending coefficients, or
    ``None`` if no polynomial of degree ``<= max_degree`` fits exactly.
    """
    if not points:
        return None
    limit = max_degree if max_degree is not None else len(points) - 1
    for degree in range(0, limit + 1):
        if degree + 1 > len(points):
            break
        coeffs = lagrange_interpolate(points[: degree + 1])
        if len(_trim(coeffs)) - 1 > degree if coeffs else False:
            continue
        if all(_eval(coeffs, x) == y for x, y in points):
            return _trim(coeffs)
    return None


def _eval(coeffs: Sequence[Fraction], x: Fraction) -> Fraction:
    total = Fraction(0)
    for c in reversed(coeffs):
        total = total * x + c
    return total


def _trim(coeffs: list[Fraction]) -> list[Fraction]:
    out = list(coeffs)
    while len(out) > 1 and out[-1] == 0:
        out.pop()
    return out
