"""Exact multivariate polynomials over ``fractions.Fraction``.

This is the foundation of the symbolic-reasoning half of the synthesizer
(Section 5.2.2).  The paper delegates algebra to the REDUCE computer algebra
system; we implement the needed fragment from scratch:

* sparse multivariate polynomials with exact rational coefficients;
* ring operations, exact division, content extraction;
* substitution of variables by polynomials (rational substitution lives in
  :mod:`repro.algebra.ratfunc`);
* evaluation over :class:`~fractions.Fraction` points.

Variables are plain strings.  Names beginning with ``"@"`` denote *atoms* —
opaque subterms interned in an :class:`~repro.algebra.atoms.AtomTable` — but
this module treats them as ordinary variables.

Representation: ``dict`` from monomial to coefficient, where a monomial is a
sorted tuple of ``(variable, exponent)`` pairs with positive exponents.  The
empty tuple is the constant monomial.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Mapping, Union

Monomial = tuple[tuple[str, int], ...]
Coeff = Fraction
Scalar = Union[int, Fraction]

_ONE_MONO: Monomial = ()


def mono_mul(a: Monomial, b: Monomial) -> Monomial:
    """Multiply two monomials (merge sorted exponent vectors)."""
    if not a:
        return b
    if not b:
        return a
    merged: dict[str, int] = dict(a)
    for var, exp in b:
        merged[var] = merged.get(var, 0) + exp
    return tuple(sorted(merged.items()))


def mono_degree(m: Monomial) -> int:
    return sum(exp for _, exp in m)


def mono_degree_in(m: Monomial, variables: frozenset[str]) -> int:
    return sum(exp for var, exp in m if var in variables)


def mono_divides(a: Monomial, b: Monomial) -> bool:
    """Does monomial ``a`` divide ``b``?"""
    exps = dict(b)
    return all(exps.get(var, 0) >= exp for var, exp in a)


def mono_div(a: Monomial, b: Monomial) -> Monomial:
    """``a / b``; caller must ensure divisibility."""
    exps = dict(a)
    for var, exp in b:
        exps[var] -= exp
    return tuple(sorted((v, e) for v, e in exps.items() if e > 0))


class Poly:
    """An immutable sparse multivariate polynomial."""

    __slots__ = ("terms", "_hash")

    def __init__(self, terms: Mapping[Monomial, Fraction] | None = None):
        cleaned = {m: c for m, c in (terms or {}).items() if c != 0}
        object.__setattr__(self, "terms", cleaned)
        object.__setattr__(self, "_hash", None)

    # -- constructors -------------------------------------------------------

    @staticmethod
    def zero() -> "Poly":
        return _ZERO

    @staticmethod
    def one() -> "Poly":
        return _ONE

    @staticmethod
    def const(value: Scalar) -> "Poly":
        frac = Fraction(value)
        if frac == 0:
            return _ZERO
        return Poly({_ONE_MONO: frac})

    @staticmethod
    def var(name: str, exp: int = 1) -> "Poly":
        if exp < 0:
            raise ValueError("negative exponent in Poly.var")
        if exp == 0:
            return _ONE
        return Poly({((name, exp),): Fraction(1)})

    # -- queries -------------------------------------------------------------

    def is_zero(self) -> bool:
        return not self.terms

    def is_constant(self) -> bool:
        return not self.terms or (len(self.terms) == 1 and _ONE_MONO in self.terms)

    def constant_value(self) -> Fraction:
        if not self.is_constant():
            raise ValueError(f"{self} is not constant")
        return self.terms.get(_ONE_MONO, Fraction(0))

    def variables(self) -> frozenset[str]:
        return frozenset(var for m in self.terms for var, _ in m)

    def degree(self) -> int:
        if not self.terms:
            return 0
        return max(mono_degree(m) for m in self.terms)

    def degree_in(self, var: str) -> int:
        best = 0
        for m in self.terms:
            for v, e in m:
                if v == var and e > best:
                    best = e
        return best

    def monomials(self) -> Iterator[tuple[Monomial, Fraction]]:
        return iter(sorted(self.terms.items()))

    def coefficient(self, mono: Monomial) -> Fraction:
        return self.terms.get(mono, Fraction(0))

    def content(self) -> Fraction:
        """GCD of coefficients (positive), 0 for the zero polynomial."""
        if not self.terms:
            return Fraction(0)
        from math import gcd

        num = 0
        den = 1
        for c in self.terms.values():
            num = gcd(num, abs(c.numerator))
            den = (den * c.denominator) // gcd(den, c.denominator)
        return Fraction(num, den)

    # -- ring operations -----------------------------------------------------

    def __add__(self, other: "Poly | Scalar") -> "Poly":
        other = _coerce(other)
        if other.is_zero():
            return self
        if self.is_zero():
            return other
        terms = dict(self.terms)
        for m, c in other.terms.items():
            new = terms.get(m, Fraction(0)) + c
            if new == 0:
                terms.pop(m, None)
            else:
                terms[m] = new
        return Poly(terms)

    __radd__ = __add__

    def __neg__(self) -> "Poly":
        return Poly({m: -c for m, c in self.terms.items()})

    def __sub__(self, other: "Poly | Scalar") -> "Poly":
        return self + (-_coerce(other))

    def __rsub__(self, other: "Poly | Scalar") -> "Poly":
        return _coerce(other) + (-self)

    def __mul__(self, other: "Poly | Scalar") -> "Poly":
        other = _coerce(other)
        if self.is_zero() or other.is_zero():
            return _ZERO
        terms: dict[Monomial, Fraction] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                m = mono_mul(m1, m2)
                new = terms.get(m, Fraction(0)) + c1 * c2
                if new == 0:
                    terms.pop(m, None)
                else:
                    terms[m] = new
        return Poly(terms)

    __rmul__ = __mul__

    def __pow__(self, exp: int) -> "Poly":
        if exp < 0:
            raise ValueError("negative exponent on Poly; use RatFunc")
        result = _ONE
        base = self
        while exp:
            if exp & 1:
                result = result * base
            base = base * base
            exp >>= 1
        return result

    def scale(self, value: Scalar) -> "Poly":
        frac = Fraction(value)
        if frac == 0:
            return _ZERO
        return Poly({m: c * frac for m, c in self.terms.items()})

    # -- division ------------------------------------------------------------

    def divmod_exact(self, divisor: "Poly") -> "tuple[Poly, Poly] | None":
        """Multivariate reduction by leading-term division (graded-lex).

        Returns ``(quotient, remainder)`` with ``self == q * divisor + r``;
        this is plain monomial reduction, enough for the exact-division and
        cancellation checks used by :class:`~repro.algebra.ratfunc.RatFunc`.
        """
        if divisor.is_zero():
            return None
        lead_m, lead_c = max(divisor.terms.items(), key=lambda mc: (mono_degree(mc[0]), mc[0]))
        quotient = _ZERO
        remainder = self
        # Bounded loop: each step strictly removes the chosen monomial.
        for _ in range(len(self.terms) * (len(divisor.terms) + 1) + 16):
            if remainder.is_zero():
                break
            candidates = [(m, c) for m, c in remainder.terms.items() if mono_divides(lead_m, m)]
            if not candidates:
                break
            m, c = max(candidates, key=lambda mc: (mono_degree(mc[0]), mc[0]))
            factor = Poly({mono_div(m, lead_m): c / lead_c})
            quotient = quotient + factor
            remainder = remainder - factor * divisor
        return quotient, remainder

    def divides(self, other: "Poly") -> bool:
        result = other.divmod_exact(self)
        return result is not None and result[1].is_zero()

    def exact_div(self, divisor: "Poly") -> "Poly | None":
        result = self.divmod_exact(divisor)
        if result is None or not result[1].is_zero():
            return None
        return result[0]

    # -- substitution & evaluation -------------------------------------------

    def substitute_poly(self, mapping: Mapping[str, "Poly"]) -> "Poly":
        """Replace variables by polynomials."""
        if not any(v in mapping for v in self.variables()):
            return self
        result = _ZERO
        for mono, coeff in self.terms.items():
            term = Poly.const(coeff)
            for var, exp in mono:
                base = mapping.get(var)
                term = term * (base**exp if base is not None else Poly.var(var, exp))
            result = result + term
        return result

    def evaluate(self, env: Mapping[str, Scalar]) -> Fraction:
        total = Fraction(0)
        for mono, coeff in self.terms.items():
            value = coeff
            for var, exp in mono:
                if var not in env:
                    raise KeyError(f"unbound variable {var!r} in Poly.evaluate")
                value *= Fraction(env[var]) ** exp
            total += value
        return total

    def coefficients_in(self, variables: frozenset[str]) -> dict[Monomial, "Poly"]:
        """View ``self`` as a polynomial in ``variables`` with polynomial
        coefficients over the remaining variables.

        Returns a map from monomial-in-``variables`` to coefficient
        polynomial.
        """
        result: dict[Monomial, dict[Monomial, Fraction]] = {}
        for mono, coeff in self.terms.items():
            inner = tuple((v, e) for v, e in mono if v in variables)
            outer = tuple((v, e) for v, e in mono if v not in variables)
            bucket = result.setdefault(inner, {})
            bucket[outer] = bucket.get(outer, Fraction(0)) + coeff
        return {m: Poly(terms) for m, terms in result.items()}

    # -- dunder plumbing -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = Poly.const(other)
        if not isinstance(other, Poly):
            return NotImplemented
        return self.terms == other.terms

    def __hash__(self) -> int:
        h = object.__getattribute__(self, "_hash")
        if h is None:
            h = hash(frozenset(self.terms.items()))
            object.__setattr__(self, "_hash", h)
        return h

    def __repr__(self) -> str:
        if self.is_zero():
            return "0"
        parts = []
        for mono, coeff in sorted(self.terms.items(), key=lambda mc: (-mono_degree(mc[0]), mc[0])):
            factors = []
            if coeff != 1 or not mono:
                factors.append(str(coeff))
            for var, exp in mono:
                factors.append(var if exp == 1 else f"{var}^{exp}")
            parts.append("*".join(factors))
        return " + ".join(parts).replace("+ -", "- ")


def _coerce(value: "Poly | Scalar") -> Poly:
    if isinstance(value, Poly):
        return value
    return Poly.const(value)


_ZERO = Poly({})
_ONE = Poly({_ONE_MONO: Fraction(1)})


def poly_sum(polys: Iterable[Poly]) -> Poly:
    total = _ZERO
    for p in polys:
        total = total + p
    return total


def poly_product(polys: Iterable[Poly]) -> Poly:
    total = _ONE
    for p in polys:
        total = total * p
    return total
