"""Rational functions ``p / q`` over :class:`~repro.algebra.polynomial.Poly`.

Rational functions arise during quantifier elimination whenever a variable is
solved from an equation in which it occurs linearly (``v = -B/A``); they are
also the normal form the expression synthesizer decodes back into IR.

Normalization is deliberately lightweight (full multivariate GCD is
unnecessary for the fragment the synthesizer generates):

* the zero numerator collapses to ``0/1``;
* the content (rational constant factor) of the denominator is moved into the
  numerator, so denominators have integer content 1 and a positively-signed
  leading coefficient;
* common monomial factors are cancelled;
* exact polynomial division is attempted in both directions
  (``num = q * den`` or ``den = q * num``) to catch the frequent telescoping
  cancellations;
* when both sides are univariate in the same variable, an exact Euclidean GCD
  is cancelled.

Equality is decided by cross-multiplication, so incomplete cancellation never
compromises correctness.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Union

from .polynomial import Monomial, Poly, mono_degree, mono_div

Scalar = Union[int, Fraction]


class AlgebraError(Exception):
    """Raised when an operation leaves the supported symbolic fragment."""


def _common_monomial(p: Poly) -> Monomial:
    """Largest monomial dividing every term of ``p``."""
    common: dict[str, int] | None = None
    for mono in p.terms:
        exps = dict(mono)
        if common is None:
            common = exps
        else:
            common = {v: min(e, exps.get(v, 0)) for v, e in common.items() if exps.get(v, 0) > 0}
        if not common:
            return ()
    if not common:
        return ()
    return tuple(sorted((v, e) for v, e in common.items() if e > 0))


def _strip_monomial(p: Poly, mono: Monomial) -> Poly:
    if not mono:
        return p
    return Poly({mono_div(m, mono): c for m, c in p.terms.items()})


def _univariate_gcd(a: Poly, b: Poly, var: str) -> Poly:
    """Euclidean GCD for univariate polynomials in ``var`` (monic result)."""

    def to_coeffs(p: Poly) -> list[Fraction]:
        deg = p.degree_in(var)
        coeffs = [Fraction(0)] * (deg + 1)
        for mono, c in p.terms.items():
            exp = dict(mono).get(var, 0)
            coeffs[exp] += c
        return coeffs

    def trim(cs: list[Fraction]) -> list[Fraction]:
        while cs and cs[-1] == 0:
            cs.pop()
        return cs

    def mod(a_cs: list[Fraction], b_cs: list[Fraction]) -> list[Fraction]:
        a_cs = list(a_cs)
        while len(a_cs) >= len(b_cs) and trim(a_cs):
            factor = a_cs[-1] / b_cs[-1]
            shift = len(a_cs) - len(b_cs)
            for i, bc in enumerate(b_cs):
                a_cs[shift + i] -= factor * bc
            a_cs = trim(a_cs)
            if not a_cs:
                break
        return a_cs

    ca, cb = trim(to_coeffs(a)), trim(to_coeffs(b))
    while cb:
        ca, cb = cb, mod(ca, cb)
    if not ca:
        return Poly.zero()
    lead = ca[-1]
    terms = {((var, i),) if i else (): c / lead for i, c in enumerate(ca) if c != 0}
    return Poly(terms)


class RatFunc:
    """An immutable rational function."""

    __slots__ = ("num", "den")

    def __init__(self, num: Poly, den: Poly | None = None, *, normalize: bool = True):
        den = den if den is not None else Poly.one()
        if den.is_zero():
            raise ZeroDivisionError("rational function with zero denominator")
        if normalize:
            num, den = _normalize(num, den)
        self.num = num
        self.den = den

    # -- constructors -------------------------------------------------------

    @staticmethod
    def const(value: Scalar) -> "RatFunc":
        return RatFunc(Poly.const(value), Poly.one(), normalize=False)

    @staticmethod
    def var(name: str) -> "RatFunc":
        return RatFunc(Poly.var(name), Poly.one(), normalize=False)

    @staticmethod
    def from_poly(p: Poly) -> "RatFunc":
        return RatFunc(p, Poly.one(), normalize=False)

    # -- queries -------------------------------------------------------------

    def is_zero(self) -> bool:
        return self.num.is_zero()

    def is_constant(self) -> bool:
        return self.num.is_constant() and self.den.is_constant()

    def constant_value(self) -> Fraction:
        return self.num.constant_value() / self.den.constant_value()

    def is_polynomial(self) -> bool:
        return self.den.is_constant()

    def as_poly(self) -> Poly:
        if not self.is_polynomial():
            raise AlgebraError(f"{self!r} is not a polynomial")
        return self.num.scale(Fraction(1) / self.den.constant_value())

    def variables(self) -> frozenset[str]:
        return self.num.variables() | self.den.variables()

    # -- field operations ------------------------------------------------------

    def __add__(self, other: "RatFunc | Scalar") -> "RatFunc":
        other = _coerce(other)
        if self.den == other.den:
            return RatFunc(self.num + other.num, self.den)
        return RatFunc(self.num * other.den + other.num * self.den, self.den * other.den)

    __radd__ = __add__

    def __neg__(self) -> "RatFunc":
        return RatFunc(-self.num, self.den, normalize=False)

    def __sub__(self, other: "RatFunc | Scalar") -> "RatFunc":
        return self + (-_coerce(other))

    def __rsub__(self, other: "RatFunc | Scalar") -> "RatFunc":
        return _coerce(other) + (-self)

    def __mul__(self, other: "RatFunc | Scalar") -> "RatFunc":
        other = _coerce(other)
        return RatFunc(self.num * other.num, self.den * other.den)

    __rmul__ = __mul__

    def __truediv__(self, other: "RatFunc | Scalar") -> "RatFunc":
        other = _coerce(other)
        if other.is_zero():
            raise ZeroDivisionError("division of rational functions by zero")
        return RatFunc(self.num * other.den, self.den * other.num)

    def __rtruediv__(self, other: "RatFunc | Scalar") -> "RatFunc":
        return _coerce(other) / self

    def __pow__(self, exp: int) -> "RatFunc":
        if exp < 0:
            return RatFunc(self.den, self.num) ** (-exp)
        return RatFunc(self.num**exp, self.den**exp)

    # -- substitution & evaluation ----------------------------------------------

    def substitute(self, mapping: Mapping[str, "RatFunc"]) -> "RatFunc":
        """Simultaneous substitution of variables by rational functions."""
        relevant = {v: r for v, r in mapping.items() if v in self.variables()}
        if not relevant:
            return self
        return _subst_poly(self.num, relevant) / _subst_poly(self.den, relevant)

    def evaluate(self, env: Mapping[str, Scalar]) -> Fraction:
        den = self.den.evaluate(env)
        if den == 0:
            # Mirrors the paper's safe-division convention.
            return Fraction(0)
        return self.num.evaluate(env) / den

    # -- comparison ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fraction)):
            other = RatFunc.const(other)
        if not isinstance(other, RatFunc):
            return NotImplemented
        return self.num * other.den == other.num * self.den

    def __hash__(self) -> int:
        # Hash only the fully-normalized polynomial case reliably; for others
        # fall back to a weak hash (equality by cross-multiplication means
        # distinct representations of equal values must collide).
        if self.is_polynomial():
            return hash(("ratfunc-poly", self.as_poly()))
        return hash("ratfunc")

    def __repr__(self) -> str:
        if self.den == Poly.one():
            return repr(self.num)
        return f"({self.num!r}) / ({self.den!r})"


def _subst_poly(p: Poly, mapping: Mapping[str, RatFunc]) -> RatFunc:
    result = RatFunc.const(0)
    for mono, coeff in p.terms.items():
        term = RatFunc.const(coeff)
        for var, exp in mono:
            base = mapping.get(var)
            if base is None:
                base = RatFunc.var(var)
            term = term * base**exp
        result = result + term
    return result


def _normalize(num: Poly, den: Poly) -> tuple[Poly, Poly]:
    if num.is_zero():
        return Poly.zero(), Poly.one()
    # Cancel common monomial factors.
    common_n = _common_monomial(num)
    common_d = _common_monomial(den)
    shared = _mono_gcd(common_n, common_d)
    if shared:
        num = _strip_monomial(num, shared)
        den = _strip_monomial(den, shared)
    # Attempt exact division both ways.
    if not den.is_constant():
        q = num.exact_div(den)
        if q is not None:
            return _normalize(q, Poly.one())
        q = den.exact_div(num)
        if q is not None and q.is_constant():
            inv = Fraction(1) / q.constant_value()
            return _normalize(Poly.const(inv), Poly.one())
        # Univariate GCD cancellation.
        nv, dv = num.variables(), den.variables()
        if len(nv | dv) == 1:
            (var,) = tuple(nv | dv)
            g = _univariate_gcd(num, den, var)
            if not g.is_constant():
                num = num.exact_div(g) or num
                den = den.exact_div(g) or den
    # Scale so the denominator has content 1 and positive leading coefficient.
    content = den.content()
    lead_sign = _lead_sign(den)
    scale = Fraction(1) / (content * lead_sign)
    return num.scale(scale), den.scale(scale)


def _lead_sign(p: Poly) -> int:
    if p.is_zero():
        return 1
    _, coeff = max(p.terms.items(), key=lambda mc: (mono_degree(mc[0]), mc[0]))
    return 1 if coeff > 0 else -1


def _mono_gcd(a: Monomial, b: Monomial) -> Monomial:
    if not a or not b:
        return ()
    bx = dict(b)
    out = []
    for var, exp in a:
        if var in bx:
            out.append((var, min(exp, bx[var])))
    return tuple(sorted(out))


def _coerce(value: "RatFunc | Scalar") -> RatFunc:
    if isinstance(value, RatFunc):
        return value
    return RatFunc.const(value)
