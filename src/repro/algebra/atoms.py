"""Atom abstraction: opaque subterms inside polynomial reasoning.

The quantifier-elimination engine works over polynomials/rational functions,
but realistic offline programs also contain non-polynomial operations
(``min``, ``max``, ``sqrt``, ``exp``, ``log``), boolean predicates, tuple
constructors/projections, and conditionals.  Following the paper's
implementation note ("Opera ensures that formulas belong to a theory that
admits quantifier elimination by replacing foreign terms with fresh
variables"), every such subterm is *interned* as an **atom**: a fresh
variable ``@k`` owned by an :class:`AtomTable` that remembers the operator
and the (symbolic) argument terms.

Atoms are structural: interning the same operator over equal argument terms
returns the same atom variable.  Substitution of ordinary variables descends
into atom arguments and re-interns, so elimination results remain decodable
back into IR syntax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .ratfunc import RatFunc


@dataclass(frozen=True)
class Atom:
    """An interned opaque operation.

    ``op``    — operator tag (built-in name, ``"ite"``, ``"tuple"``,
                ``"proj"``, or ``"opaque"`` for leaf placeholders);
    ``args``  — argument terms (rational functions over variables & atoms);
    ``meta``  — static payload (projection index, opaque payload key).
    """

    op: str
    args: tuple[RatFunc, ...]
    meta: object = None


def _term_key(term: RatFunc):
    return (
        frozenset(term.num.terms.items()),
        frozenset(term.den.terms.items()),
    )


class AtomTable:
    """Bidirectional registry of atoms.

    Atom variables are named ``"@<index>"`` so the polynomial layer can treat
    them as ordinary variables while this table retains their meaning.
    """

    def __init__(self) -> None:
        self._atoms: dict[str, Atom] = {}
        self._intern: dict[tuple, str] = {}

    def __len__(self) -> int:
        return len(self._atoms)

    def is_atom_var(self, name: str) -> bool:
        return name.startswith("@")

    def intern(self, op: str, args: tuple[RatFunc, ...], meta: object = None) -> str:
        key = (op, tuple(_term_key(a) for a in args), meta)
        existing = self._intern.get(key)
        if existing is not None:
            return existing
        name = f"@{len(self._atoms)}"
        self._atoms[name] = Atom(op, args, meta)
        self._intern[key] = name
        return name

    def lookup(self, name: str) -> Atom:
        return self._atoms[name]

    def base_variables(self, name: str) -> frozenset[str]:
        """All non-atom variables an atom (transitively) depends on."""
        atom = self._atoms[name]
        out: set[str] = set()
        for arg in atom.args:
            for var in arg.variables():
                if self.is_atom_var(var):
                    out |= self.base_variables(var)
                else:
                    out.add(var)
        return frozenset(out)

    def term_base_variables(self, term: RatFunc) -> frozenset[str]:
        """All non-atom variables of a term, looking through atoms."""
        out: set[str] = set()
        for var in term.variables():
            if self.is_atom_var(var):
                out |= self.base_variables(var)
            else:
                out.add(var)
        return frozenset(out)

    def substitute_term(self, term: RatFunc, mapping: Mapping[str, RatFunc]) -> RatFunc:
        """Substitute ordinary variables, rebuilding any atoms whose argument
        terms mention the substituted variables."""
        if not mapping:
            return term
        targeted = frozenset(mapping)
        full: dict[str, RatFunc] = dict(mapping)
        for var in sorted(term.variables()):
            if self.is_atom_var(var) and var not in full:
                if self.base_variables(var) & targeted:
                    full[var] = RatFunc.var(self._rebuild(var, mapping))
        return term.substitute(full)

    def _rebuild(self, atom_var: str, mapping: Mapping[str, RatFunc]) -> str:
        atom = self._atoms[atom_var]
        new_args = tuple(self.substitute_term(a, mapping) for a in atom.args)
        return self.intern(atom.op, new_args, atom.meta)

    def atoms_in(self, term: RatFunc) -> frozenset[str]:
        """Atom variables occurring (transitively) in a term."""
        out: set[str] = set()

        def visit(t: RatFunc) -> None:
            for var in t.variables():
                if self.is_atom_var(var) and var not in out:
                    out.add(var)
                    for arg in self._atoms[var].args:
                        visit(arg)

        visit(term)
        return frozenset(out)
