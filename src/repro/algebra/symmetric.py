"""Rewriting symmetric polynomials in Newton power sums.

``MineExpressions`` (Algorithm 4) unrolls the RFS on a symbolic list
``[x1, ..., xk]``.  The resulting equations are polynomials in the element
variables, and — because folds of commutative accumulators are order-
insensitive — symmetric in them.  The only way the offline program can
observe the list is through quantities like ``Σ xi`` and ``Σ xi^2``; hence a
symmetric equation system can be re-expressed over the power sums
``p_d = Σ_i xi^d``, after which the element variables are gone and ordinary
*linear* elimination applies (this replaces the real quantifier elimination
REDUCE performs for the paper).

The rewrite is exact: we solve, over the rationals, for a representation of
each elem-variable coefficient polynomial in the basis of power-sum products
up to the appropriate degree, and fail (return ``None``) when the polynomial
is not symmetric or not expressible.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Sequence

from .linsolve import solve
from .polynomial import Monomial, Poly, mono_mul
from .ratfunc import RatFunc

#: Default variable names for power sums; ``PSUM_PREFIX + str(d)`` is
#: ``Σ_i xi^d`` over the *previous* stream elements.
PSUM_PREFIX = "_p"


def psum_name(d: int) -> str:
    return f"{PSUM_PREFIX}{d}"


@lru_cache(maxsize=None)
def _partitions(total: int) -> tuple[tuple[int, ...], ...]:
    """All integer partitions of ``total`` (parts in non-increasing order)."""
    if total == 0:
        return ((),)
    result: list[tuple[int, ...]] = []

    def recurse(remaining: int, max_part: int, acc: tuple[int, ...]) -> None:
        if remaining == 0:
            result.append(acc)
            return
        for part in range(min(remaining, max_part), 0, -1):
            recurse(remaining - part, part, acc + (part,))

    recurse(total, total, ())
    return tuple(result)


def power_sum_basis(max_degree: int) -> list[tuple[int, ...]]:
    """All power-sum products of total degree <= ``max_degree``.

    Each element is a partition ``(d1 >= d2 >= ...)`` denoting the product
    ``p_{d1} * p_{d2} * ...``; the empty partition is the constant 1.
    """
    basis: list[tuple[int, ...]] = []
    for total in range(max_degree + 1):
        basis.extend(_partitions(total))
    return basis


def expand_power_sum(d: int, elem_vars: Sequence[str]) -> Poly:
    """``p_d`` expanded over concrete element variables."""
    return Poly({((v, d),): Fraction(1) for v in elem_vars})


def _expand_partition(partition: tuple[int, ...], elem_vars: Sequence[str]) -> Poly:
    result = Poly.one()
    for d in partition:
        result = result * expand_power_sum(d, elem_vars)
    return result


def _partition_monomial(partition: tuple[int, ...]) -> Monomial:
    mono: Monomial = ()
    for d in partition:
        mono = mono_mul(mono, ((psum_name(d), 1),))
    return mono


def rewrite_symmetric(poly: Poly, elem_vars: Sequence[str]) -> Poly | None:
    """Rewrite ``poly`` (over ``elem_vars`` and arbitrary other variables)
    into a polynomial over power sums ``p_1, p_2, ...`` and the other
    variables.

    Returns ``None`` when some coefficient polynomial in the element
    variables is not expressible in power sums (e.g. the polynomial is not
    symmetric).
    """
    elem_set = frozenset(elem_vars)
    if not (poly.variables() & elem_set):
        return poly

    # Group terms by their non-element monomial part.
    buckets = poly.coefficients_in(elem_set)
    # buckets: inner (elem) monomial -> coefficient Poly over other vars.
    # Regroup: outer monomial -> Poly over elem vars.
    regrouped: dict[Monomial, dict[Monomial, Fraction]] = {}
    for inner, coeff_poly in buckets.items():
        for outer, coeff in coeff_poly.terms.items():
            regrouped.setdefault(outer, {})[inner] = coeff

    result = Poly.zero()
    for outer, inner_terms in regrouped.items():
        elem_poly = Poly(inner_terms)
        rewritten = _rewrite_pure(elem_poly, tuple(elem_vars))
        if rewritten is None:
            return None
        result = result + rewritten * Poly({outer: Fraction(1)})
    return result


def _rewrite_pure(poly: Poly, elem_vars: tuple[str, ...]) -> Poly | None:
    """Rewrite a polynomial purely over element variables into power sums."""
    degree = poly.degree()
    basis = power_sum_basis(degree)
    expansions = [_expand_partition(b, elem_vars) for b in basis]

    # Column space: all monomials over elem_vars seen anywhere.
    monomials: dict[Monomial, int] = {}
    for expansion in expansions:
        for mono in expansion.terms:
            monomials.setdefault(mono, len(monomials))
    for mono in poly.terms:
        monomials.setdefault(mono, len(monomials))

    rows = len(monomials)
    cols = len(basis)
    matrix = [[Fraction(0)] * cols for _ in range(rows)]
    rhs = [Fraction(0)] * rows
    for j, expansion in enumerate(expansions):
        for mono, coeff in expansion.terms.items():
            matrix[monomials[mono]][j] = coeff
    for mono, coeff in poly.terms.items():
        rhs[monomials[mono]] = coeff

    coeffs = solve(matrix, rhs)
    if coeffs is None:
        return None
    result = Poly.zero()
    for b, c in zip(basis, coeffs):
        if c != 0:
            result = result + Poly({_partition_monomial(b): c})
    return result


def rewrite_symmetric_ratfunc(term: RatFunc, elem_vars: Sequence[str]) -> RatFunc | None:
    num = rewrite_symmetric(term.num, elem_vars)
    den = rewrite_symmetric(term.den, elem_vars)
    if num is None or den is None:
        return None
    if den.is_zero():
        return None
    return RatFunc(num, den)


def shift_power_sums(max_degree: int, new_elem: str) -> dict[str, RatFunc]:
    """The substitution ``q_d -> p_d + x^d`` relating power sums over
    ``xs ++ [x]`` to power sums over ``xs`` plus the new element."""
    return {
        psum_name(d): RatFunc.from_poly(
            Poly.var(psum_name(d)) + Poly.var(new_elem, d)
        )
        for d in range(1, max_degree + 1)
    }
