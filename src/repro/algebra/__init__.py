"""Exact symbolic algebra substrate (the reproduction's REDUCE replacement).

Layers, bottom-up:

* :mod:`repro.algebra.polynomial` — sparse multivariate polynomials over
  ``Fraction``;
* :mod:`repro.algebra.ratfunc` — rational functions with lightweight
  normalization and cross-multiplication equality;
* :mod:`repro.algebra.atoms` — interning of opaque (non-polynomial) subterms;
* :mod:`repro.algebra.linsolve` — exact Gaussian elimination / nullspaces;
* :mod:`repro.algebra.symmetric` — power-sum rewriting of symmetric systems;
* :mod:`repro.algebra.elimination` — equational quantifier elimination;
* :mod:`repro.algebra.interpolation` — exact polynomial interpolation.
"""

from .atoms import Atom, AtomTable
from .elimination import (
    EliminationBlowup,
    EliminationResult,
    Equation,
    eliminate_variables,
    equation,
    find_definition,
    solve_linear,
    solve_target,
)
from .interpolation import fit_polynomial, lagrange_interpolate
from .linsolve import nullspace, rank, rref, solve
from .polynomial import Poly, poly_product, poly_sum
from .ratfunc import AlgebraError, RatFunc
from .symmetric import (
    expand_power_sum,
    power_sum_basis,
    psum_name,
    rewrite_symmetric,
    rewrite_symmetric_ratfunc,
    shift_power_sums,
)

__all__ = [
    "AlgebraError",
    "Atom",
    "AtomTable",
    "EliminationBlowup",
    "EliminationResult",
    "Equation",
    "Poly",
    "RatFunc",
    "eliminate_variables",
    "equation",
    "expand_power_sum",
    "find_definition",
    "fit_polynomial",
    "lagrange_interpolate",
    "nullspace",
    "poly_product",
    "poly_sum",
    "power_sum_basis",
    "psum_name",
    "rank",
    "rewrite_symmetric",
    "rewrite_symmetric_ratfunc",
    "rref",
    "shift_power_sums",
    "solve",
    "solve_linear",
    "solve_target",
]
