"""Shared on-disk plumbing for content-addressed object directories.

Both persistent stores — the synthesis result cache
(:mod:`repro.evaluation.cache`, ``objects/*.pkl``) and the compiled scheme
store (:mod:`repro.store`, ``schemes/*.json``) — keep hex-keyed files in a
two-level fan-out under a shared root, write them atomically, and support
the same maintenance verbs (``repro cache stats|clear|gc``).  This helper
owns that machinery once so the two stores cannot drift apart.

All maintenance I/O is best-effort: unreadable or vanishing entries are
skipped, never fatal — the conservative behaviour for caches on shared or
read-only file systems.
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path
from typing import Callable, Iterator


class ObjectDirectory:
    """A ``<root>/<subdir>/<key[:2]>/<key><suffix>`` file tree."""

    def __init__(self, root: Path, subdir: str, suffix: str) -> None:
        self.root = root
        self.subdir = subdir
        self.suffix = suffix

    def path(self, key: str) -> Path:
        # Two-level fan-out so a full run never piles thousands of entries
        # into one directory.
        return self.root / self.subdir / key[:2] / f"{key}{self.suffix}"

    def entries(self) -> Iterator[Path]:
        base = self.root / self.subdir
        if base.is_dir():
            yield from base.glob(f"*/*{self.suffix}")

    def write_atomic(self, key: str, write: Callable, binary: bool = False) -> None:
        """Create parents and write via temp file + ``os.replace`` so
        readers and Ctrl-C never observe a torn entry.  ``write(handle)``
        does the serialization; OSError propagates to the caller, which
        decides whether an unwritable store is fatal (it never is)."""
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            if binary:
                handle = os.fdopen(fd, "wb")
            else:
                handle = os.fdopen(fd, "w", encoding="utf-8")
            with handle:
                write(handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- maintenance (the ``repro cache`` subcommand) ---------------------

    def entry_stats(self) -> tuple[int, int]:
        """``(entry count, total bytes)`` currently on disk."""
        count = size = 0
        for path in self.entries():
            try:
                size += path.stat().st_size
                count += 1
            except OSError:
                pass
        return count, size

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def gc(self, max_age_s: float) -> int:
        """Delete entries older than ``max_age_s`` seconds (by mtime);
        returns the number removed."""
        cutoff = time.time() - max_age_s
        removed = 0
        for path in self.entries():
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                pass
        return removed
