"""The shard worker: one process, one slice of the key space.

A worker owns the :class:`~repro.runtime.keyed.KeyedOperator` partitions for
every key the server's hash ring routes to it.  Its whole life is a loop on
the command pipe:

* ``("batch", seq, elements)`` — drain the elements through
  ``KeyedOperator.push_many`` (each key's run goes through the compiled
  batch :class:`~repro.ir.compile.StepKernel` hot loop), checkpoint to disk
  if ``checkpoint_every`` elements accumulated since the last one, then
  acknowledge with ``("ack", seq, count, checkpointed_count)``.
* ``("drain", seq)`` — write a final checkpoint and *return* the full keyed
  checkpoint dict, which ships to the server over the supervisor's result
  pipe (:func:`repro.supervisor._child_entry` protocol).

Checkpoints are written atomically
(:func:`repro.runtime.checkpoint.save_checkpoint` — temp file +
``os.replace``), so a SIGKILL at any instant leaves either the previous or
the new complete checkpoint on disk; never a torn file.  The ack carries
``checkpointed_count`` precisely so the server knows which prefix of the
shard's stream is durable: everything after it stays in the server's replay
buffer until a later checkpoint covers it.

Restore is the worker's own first move: spawned with ``resume=True`` it
reloads its checkpoint file (if present) and continues from that count;
the server replays the non-durable suffix.
"""

from __future__ import annotations

import os
from typing import Callable

from ..runtime.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from ..runtime.keyed import KeyedOperator


def field_extractor(field) -> Callable | None:
    """Turn a CLI-style field index into an extractor (``None`` and
    callables pass through) — tuple indices are picklable, closures are
    not, so the index form is what crosses process boundaries portably."""
    if field is None or callable(field):
        return field
    index = int(field)
    return lambda element: element[index]


def shard_worker(
    shard_id: int,
    cmd_conn,
    ack_conn,
    scheme,
    key_field,
    value_field,
    extra: dict,
    checkpoint_path: str,
    checkpoint_every: int,
    jit: bool | None,
    resume: bool,
):
    """Process body of one shard (run under the service supervisor).

    Returns the final keyed checkpoint dict (the supervisor ships it back
    as the service's ``ok`` result).  Raises — which the supervisor
    reports as an ``error`` result — on malformed commands or scheme-step
    failures; those are deterministic, so the server must *not* restart
    and replay them.
    """
    key_fn = field_extractor(key_field)
    value_fn = field_extractor(value_field)
    op = None
    if resume and os.path.exists(checkpoint_path):
        op = load_checkpoint(checkpoint_path, key_fn=key_fn, value_fn=value_fn)
        if not isinstance(op, KeyedOperator):
            raise CheckpointError(
                f"shard {shard_id} checkpoint {checkpoint_path!r} is not keyed"
            )
        if op.scheme != scheme:
            raise CheckpointError(
                f"shard {shard_id} checkpoint was taken under a different scheme"
            )
        op.extra.update(extra)
        for part in op.partitions.values():
            part.extra.update(extra)
    if op is None:
        op = KeyedOperator(
            scheme,
            key_fn,
            value_fn=value_fn,
            extra=extra,
            name=f"shard-{shard_id}",
            jit=jit,
        )
    checkpointed = op.count  # a restored checkpoint is durable by definition

    while True:
        try:
            message = cmd_conn.recv()
        except (EOFError, OSError):
            # Server gone (crash or hard close): parent-death SIGKILL is the
            # usual exit; this path covers an explicitly closed pipe.
            return op.checkpoint()
        kind = message[0]
        if kind == "batch":
            _, seq, elements = message
            op.push_many(elements)
            if checkpoint_every and op.count - checkpointed >= checkpoint_every:
                save_checkpoint(op, checkpoint_path)
                checkpointed = op.count
            ack_conn.send(("ack", seq, op.count, checkpointed))
        elif kind == "drain":
            save_checkpoint(op, checkpoint_path)
            return op.checkpoint()
        else:
            raise ValueError(f"shard {shard_id}: unknown command {kind!r}")
