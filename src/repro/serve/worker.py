"""The shard worker: one process, one slice of the key space.

A worker owns the :class:`~repro.runtime.keyed.KeyedOperator` partitions for
every key the server's hash ring routes to it.  Its whole life is a loop on
the command pipe:

* ``("batch", seq, elements)`` — drain the elements through
  ``KeyedOperator.push_many`` (each key's run goes through the compiled
  batch :class:`~repro.ir.compile.StepKernel` hot loop), checkpoint to disk
  if ``checkpoint_every`` elements accumulated since the last one, then
  acknowledge with ``("ack", seq, consumed, durable)``.
* ``("drain", seq)`` — write a final checkpoint and *return* the final
  payload (see below), which ships to the server over the supervisor's
  result pipe (:func:`repro.supervisor._child_entry` protocol).

While *idle* — no command within ``heartbeat_every_s`` — the worker sends
``("hb", consumed)`` through the ack pipe.  That is the liveness signal the
server's per-shard deadline watches: a worker that neither acks nor
heartbeats (wedged in a scheme step, swapped out, stalled by fault
injection) is SIGKILLed and restored like a crash.

Checkpoints are a *lineage* of integrity-verified generations
(:func:`repro.runtime.checkpoint.save_generation` — BLAKE2b digest +
monotonic generation number, newest ``keep_generations`` retained), written
atomically, so a SIGKILL at any instant leaves restorable state on disk.
The ``durable`` field of each ack is deliberately conservative: it is the
consumed count of the *oldest retained* generation, not the newest — if
restore ever has to fall back past a corrupt newest generation, the
server's replay buffer still covers everything after the generation
actually restored.

Restore is the worker's own first move: spawned with ``resume=True`` it
walks its lineage newest-first, quarantines damaged generations
(``*.corrupt``), restores the newest intact one, and continues from that
offset; the server replays the non-durable suffix.  ``consumed`` (elements
handed off to this shard) is tracked separately from ``op.count``
(elements applied): with ``on_error="quarantine"`` a deterministically
failing element is retried once and then dead-lettered — appended to a
per-shard JSONL file as ``{"shard", "seq", "element", "error"}`` — and
skipped, so the two counts diverge by exactly the dead-lettered elements.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable

from ..faults import ShardFaultPlan
from ..runtime.checkpoint import (
    CheckpointError,
    list_generations,
    load_latest_generation,
    quarantine_generation,
    restore_keyed,
    save_generation,
    verify_generation,
)
from ..runtime.keyed import KeyedOperator


def field_extractor(field) -> Callable | None:
    """Turn a CLI-style field index into an extractor (``None`` and
    callables pass through) — tuple indices are picklable, closures are
    not, so the index form is what crosses process boundaries portably."""
    if field is None or callable(field):
        return field
    index = int(field)
    return lambda element: element[index]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a shard worker needs, in one picklable bundle.

    The server builds one per spawn; ``incarnation`` counts restarts (0 for
    the first life), which fault plans use to avoid re-triggering one-shot
    faults like stalls in the restored replacement.
    """

    shard_id: int
    scheme: object
    key_field: object
    value_field: object
    checkpoint_base: str  #: lineage prefix; files are {base}.genNNNNNNNN.json
    checkpoint_every: int
    extra: dict = field(default_factory=dict)
    keep_generations: int = 3
    jit: bool | None = None
    backend: str | None = None  #: None/"exact" | "auto" | "columnar"
    bounds: object = None  #: AnalysisBounds licensing columnar admission
    resume: bool = False
    heartbeat_every_s: float = 1.0
    on_error: str = "fail"  #: "fail" | "quarantine"
    deadletter_path: str | None = None
    faults: ShardFaultPlan | None = None
    incarnation: int = 0


def _restore_lineage(config: WorkerConfig, key_fn, value_fn):
    """Restore from the newest intact generation; returns ``(op, consumed,
    history)`` or ``None`` when no generations exist.

    ``history`` is the surviving ``(generation, consumed)`` lineage oldest
    first — its head is the durable floor acks report.  Older generations
    that fail verification are quarantined here too, so the floor never
    names a file restore could not actually use.
    """
    latest = load_latest_generation(config.checkpoint_base)
    if latest is None:
        return None
    generation, consumed, payload = latest
    op = restore_keyed(payload, key_fn, value_fn=value_fn, jit=config.jit,
                       backend=config.backend, bounds=config.bounds)
    if op.scheme != config.scheme:
        raise CheckpointError(
            f"shard {config.shard_id} checkpoint was taken under a different scheme"
        )
    op.extra.update(config.extra)
    for part in op.partitions.values():
        part.extra.update(config.extra)
    history = []
    for gen, path in list_generations(config.checkpoint_base):
        if gen == generation:
            history.append((gen, consumed))
        elif gen < generation:
            try:
                _, gen_consumed, _ = verify_generation(path)
                history.append((gen, gen_consumed))
            except CheckpointError:
                quarantine_generation(path)
    history.sort()
    return op, consumed, history


def _dead_letter(config: WorkerConfig, element, seq: int, error: str) -> None:
    """Append one dead-letter record.  Appends are at-least-once across
    crash/replay (the same element re-fails on replay); readers dedupe by
    ``(shard, seq)`` — the element's absolute offset in the shard's
    sequence, which replay reproduces exactly."""
    line = json.dumps(
        {
            "shard": config.shard_id,
            "seq": seq,
            "element": repr(element),
            "error": error,
        },
        sort_keys=True,
    )
    with open(config.deadletter_path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def _apply(config: WorkerConfig, op: KeyedOperator, elements: list, consumed: int) -> int:
    """Push one batch; returns how many elements were dead-lettered.

    ``push_many`` has exact partial-progress semantics — on failure the
    prefix is applied and ``op.count`` is the resumable offset — so the
    failing element is identified positionally, retried once (state is
    already rewound to just before it), and only an *identically repeating*
    failure is quarantined.  A retry that fails differently is not
    deterministic, so it surfaces as a worker error instead.
    """
    if config.on_error != "quarantine":
        op.push_many(elements)
        return 0
    dead = 0
    offset = 0
    while offset < len(elements):
        before = op.count
        try:
            op.push_many(elements[offset:])
            return dead
        except Exception as first:
            offset += op.count - before
            failing = elements[offset]
            try:
                op.push_many([failing])
                offset += 1
            except Exception as again:
                if repr(again) != repr(first):
                    raise
                _dead_letter(config, failing, consumed + offset, repr(again))
                dead += 1
                offset += 1
    return dead


def shard_worker(config: WorkerConfig, cmd_conn, ack_conn):
    """Process body of one shard (run under the service supervisor).

    Returns the final payload dict ``{"checkpoint": keyed checkpoint,
    "consumed": handed-off count, "dead_lettered": skipped count}`` (the
    supervisor ships it back as the service's ``ok`` result).  Raises —
    which the supervisor reports as an ``error`` result — on malformed
    commands or deterministic scheme-step failures; those would fail again
    on replay, so the server must *not* restart them.
    """
    key_fn = field_extractor(config.key_field)
    value_fn = field_extractor(config.value_field)
    op = None
    consumed = 0
    history: list[tuple[int, int]] = []  # (generation, consumed), oldest first
    if config.resume:
        restored = _restore_lineage(config, key_fn, value_fn)
        if restored is not None:
            op, consumed, history = restored
    if op is None:
        op = KeyedOperator(
            config.scheme,
            key_fn,
            value_fn=value_fn,
            extra=config.extra,
            name=f"shard-{config.shard_id}",
            jit=config.jit,
            backend=config.backend,
            bounds=config.bounds,
        )
    generation = history[-1][0] if history else 0
    checkpointed = consumed  # consumed count at the last checkpoint write
    writes = 0  # per-incarnation write ordinal (torn-write faults count these)
    stalled = False
    dead_lettered = 0

    def durable_floor() -> int:
        # The oldest retained generation's consumed count: any generation
        # restore could fall back to covers at least this much, so the
        # server may trim its replay buffer exactly this far.
        return history[0][1] if history else 0

    def write_generation() -> None:
        nonlocal generation, checkpointed, writes
        generation += 1
        writes += 1
        path = save_generation(
            op.checkpoint(),
            config.checkpoint_base,
            generation=generation,
            consumed=consumed,
            keep=config.keep_generations,
        )
        if config.faults is not None:
            config.faults.mutate_after_write(path, generation, writes)
        history.append((generation, consumed))
        del history[: -config.keep_generations]
        checkpointed = consumed

    def final_payload() -> dict:
        return {
            "checkpoint": op.checkpoint(),
            "consumed": consumed,
            "dead_lettered": dead_lettered,
        }

    while True:
        try:
            # Heartbeat while idle: no command within a beat means the
            # server sees ("hb", consumed) instead of silence, so only a
            # genuinely wedged worker trips the liveness deadline.
            while not cmd_conn.poll(config.heartbeat_every_s):
                ack_conn.send(("hb", consumed))
            message = cmd_conn.recv()
        except (EOFError, OSError):
            # Server gone (crash or hard close): parent-death SIGKILL is the
            # usual exit; this path covers an explicitly closed pipe.
            return final_payload()
        kind = message[0]
        if kind == "batch":
            _, seq, elements = message
            dead_lettered += _apply(config, op, elements, consumed)
            consumed += len(elements)
            if config.faults is not None and config.faults.should_stall(
                consumed, config.incarnation, stalled
            ):
                # A hang mid-processing: no checkpoint, no ack, no
                # heartbeat.  Only the server's liveness deadline ends it.
                stalled = True
                time.sleep(config.faults.stall_secs)
            if config.checkpoint_every and consumed - checkpointed >= config.checkpoint_every:
                write_generation()
            try:
                ack_conn.send(("ack", seq, consumed, durable_floor()))
            except OSError:
                return final_payload()
        elif kind == "drain":
            write_generation()
            return final_payload()
        else:
            raise ValueError(f"shard {config.shard_id}: unknown command {kind!r}")
