"""The streaming server: sharded, checkpointed, crash-restoring ingestion.

:class:`StreamServer` turns the keyed runtime into a *system*: N shard
worker processes (:mod:`repro.serve.worker`), each owning the
:class:`~repro.runtime.keyed.KeyedOperator` partitions for the slice of the
key space a consistent-hash ring (:mod:`repro.serve.hashring`) assigns it.
Elements are routed by key, coalesced into batches, and handed off over
pipes; each worker drains its hand-offs through the compiled batch
:class:`~repro.ir.compile.StepKernel` hot loop and checkpoints its
partitions to disk every ``checkpoint_every`` elements (atomically — see
:mod:`repro.runtime.checkpoint`).

**Delivery contract.**  The final per-key states of a serve run are
bit-identical to a single-process ``KeyedOperator`` run over the same
element sequence — *including* runs where workers were SIGKILLed
mid-stream.  The mechanism is a per-shard replay buffer with exactly-once
delivery into the aggregates:

* every batch sent to a shard stays in the server's buffer, tagged with
  its absolute offset in that shard's element sequence;
* each ack carries the shard's *checkpointed* count — the durable prefix —
  and the buffer drops exactly the batches that prefix covers;
* when a worker dies, the replacement restores the last checkpoint (count
  ``C``) and the server re-sends every buffered element from offset ``C``
  on.  Scheme steps are pure and deterministic, so replaying the
  non-durable suffix reproduces the lost state exactly; elements the
  checkpoint already covers are never re-applied.

A crash between a checkpoint write and its ack only means the server
replays from an older offset than it strictly needed to — the checkpoint
count in the file is what the replacement worker restores and what the
replay is sliced against, so no element is applied twice.

**Backpressure.**  The inbound queue per shard is bounded: at most
``max_inflight`` unacknowledged batches.  ``push`` blocks once the hottest
shard's queue is full — the load generator slows to the system's actual
drain rate instead of ballooning memory.  Memory per shard is bounded by
the replay window: O(``checkpoint_every`` + ``batch_size`` x
``max_inflight``) elements.

Workers are spawned, reaped, and restarted through
:class:`repro.supervisor.ServiceSupervisor`; deterministic worker errors
(a scheme step raising on an element) are *not* restarted — replay would
fail forever — but surface as :class:`ServeError` (or, with
``on_error="quarantine"``, are retried once and dead-lettered by the
worker itself — see :mod:`repro.serve.worker`).

**Hardening.**  Checkpoints are integrity-verified *lineages* (BLAKE2b
digest + monotonic generation number, newest ``keep_generations``
retained); restore quarantines damaged generations as ``*.corrupt`` and
falls back to the newest intact one, and only an entirely corrupt lineage
is a refusal (never a silent fresh start).  Workers heartbeat through the
ack pipe while idle; a shard that neither acks nor heartbeats within
``liveness_timeout_s`` is SIGKILLed and restored like a crash (a *hung*
worker, not just a dead one).  Restarts pay a jittered exponential
backoff and draw from a sliding-window budget (``restart_budget`` within
``restart_window_s``) instead of a lifetime cap, so an old incident never
counts against a fresh one.  Fault injection threads through the same
seams (:mod:`repro.faults`): stalls and checkpoint corruption ride into
workers on their :class:`~repro.serve.worker.WorkerConfig`, kills are
driven by the pusher, and ``repro chaos`` differentially verifies the lot.
"""

from __future__ import annotations

import json
import math
import random
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, Iterable, Mapping

import multiprocessing as mp

from ..core.scheme import OnlineScheme
from ..faults import FaultPlan
from ..runtime.checkpoint import (
    CheckpointError,
    atomic_write_text,
    load_latest_generation,
    restore_keyed,
)
from ..runtime.keyed import KeyedOperator
from ..supervisor import ServiceSupervisor, _mp_context
from ..ir.values import Value
from .hashring import HashRing
from .worker import WorkerConfig, field_extractor, shard_worker

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "repro/serve-manifest"
#: v2: per-shard checkpoints became digest-verified generation lineages
#: ({base}.genNNNNNNNN.json) — a v1 directory's single-file layout cannot
#: be resumed, so the version check below refuses it.
MANIFEST_VERSION = 2

#: How long one wait for acks/deaths may sleep before re-checking (bounds
#: crash-detection latency while the server is blocked on backpressure).
_WAIT_S = 0.25


class ServeError(RuntimeError):
    """The server cannot make progress (worker error, restart budget
    exhausted, checkpoint-directory mismatch, ...)."""


def percentile(values: Iterable[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 1]) of ``values``;
    ``nan`` for an empty sample."""
    data = sorted(values)
    if not data:
        return math.nan
    position = q * (len(data) - 1)
    lo = math.floor(position)
    hi = math.ceil(position)
    if lo == hi:
        return data[lo]
    fraction = position - lo
    return data[lo] * (1 - fraction) + data[hi] * fraction


@dataclass
class ServeResult:
    """Everything a drained server knows: the merged aggregates plus the
    run's operational telemetry."""

    operator: KeyedOperator  #: merged single-process-equivalent operator
    checkpoint: dict  #: merged keyed checkpoint (JSON-ready, loadable)
    count: int  #: total elements *applied* across shards
    shard_counts: dict[int, int]  #: elements handed off per shard
    restarts: int  #: worker incarnations beyond the first, total
    elapsed_s: float  #: start() to drain() wall clock
    consumed: int = 0  #: elements handed off (count + dead_lettered)
    dead_lettered: int = 0  #: elements quarantined to dead-letter files
    hung_restarts: int = 0  #: restarts triggered by the liveness deadline
    quarantined: int = 0  #: checkpoint generations renamed *.corrupt
    latencies_s: list[float] = field(repr=False, default_factory=list)

    @property
    def states(self) -> dict[Hashable, tuple]:
        """Final accumulator tuple per key — the differential contract's
        unit of comparison."""
        return {key: part.state for key, part in self.operator.partitions.items()}

    def snapshot(self) -> dict[Hashable, Value]:
        return self.operator.snapshot()

    def p99_latency_s(self) -> float:
        """99th percentile batch hand-off latency (send to ack)."""
        return percentile(self.latencies_s, 0.99)


class _Batch:
    __slots__ = ("seq", "start", "elements", "sent_at", "acked")

    def __init__(self, seq: int, start: int, elements: list, sent_at: float):
        self.seq = seq
        self.start = start
        self.elements = elements
        self.sent_at = sent_at
        self.acked = False


class _Shard:
    __slots__ = (
        "sid", "cmd", "ack", "pending", "sent", "ckpt_count", "buffer",
        "inflight", "final", "drain_sent", "last_seen", "restart_times",
    )

    def __init__(self, sid: int):
        self.sid = sid
        self.cmd = None  #: server's send end of the command pipe
        self.ack = None  #: server's recv end of the ack pipe
        self.pending: list = []
        self.sent = 0  #: absolute offset: elements handed off so far
        self.ckpt_count = 0  #: durable prefix (last acked checkpoint floor)
        self.buffer: deque[_Batch] = deque()
        self.inflight = 0  #: sent, unacknowledged batches
        self.final: dict | None = None  #: final worker payload after drain
        self.drain_sent = False
        self.last_seen = 0.0  #: monotonic instant of the last ack/heartbeat
        self.restart_times: list[float] = []  #: sliding restart-budget window


class StreamServer:
    """A long-running sharded deployment of one keyed scheme.

    >>> server = StreamServer(scheme, key_field=1, value_field=0,
    ...                       shards=4, checkpoint_dir="ckpts")
    >>> server.start()
    >>> server.push_many(source)          # blocks under backpressure
    >>> result = server.drain()           # flush + merge final aggregates
    >>> result.states                     # == single-process KeyedOperator

    ``key_field`` / ``value_field`` take a tuple index (portable across
    processes) or a callable (fork platforms).  A checkpoint directory that
    already holds a manifest is *resumed*: shard counts continue from their
    checkpoints, provided the manifest's shard count and scheme match
    (``fresh=True`` wipes it instead).
    """

    def __init__(
        self,
        scheme: OnlineScheme,
        *,
        shards: int,
        checkpoint_dir,
        key_field,
        value_field=None,
        extra: Mapping[str, Value] | None = None,
        checkpoint_every: int = 1000,
        batch_size: int = 64,
        max_inflight: int = 8,
        restart_budget: int = 5,
        restart_window_s: float = 60.0,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        liveness_timeout_s: float = 10.0,
        keep_generations: int = 3,
        on_error: str = "fail",
        faults: FaultPlan | None = None,
        seed: int | None = None,
        ring_replicas: int = 64,
        jit: bool | None = None,
        backend: str | None = None,
        bounds=None,
        fresh: bool = False,
    ):
        if backend not in (None, "exact", "auto", "columnar"):
            raise ValueError(f"unknown backend {backend!r}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if keep_generations < 1:
            raise ValueError(f"keep_generations must be >= 1, got {keep_generations}")
        if on_error not in ("fail", "quarantine"):
            raise ValueError(f"on_error must be 'fail' or 'quarantine', got {on_error!r}")
        if liveness_timeout_s <= 0:
            raise ValueError(f"liveness_timeout_s must be > 0, got {liveness_timeout_s}")
        self.scheme = scheme
        self.shards = shards
        self.checkpoint_dir = Path(checkpoint_dir)
        self.key_field = key_field
        self.value_field = value_field
        self.extra = dict(extra or {})
        self.checkpoint_every = checkpoint_every
        self.batch_size = batch_size
        self.max_inflight = max_inflight
        self.restart_budget = restart_budget
        self.restart_window_s = restart_window_s
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.liveness_timeout_s = liveness_timeout_s
        self.keep_generations = keep_generations
        self.on_error = on_error
        self.faults = faults.validate(shards) if faults is not None else None
        self.jit = jit
        self.backend = backend
        self.bounds = bounds
        self.fresh = fresh
        self.ring = HashRing(shards, replicas=ring_replicas)
        self.latencies_s: list[float] = []
        self.quarantine_events: list[tuple[str, str]] = []  #: (path, error)
        self._rng = random.Random(seed)  #: backoff jitter (seedable for chaos)
        self._key_fn = field_extractor(key_field)
        self._ctx = _mp_context()
        self._supervisor: ServiceSupervisor | None = None
        self._shards: dict[int, _Shard] = {}
        self._seq = 0
        self._started_at = 0.0
        self._draining = False
        self._closed = False
        self._hung_restarts = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "StreamServer":
        """Create/validate the checkpoint directory and spawn the shard
        workers (resuming their checkpoints when the directory holds a
        compatible previous deployment)."""
        if self._supervisor is not None:
            raise ServeError("server already started")
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        resume = self._prepare_manifest()
        self._supervisor = ServiceSupervisor(daemon=True)
        for sid in range(self.shards):
            shard = _Shard(sid)
            self._shards[sid] = shard
            if resume:
                shard.sent = shard.ckpt_count = self._checkpoint_count(sid)
            self._spawn_shard(shard, resume=resume, restart=False)
        self._started_at = time.monotonic()
        return self

    def __enter__(self) -> "StreamServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Hard stop: kill every worker (their last checkpoints remain on
        disk; a later server over the same directory resumes them)."""
        if self._closed:
            return
        self._closed = True
        if self._supervisor is not None:
            self._supervisor.shutdown()
        for shard in self._shards.values():
            for conn in (shard.cmd, shard.ack):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass

    # -- ingestion ---------------------------------------------------------

    def push(self, element: Value) -> None:
        """Route one element to its key's shard; blocks when that shard's
        inbound queue is full (backpressure)."""
        if self._supervisor is None or self._draining or self._closed:
            raise ServeError("server is not accepting elements")
        shard = self._shards[self.ring.shard_for(self._key_fn(element))]
        shard.pending.append(element)
        if len(shard.pending) >= self.batch_size:
            self._flush_shard(shard)

    def push_many(self, elements: Iterable[Value]) -> None:
        for element in elements:
            self.push(element)

    def kill_shard(self, sid: int) -> None:
        """SIGKILL a shard's current worker process (fault injection; the
        next interaction triggers crash-restore)."""
        self._supervisor.kill(sid)

    def restart_count(self) -> int:
        return sum(self._supervisor.restarts(sid) for sid in self._shards)

    # -- drain -------------------------------------------------------------

    def drain(self) -> ServeResult:
        """Flush every pending batch, ask each worker for its final
        checkpoint, and merge the shards into one
        :class:`~repro.runtime.keyed.KeyedOperator`-equivalent result.

        Workers that die mid-drain are restored and re-drained; the merged
        aggregates are bit-identical to a single-process run regardless.
        """
        if self._supervisor is None:
            raise ServeError("server was never started")
        if self._draining:
            raise ServeError("server already drained")
        for shard in self._shards.values():
            self._flush_shard(shard)
        self._draining = True
        for shard in self._shards.values():
            self._send_drain(shard)
        while any(s.final is None for s in self._shards.values()):
            self._pump(block=True)
        elapsed = time.monotonic() - self._started_at
        return self._merge(elapsed)

    # -- internals: spawn/restore ------------------------------------------

    def _manifest(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "shards": self.shards,
            "checkpoint_every": self.checkpoint_every,
            "scheme": self.scheme.to_dict(),
        }

    def _prepare_manifest(self) -> bool:
        """Write or validate the manifest; returns True when resuming."""
        path = self.checkpoint_dir / MANIFEST_NAME
        if self.fresh or not path.exists():
            if self.fresh:
                for entry in self.checkpoint_dir.iterdir():
                    name = entry.name
                    if name.startswith(("shard-", "deadletter-")):
                        entry.unlink(missing_ok=True)
            atomic_write_text(path, json.dumps(self._manifest(), indent=2, sort_keys=True) + "\n")
            return False
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(
                f"serve manifest {path} is torn or not JSON ({exc}); "
                "pass --fresh (fresh=True) to rebuild the checkpoint "
                "directory, or point at a clean one"
            ) from None
        if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
            raise ServeError(
                f"{path} is not a serve manifest; pass --fresh (fresh=True) "
                "to rebuild the checkpoint directory"
            )
        if manifest.get("version") != MANIFEST_VERSION:
            raise ServeError(
                f"checkpoint dir {self.checkpoint_dir} was written by a build "
                f"with manifest version {manifest.get('version')!r} (this one "
                f"writes {MANIFEST_VERSION}, with a different checkpoint "
                "layout); use a fresh directory or fresh=True"
            )
        if manifest.get("shards") != self.shards:
            raise ServeError(
                f"checkpoint dir {self.checkpoint_dir} was written by a "
                f"{manifest.get('shards')}-shard deployment, not {self.shards} "
                "(the hash ring would route keys to the wrong checkpoints); "
                "use a fresh directory or fresh=True"
            )
        if manifest.get("scheme") != self.scheme.to_dict():
            raise ServeError(
                f"checkpoint dir {self.checkpoint_dir} belongs to a different "
                "scheme; use a fresh directory or fresh=True"
            )
        return True

    def _checkpoint_base(self, sid: int) -> Path:
        """Lineage prefix: generations are ``shard-NN.genNNNNNNNN.json``."""
        return self.checkpoint_dir / f"shard-{sid:02d}"

    def _deadletter_path(self, sid: int) -> Path:
        return self.checkpoint_dir / f"deadletter-{sid:02d}.jsonl"

    def _note_quarantine(self, path, error) -> None:
        self.quarantine_events.append((str(path), str(error)))

    def _checkpoint_count(self, sid: int) -> int:
        """The durable element count of a shard's newest *intact*
        checkpoint generation (0 without any) — what a restored worker will
        resume from, hence where replay must start.  Damaged generations
        are quarantined on the way; an entirely corrupt lineage is a
        refusal, never a silent restart from zero."""
        try:
            latest = load_latest_generation(
                self._checkpoint_base(sid), on_quarantine=self._note_quarantine
            )
        except CheckpointError as exc:
            raise ServeError(f"shard {sid} cannot be restored: {exc}") from None
        return 0 if latest is None else latest[1]

    def _worker_config(self, shard: _Shard, *, resume: bool, incarnation: int) -> WorkerConfig:
        # A worker that neither acks nor heartbeats for liveness_timeout_s
        # is presumed hung; beat several times per deadline so scheduling
        # hiccups alone cannot trip it.
        heartbeat = max(0.05, min(1.0, self.liveness_timeout_s / 5.0))
        return WorkerConfig(
            shard_id=shard.sid,
            scheme=self.scheme,
            key_field=self.key_field,
            value_field=self.value_field,
            extra=self.extra,
            checkpoint_base=str(self._checkpoint_base(shard.sid)),
            checkpoint_every=self.checkpoint_every,
            keep_generations=self.keep_generations,
            jit=self.jit,
            backend=self.backend,
            bounds=self.bounds,
            resume=resume,
            heartbeat_every_s=heartbeat,
            on_error=self.on_error,
            deadletter_path=str(self._deadletter_path(shard.sid)),
            faults=self.faults.shard_plan(shard.sid) if self.faults else None,
            incarnation=incarnation,
        )

    def _spawn_shard(self, shard: _Shard, *, resume: bool, restart: bool) -> None:
        cmd_recv, cmd_send = self._ctx.Pipe(duplex=False)
        ack_recv, ack_send = self._ctx.Pipe(duplex=False)
        incarnation = self._supervisor.restarts(shard.sid) + 1 if restart else 0
        config = self._worker_config(shard, resume=resume, incarnation=incarnation)
        args = (config, cmd_recv, ack_send)
        if restart:
            self._supervisor.restart(shard.sid, args=args)
        else:
            self._supervisor.start(shard.sid, shard_worker, args)
        # Close this process's copies of the worker-side ends: the worker's
        # death must surface as EPIPE on cmd.send and EOF on ack.recv, which
        # only happens once no other process holds those ends open.
        cmd_recv.close()
        ack_send.close()
        shard.cmd = cmd_send
        shard.ack = ack_recv
        shard.last_seen = time.monotonic()

    def _restore_shard(self, shard: _Shard) -> None:
        """Crash-restore: respawn the worker from its last checkpoint and
        replay the non-durable suffix of the shard's element sequence."""
        result = self._supervisor.result(shard.sid)
        if result is not None and result.kind != "crashed":
            # Deterministic failures (scheme step raised, bad command)
            # would fail again on replay; surface them instead.
            raise ServeError(f"shard {shard.sid} worker failed: {result.kind} {result.message}")
        # Sliding-window restart budget: only restarts inside the window
        # count, so an incident an hour ago never dooms this one — but a
        # crash loop exhausts the budget fast no matter how long it runs.
        now = time.monotonic()
        shard.restart_times = [t for t in shard.restart_times if now - t < self.restart_window_s]
        if len(shard.restart_times) >= self.restart_budget:
            raise ServeError(
                f"shard {shard.sid} exhausted its restart budget "
                f"({self.restart_budget} restarts within {self.restart_window_s:g}s); "
                "giving up"
            )
        # Jittered exponential backoff: doubling per recent restart, the
        # jitter (x0.5–1.5, from the seedable RNG) de-synchronizing shards
        # that all crashed on the same cause.
        delay = min(
            self.backoff_max_s,
            self.backoff_base_s * (2 ** len(shard.restart_times)),
        ) * (0.5 + self._rng.random())
        shard.restart_times.append(now)
        if delay > 0:
            time.sleep(delay)
        for conn in (shard.cmd, shard.ack):
            try:
                conn.close()
            except OSError:
                pass
        durable = self._checkpoint_count(shard.sid)
        if durable < shard.ckpt_count:
            raise ServeError(
                f"shard {shard.sid} checkpoint went backwards "
                f"({durable} < {shard.ckpt_count})"
            )
        self._spawn_shard(shard, resume=True, restart=True)
        # Rebuild the replay window: everything past the durable prefix is
        # re-sent; the checkpoint already covers the rest.
        old = list(shard.buffer)
        shard.buffer.clear()
        shard.inflight = 0
        shard.ckpt_count = durable
        for batch in old:
            end = batch.start + len(batch.elements)
            if end <= durable:
                continue
            cut = max(0, durable - batch.start)
            self._transmit(shard, batch.elements[cut:], batch.start + cut)
        if self._draining:
            shard.drain_sent = False
            self._send_drain(shard)

    # -- internals: hand-off loop ------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _flush_shard(self, shard: _Shard) -> None:
        if not shard.pending:
            return
        elements, shard.pending = shard.pending, []
        while shard.inflight >= self.max_inflight:
            self._pump(block=True, shard=shard)
        self._transmit(shard, elements, shard.sent)

    def _transmit(self, shard: _Shard, elements: list, start: int) -> None:
        """Send one batch (recording it in the replay buffer first — a send
        that dies mid-flight is replayed from the buffer)."""
        if not elements:
            return
        seq = self._next_seq()
        batch = _Batch(seq, start, elements, time.monotonic())
        shard.buffer.append(batch)
        shard.inflight += 1
        shard.sent = max(shard.sent, start + len(elements))
        try:
            shard.cmd.send(("batch", seq, elements))
        except (BrokenPipeError, OSError):
            self._restore_shard(shard)

    def _send_drain(self, shard: _Shard) -> None:
        if shard.drain_sent or shard.final is not None:
            return
        shard.drain_sent = True
        try:
            shard.cmd.send(("drain", self._next_seq()))
        except (BrokenPipeError, OSError):
            self._restore_shard(shard)

    def _pump(self, *, block: bool, shard: _Shard | None = None) -> None:
        """One supervision round: reap worker deaths/finals, drain acks,
        kill hung workers; optionally block until something happens
        (bounded by ``_WAIT_S`` so a SIGKILLed worker is noticed even while
        we wait on its acks)."""
        progressed = False
        for sid in self._supervisor.poll(0.0):
            progressed = True
            self._on_finished(self._shards[sid])
        for each in self._shards.values():
            progressed |= self._drain_acks(each)
        self._check_liveness()
        if progressed or not block:
            return
        waitables = []
        targets = [shard] if shard is not None else list(self._shards.values())
        for each in targets:
            if each.final is None and each.ack is not None:
                waitables.append(each.ack)
        if waitables:
            try:
                mp.connection.wait(waitables, timeout=_WAIT_S)
            except OSError:  # a pipe died mid-wait; the next poll reaps it
                pass

    def _check_liveness(self) -> None:
        """SIGKILL any worker that has neither acked nor heartbeat within
        the liveness deadline — a *hung* worker (wedged step, fault-injected
        stall) that EPIPE/EOF detection can never catch because the process
        is still alive.  The kill surfaces through the normal reap path, so
        restore, replay, and the restart budget all apply unchanged."""
        now = time.monotonic()
        for shard in self._shards.values():
            if shard.final is not None or not self._supervisor.alive(shard.sid):
                continue
            if now - shard.last_seen > self.liveness_timeout_s:
                self._hung_restarts += 1
                self._supervisor.kill(shard.sid)
                # Reset the clock so the deadline cannot re-fire during the
                # (short) gap before the supervisor reaps the corpse.
                shard.last_seen = now

    def _drain_acks(self, shard: _Shard) -> bool:
        progressed = False
        if shard.ack is None:
            return False
        try:
            while shard.ack.poll():
                message = shard.ack.recv()
                shard.last_seen = time.monotonic()
                if message[0] == "hb":
                    progressed = True
                    continue
                if message[0] != "ack":
                    raise ServeError(f"shard {shard.sid}: unexpected message {message[0]!r}")
                _, seq, _count, ckpt = message
                now = time.monotonic()
                for batch in shard.buffer:
                    if not batch.acked and batch.seq <= seq:
                        batch.acked = True
                        shard.inflight -= 1
                        self.latencies_s.append(now - batch.sent_at)
                shard.ckpt_count = max(shard.ckpt_count, ckpt)
                while (
                    shard.buffer
                    and shard.buffer[0].acked
                    and shard.buffer[0].start + len(shard.buffer[0].elements)
                    <= shard.ckpt_count
                ):
                    shard.buffer.popleft()
                progressed = True
        except (EOFError, OSError):
            pass  # worker death; the supervisor poll will reap and restore
        return progressed

    def _on_finished(self, shard: _Shard) -> None:
        result = self._supervisor.result(shard.sid)
        if result is None:  # pragma: no cover - poll just reported it
            return
        if result.kind == "ok":
            if not self._draining:
                raise ServeError(f"shard {shard.sid} worker exited mid-stream: {result.value!r}")
            self._drain_acks(shard)  # acks sent before the final payload
            shard.final = result.value
            shard.inflight = 0
            return
        self._restore_shard(shard)

    # -- internals: merge --------------------------------------------------

    def _merge(self, elapsed_s: float) -> ServeResult:
        finals = {sid: self._shards[sid].final for sid in sorted(self._shards)}
        shard_counts = {}
        applied = 0
        consumed = 0
        dead_lettered = 0
        partitions: list = []
        seen: set = set()
        checkpoints = {}
        for sid, payload in finals.items():
            if not isinstance(payload, dict) or not isinstance(payload.get("checkpoint"), dict):
                raise ServeError(f"shard {sid} returned no final checkpoint")
            ckpt = payload["checkpoint"]
            checkpoints[sid] = ckpt
            applied += int(ckpt.get("count", 0))
            shard_counts[sid] = int(payload.get("consumed", ckpt.get("count", 0)))
            consumed += shard_counts[sid]
            dead_lettered += int(payload.get("dead_lettered", 0))
            for entry in ckpt.get("partitions", ()):
                raw_key = json.dumps(entry[0], sort_keys=True)
                if raw_key in seen:
                    raise ServeError(
                        f"key {entry[0]!r} appears in more than one shard "
                        "(hash-ring mismatch between runs?)"
                    )
                seen.add(raw_key)
                partitions.append(entry)
        base = checkpoints[min(checkpoints)] if checkpoints else {}
        merged = {
            "kind": base.get("kind", "repro/checkpoint-keyed"),
            "version": base.get("version", 1),
            "name": self.scheme.provenance,
            # Applied elements, not handed-off ones: dead-lettered elements
            # never reached an accumulator, and a restored merged operator
            # must agree with its partitions.
            "count": applied,
            "extra": base.get("extra", {}),
            "scheme": self.scheme.to_dict(),
            "partitions": partitions,
        }
        operator = restore_keyed(
            merged,
            field_extractor(self.key_field),
            value_fn=field_extractor(self.value_field),
            jit=self.jit,
            backend=self.backend,
            bounds=self.bounds,
        )
        return ServeResult(
            operator=operator,
            checkpoint=merged,
            count=applied,
            shard_counts=shard_counts,
            restarts=self.restart_count(),
            elapsed_s=elapsed_s,
            consumed=consumed,
            dead_lettered=dead_lettered,
            hung_restarts=self._hung_restarts,
            quarantined=len(self.quarantine_events),
            latencies_s=list(self.latencies_s),
        )


def reference_states(
    scheme: OnlineScheme,
    elements: Iterable[Value],
    *,
    key_field,
    value_field=None,
    extra: Mapping[str, Value] | None = None,
    jit: bool | None = None,
    backend: str | None = None,
    bounds=None,
) -> KeyedOperator:
    """The single-process oracle a serve run must match bit-for-bit: one
    ``KeyedOperator`` folding the same element sequence in one process."""
    op = KeyedOperator(
        scheme,
        field_extractor(key_field),
        value_fn=field_extractor(value_field),
        extra=extra,
        jit=jit,
        backend=backend,
        bounds=bounds,
    )
    op.push_many(list(elements))
    return op


def states_match(result: ServeResult, oracle: KeyedOperator) -> bool:
    """Bit-identical comparison of a serve result against the oracle: same
    key set, same accumulator tuples, same total element count."""
    got = result.states
    want = {key: part.state for key, part in oracle.partitions.items()}
    return got == want and result.count == oracle.count
