"""Consistent hashing of the key space across shard workers.

A streaming server routes every element to the shard owning its key, and
that ownership must be *stable*: across server restarts (checkpointed
partitions must land back on the shard that wrote them), across processes
(the routing table is consulted in the server, the partitions live in the
workers), and — the property plain ``hash(key) % N`` lacks — across
*resizes*: adding or removing one shard must remap only the keys that shard
owned, not reshuffle the world.  The classic fix is a hash ring: each shard
projects ``replicas`` virtual points onto a circle, a key belongs to the
first point clockwise from its own hash.

Two deliberate choices:

* Hashing is :func:`stable_key_hash` — BLAKE2b over a canonical ``repr``.
  Python's builtin ``hash`` is salted per process (PYTHONHASHSEED), which
  would silently scatter a restarted server's keys across the wrong
  shards' checkpoints.
* ``replicas`` virtual points per shard (default 64) keep the key-space
  split within a few percent of even for small shard counts.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Hashable, Iterable


def stable_key_hash(key: Hashable) -> int:
    """A 64-bit hash of ``key`` that is identical in every process.

    Keys are runtime values (ints, bools, Fractions, tuples of those), so
    ``repr`` is canonical and collision-free across the types involved
    (``repr(1) == '1'`` vs ``repr(Fraction(1)) == 'Fraction(1, 1)'``).
    """
    digest = hashlib.blake2b(repr(key).encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


def _point(shard: int, replica: int) -> int:
    digest = hashlib.blake2b(f"shard:{shard}:replica:{replica}".encode(), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class HashRing:
    """Map keys to shard ids with consistent hashing.

    >>> ring = HashRing(4)
    >>> ring.shard_for(("user", 17))  # deterministic, process-independent
    2
    """

    def __init__(self, shards: int | Iterable[int], replicas: int = 64):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        ids = list(range(shards)) if isinstance(shards, int) else list(shards)
        if not ids:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids: {ids}")
        self._shards: set[int] = set()
        self._points: list[tuple[int, int]] = []  # sorted (hash, shard)
        for shard in ids:
            self.add_shard(shard)

    @property
    def shards(self) -> list[int]:
        return sorted(self._shards)

    def add_shard(self, shard: int) -> None:
        if shard in self._shards:
            raise ValueError(f"shard {shard} already on the ring")
        self._shards.add(shard)
        for replica in range(self.replicas):
            bisect.insort(self._points, (_point(shard, replica), shard))

    def remove_shard(self, shard: int) -> None:
        if shard not in self._shards:
            raise ValueError(f"shard {shard} not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.discard(shard)
        self._points = [p for p in self._points if p[1] != shard]

    def shard_for(self, key: Hashable) -> int:
        """The shard owning ``key``: first ring point at or clockwise from
        the key's hash (wrapping past the top of the hash space)."""
        h = stable_key_hash(key)
        index = bisect.bisect_left(self._points, (h, -1))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def __len__(self) -> int:
        return len(self._shards)
