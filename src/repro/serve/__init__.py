"""``repro.serve`` — a sharded, checkpointed, crash-restoring streaming
service over the keyed runtime.

The paper's synthesized online schemes are single-process stream folds;
this package deploys one as a *system*: a :class:`StreamServer` consistent-
hashes the key space (:class:`HashRing`) across N shard worker processes
(:func:`~repro.serve.worker.shard_worker`), each draining batched hand-offs
through the compiled step kernels and checkpointing its partitions to disk.
Workers that die are restored from their last checkpoint and the server
replays the non-durable suffix from its bounded buffer — final aggregates
stay bit-identical to a single-process :class:`~repro.runtime.keyed.KeyedOperator`
run, kills included.

See :mod:`repro.serve.server` for the delivery contract, and
:mod:`repro.evaluation.serve_bench` for the load generator / benchmark.
"""

from .hashring import HashRing, stable_key_hash
from .server import (
    ServeError,
    ServeResult,
    StreamServer,
    percentile,
    reference_states,
    states_match,
)
from .worker import field_extractor, shard_worker

__all__ = [
    "HashRing",
    "ServeError",
    "ServeResult",
    "StreamServer",
    "field_extractor",
    "percentile",
    "reference_states",
    "shard_worker",
    "stable_key_hash",
    "states_match",
]
