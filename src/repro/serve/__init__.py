"""``repro.serve`` — a sharded, checkpointed, crash-restoring streaming
service over the keyed runtime.

The paper's synthesized online schemes are single-process stream folds;
this package deploys one as a *system*: a :class:`StreamServer` consistent-
hashes the key space (:class:`HashRing`) across N shard worker processes
(:func:`~repro.serve.worker.shard_worker`), each draining batched hand-offs
through the compiled step kernels and checkpointing its partitions to disk.
Workers that die are restored from their last checkpoint and the server
replays the non-durable suffix from its bounded buffer — final aggregates
stay bit-identical to a single-process :class:`~repro.runtime.keyed.KeyedOperator`
run, kills included.  Checkpoints are digest-verified generation lineages
(corrupt files quarantined, fallback to the newest intact one), idle
workers heartbeat so *hung* shards trip a liveness deadline, restarts pay
jittered exponential backoff against a sliding-window budget, and
``on_error="quarantine"`` dead-letters deterministically failing elements
instead of halting — all of it provable on demand with the seeded fault
injection of :mod:`repro.faults` and the ``repro chaos`` harness
(:mod:`repro.evaluation.chaos`).

See :mod:`repro.serve.server` for the delivery contract, and
:mod:`repro.evaluation.serve_bench` for the load generator / benchmark.
"""

from .hashring import HashRing, stable_key_hash
from .server import (
    ServeError,
    ServeResult,
    StreamServer,
    percentile,
    reference_states,
    states_match,
)
from .worker import WorkerConfig, field_extractor, shard_worker

__all__ = [
    "HashRing",
    "ServeError",
    "ServeResult",
    "StreamServer",
    "WorkerConfig",
    "field_extractor",
    "percentile",
    "reference_states",
    "shard_worker",
    "stable_key_hash",
    "states_match",
]
