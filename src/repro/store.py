"""Persistent, content-addressed store of compiled online schemes.

The synthesis half of Figure 1 runs once; the streaming half runs forever.
This store is the bridge: :func:`repro.api.compile` keys each compilation by
*what was compiled, with which knobs, by which code* and persists the
serialized scheme (:mod:`repro.core.serialize`), so every later ``compile``
of the same batch function — in any process, after any restart — is a disk
read instead of a synthesis search.

Store key
    ``sha256`` over the task fingerprint
    (:func:`repro.fingerprint.program_fingerprint`, or
    ``Benchmark.source_fingerprint()`` for suite tasks), the config
    fingerprint (:meth:`repro.core.config.SynthesisConfig.fingerprint`), the
    synthesizer implementation digest
    (:func:`repro.fingerprint.implementation_digest`) and the scheme format
    version.  Changing the batch program, a synthesis knob, or the
    synthesizer's own source all mint a fresh key — stale schemes are
    unreachable, never served.

On-disk layout
    ``<root>/schemes/<key[:2]>/<key>.json``, sharing the fan-out and
    atomic-write machinery of the result cache via
    :class:`repro.diskstore.ObjectDirectory`; the root defaults to the
    shared cache root (``$REPRO_CACHE_DIR``, else ``~/.cache/repro``), and
    ``REPRO_CACHE=0`` disables the store wherever it would be used by
    default.

Entries are the JSON scheme envelope plus ``task`` / ``created_at``
metadata; they are plain text, safe to inspect, diff, and ship to other
machines (unlike the pickled result cache, loading one executes no code).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from . import fingerprint
from .core.config import SynthesisConfig
from .core.scheme import OnlineScheme
from .core.serialize import (
    SCHEME_FORMAT_VERSION,
    SchemeFormatError,
    scheme_from_dict,
    scheme_to_dict,
)
from .diskstore import ObjectDirectory
from .ir.nodes import Program


def default_store_dir() -> Path:
    """The shared cache root: result pickles live under ``objects/``,
    schemes under ``schemes/`` — one tree to relocate or wipe."""
    from .evaluation.cache import default_cache_dir

    return default_cache_dir()


def store_enabled() -> bool:
    """The store honours the same ``REPRO_CACHE`` master switch as the
    result cache."""
    from .evaluation.cache import cache_enabled

    return cache_enabled()


def resolve_store(
    enabled: bool | None = None, directory: str | os.PathLike | None = None
) -> "SchemeStore | None":
    """Build the store the API/CLI should use, honouring the env knobs.

    ``enabled=None`` defers to :func:`store_enabled`; an explicit ``False``
    (e.g. the CLI's ``--no-store``) always wins.
    """
    if enabled is None:
        enabled = store_enabled()
    if not enabled:
        return None
    return SchemeStore(directory)


def scheme_key(program: Program, config: SynthesisConfig) -> str:
    """The content address of one compilation: canonical program x config
    knobs x synthesizer implementation x format version."""
    blob = "\n".join(
        (
            fingerprint.program_fingerprint(program, config.element_arity),
            config.fingerprint(),
            fingerprint.implementation_digest(),
            f"scheme-v{SCHEME_FORMAT_VERSION}",
        )
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SchemeStore:
    """Content-addressed store of serialized :class:`OnlineScheme` entries.

    Mirrors the result cache's failure philosophy: all I/O is best-effort,
    an unwritable or corrupted store degrades to misses (i.e. recompiles),
    never to a crash or a wrong scheme.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root) if root is not None else default_store_dir()
        self._objects = ObjectDirectory(self.root, "schemes", ".json")
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self._objects.path(key)

    def get(self, key: str) -> OnlineScheme | None:
        """The stored scheme for ``key``, or ``None`` on miss.

        Entries are fully re-validated on load; anything malformed counts as
        a miss (and will be overwritten by the next :meth:`put`).
        """
        scheme, _ = self.get_entry(key)
        return scheme

    def get_entry(self, key: str) -> tuple[OnlineScheme | None, dict | None]:
        """``(scheme, cached analysis report)`` for ``key``.

        The analysis report is the dict cached by :meth:`put`; because the
        store key already includes the implementation digest (which covers
        ``repro.ir.analysis``), a cached report is always produced by the
        *current* analyzer — no separate invalidation needed.  Reports are
        optional: ``(scheme, None)`` for entries written without one.
        """
        try:
            data = json.loads(self._path(key).read_text(encoding="utf-8"))
            scheme = scheme_from_dict(data.get("scheme"))
        except (OSError, ValueError, SchemeFormatError, AttributeError):
            self.misses += 1
            return None, None
        self.hits += 1
        analysis = data.get("analysis")
        return scheme, analysis if isinstance(analysis, dict) else None

    def put(
        self,
        key: str,
        scheme: OnlineScheme,
        task: str = "",
        analysis: dict | None = None,
    ) -> None:
        entry = {
            "key": key,
            "task": task,
            "created_at": time.time(),
            "scheme": scheme_to_dict(scheme),
        }
        if analysis is not None:
            entry["analysis"] = analysis

        def write(handle):
            json.dump(entry, handle, indent=2, sort_keys=True)
            handle.write("\n")

        try:
            self._objects.write_atomic(key, write)
        except OSError:
            pass  # best-effort: an unwritable store is just a slow store

    # -- maintenance (the ``repro cache`` subcommand) ---------------------

    def entry_stats(self) -> tuple[int, int]:
        """``(entry count, total bytes)`` currently on disk."""
        return self._objects.entry_stats()

    def clear(self) -> int:
        """Delete every stored scheme; returns the number removed."""
        return self._objects.clear()

    def gc(self, max_age_s: float) -> int:
        """Delete entries older than ``max_age_s`` seconds (by mtime);
        returns the number removed."""
        return self._objects.gc(max_age_s)

    def stats_line(self) -> str:
        return f"scheme store: {self.hits} hits, {self.misses} misses ({self.root})"
