"""Syntax-directed type inference for the IR.

Types drive three consumers:

* the decomposition rules of Figure 9 (the ``Leaf`` rule requires
  ``Type(E) ≠ List``);
* well-formedness checks on benchmark definitions and frontend output;
* the enumerative synthesizer's grammar (boolean vs numeric productions).

Inference is deliberately permissive — see :mod:`repro.ir.types` — because
the equivalence oracle is the final arbiter; its job is to classify, not to
reject creative-but-correct programs.
"""

from __future__ import annotations

from .builtins import get_builtin
from .nodes import (
    Call,
    Const,
    Expr,
    Filter,
    Fold,
    Hole,
    If,
    Lambda,
    Let,
    ListVar,
    MakeTuple,
    Map,
    Program,
    Proj,
    Snoc,
    Var,
)
from .types import (
    BOOL,
    NUM,
    FunType,
    ListType,
    TupleType,
    Type,
    TypeEnvironment,
    unify,
)


class TypeError_(Exception):
    """Raised on genuinely ill-kinded programs (list where scalar needed)."""


def infer_type(expr: Expr, env: TypeEnvironment | None = None) -> Type:
    """Infer the type of ``expr``; unknown variables default to ``NUM``."""
    env = env or TypeEnvironment()
    return _infer(expr, env)


def _infer(expr: Expr, env: TypeEnvironment) -> Type:
    if isinstance(expr, Const):
        return BOOL if isinstance(expr.value, bool) else NUM
    if isinstance(expr, Var):
        return env.lookup(expr.name)
    if isinstance(expr, ListVar):
        existing = env.lookup(expr.name)
        if isinstance(existing, ListType):
            return existing
        return ListType(NUM)
    if isinstance(expr, Lambda):
        body = _infer(expr.body, env.extend(expr.params, [NUM] * len(expr.params)))
        return FunType(tuple(NUM for _ in expr.params), body)
    if isinstance(expr, Call):
        if isinstance(expr.func, Lambda):
            arg_types = [_infer(a, env) for a in expr.args]
            inner = env.extend(expr.func.params, arg_types)
            return _infer(expr.func.body, inner)
        builtin = get_builtin(expr.func)
        for arg in expr.args:
            arg_type = _infer(arg, env)
            if builtin.kind != "list" and isinstance(arg_type, ListType):
                raise TypeError_(f"list value passed to scalar builtin {builtin.name!r}")
        return builtin.result_type
    if isinstance(expr, If):
        cond = _infer(expr.cond, env)
        if isinstance(cond, ListType):
            raise TypeError_("list-typed condition")
        return unify(_infer(expr.then, env), _infer(expr.orelse, env))
    if isinstance(expr, Map):
        lst = _expect_list(expr.lst, env)
        func = _infer(expr.func, env)
        result = func.result if isinstance(func, FunType) else NUM
        del lst
        return ListType(result)
    if isinstance(expr, Filter):
        return _expect_list(expr.lst, env)
    if isinstance(expr, Fold):
        _expect_list(expr.lst, env)
        init = _infer(expr.init, env)
        if isinstance(expr.func, Lambda) and len(expr.func.params) == 2:
            elem = _element_type(expr.lst, env)
            acc_param, elem_param = expr.func.params
            inner = env.extend((acc_param, elem_param), (init, elem))
            body = _infer(expr.func.body, inner)
            return unify(init, body)
        return init
    if isinstance(expr, Let):
        value = _infer(expr.value, env)
        return _infer(expr.body, env.extend((expr.name,), (value,)))
    if isinstance(expr, Snoc):
        lst = _expect_list(expr.lst, env)
        elem = _infer(expr.elem, env)
        return ListType(unify(lst.element, elem))
    if isinstance(expr, MakeTuple):
        return TupleType(tuple(_infer(item, env) for item in expr.items))
    if isinstance(expr, Proj):
        tup = _infer(expr.tup, env)
        if isinstance(tup, TupleType) and 0 <= expr.index < tup.arity:
            return tup.elements[expr.index]
        return NUM
    if isinstance(expr, Hole):
        return NUM
    raise TypeError_(f"cannot type {type(expr).__name__}")


def _expect_list(expr: Expr, env: TypeEnvironment) -> ListType:
    inferred = _infer(expr, env)
    if isinstance(inferred, ListType):
        return inferred
    raise TypeError_(f"expected a list, found {inferred!r}")


def _element_type(lst: Expr, env: TypeEnvironment) -> Type:
    inferred = _infer(lst, env)
    return inferred.element if isinstance(inferred, ListType) else NUM


def infer_program_type(program: Program, element_type: Type = NUM) -> Type:
    """Result type of an offline program, given the stream element type."""
    env = TypeEnvironment(
        {program.param: ListType(element_type)}
    ).extend(program.extra_params, [NUM] * len(program.extra_params))
    return _infer(program.body, env)


def check_well_typed(program: Program, element_type: Type = NUM) -> bool:
    """Does the program type-check (no list/scalar confusions)?"""
    try:
        result = infer_program_type(program, element_type)
    except TypeError_:
        return False
    return not isinstance(result, ListType)
