"""Registry of built-in functions for the IR.

Each built-in carries:

* a runtime implementation over :mod:`repro.ir.values` values;
* a coarse result type for inference;
* an *algebraic kind* telling the symbolic layer how to encode calls:

  - ``"poly"`` — the operation is polynomial/rational arithmetic and is
    interpreted exactly by :mod:`repro.algebra` (``+ - * / ** neg``);
  - ``"uninterp"`` — the call becomes an opaque atom over encoded arguments
    (``min``, ``max``, ``sqrt``, ``exp``, ``log``, ``abs``);
  - ``"predicate"`` — boolean-valued comparison/connective; encoded as a
    boolean atom so it can be copied verbatim into online expressions;
  - ``"list"`` — consumes a list (``length``, ``sum`` aliases); such calls are
    list expressions in the sense of Algorithm 2 and always become RFS
    entries / sketch holes.

The enumerative synthesizer additionally reads ``commutative`` and ``cost``
to prune and order its search space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .types import BOOL, NUM, Type
from .values import (
    Value,
    _bit_size,
    is_number,
    normalize_number,
    safe_div,
    safe_exp,
    safe_log,
    safe_pow,
    safe_sqrt,
)


@dataclass(frozen=True)
class Builtin:
    name: str
    arity: int
    impl: Callable[..., Value]
    result_type: Type = NUM
    kind: str = "poly"  # poly | uninterp | predicate | list
    commutative: bool = False
    cost: int = 1
    #: identity element, when one exists (used by fold-axiom specialization)
    identity: Value | None = field(default=None)


_REGISTRY: dict[str, Builtin] = {}


def register(builtin: Builtin) -> Builtin:
    if builtin.name in _REGISTRY:
        raise ValueError(f"duplicate builtin {builtin.name!r}")
    _REGISTRY[builtin.name] = builtin
    return builtin


def get_builtin(name: str) -> Builtin:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown builtin {name!r}") from None


def is_builtin(name: str) -> bool:
    return name in _REGISTRY


def all_builtins() -> Sequence[Builtin]:
    return tuple(_REGISTRY.values())


def _num2(f):
    """Wrap a binary numeric op: normalize exact results, and degrade to
    float arithmetic when operands grow astronomically large (enumerative
    search can stack squarings; exact big-int math must stay bounded)."""

    def wrapped(a: Value, b: Value) -> Value:
        if not (is_number(a) and is_number(b)):
            # Arithmetic is defined on numbers only; Python would happily
            # compute e.g. tuple * int (replication!), which is never what an
            # IR program means.
            raise TypeError(f"numeric operation on non-numbers: {a!r}, {b!r}")
        if _bit_size(a) + _bit_size(b) > 1 << 20:
            try:
                return f(float(a), float(b))
            except (OverflowError, ZeroDivisionError):
                return 0
        return normalize_number(f(a, b))

    return wrapped


register(Builtin("add", 2, _num2(lambda a, b: a + b), NUM, "poly", commutative=True, identity=0))
register(Builtin("sub", 2, _num2(lambda a, b: a - b), NUM, "poly"))
register(Builtin("mul", 2, _num2(lambda a, b: a * b), NUM, "poly", commutative=True, identity=1))
register(Builtin("div", 2, safe_div, NUM, "poly"))
register(Builtin("neg", 1, lambda a: normalize_number(-a), NUM, "poly"))
register(Builtin("pow", 2, safe_pow, NUM, "poly"))

register(Builtin("min", 2, lambda a, b: min(a, b), NUM, "uninterp", commutative=True))
register(Builtin("max", 2, lambda a, b: max(a, b), NUM, "uninterp", commutative=True))
register(Builtin("abs", 1, lambda a: normalize_number(abs(a)), NUM, "uninterp"))
register(Builtin("sqrt", 1, safe_sqrt, NUM, "uninterp", cost=2))
register(Builtin("exp", 1, safe_exp, NUM, "uninterp", cost=2))
register(Builtin("log", 1, safe_log, NUM, "uninterp", cost=2))
register(
    Builtin(
        "expm1",
        1,
        lambda a: math.expm1(float(a)) if a != 0 else 0,
        NUM,
        "uninterp",
        cost=2,
    )
)
register(
    Builtin(
        "log1p",
        1,
        lambda a: math.log1p(float(a)) if a > -1 else 0,
        NUM,
        "uninterp",
        cost=2,
    )
)
register(Builtin("sign", 1, lambda a: (a > 0) - (a < 0), NUM, "uninterp"))
register(Builtin("floor", 1, lambda a: math.floor(a), NUM, "uninterp"))
register(Builtin("ceil", 1, lambda a: math.ceil(a), NUM, "uninterp"))

register(Builtin("lt", 2, lambda a, b: a < b, BOOL, "predicate"))
register(Builtin("le", 2, lambda a, b: a <= b, BOOL, "predicate"))
register(Builtin("gt", 2, lambda a, b: a > b, BOOL, "predicate"))
register(Builtin("ge", 2, lambda a, b: a >= b, BOOL, "predicate"))
register(Builtin("eq", 2, lambda a, b: a == b, BOOL, "predicate", commutative=True))
register(Builtin("ne", 2, lambda a, b: a != b, BOOL, "predicate", commutative=True))
register(Builtin("and", 2, lambda a, b: bool(a) and bool(b), BOOL, "predicate", commutative=True))
register(Builtin("or", 2, lambda a, b: bool(a) or bool(b), BOOL, "predicate", commutative=True))
register(Builtin("not", 1, lambda a: not bool(a), BOOL, "predicate"))

register(Builtin("length", 1, lambda lst: len(lst), NUM, "list"))


def poly_builtin_names() -> tuple[str, ...]:
    return tuple(b.name for b in _REGISTRY.values() if b.kind == "poly")


def uninterp_builtin_names() -> tuple[str, ...]:
    return tuple(b.name for b in _REGISTRY.values() if b.kind == "uninterp")
