"""Runtime values and numeric helpers shared by the evaluator and oracles.

The IR is evaluated over exact rationals (``int`` / ``fractions.Fraction``)
whenever possible so that the testing-based equivalence oracle of Section 6 is
deterministic.  Irrational built-ins (``sqrt``, ``exp``, ``log``, fractional
powers) fall back to ``float``; comparisons involving floats use a relative
tolerance.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any, Union

Number = Union[int, Fraction, float]
Value = Any  # Number | bool | tuple[Value, ...] | list[Value]

#: Relative tolerance for float comparisons in the equivalence oracle.
FLOAT_RTOL = 1e-7
FLOAT_ATOL = 1e-9


def is_number(v: Value) -> bool:
    return isinstance(v, (int, Fraction, float)) and not isinstance(v, bool)


def normalize_number(v: Number) -> Number:
    """Collapse ``Fraction`` with unit denominator to ``int``."""
    if isinstance(v, Fraction) and v.denominator == 1:
        return int(v)
    return v


def as_fraction(v: Number) -> Fraction:
    if isinstance(v, float):
        return Fraction(v).limit_denominator(10**12)
    return Fraction(v)


def safe_div(a: Number, b: Number) -> Number:
    """Division with the paper's convention: ``a / 0 == 0``.

    Mixed float/Fraction operands can underflow to a zero float even when the
    exact divisor is nonzero; any arithmetic failure falls back to 0, keeping
    the convention total.
    """
    if b == 0:
        return 0
    try:
        if isinstance(a, float) or isinstance(b, float):
            return a / b
        return normalize_number(Fraction(a) / Fraction(b))
    except (ZeroDivisionError, OverflowError):
        return 0


def _bit_size(v: Number) -> int:
    """Rough magnitude of an exact number in bits (floats count as small)."""
    if isinstance(v, Fraction):
        return v.numerator.bit_length() + v.denominator.bit_length()
    if isinstance(v, int):
        return v.bit_length()
    return 64


def safe_pow(base: Number, exp: Number) -> Number:
    """Exponentiation that stays exact for integer exponents.

    Fractional exponents (e.g. ``x ** 0.5``) produce floats; negative bases
    with fractional exponents produce 0 (the paper's "safe" convention applied
    to partial operations).
    """
    if isinstance(exp, Fraction) and exp.denominator == 1:
        exp = int(exp)
    if isinstance(exp, int):
        # Exact exponentiation for moderate results; enumeration can stack
        # powers (((v^64)^64)^64 ...), so anything whose exact result would
        # exceed ~4M bits goes through floats to stay bounded.
        if abs(exp) > 64 or _bit_size(base) * max(abs(exp), 1) > 1 << 22:
            try:
                return float(base) ** exp if base != 0 else 0
            except (OverflowError, ZeroDivisionError):
                return 0
        try:
            if exp >= 0:
                if isinstance(base, float):
                    return base**exp
                return normalize_number(Fraction(base) ** exp)
            if base == 0:
                return 0
            if isinstance(base, float):
                return base**exp
            return normalize_number(Fraction(base) ** exp)
        except (OverflowError, ZeroDivisionError):
            return 0
    base_f = float(base)
    exp_f = float(exp)
    if base_f < 0:
        return 0
    if base_f == 0:
        return 0 if exp_f <= 0 else 0.0
    return base_f**exp_f


def safe_sqrt(v: Number) -> Number:
    if v < 0:
        return 0
    if isinstance(v, (int, Fraction)):
        frac = Fraction(v)
        num_root = math.isqrt(frac.numerator)
        den_root = math.isqrt(frac.denominator)
        if num_root * num_root == frac.numerator and den_root * den_root == frac.denominator:
            return normalize_number(Fraction(num_root, den_root))
    return math.sqrt(float(v))


def safe_log(v: Number) -> Number:
    if v <= 0:
        return 0
    if v == 1:
        return 0
    return math.log(float(v))


def safe_exp(v: Number) -> Number:
    if v == 0:
        return 1
    try:
        return math.exp(float(v))
    except OverflowError:
        return float("inf")


def values_close(a: Value, b: Value) -> bool:
    """Structural equality with float tolerance; the oracle's comparator."""
    if isinstance(a, bool) or isinstance(b, bool):
        return a == b
    if is_number(a) and is_number(b):
        if isinstance(a, float) or isinstance(b, float):
            fa, fb = float(a), float(b)
            if math.isnan(fa) and math.isnan(fb):
                return True
            if math.isinf(fa) or math.isinf(fb):
                return fa == fb
            return math.isclose(fa, fb, rel_tol=FLOAT_RTOL, abs_tol=FLOAT_ATOL)
        return a == b
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(values_close(x, y) for x, y in zip(a, b))
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(values_close(x, y) for x, y in zip(a, b))
    return a == b
