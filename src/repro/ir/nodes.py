"""Abstract syntax of the functional intermediate representation.

This module defines the expression language of the paper's Figure 6 (offline
programs) and Figure 7 (online programs) as immutable, hashable dataclasses:

* ``Const``, ``Var`` — constants and scalar variables;
* ``ListVar`` — the distinguished input list ``xs`` of an offline program;
* ``Call`` — application of a built-in function or a ``Lambda``;
* ``If`` — the conditional ``E ? E : E``;
* ``Map`` / ``Filter`` / ``Fold`` — the list combinators (offline only);
* ``Let`` — surface-level let bindings (Figure 3a); these are sugar and are
  inlined by :func:`repro.ir.traversal.inline_lets` before analysis;
* ``Snoc`` — ``xs ++ [x]``, the single-element append used by specifications
  and the combinator axioms of Figure 10 (internal, never user-written);
* ``MakeTuple`` / ``Proj`` — tuples for paired accumulators and event records;
* ``Hole`` — sketch holes ``□i`` introduced by decomposition (Figure 9).

All nodes are frozen dataclasses, so structural equality and hashing come for
free; the synthesizer relies on both (e.g. hole specifications are dictionary
keys, and memo tables are keyed by expressions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Union

#: Scalar constants carried by ``Const`` nodes.  Numeric constants are stored
#: as exact ``Fraction``/``int`` whenever possible; ``float`` appears only for
#: genuinely irrational values.
ConstValue = Union[int, Fraction, float, bool]


class Expr:
    """Base class of all IR expressions."""

    __slots__ = ()

    # These helpers keep call sites readable without isinstance noise.
    def is_const(self) -> bool:
        return isinstance(self, Const)

    def is_combinator(self) -> bool:
        return isinstance(self, (Map, Filter, Fold))

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions, in evaluation order."""
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    value: ConstValue

    def children(self) -> tuple[Expr, ...]:
        return ()

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def children(self) -> tuple[Expr, ...]:
        return ()

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True)
class ListVar(Expr):
    """The input list parameter of an offline program (``xs`` in the paper)."""

    name: str = "xs"

    def children(self) -> tuple[Expr, ...]:
        return ()

    def __repr__(self) -> str:
        return f"ListVar({self.name!r})"


@dataclass(frozen=True)
class Lambda(Expr):
    params: tuple[str, ...]
    body: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.body,)

    def __repr__(self) -> str:
        return f"Lambda({self.params!r}, {self.body!r})"


@dataclass(frozen=True)
class Call(Expr):
    """Application ``g(E1, ..., En)`` of a built-in (by name) or a lambda."""

    func: Union[str, Lambda]
    args: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        if isinstance(self.func, Lambda):
            return (self.func,) + self.args
        return self.args

    def __repr__(self) -> str:
        return f"Call({self.func!r}, {self.args!r})"


@dataclass(frozen=True)
class If(Expr):
    cond: Expr
    then: Expr
    orelse: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.then, self.orelse)


@dataclass(frozen=True)
class Map(Expr):
    func: Expr  # Lambda or builtin name wrapped in Lambda
    lst: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.func, self.lst)


@dataclass(frozen=True)
class Filter(Expr):
    func: Expr
    lst: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.func, self.lst)


@dataclass(frozen=True)
class Fold(Expr):
    """``foldl(g, init, lst)``; the workhorse combinator of the paper."""

    func: Expr
    init: Expr
    lst: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.func, self.init, self.lst)


@dataclass(frozen=True)
class Let(Expr):
    """``let name = value in body`` — surface sugar, inlined before analysis."""

    name: str
    value: Expr
    body: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.value, self.body)


@dataclass(frozen=True)
class Snoc(Expr):
    """``lst ++ [elem]`` — append of a single element (internal node)."""

    lst: Expr
    elem: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.lst, self.elem)


@dataclass(frozen=True)
class MakeTuple(Expr):
    items: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.items

    @property
    def arity(self) -> int:
        return len(self.items)


@dataclass(frozen=True)
class Proj(Expr):
    """``tuple[index]`` with a static index."""

    tup: Expr
    index: int

    def children(self) -> tuple[Expr, ...]:
        return (self.tup,)


@dataclass(frozen=True)
class Hole(Expr):
    """A sketch hole ``□i``; ``spec`` is attached externally via the context."""

    hole_id: int

    def children(self) -> tuple[Expr, ...]:
        return ()

    def __repr__(self) -> str:
        return f"Hole({self.hole_id})"


@dataclass(frozen=True)
class Program:
    """An offline program ``λxs. E`` (Figure 6).

    ``extra_params`` models the "additional arguments" extension of Section 6:
    scalar parameters of the offline program that are passed through unchanged
    to the online program (e.g. a fixed threshold in an auction query).
    """

    param: str
    body: Expr
    extra_params: tuple[str, ...] = field(default=())

    def __repr__(self) -> str:
        if self.extra_params:
            return f"Program({self.param!r}, {self.body!r}, extra={self.extra_params!r})"
        return f"Program({self.param!r}, {self.body!r})"


@dataclass(frozen=True)
class OnlineProgram:
    """An online program ``λ(y1..yn). λx. (E1..En)`` (Figure 7)."""

    state_params: tuple[str, ...]
    elem_param: str
    outputs: tuple[Expr, ...]
    extra_params: tuple[str, ...] = field(default=())

    @property
    def arity(self) -> int:
        return len(self.state_params)


def const(value: ConstValue) -> Const:
    """Normalizing constructor for constants: ints stay ints, ``Fraction``
    values with denominator 1 collapse to ints."""
    if isinstance(value, Fraction) and value.denominator == 1:
        return Const(int(value))
    if isinstance(value, float) and value.is_integer() and abs(value) < 2**53:
        return Const(int(value))
    return Const(value)


ZERO = Const(0)
ONE = Const(1)
TRUE = Const(True)
FALSE = Const(False)
