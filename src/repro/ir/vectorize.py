"""Certificate-licensed columnar (NumPy) execution backend.

The exact backends (:mod:`repro.ir.evaluator`, :mod:`repro.ir.compile`) pay
per-element Python dispatch and, on rational-state schemes, per-op gcd
normalization — which is why batch codegen is ~1x on gcd-bound schemes like
``variance``.  This module changes the numeric *domain* instead of the loop
shape: an :class:`~repro.ir.nodes.OnlineProgram` step is compiled to
whole-batch column operations over ``int64``/``float64`` NumPy arrays, with
the inherently sequential state recurrences decomposed into per-batch scans
(``cumsum`` / ``maximum.accumulate`` / ...) and everything else evaluated
element-wise over the scanned prefix trajectories.

Admission is gated by the PR 9 interval certificates
(:func:`repro.ir.analysis.int64_certified`): a scheme runs in the ``int64``
domain only when the analysis proves every state component *and* every
reachable intermediate stays an exact int64 under the declared source
bounds — then the columnar result is bit-for-bit identical to the exact
rationals and no per-element overflow guard is needed.  Schemes the
certificate cannot license may opt in to the ``float64`` domain explicitly
(``--backend columnar``); divergence from the exact result is then IEEE-754
rounding only (documented error model: per-op relative error <= 2^-52,
accumulated linearly in the batch length — no truncation, no wraparound,
``safe_div``/``safe_sqrt``/``safe_log`` conventions preserved exactly).
Schemes whose update is not scan-decomposable, and any batch whose data
falls outside the certified bounds, transparently keep / delegate to the
exact :class:`~repro.ir.compile.StepKernel` — the columnar backend is
*never* allowed to change the answer of an ``int64``-certified or
unadmitted scheme.

NumPy itself is optional (``pip install repro[fast]``): the import is lazy,
``REPRO_NO_NUMPY=1`` force-disables it (for testing the degraded path), and
every caller falls back to the exact kernel with a one-line notice.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Mapping, Sequence

from .compile import IRCompileError, StepKernel
from .nodes import Call, Const, Expr, If, Let, MakeTuple, OnlineProgram, Proj, Var
from .values import Value

__all__ = [
    "ColumnPlan",
    "ColumnarAdmission",
    "ColumnarError",
    "ColumnarKernel",
    "ColumnarUnavailable",
    "admit_columnar",
    "compile_columns",
    "numpy_or_none",
    "plan_columns",
]


class ColumnarError(IRCompileError):
    """The program's step cannot run as column operations (structural)."""


class ColumnarUnavailable(ColumnarError):
    """NumPy is missing or disabled; the columnar backend cannot run."""


class _Bailout(Exception):
    """Runtime signal: this batch cannot run columnar (out-of-contract
    data); the kernel delegates the whole batch to the exact kernel."""


# -- lazy NumPy ---------------------------------------------------------------

_NUMPY: Any = None  # unresolved; module object once imported; False if absent


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when unavailable.

    ``REPRO_NO_NUMPY`` (any of ``1``/``true``/``on``/``yes``) disables the
    backend even when NumPy is importable — the switch the no-NumPy test
    leg and the graceful-degrade tests flip without uninstalling anything.
    """
    raw = os.environ.get("REPRO_NO_NUMPY")
    if raw is not None and raw.strip().lower() in ("1", "true", "on", "yes"):
        return None
    global _NUMPY
    if _NUMPY is None:
        try:
            import numpy  # noqa: PLC0415 - lazy by design

            _NUMPY = numpy
        except Exception:
            _NUMPY = False
    return _NUMPY or None


def _require_numpy():
    np = numpy_or_none()
    if np is None:
        raise ColumnarUnavailable(
            "NumPy is not available (install repro[fast], or unset REPRO_NO_NUMPY)"
        )
    return np


# -- structural planning ------------------------------------------------------

#: Builtins the column evaluator implements in *some* domain.
_SUPPORTED_OPS = frozenset(
    {
        "add", "sub", "mul", "div", "neg", "abs", "min", "max", "pow",
        "sqrt", "exp", "log", "sign", "floor", "ceil",
        "lt", "le", "gt", "ge", "eq", "ne", "and", "or", "not",
    }
)

#: Builtins whose results are non-integral in general: admissible only in
#: the float64 domain (an int64 certificate with these present is refused
#: structurally rather than trusted — ``sqrt`` of a certified perfect
#: square is theoretically exact, but the column evaluator computes it in
#: floats).
_FLOAT_ONLY_OPS = frozenset({"sqrt", "exp", "log"})

#: Associative-idempotent self-accumulation ops: the component's update is
#: ``op(self, term)`` (either operand order) with ``term`` independent of
#: the component.  ``add``/``sub`` chains are handled separately by the
#: full additive decomposition (:func:`_decompose_additive`).
_ACCUMULATION_OPS = {
    "mul": "cumprod",
    "max": "cummax",
    "min": "cummin",
    "or": "cumor",
    "and": "cumand",
}


@dataclass(frozen=True)
class _Component:
    """One state component's columnar execution strategy.

    ``kind`` is ``invariant`` (``s' = s``), ``elementwise`` (no
    self-reference: the new value is a column function of the element and
    the *previous* trajectories of other components), or one of the
    accumulation scans (``cumsum``/``cumprod``/``cummax``/``cummin``/
    ``cumor``/``cumand``) whose per-element term ``term`` is a column
    function of the element and other components' previous values.

    ``mask`` (with ``mask_sense``) marks conditional accumulations —
    ``If(cond, op(self, term), self)`` — whose term is replaced by the
    scan's neutral element wherever the condition does not hold.
    """

    name: str
    kind: str
    expr: Expr | None  #: elementwise update, or the accumulation term
    depends: tuple[str, ...]  #: state components whose trajectories feed it
    mask: Expr | None = None  #: accumulate only where this condition holds
    mask_sense: bool = True  #: False: accumulate where the mask is falsy


@dataclass(frozen=True)
class ColumnPlan:
    """A whole-batch columnar execution plan (domain-independent).

    ``order`` lists components in a dependency order in which every
    component's referenced trajectories are computed before it; existence
    of such an order is exactly the scan-decomposability condition.
    """

    program: OnlineProgram
    components: tuple[_Component, ...]  #: in ``state_params`` order
    order: tuple[int, ...]  #: evaluation order (indices into components)
    float_only: bool  #: uses float-only builtins (sqrt/exp/log/frac pow)
    elem_arity: int  #: element fields (1 = scalar stream)


def _free_state_refs(expr: Expr, state_names: frozenset[str]) -> set[str]:
    """State parameters referenced (free) anywhere in ``expr``."""
    refs: set[str] = set()

    def walk(e: Expr, bound: frozenset[str]) -> None:
        if isinstance(e, Var):
            if e.name in state_names and e.name not in bound:
                refs.add(e.name)
        elif isinstance(e, Const):
            pass
        elif isinstance(e, Call):
            if not isinstance(e.func, str):
                raise ColumnarError("lambda application is not columnarizable")
            for arg in e.args:
                walk(arg, bound)
        elif isinstance(e, If):
            walk(e.cond, bound)
            walk(e.then, bound)
            walk(e.orelse, bound)
        elif isinstance(e, Let):
            walk(e.value, bound)
            walk(e.body, bound | {e.name})
        elif isinstance(e, MakeTuple):
            for item in e.items:
                walk(item, bound)
        elif isinstance(e, Proj):
            walk(e.tup, bound)
        else:
            raise ColumnarError(f"{type(e).__name__} nodes are not columnarizable")

    walk(expr, frozenset())
    return refs


def _validate_ops(expr: Expr) -> bool:
    """Check every builtin is column-supported; returns True if any
    float-only op (or fractional constant ``pow`` exponent) appears."""
    float_only = False

    def walk(e: Expr) -> None:
        nonlocal float_only
        if isinstance(e, Call):
            name = e.func if isinstance(e.func, str) else None
            if name not in _SUPPORTED_OPS:
                raise ColumnarError(f"builtin {name!r} has no column implementation")
            if name in _FLOAT_ONLY_OPS:
                float_only = True
            if name == "pow":
                exp = e.args[1]
                if not isinstance(exp, Const):
                    raise ColumnarError("pow with a non-constant exponent")
                ev = exp.value
                if isinstance(ev, Fraction) and ev.denominator != 1:
                    float_only = True
                elif isinstance(ev, float) and not float(ev).is_integer():
                    float_only = True
                elif not isinstance(ev, (int, Fraction, float)):
                    raise ColumnarError("pow with a non-numeric exponent")
            for arg in e.args:
                walk(arg)
        elif isinstance(e, If):
            walk(e.cond), walk(e.then), walk(e.orelse)
        elif isinstance(e, Let):
            walk(e.value), walk(e.body)
        elif isinstance(e, MakeTuple):
            for item in e.items:
                walk(item)
        elif isinstance(e, Proj):
            walk(e.tup)
        elif not isinstance(e, (Var, Const)):
            raise ColumnarError(f"{type(e).__name__} nodes are not columnarizable")

    walk(expr)
    return float_only


def _contains(expr: Expr, name: str) -> bool:
    """Does ``expr`` reference ``name`` free?"""
    if isinstance(expr, Var):
        return expr.name == name
    if isinstance(expr, Const):
        return False
    if isinstance(expr, Call):
        return any(_contains(a, name) for a in expr.args)
    if isinstance(expr, If):
        return _contains(expr.cond, name) or _contains(expr.then, name) or _contains(
            expr.orelse, name
        )
    if isinstance(expr, Let):
        if _contains(expr.value, name):
            return True
        return expr.name != name and _contains(expr.body, name)
    if isinstance(expr, MakeTuple):
        return any(_contains(item, name) for item in expr.items)
    if isinstance(expr, Proj):
        return _contains(expr.tup, name)
    return True  # unknown node: assume the worst (planning then declines)


def _decompose_additive(expr: Expr, name: str) -> Expr | None:
    """Write ``expr`` as ``name + T`` with ``T`` independent of ``name``.

    Handles arbitrarily nested ``add``/``sub`` chains (``(m3 + A) - B``),
    ``If`` whose both branches decompose (conditional accumulation:
    ``If(c, s + x, s)`` -> ``If(c, x, 0)``), and ``Let`` over a
    name-independent binding.  Returns the increment expression, or
    ``None`` when no unit-coefficient decomposition exists.  Over exact
    int64 values the rewrite is exact (associativity of integer addition);
    the float64 domain only re-associates rounding.
    """
    if isinstance(expr, Var) and expr.name == name:
        return Const(0)
    if not _contains(expr, name):
        return None
    if isinstance(expr, Call) and isinstance(expr.func, str) and len(expr.args) == 2:
        left, right = expr.args
        in_left, in_right = _contains(left, name), _contains(right, name)
        if expr.func == "add" and in_left != in_right:
            if in_left:
                dec = _decompose_additive(left, name)
                return None if dec is None else Call("add", (dec, right))
            dec = _decompose_additive(right, name)
            return None if dec is None else Call("add", (left, dec))
        if expr.func == "sub" and in_left and not in_right:
            dec = _decompose_additive(left, name)
            return None if dec is None else Call("sub", (dec, right))
    if isinstance(expr, If) and not _contains(expr.cond, name):
        then = _decompose_additive(expr.then, name)
        orelse = _decompose_additive(expr.orelse, name)
        if then is not None and orelse is not None:
            return If(expr.cond, then, orelse)
    if isinstance(expr, Let) and expr.name != name and not _contains(expr.value, name):
        body = _decompose_additive(expr.body, name)
        return None if body is None else Let(expr.name, expr.value, body)
    return None


def _match_assoc(expr: Expr, name: str) -> tuple[str, Expr, Expr | None, bool] | None:
    """Match ``op(self, T)`` / ``If(c, op(self, T), self)`` for the
    associative-idempotent scans; returns ``(kind, term, mask, sense)``."""

    def bare(e: Expr) -> tuple[str, Expr] | None:
        if isinstance(e, Call) and isinstance(e.func, str) and len(e.args) == 2:
            kind = _ACCUMULATION_OPS.get(e.func)
            if kind in ("cummax", "cummin", "cumor", "cumand", "cumprod"):
                left, right = e.args
                if isinstance(left, Var) and left.name == name and not _contains(right, name):
                    return kind, right
                if isinstance(right, Var) and right.name == name and not _contains(left, name):
                    return kind, left
        return None

    hit = bare(expr)
    if hit is not None:
        return hit[0], hit[1], None, True
    if isinstance(expr, If) and not _contains(expr.cond, name):
        if isinstance(expr.orelse, Var) and expr.orelse.name == name:
            hit = bare(expr.then)
            if hit is not None:
                return hit[0], hit[1], expr.cond, True
        if isinstance(expr.then, Var) and expr.then.name == name:
            hit = bare(expr.orelse)
            if hit is not None:
                return hit[0], hit[1], expr.cond, False
    return None


def _classify(name: str, update: Expr, state_names: frozenset[str]) -> _Component:
    """One component's strategy (dependencies not yet checked for order)."""
    if isinstance(update, Var) and update.name == name:
        return _Component(name, "invariant", None, ())
    refs = _free_state_refs(update, state_names)
    if name not in refs:
        return _Component(name, "elementwise", update, tuple(sorted(refs)))
    # Self-referential: additive scan (cumsum) covers nested +/- chains and
    # conditional accumulation; the associative-idempotent ops cover
    # max/min/or/and/product, optionally under a single If mask.
    term = _decompose_additive(update, name)
    if term is not None:
        term_refs = _free_state_refs(term, state_names) - {name}
        return _Component(name, "cumsum", term, tuple(sorted(term_refs)))
    assoc = _match_assoc(update, name)
    if assoc is not None:
        kind, term, mask, sense = assoc
        deps = _free_state_refs(term, state_names) - {name}
        if mask is not None:
            deps |= _free_state_refs(mask, state_names) - {name}
        return _Component(name, kind, term, tuple(sorted(deps)), mask, sense)
    raise ColumnarError(
        f"state component {name!r}: self-referential update is not "
        f"scan-decomposable (not of the form op({name}, term))"
    )


def plan_columns(program: OnlineProgram, initializer: Sequence[Value]) -> ColumnPlan:
    """Decompose the step into per-component column strategies.

    Raises :class:`ColumnarError` (with the first blocking reason) when any
    component's update cannot run as column operations — unsupported
    builtins, tuple-valued state, self-referential non-scan recurrences, or
    cyclic cross-component dependences.
    """
    state_names = frozenset(program.state_params)
    for name, value in zip(program.state_params, initializer):
        if isinstance(value, (tuple, list)):
            raise ColumnarError(f"state component {name!r} is tuple-valued")
    float_only = False
    components = []
    for name, update in zip(program.state_params, program.outputs):
        if isinstance(update, MakeTuple):
            raise ColumnarError(f"state component {name!r} is tuple-valued")
        float_only |= _validate_ops(update)
        components.append(_classify(name, update, state_names))

    # Dependency order: a component can be evaluated once every component
    # whose *previous trajectory* it reads has its full trajectory.  Since
    # all reads are of previous-step values, the only obstruction is a
    # cross-component cycle (mutual recurrences) — surfaced here.
    index = {c.name: i for i, c in enumerate(components)}
    resolved: set[str] = set()
    order: list[int] = []
    pending = list(components)
    while pending:
        progressed = False
        for comp in list(pending):
            if all(dep in resolved for dep in comp.depends):
                order.append(index[comp.name])
                resolved.add(comp.name)
                pending.remove(comp)
                progressed = True
        if not progressed:
            stuck = ", ".join(sorted(c.name for c in pending))
            raise ColumnarError(
                f"state components {stuck}: mutually recursive updates are "
                f"not scan-decomposable"
            )
    return ColumnPlan(
        program, tuple(components), tuple(order), float_only, _infer_elem_arity(program)
    )


# -- admission ----------------------------------------------------------------


@dataclass(frozen=True)
class ColumnarAdmission:
    """Why (or why not) a scheme may run columnar, for reports and CLI.

    ``verdict`` is ``certified-int64`` (bit-identical fast path licensed by
    the interval certificate), ``float-optin-only`` (structurally columnar
    but only in the float64 domain — explicit opt-in), or ``uncertified``
    (stays on the exact path; ``reason`` holds the first blocking reason).
    """

    verdict: str
    domain: str | None  #: "int64" | "float64" | None
    reason: str = ""

    @property
    def admitted(self) -> bool:
        return self.domain is not None


def _int64_blocking_reason(program: OnlineProgram, analysis) -> str:
    """First reason the int64 certificate does not hold (for the report)."""
    from .analysis.domain import ANum, int64_certified

    def describe(av) -> str:
        if not isinstance(av, ANum):
            return "non-numeric abstraction"
        if not av.integral:
            return "value is not provably integral"
        if not av.exact:
            return "value may degrade to float"
        if not av.iv.bounded:
            return "value interval is unbounded under the given bounds"
        return "value interval exceeds int64"

    for i, av in enumerate(analysis.state):
        if not analysis.component_int64(i):
            return f"state component {program.state_params[i]!r}: {describe(av)}"
    for path, av in sorted(analysis.site_values.items()):
        if not int64_certified(av):
            site = ".".join(str(p) for p in path)
            return f"intermediate at output site {site}: {describe(av)}"
    return "not int64-certified"


def admit_columnar(
    program: OnlineProgram,
    initializer: Sequence[Value],
    bounds=None,
) -> ColumnarAdmission:
    """The columnar admission verdict for one scheme under ``bounds``.

    Pure structural + static analysis — does not require NumPy, so the
    ``--backend-report`` line is available even on exact-only installs.
    """
    try:
        plan = plan_columns(program, initializer)
    except ColumnarError as exc:
        return ColumnarAdmission("uncertified", None, str(exc))
    from .analysis import UNKNOWN_BOUNDS, analyze_intervals

    analysis = analyze_intervals(program, tuple(initializer), bounds or UNKNOWN_BOUNDS)
    if analysis.int64_safe() and not plan.float_only:
        return ColumnarAdmission("certified-int64", "int64")
    if any(c.kind == "cumprod" for c in plan.components):
        # Product trajectories overflow float64 catastrophically (inf, not
        # rounding); without the int64 certificate there is no domain whose
        # error model covers them.
        return ColumnarAdmission(
            "uncertified",
            None,
            "product accumulation needs the int64 certificate "
            "(float64 overflow is unbounded divergence)",
        )
    if plan.float_only:
        reason = "uses float-only builtins (sqrt/exp/log or fractional pow)"
    else:
        reason = _int64_blocking_reason(program, analysis)
    return ColumnarAdmission("float-optin-only", "float64", reason)


# -- column evaluation --------------------------------------------------------


def _truthy(np, v):
    """Element-wise truthiness (what the exact backend's ``bool()`` does)."""
    if getattr(v, "dtype", None) is not None and v.dtype == np.bool_:
        return v
    return v != 0


def _col_div(np, a, b, domain: str):
    """``safe_div``: a/0 == 0.  In the int64 domain the certificate proves
    every reachable quotient is integral, so floor division *is* exact
    division there; the float64 domain divides in floats."""
    zero = np.logical_not(_truthy(np, b))
    safe_b = np.where(zero, 1, b)
    if domain == "int64":
        quot = np.floor_divide(a, safe_b)
    else:
        quot = np.asarray(a, dtype=np.float64) / safe_b
    return np.where(zero, 0, quot)


def _col_pow(np, base, exp_const):
    """``safe_pow`` with a constant exponent (the only shape admitted)."""
    exp = exp_const
    if isinstance(exp, Fraction) and exp.denominator == 1:
        exp = int(exp)
    if isinstance(exp, float) and exp.is_integer():
        exp = int(exp)
    if isinstance(exp, int):
        if exp >= 0:
            return base**exp
        base_f = np.asarray(base, dtype=np.float64)
        zero = base_f == 0.0
        return np.where(zero, 0.0, np.where(zero, 1.0, base_f) ** exp)
    # Fractional exponent: floats; negative base -> 0, 0**e -> 0.
    exp_f = float(exp)
    base_f = np.asarray(base, dtype=np.float64)
    bad = base_f <= 0.0
    return np.where(bad, 0.0, np.where(bad, 1.0, base_f) ** exp_f)


def _col_eval(np, expr: Expr, env: dict[str, Any], domain: str):
    """Evaluate one IR expression over column (or scalar) operands."""
    if isinstance(expr, Const):
        v = expr.value
        if isinstance(v, bool):
            return v
        if isinstance(v, Fraction):
            return int(v) if v.denominator == 1 else float(v)
        return v
    if isinstance(expr, Var):
        return env[expr.name]
    if isinstance(expr, Let):
        inner = dict(env)
        inner[expr.name] = _col_eval(np, expr.value, env, domain)
        return _col_eval(np, expr.body, inner, domain)
    if isinstance(expr, If):
        cond = _truthy(np, _col_eval(np, expr.cond, env, domain))
        return np.where(
            cond,
            _col_eval(np, expr.then, env, domain),
            _col_eval(np, expr.orelse, env, domain),
        )
    if isinstance(expr, Proj):
        tup = _col_eval(np, expr.tup, env, domain)
        return tup[expr.index]
    if isinstance(expr, MakeTuple):
        return tuple(_col_eval(np, item, env, domain) for item in expr.items)
    if isinstance(expr, Call) and isinstance(expr.func, str):
        name = expr.func
        if name == "pow":
            return _col_pow(np, _col_eval(np, expr.args[0], env, domain), expr.args[1].value)
        args = [_col_eval(np, a, env, domain) for a in expr.args]
        if name == "add":
            return args[0] + args[1]
        if name == "sub":
            return args[0] - args[1]
        if name == "mul":
            return args[0] * args[1]
        if name == "div":
            return _col_div(np, args[0], args[1], domain)
        if name == "neg":
            return -args[0]
        if name == "abs":
            return np.abs(args[0])
        if name == "min":
            return np.minimum(args[0], args[1])
        if name == "max":
            return np.maximum(args[0], args[1])
        if name == "sqrt":
            v = np.asarray(args[0], dtype=np.float64)
            return np.where(v < 0.0, 0.0, np.sqrt(np.maximum(v, 0.0)))
        if name == "exp":
            with np.errstate(over="ignore"):
                return np.exp(np.asarray(args[0], dtype=np.float64))
        if name == "log":
            v = np.asarray(args[0], dtype=np.float64)
            return np.where(v <= 0.0, 0.0, np.log(np.where(v <= 0.0, 1.0, v)))
        if name == "sign":
            return np.sign(args[0])
        if name == "floor":
            # int64 domain: the operand is certified integral -> identity.
            return args[0] if domain == "int64" else np.floor(args[0])
        if name == "ceil":
            return args[0] if domain == "int64" else np.ceil(args[0])
        if name == "lt":
            return args[0] < args[1]
        if name == "le":
            return args[0] <= args[1]
        if name == "gt":
            return args[0] > args[1]
        if name == "ge":
            return args[0] >= args[1]
        if name == "eq":
            return args[0] == args[1]
        if name == "ne":
            return args[0] != args[1]
        if name == "and":
            return np.logical_and(_truthy(np, args[0]), _truthy(np, args[1]))
        if name == "or":
            return np.logical_or(_truthy(np, args[0]), _truthy(np, args[1]))
        if name == "not":
            return np.logical_not(_truthy(np, args[0]))
    raise ColumnarError(f"{type(expr).__name__} reached the column evaluator")


# -- data marshalling ---------------------------------------------------------

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _element_columns(np, chunk: list, arity: int, domain: str):
    """Element columns for the batch: one array (scalars) or a tuple of
    per-field arrays.  Any conversion surprise — floats or bignums in an
    int64-certified stream, ragged tuples, non-numeric payloads — bails the
    batch out to the exact kernel instead of guessing."""
    try:
        arr = np.asarray(chunk)
    except (ValueError, TypeError, OverflowError):
        raise _Bailout("elements do not form a rectangular numeric array") from None
    if arr.dtype.kind == "O":
        # Exact-runtime streams carry Fraction payloads; one scalar
        # conversion pass (cheap: no gcd arithmetic) recovers the fast
        # path, and any genuinely non-numeric payload bails here instead.
        try:
            if arity <= 1:
                arr = np.asarray([_scalar_in(v, domain, "element") for v in chunk])
            else:
                arr = np.asarray(
                    [[_scalar_in(f, domain, "element field") for f in v] for v in chunk]
                )
        except (ValueError, TypeError, OverflowError):
            raise _Bailout("elements do not form a rectangular numeric array") from None
        if arr.dtype.kind == "O":
            raise _Bailout("elements are not numeric")
    expected_dims = 1 if arity <= 1 else 2
    if arr.ndim != expected_dims or (arity > 1 and arr.shape[1] != arity):
        raise _Bailout("element shape does not match the scheme's arity")
    if domain == "int64":
        if arr.dtype.kind not in "iub" or arr.dtype.itemsize > 8:
            raise _Bailout("elements are not int64-representable")
        arr = arr.astype(np.int64, copy=False)
    else:
        if arr.dtype.kind not in "iubf":
            raise _Bailout("elements are not numeric")
        arr = arr.astype(np.float64, copy=False)
    if arity <= 1:
        return arr
    return tuple(arr[:, i] for i in range(arity))


def _scalar_in(value: Value, domain: str, what: str):
    """One state value / extra parameter into the columnar domain."""
    if isinstance(value, bool):
        return value
    if isinstance(value, Fraction):
        if domain == "float64":
            return float(value)
        if value.denominator == 1:
            value = int(value)
        else:
            raise _Bailout(f"{what} is a non-integral rational")
    if isinstance(value, int):
        if domain == "int64":
            if not _INT64_MIN <= value <= _INT64_MAX:
                raise _Bailout(f"{what} exceeds int64")
            return value
        return float(value)
    if isinstance(value, float):
        if domain == "int64":
            raise _Bailout(f"{what} is a float in the int64 domain")
        return value
    raise _Bailout(f"{what} is not a columnar value")


def _scalar_out(np, value) -> Value:
    """One final column value back to the exact runtime representation."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _check_bounds(np, columns, arity: int, bounds) -> None:
    """The runtime half of the certificate contract: int64 certificates are
    conditional on the declared source bounds, so a batch that strays
    outside them (or arrives when no field bounds were declared) must not
    run on the licensed fast path.  Vectorized min/max — O(1) passes, not
    per-element guards."""
    fields = getattr(bounds, "element", None) if bounds is not None else None
    if fields is None or len(fields) != max(arity, 1):
        raise _Bailout("no declared element bounds to certify this batch against")
    cols = (columns,) if arity <= 1 else columns
    for fb, col in zip(fields, cols):
        if col.size == 0:
            continue
        lo, hi = fb.lo, fb.hi
        if lo != float("-inf") and col.min() < lo:
            raise _Bailout("batch falls below the declared source bounds")
        if hi != float("inf") and col.max() > hi:
            raise _Bailout("batch exceeds the declared source bounds")


# -- the kernel ---------------------------------------------------------------


class ColumnarKernel(StepKernel):
    """A :class:`~repro.ir.compile.StepKernel` whose batch body is NumPy
    column operations, wrapping the exact kernel it falls back to.

    The run contract is the kernel contract: ``run(state, elements, extra)
    -> (state', consumed)``, empty batches touch nothing, and any
    out-of-contract batch (data outside the certified bounds, non-numeric
    payloads, unconvertible state) delegates *the whole batch* to the
    wrapped exact kernel — including its exact partial-progress semantics
    when an element genuinely faults.
    """

    __slots__ = ("domain", "exact", "plan", "bounds")

    #: Marker the fusion planner and tests key on (plain StepKernels
    #: return False via ``getattr(k, "columnar", False)``).
    columnar = True

    def __init__(self, run: Callable, *, domain: str, exact: StepKernel, plan: ColumnPlan,
                 bounds, name: str):
        super().__init__(run, compiled=True, name=name)
        self.domain = domain
        self.exact = exact
        self.plan = plan
        self.bounds = bounds

    def __repr__(self) -> str:
        return f"<ColumnarKernel {self.name} ({self.domain})>"


def compile_columns(
    program: OnlineProgram,
    initializer: Sequence[Value],
    *,
    domain: str,
    exact: StepKernel,
    bounds=None,
    name: str = "columnar",
) -> ColumnarKernel:
    """Build the columnar kernel for an admitted scheme.

    ``domain`` is ``"int64"`` (certificate-licensed, bit-identical) or
    ``"float64"`` (explicit opt-in); ``exact`` is the kernel delegated to
    on bailouts.  Raises :class:`ColumnarUnavailable` without NumPy and
    :class:`ColumnarError` when the program is not scan-decomposable.
    """
    np = _require_numpy()
    if domain not in ("int64", "float64"):
        raise ColumnarError(f"unknown columnar domain {domain!r}")
    plan = plan_columns(program, initializer)
    if plan.float_only and domain == "int64":
        raise ColumnarError("program uses float-only builtins; int64 domain refused")
    if domain == "float64" and any(c.kind == "cumprod" for c in plan.components):
        raise ColumnarError("product accumulation is int64-only (float64 overflow)")
    components = plan.components
    order = plan.order
    elem_arity = plan.elem_arity
    elem_param = program.elem_param
    extra_params = program.extra_params
    state_params = program.state_params
    index_of = {pname: i for i, pname in enumerate(state_params)}
    guard = domain == "int64"

    def _batch(state, chunk, extra):
        n = len(chunk)
        columns = _element_columns(np, chunk, elem_arity, domain)
        if guard:
            _check_bounds(np, columns, elem_arity, bounds)
        base_env: dict[str, Any] = {elem_param: columns}
        for pname in extra_params:
            if extra is None or pname not in extra:
                raise _Bailout(f"extra parameter {pname!r} missing")
            base_env[pname] = _scalar_in(extra[pname], domain, f"extra {pname!r}")
        starts = [_scalar_in(v, domain, f"state component {i}") for i, v in enumerate(state)]

        trajectories: dict[str, Any] = {}

        def prev_of(dep: str):
            traj = trajectories[dep]
            prev = np.empty(n, dtype=traj.dtype)
            prev[0] = starts[index_of[dep]]
            prev[1:] = traj[:-1]
            return prev

        for ci in order:
            comp = components[ci]
            start = starts[ci]
            env = dict(base_env)
            for dep in comp.depends:
                env[dep] = prev_of(dep)
            if comp.kind == "invariant":
                traj = np.full(n, start)
            elif comp.kind == "elementwise":
                traj = _broadcast(np, _col_eval(np, comp.expr, env, domain), n)
            else:
                term = _broadcast(np, _col_eval(np, comp.expr, env, domain), n)
                if comp.mask is not None:
                    cond = _truthy(np, _broadcast(np, _col_eval(np, comp.mask, env, domain), n))
                    if not comp.mask_sense:
                        cond = ~cond
                    term = np.where(cond, term, _neutral(np, comp.kind, term.dtype))
                if comp.kind == "cumsum":
                    traj = start + np.cumsum(term)
                elif comp.kind == "cumprod":
                    traj = start * np.cumprod(term)
                elif comp.kind == "cummax":
                    traj = np.maximum(np.maximum.accumulate(term), term.dtype.type(start))
                elif comp.kind == "cummin":
                    traj = np.minimum(np.minimum.accumulate(term), term.dtype.type(start))
                elif comp.kind == "cumor":
                    traj = np.logical_or.accumulate(_truthy(np, term)) | bool(start)
                else:  # cumand
                    traj = np.logical_and.accumulate(_truthy(np, term)) & bool(start)
            trajectories[comp.name] = traj
        return tuple(_scalar_out(np, trajectories[pname][-1]) for pname in state_params)

    def _run(state, elements, extra=None):
        chunk = elements if isinstance(elements, (list, tuple)) else list(elements)
        if not chunk:
            return tuple(state), 0
        try:
            new_state = _batch(state, chunk, extra)
        except _Bailout:
            return exact.run(state, chunk, extra)
        return new_state, len(chunk)

    return ColumnarKernel(
        _run, domain=domain, exact=exact, plan=plan, bounds=bounds, name=name
    )


def _infer_elem_arity(program: OnlineProgram) -> int:
    """Largest ``Proj`` index applied to the element parameter, plus one;
    1 when the element is only used whole (scalar streams)."""
    best = 0
    seen_whole = False

    def walk(e: Expr) -> None:
        nonlocal best, seen_whole
        if isinstance(e, Proj):
            if isinstance(e.tup, Var) and e.tup.name == program.elem_param:
                best = max(best, e.index + 1)
                return
            walk(e.tup)
        elif isinstance(e, Var):
            if e.name == program.elem_param:
                seen_whole = True
        elif isinstance(e, Call):
            for a in e.args:
                walk(a)
        elif isinstance(e, If):
            walk(e.cond), walk(e.then), walk(e.orelse)
        elif isinstance(e, Let):
            walk(e.value), walk(e.body)
        elif isinstance(e, MakeTuple):
            for item in e.items:
                walk(item)

    for out in program.outputs:
        walk(out)
    if best > 0 and seen_whole:
        raise ColumnarError("element used both whole and projected")
    return best if best > 0 else 1


def _broadcast(np, value, n: int):
    """A per-element column for ``value`` (constants broadcast)."""
    arr = np.asarray(value)
    if arr.ndim == 0:
        return np.full(n, value)
    return arr


def _neutral(np, kind: str, dtype):
    """The scan's neutral element: masked-out positions accumulate this.

    ``cumsum`` masks are folded into the term by the additive
    decomposition, so only the associative kinds reach here.
    """
    if kind == "cumsum":
        return dtype.type(0)
    if kind == "cumprod":
        return dtype.type(1)
    if kind == "cummax":
        return np.iinfo(np.int64).min if dtype.kind == "i" else -np.inf
    if kind == "cummin":
        return np.iinfo(np.int64).max if dtype.kind == "i" else np.inf
    if kind == "cumor":
        return False
    return True  # cumand


def columnar_kernel_for(
    scheme,
    bounds=None,
    *,
    allow_float: bool = False,
    exact: StepKernel | None = None,
) -> ColumnarKernel | None:
    """The admitted columnar kernel for ``scheme`` under ``bounds``, or
    ``None`` (NumPy absent, not admitted, or int64-only policy and no
    certificate).  The helper behind
    :meth:`repro.core.scheme.OnlineScheme.compiled_columns`.
    """
    if numpy_or_none() is None:
        return None
    admission = admit_columnar(scheme.program, scheme.initializer, bounds)
    if not admission.admitted:
        return None
    if admission.domain == "float64" and not allow_float:
        return None
    try:
        return compile_columns(
            scheme.program,
            scheme.initializer,
            domain=admission.domain,
            exact=exact if exact is not None else scheme._resolve_kernel(),
            bounds=bounds,
            name=f"{scheme.provenance}-columnar",
        )
    except ColumnarError:
        return None
