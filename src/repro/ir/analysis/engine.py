"""The abstract interpreter: one-step transfer, reachable-state fixpoint,
and affine growth certificates.

The fixpoint ``S*`` over-approximates every accumulator state reachable from
the initializer under the given input bounds (Kleene iteration with
threshold widening, so termination is structural, not hoped-for).  A final
recorded pass under ``S*`` then yields, per division site, a sound interval
for every denominator that can ever flow there — the static half of the
div-by-zero analysis — and per arithmetic site the value ranges the int64
certificate audits.

Accumulators the fixpoint cannot bound (``sum`` grows forever in the limit)
get a second chance when the stream length is bounded: if the update is
affine in the component itself with unit coefficient — ``y' = y + f(rest)``
with ``f`` independent of ``y`` — the per-step increment is bounded by
evaluating ``f`` under ``S*``, and ``N`` steps move the component at most
``N`` increments from its initializer.  That is exactly the shape of
``sum`` / ``count`` / ``sumsq`` accumulators, and the certificate is only
emitted in the exact-integer regime where float degrade provably never
strikes (drift cannot compound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from ..nodes import (
    Call,
    Const,
    Expr,
    If,
    Lambda,
    Let,
    MakeTuple,
    OnlineProgram,
    Proj,
    Var,
)
from ..values import Value
from .bounds import AnalysisBounds
from .domain import (
    AbstractValue,
    ANum,
    ATuple,
    ATop,
    Interval,
    TOP_NUM,
    _degrade_guard,
    apply_builtin,
    as_num,
    int64_certified,
    join,
    num_add,
    num_mul,
    num_neg,
    num_sub,
    of_value,
    singleton,
    truthiness,
    widen,
)

#: A site path: the output index followed by child indices down the tree.
Path = tuple[int, ...]

_WIDEN_AFTER = 4
_MAX_ITERATIONS = 80


class Recorder:
    """Collects per-site abstractions during one evaluation pass."""

    def __init__(self) -> None:
        self.div_denominators: dict[Path, ANum] = {}
        self.values: dict[Path, ANum] = {}

    def record_div(self, path: Path, denom: ANum) -> None:
        seen = self.div_denominators.get(path)
        self.div_denominators[path] = denom if seen is None else as_num(join(seen, denom))

    def record_value(self, path: Path, av: AbstractValue) -> None:
        if isinstance(av, ANum):
            seen = self.values.get(path)
            self.values[path] = av if seen is None else as_num(join(seen, av))


def eval_abstract(
    expr: Expr,
    env: dict[str, AbstractValue],
    rec: Recorder | None = None,
    path: Path = (),
) -> AbstractValue:
    """Abstract one-step evaluation of an *online* expression.

    List constructs (never valid online) and other unknowns return ``ATop``:
    the runtime faults on them, so any abstraction is vacuously sound, and
    the well-formedness audit reports them separately.
    """
    if isinstance(expr, Const):
        return of_value(expr.value)
    if isinstance(expr, Var):
        return env.get(expr.name, ATop)
    if isinstance(expr, Call):
        args = [eval_abstract(a, env, rec, path + (i,)) for i, a in enumerate(expr.args)]
        if isinstance(expr.func, str):
            if rec is not None and expr.func == "div" and len(args) == 2:
                rec.record_div(path, as_num(args[1]))
            result = apply_builtin(expr.func, args)
            if rec is not None:
                rec.record_value(path, result)
            return result
        if isinstance(expr.func, Lambda):
            lam = expr.func
            if len(lam.params) != len(args):
                return ATop
            inner = dict(env)
            inner.update(zip(lam.params, args))
            return eval_abstract(lam.body, inner, rec, path + (len(args),))
        return ATop
    if isinstance(expr, If):
        cond = truthiness(eval_abstract(expr.cond, env, rec, path + (0,)))
        if cond.may_true and not cond.may_false:
            return eval_abstract(expr.then, env, rec, path + (1,))
        if cond.may_false and not cond.may_true:
            return eval_abstract(expr.orelse, env, rec, path + (2,))
        return join(
            eval_abstract(expr.then, env, rec, path + (1,)),
            eval_abstract(expr.orelse, env, rec, path + (2,)),
        )
    if isinstance(expr, Let):
        value = eval_abstract(expr.value, env, rec, path + (0,))
        inner = dict(env)
        inner[expr.name] = value
        return eval_abstract(expr.body, inner, rec, path + (1,))
    if isinstance(expr, MakeTuple):
        return ATuple(
            tuple(eval_abstract(item, env, rec, path + (i,)) for i, item in enumerate(expr.items))
        )
    if isinstance(expr, Proj):
        tup = eval_abstract(expr.tup, env, rec, path + (0,))
        if isinstance(tup, ATuple):
            if 0 <= expr.index < len(tup.items):
                return tup.items[expr.index]
            return ATop  # faults at runtime
        return ATop
    return ATop


def iter_div_sites(program: OnlineProgram) -> list[tuple[Path, Expr]]:
    """Every ``div`` call site, with the path discipline ``eval_abstract``
    and the witness interpreter share (output index, then child indices)."""
    sites: list[tuple[Path, Expr]] = []

    def walk(expr: Expr, path: Path) -> None:
        if isinstance(expr, Call):
            for i, a in enumerate(expr.args):
                walk(a, path + (i,))
            if isinstance(expr.func, str) and expr.func == "div":
                sites.append((path, expr))
            elif isinstance(expr.func, Lambda):
                walk(expr.func.body, path + (len(expr.args),))
        elif isinstance(expr, If):
            walk(expr.cond, path + (0,))
            walk(expr.then, path + (1,))
            walk(expr.orelse, path + (2,))
        elif isinstance(expr, Let):
            walk(expr.value, path + (0,))
            walk(expr.body, path + (1,))
        elif isinstance(expr, MakeTuple):
            for i, item in enumerate(expr.items):
                walk(item, path + (i,))
        elif isinstance(expr, Proj):
            walk(expr.tup, path + (0,))

    for i, out in enumerate(program.outputs):
        walk(out, (i,))
    return sites


def _environment(
    program: OnlineProgram,
    state: list[AbstractValue],
    bounds: AnalysisBounds,
) -> dict[str, AbstractValue]:
    env: dict[str, AbstractValue] = {}
    for name in program.extra_params:
        fb = bounds.extras.get(name)
        env[name] = fb.to_abstract() if fb is not None else TOP_NUM
    env.update(zip(program.state_params, state))
    env[program.elem_param] = bounds.element_abstract()
    return env


@dataclass
class IntervalAnalysis:
    """Everything the interval fixpoint establishes."""

    #: Certified per-component abstraction (affine-tightened where possible).
    state: list[AbstractValue]
    #: Raw widened fixpoint (before affine tightening).
    fixpoint: list[AbstractValue]
    #: Per component: "fixpoint" (bounded by iteration), "affine"
    #: (bounded via the N-step increment certificate), or None (unbounded).
    certificates: list[str | None]
    iterations: int = 0
    #: Joined denominator abstraction per reachable ``div`` site.
    div_denominators: dict[Path, ANum] = field(default_factory=dict)
    #: Joined result abstraction per reachable arithmetic site.
    site_values: dict[Path, ANum] = field(default_factory=dict)

    def component_int64(self, index: int) -> bool:
        return int64_certified(self.state[index])

    def int64_safe(self) -> bool:
        """State *and* every reachable intermediate stay in int64 — the
        whole-scheme guard-elision certificate."""
        return all(self.component_int64(i) for i in range(len(self.state))) and all(
            int64_certified(av) for av in self.site_values.values()
        )


def _affine_decompose(
    expr: Expr,
    state_names: frozenset[str],
    env: dict[str, AbstractValue],
) -> tuple[dict[str, Fraction], ANum] | None:
    """Write ``expr`` as ``sum(coeff[v] * v) + rest`` over state variables.

    ``rest`` is a sound abstraction of the non-affine remainder under
    ``env``; returns ``None`` when the expression is not numeric-affine
    (callers then fall back to the plain fixpoint answer).
    """
    if isinstance(expr, Var) and expr.name in state_names:
        return {expr.name: Fraction(1)}, ANum(singleton(Fraction(0)), integral=True, exact=True)
    if isinstance(expr, Call) and isinstance(expr.func, str):
        if expr.func in ("add", "sub") and len(expr.args) == 2:
            left = _affine_decompose(expr.args[0], state_names, env)
            right = _affine_decompose(expr.args[1], state_names, env)
            if left is None or right is None:
                return None
            lc, lr = left
            rc, rr = right
            coeffs = dict(lc)
            for name, c in rc.items():
                coeffs[name] = coeffs.get(name, Fraction(0)) + (c if expr.func == "add" else -c)
            rest = num_add(lr, rr) if expr.func == "add" else num_sub(lr, rr)
            return {n: c for n, c in coeffs.items() if c != 0}, rest
        if expr.func == "neg" and len(expr.args) == 1:
            inner = _affine_decompose(expr.args[0], state_names, env)
            if inner is None:
                return None
            coeffs, rest = inner
            return {n: -c for n, c in coeffs.items()}, num_neg(rest)
        if expr.func == "mul" and len(expr.args) == 2:
            for const_side, other_side in ((0, 1), (1, 0)):
                const_av = eval_abstract(expr.args[const_side], env)
                if (
                    isinstance(const_av, ANum)
                    and const_av.exact
                    and const_av.iv.singleton
                    and isinstance(const_av.iv.lo, (int, Fraction))
                ):
                    c = Fraction(const_av.iv.lo)
                    inner = _affine_decompose(expr.args[other_side], state_names, env)
                    if inner is None:
                        return None
                    coeffs, rest = inner
                    scaled = num_mul(rest, const_av)
                    return {n: k * c for n, k in coeffs.items() if k * c != 0}, scaled
    # Fall back: collapse to a plain abstraction (no affine part).
    av = eval_abstract(expr, env)
    if isinstance(av, ANum):
        return {}, av
    return None


def _affine_certificate(
    program: OnlineProgram,
    index: int,
    init_value: Value,
    fixpoint: list[AbstractValue],
    bounds: AnalysisBounds,
) -> ANum | None:
    """Bound component ``index`` over at most ``N`` steps, if its update is
    ``y' = y + f(others, elem)`` in the exact-integer regime."""
    n = bounds.max_elements
    if n is None:
        return None
    name = program.state_params[index]
    env = _environment(program, fixpoint, bounds)
    dec = _affine_decompose(program.outputs[index], frozenset(program.state_params), env)
    if dec is None:
        return None
    coeffs, inc = dec
    if coeffs.get(name) != 1:
        return None
    for other, c in coeffs.items():
        if other == name:
            continue
        av = fixpoint[program.state_params.index(other)]
        if not (isinstance(av, ANum) and av.iv.bounded):
            return None
        weight = ANum(singleton(c), integral=c.denominator == 1, exact=True)
        inc = num_add(inc, num_mul(weight, av))
    init_av = of_value(init_value)
    if not isinstance(init_av, ANum):
        return None
    if not (inc.iv.bounded and init_av.iv.bounded):
        return None
    # Exact-integer regime only: a drifting (float-degraded) accumulation
    # compounds over steps and no single pad makes it sound.
    if not (inc.integral and inc.exact and init_av.integral and init_av.exact):
        return None
    lo = init_av.iv.lo + n * min(Fraction(0), Fraction(inc.iv.lo))
    hi = init_av.iv.hi + n * max(Fraction(0), Fraction(inc.iv.hi))
    iv, exact = _degrade_guard(Interval(lo, hi), ANum(Interval(lo, hi), integral=True, exact=True))
    if not exact:
        return None
    return ANum(iv, integral=True, exact=True, denom_growth=False)


def analyze_intervals(
    program: OnlineProgram,
    initializer: tuple[Value, ...],
    bounds: AnalysisBounds,
) -> IntervalAnalysis:
    """Reachable-state fixpoint + affine tightening + recorded final pass."""
    state: list[AbstractValue] = [of_value(v) for v in initializer]
    iterations = 0
    for iteration in range(_MAX_ITERATIONS):
        iterations = iteration + 1
        env = _environment(program, state, bounds)
        stepped = [eval_abstract(out, env) for out in program.outputs]
        joined = [join(old, new) for old, new in zip(state, stepped)]
        if joined == state:
            break
        if iteration >= _WIDEN_AFTER:
            joined = [widen(old, new) for old, new in zip(state, joined)]
        state = joined
    else:  # pragma: no cover - the threshold ladder guarantees convergence
        state = [TOP_NUM if isinstance(av, ANum) else ATop for av in state]

    certificates: list[str | None] = []
    certified: list[AbstractValue] = []
    for i, av in enumerate(state):
        if isinstance(av, ANum) and not av.iv.bounded:
            tightened = _affine_certificate(program, i, initializer[i], state, bounds)
            if tightened is not None:
                certified.append(tightened)
                certificates.append("affine")
                continue
            certified.append(av)
            certificates.append(None)
        else:
            certified.append(av)
            certificates.append("fixpoint" if isinstance(av, ANum) else None)

    rec = Recorder()
    env = _environment(program, certified, bounds)
    for i, out in enumerate(program.outputs):
        eval_abstract(out, env, rec, (i,))
    return IntervalAnalysis(
        state=certified,
        fixpoint=state,
        certificates=certificates,
        iterations=iterations,
        div_denominators=rec.div_denominators,
        site_values=rec.values,
    )
