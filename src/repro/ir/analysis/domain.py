"""Abstract value domains for the IR analyses.

Exact-rational interval arithmetic with ``+/-inf`` endpoints plus coarse
integrality / exactness / denominator-growth tracking.  Every transfer
function here *over-approximates* the corresponding safe builtin from
:mod:`repro.ir.values` — including its ugly corners:

* ``safe_div`` returns 0 for a zero divisor, so a division whose divisor
  interval straddles zero contributes ``{0}`` to the quotient;
* ``_num2`` degrades to float arithmetic (and returns 0 on float overflow)
  once operand bit sizes pass ``1 << 20``, so any result we cannot prove
  stays in the exact small-integer regime is padded for float round-off and
  joined with ``{0}``;
* ``safe_sqrt`` / ``safe_log`` / ``safe_pow`` absorb their partial cases
  (negative radicands, non-positive logs, zero bases) by returning 0.

Soundness of these transfers is what turns the fixpoint computed by
:mod:`repro.ir.analysis.engine` into a certificate; it is differentially
enforced against the real evaluator in ``tests/test_ir_analysis.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Union

from ..values import Value

#: Interval endpoints: exact rationals/ints, or the two IEEE infinities (the
#: only floats an :class:`Interval` ever stores).
Endpoint = Union[int, Fraction, float]

INF = float("inf")

INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1

#: Magnitude below which integer arithmetic provably never trips the
#: ``_num2`` float-degrade guard (bit sizes stay microscopic next to the
#: ``1 << 20`` budget) and never overflows a float on degrade.
_EXACT_SAFE = 2**512

#: Relative padding applied to any bound that may have passed through float
#: arithmetic: IEEE doubles carry 53 bits, 2**-40 is a ~8000x safety margin.
_FLOAT_PAD = Fraction(1, 2**40)

#: Threshold ladder for widening: unstable bounds jump outward to the next
#: rung instead of creeping, so the fixpoint terminates quickly while still
#: landing on the boundaries that matter (int64 above all).
_THRESHOLDS = sorted(
    {
        Fraction(0),
        Fraction(1),
        Fraction(-1),
        Fraction(16),
        Fraction(-16),
        Fraction(1024),
        Fraction(-1024),
        Fraction(2**31),
        Fraction(-(2**31)),
        Fraction(INT64_MAX),
        Fraction(INT64_MIN),
        Fraction(2**127),
        Fraction(-(2**127)),
        Fraction(_EXACT_SAFE),
        Fraction(-_EXACT_SAFE),
    }
)


@dataclass(frozen=True)
class Interval:
    """A closed interval over the extended rationals (``lo <= hi``)."""

    lo: Endpoint
    hi: Endpoint

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def bounded(self) -> bool:
        return self.lo != -INF and self.hi != INF

    @property
    def singleton(self) -> bool:
        return self.lo == self.hi

    def contains(self, v) -> bool:
        return self.lo <= v <= self.hi

    def contains_zero(self) -> bool:
        return self.lo <= 0 <= self.hi


TOP_IV = Interval(-INF, INF)
ZERO_IV = Interval(0, 0)


def singleton(v) -> Interval:
    return Interval(v, v)


def join_iv(a: Interval, b: Interval) -> Interval:
    return Interval(min(a.lo, b.lo), max(a.hi, b.hi))


def widen_iv(old: Interval, new: Interval) -> Interval:
    """Threshold widening: any bound that moved jumps to the next rung."""
    lo: Endpoint = old.lo
    if new.lo < old.lo:
        below = [t for t in _THRESHOLDS if t <= new.lo]
        lo = below[-1] if below else -INF
    hi: Endpoint = old.hi
    if new.hi > old.hi:
        above = [t for t in _THRESHOLDS if t >= new.hi]
        hi = above[0] if above else INF
    return Interval(lo, hi)


def _is_inf(v: Endpoint) -> bool:
    return v == INF or v == -INF


def _eadd(a: Endpoint, b: Endpoint) -> Endpoint:
    """Endpoint sum.  Infinities are handled symbolically: mixing a float
    infinity into ``Fraction`` arithmetic would convert the (possibly huge)
    fraction to float and overflow.  Opposite infinities never meet in a
    bound position (lo+lo / hi+hi of non-empty intervals)."""
    if _is_inf(a):
        return a
    if _is_inf(b):
        return b
    return a + b


def _esub(a: Endpoint, b: Endpoint) -> Endpoint:
    return _eadd(a, -b)


def _emul(a: Endpoint, b: Endpoint) -> Endpoint:
    """Endpoint product with the standard ``0 * inf == 0`` convention (sound
    for interval bound computation)."""
    if a == 0 or b == 0:
        return Fraction(0)
    if _is_inf(a) or _is_inf(b):
        return INF if (a > 0) == (b > 0) else -INF
    return a * b


def _pad_endpoint_lo(lo: Endpoint) -> Endpoint:
    if lo == -INF or lo == INF:
        return lo
    return lo - abs(lo) * _FLOAT_PAD - _FLOAT_PAD


def _pad_endpoint_hi(hi: Endpoint) -> Endpoint:
    if hi == INF or hi == -INF:
        return hi
    return hi + abs(hi) * _FLOAT_PAD + _FLOAT_PAD


def pad_iv(iv: Interval) -> Interval:
    """Widen an interval enough to absorb float round-off on values that may
    have been computed in degraded (double) arithmetic."""
    return Interval(_pad_endpoint_lo(iv.lo), _pad_endpoint_hi(iv.hi))


# ---------------------------------------------------------------------------
# Abstract values


@dataclass(frozen=True)
class ANum:
    """A numeric abstract value.

    ``integral``
        certified: every concretization is a mathematical integer.
    ``exact``
        certified: the runtime value is an ``int``/``Fraction`` produced
        without any float fallback (so downstream ``_num2`` degrade cannot
        strike out of nowhere).
    ``denom_growth``
        *flag*, not a certificate: the value may be an exact rational whose
        denominator grows with the stream (gcd-bound arithmetic — the
        vectorized-backend planning signal).
    """

    iv: Interval
    integral: bool = False
    exact: bool = False
    denom_growth: bool = False


@dataclass(frozen=True)
class ABool:
    may_true: bool = True
    may_false: bool = True


@dataclass(frozen=True)
class ATuple:
    items: tuple


class _Top:
    """Unknown kind (and, for numbers, unknown everything)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ATop"


ATop = _Top()

AbstractValue = Union[ANum, ABool, ATuple, _Top]

TOP_NUM = ANum(TOP_IV, integral=False, exact=False, denom_growth=True)


def of_value(v: Value) -> AbstractValue:
    """The most precise abstract value of one concrete value."""
    if isinstance(v, bool):
        return ABool(may_true=v, may_false=not v)
    if isinstance(v, int):
        return ANum(singleton(v), integral=True, exact=True)
    if isinstance(v, Fraction):
        return ANum(singleton(v), integral=v.denominator == 1, exact=True)
    if isinstance(v, float):
        if math.isinf(v) or math.isnan(v):
            return ANum(TOP_IV, integral=False, exact=False)
        return ANum(pad_iv(singleton(Fraction(v))), integral=False, exact=False)
    if isinstance(v, tuple):
        return ATuple(tuple(of_value(item) for item in v))
    return ATop


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if a is ATop or b is ATop:
        return ATop
    if isinstance(a, ANum) and isinstance(b, ANum):
        return ANum(
            join_iv(a.iv, b.iv),
            integral=a.integral and b.integral,
            exact=a.exact and b.exact,
            denom_growth=a.denom_growth or b.denom_growth,
        )
    if isinstance(a, ABool) and isinstance(b, ABool):
        return ABool(a.may_true or b.may_true, a.may_false or b.may_false)
    if isinstance(a, ATuple) and isinstance(b, ATuple):
        if len(a.items) != len(b.items):
            return ATop
        return ATuple(tuple(join(x, y) for x, y in zip(a.items, b.items)))
    return ATop


def widen(old: AbstractValue, new: AbstractValue) -> AbstractValue:
    """Widen ``old`` toward ``new`` (which must already include ``old``)."""
    if isinstance(old, ANum) and isinstance(new, ANum):
        return replace(new, iv=widen_iv(old.iv, new.iv))
    if isinstance(old, ATuple) and isinstance(new, ATuple) and len(old.items) == len(new.items):
        return ATuple(tuple(widen(x, y) for x, y in zip(old.items, new.items)))
    return new


def truthiness(av: AbstractValue) -> ABool:
    """May the value be truthy / falsy?  (``If`` uses Python truthiness.)"""
    if isinstance(av, ABool):
        return av
    if isinstance(av, ANum):
        may_false = av.iv.contains_zero()
        may_true = not (av.iv.singleton and av.iv.lo == 0)
        return ABool(may_true, may_false)
    if isinstance(av, ATuple):
        return ABool(may_true=len(av.items) > 0, may_false=len(av.items) == 0)
    return ABool(True, True)


def as_num(av: AbstractValue) -> ANum:
    """Coerce to a numeric abstraction; non-numbers fault at runtime, so any
    numeric answer is vacuously sound for them."""
    if isinstance(av, ANum):
        return av
    return TOP_NUM


def _provably_small_int(a: ANum) -> bool:
    """Certified to stay far inside the exact small-integer regime, where
    ``_num2`` can neither degrade to floats nor overflow one."""
    return (
        a.integral
        and a.exact
        and a.iv.bounded
        and -_EXACT_SAFE <= a.iv.lo
        and a.iv.hi <= _EXACT_SAFE
    )


def _degrade_guard(result: Interval, *args: ANum) -> tuple[Interval, bool]:
    """Account for the ``_num2`` float fallback.

    Returns the guarded interval and whether the result is still certified
    exact.  If every operand provably stays small-integer, the op runs on the
    exact path and the interval passes through untouched; otherwise the op
    may have run in doubles — pad for round-off, and if the result magnitude
    can reach overflow country, join ``{0}`` (float overflow returns 0).
    """
    if all(_provably_small_int(a) for a in args):
        return result, True
    guarded = pad_iv(result)
    if guarded.lo < -_EXACT_SAFE or guarded.hi > _EXACT_SAFE:
        guarded = join_iv(guarded, ZERO_IV)
    return guarded, False


def _growth(*args: ANum) -> bool:
    return any(a.denom_growth for a in args)


def num_add(a: ANum, b: ANum) -> ANum:
    iv = Interval(_eadd(a.iv.lo, b.iv.lo), _eadd(a.iv.hi, b.iv.hi))
    iv, exact = _degrade_guard(iv, a, b)
    return ANum(iv, integral=a.integral and b.integral, exact=exact, denom_growth=_growth(a, b))


def num_sub(a: ANum, b: ANum) -> ANum:
    iv = Interval(_esub(a.iv.lo, b.iv.hi), _esub(a.iv.hi, b.iv.lo))
    iv, exact = _degrade_guard(iv, a, b)
    return ANum(iv, integral=a.integral and b.integral, exact=exact, denom_growth=_growth(a, b))


def num_neg(a: ANum) -> ANum:
    # ``neg`` never degrades: float negation is exact and exact stays exact.
    return replace(a, iv=Interval(-a.iv.hi, -a.iv.lo))


def num_abs(a: ANum) -> ANum:
    if a.iv.lo >= 0:
        iv = a.iv
    elif a.iv.hi <= 0:
        iv = Interval(-a.iv.hi, -a.iv.lo)
    else:
        iv = Interval(0, max(-a.iv.lo, a.iv.hi))
    return replace(a, iv=iv)


def num_mul(a: ANum, b: ANum) -> ANum:
    products = [
        _emul(a.iv.lo, b.iv.lo),
        _emul(a.iv.lo, b.iv.hi),
        _emul(a.iv.hi, b.iv.lo),
        _emul(a.iv.hi, b.iv.hi),
    ]
    iv = Interval(min(products), max(products))
    iv, exact = _degrade_guard(iv, a, b)
    return ANum(iv, integral=a.integral and b.integral, exact=exact, denom_growth=_growth(a, b))


def _ediv(a: Endpoint, b: Endpoint) -> Endpoint:
    """Endpoint quotient; ``b`` is never 0 here."""
    if a == -INF or a == INF:
        return a if b > 0 else -a
    if b == -INF or b == INF:
        return Fraction(0)
    return Fraction(a) / Fraction(b)


def _div_pos(num: Interval, lo: Endpoint, hi: Endpoint) -> Interval:
    """Quotient interval for denominators in ``[lo, hi]`` with ``lo > 0`` or
    denominators in ``(0, hi]`` when ``lo == 0`` (open at zero)."""
    if lo == 0:
        # Denominators arbitrarily close to 0+: any nonzero numerator side
        # blows up toward its own sign of infinity.
        q_hi: Endpoint = INF if num.hi > 0 else _ediv(num.hi, hi)
        q_lo: Endpoint = -INF if num.lo < 0 else _ediv(num.lo, hi)
        return Interval(q_lo, q_hi)
    candidates = [_ediv(num.lo, lo), _ediv(num.lo, hi), _ediv(num.hi, lo), _ediv(num.hi, hi)]
    return Interval(min(candidates), max(candidates))


def num_div(a: ANum, b: ANum) -> ANum:
    """``safe_div``: zero divisors yield 0, and mixed float operands can
    fail over to 0 — both are folded into the result interval."""
    parts: list[Interval] = []
    if b.iv.contains_zero():
        parts.append(ZERO_IV)
    # Positive denominator slice.
    if b.iv.hi > 0:
        parts.append(_div_pos(a.iv, max(b.iv.lo, Fraction(0)), b.iv.hi))
    # Negative slice: a / b == -(a / -b).
    if b.iv.lo < 0:
        neg_slice = _div_pos(a.iv, max(-b.iv.hi, Fraction(0)), -b.iv.lo)
        parts.append(Interval(-neg_slice.hi, -neg_slice.lo))
    iv = parts[0]
    for part in parts[1:]:
        iv = join_iv(iv, part)
    # The exact path of safe_div never degrades (no bit-size guard), but
    # float *operands* still do float division: pad unless both sides are
    # certified exact.  ``OverflowError`` fallback returns 0 — only possible
    # with float operands, which the pad+{0} of their producers covered, but
    # join {0} anyway when inexact for belt and braces.
    exact = a.exact and b.exact
    if not exact:
        iv = join_iv(pad_iv(iv), ZERO_IV)
    integral = a.integral and b.integral and b.iv.singleton and abs(b.iv.lo) == 1
    growth = _growth(a, b) or not (b.iv.singleton and b.integral)
    return ANum(iv, integral=integral, exact=exact, denom_growth=growth)


def num_min(a: ANum, b: ANum) -> ANum:
    return ANum(
        Interval(min(a.iv.lo, b.iv.lo), min(a.iv.hi, b.iv.hi)),
        integral=a.integral and b.integral,
        exact=a.exact and b.exact,
        denom_growth=_growth(a, b),
    )


def num_max(a: ANum, b: ANum) -> ANum:
    return ANum(
        Interval(max(a.iv.lo, b.iv.lo), max(a.iv.hi, b.iv.hi)),
        integral=a.integral and b.integral,
        exact=a.exact and b.exact,
        denom_growth=_growth(a, b),
    )


def _int_floor(v: Endpoint) -> Endpoint:
    if v == -INF or v == INF:
        return v
    return math.floor(v)


def _int_ceil(v: Endpoint) -> Endpoint:
    if v == -INF or v == INF:
        return v
    return math.ceil(v)


def num_floor(a: ANum) -> ANum:
    return ANum(
        Interval(_int_floor(a.iv.lo), _int_floor(a.iv.hi)),
        integral=True,
        exact=a.exact,
        denom_growth=False,
    )


def num_ceil(a: ANum) -> ANum:
    return ANum(
        Interval(_int_ceil(a.iv.lo), _int_ceil(a.iv.hi)),
        integral=True,
        exact=a.exact,
        denom_growth=False,
    )


def num_sign(a: ANum) -> ANum:
    lo = -1 if a.iv.lo < 0 else (0 if a.iv.lo == 0 else 1)
    hi = 1 if a.iv.hi > 0 else (0 if a.iv.hi == 0 else -1)
    return ANum(Interval(Fraction(lo), Fraction(hi)), integral=True, exact=True)


def num_sqrt(a: ANum) -> ANum:
    """``safe_sqrt``: negative radicands yield 0; results may be float."""
    hi = a.iv.hi
    if hi == INF:
        sq_hi: Endpoint = INF
    elif hi <= 0:
        sq_hi = Fraction(0)
    else:
        sq_hi = Fraction(math.isqrt(math.ceil(hi)) + 1)
    if a.iv.lo > 0 and a.iv.lo != INF:
        sq_lo: Endpoint = Fraction(max(0, math.isqrt(math.floor(a.iv.lo)) - 1))
    else:
        sq_lo = Fraction(0)
    iv = Interval(sq_lo, max(sq_lo, sq_hi))
    if a.iv.lo < 0:
        iv = join_iv(iv, ZERO_IV)
    return ANum(iv, integral=False, exact=False)


def _safe_float(v: Endpoint) -> float:
    try:
        return float(v)
    except OverflowError:
        return INF if v > 0 else -INF


def num_exp(a: ANum) -> ANum:
    """``safe_exp``: total, ``exp(0) == 1`` exactly, overflow -> float inf."""
    hi = a.iv.hi
    if hi == INF:
        e_hi: Endpoint = INF
    else:
        f = _safe_float(hi)
        try:
            e_hi = _pad_endpoint_hi(Fraction(math.exp(f)) * 2)
        except (OverflowError, ValueError):
            e_hi = INF
    return ANum(Interval(Fraction(0), max(Fraction(1), e_hi)), integral=False, exact=False)


def num_log(a: ANum) -> ANum:
    """``safe_log``: non-positive inputs (and 1) yield 0."""
    hi = a.iv.hi
    if hi == INF:
        l_hi: Endpoint = INF
    elif hi <= 0:
        l_hi = Fraction(0)
    elif hi > 1:
        try:
            l_hi = _pad_endpoint_hi(Fraction(math.log(_safe_float(hi))) + 1)
        except (OverflowError, ValueError):
            l_hi = INF
    else:
        l_hi = Fraction(0)
    l_lo: Endpoint = -INF
    if a.iv.lo >= 1:
        l_lo = Fraction(0)
    iv = Interval(min(l_lo, l_hi), max(l_lo, l_hi))
    if a.iv.lo <= 1:
        iv = join_iv(iv, ZERO_IV)
    return ANum(iv, integral=False, exact=False)


def num_pow(a: ANum, b: ANum) -> ANum:
    """``safe_pow``: exact only for small constant non-negative integer
    exponents on certified-small integral bases; everything else is float
    country with 0-absorbed partial cases."""
    if (
        b.iv.singleton
        and b.integral
        and isinstance(b.iv.lo, (int, Fraction))
        and 0 <= b.iv.lo <= 64
    ):
        k = int(b.iv.lo)
        if k == 0:
            return ANum(singleton(Fraction(1)), integral=True, exact=a.exact)
        lo, hi = a.iv.lo, a.iv.hi
        if k % 2 == 1:
            iv = Interval(_epow(lo, k), _epow(hi, k))
        else:
            m = max(abs(lo), abs(hi))
            if a.iv.contains_zero():
                iv = Interval(Fraction(0), _epow(m, k))
            else:
                low_mag = min(abs(lo), abs(hi))
                iv = Interval(_epow(low_mag, k), _epow(m, k))
        # Large exact results fall back to floats (and may overflow to 0).
        iv, exact = _degrade_guard(iv, a)
        return ANum(iv, integral=a.integral, exact=exact and a.integral, denom_growth=_growth(a))
    # Unknown/fractional/negative exponents: negative bases and zero bases
    # collapse to 0; magnitudes are unbounded in general.
    return ANum(join_iv(TOP_IV, ZERO_IV), integral=False, exact=False, denom_growth=True)


def _epow(v: Endpoint, k: int) -> Endpoint:
    if v == INF or v == -INF:
        return v if (v == INF or k % 2 == 1) else INF
    return Fraction(v) ** k


def num_expm1(a: ANum) -> ANum:
    hi = a.iv.hi
    if hi == INF:
        e_hi: Endpoint = INF
    else:
        try:
            e_hi = _pad_endpoint_hi(Fraction(math.expm1(_safe_float(hi))) + 1)
        except (OverflowError, ValueError):
            e_hi = INF
    iv = Interval(Fraction(-1) - _FLOAT_PAD, max(Fraction(0), e_hi))
    return ANum(join_iv(iv, ZERO_IV), integral=False, exact=False)


def num_log1p(a: ANum) -> ANum:
    hi = a.iv.hi
    if hi == INF:
        l_hi: Endpoint = INF
    elif hi <= -1:
        l_hi = Fraction(0)
    else:
        try:
            l_hi = _pad_endpoint_hi(Fraction(math.log1p(_safe_float(hi))) + 1)
        except (OverflowError, ValueError):
            l_hi = INF
    return ANum(Interval(-INF, max(Fraction(0), l_hi)), integral=False, exact=False)


def _cmp_bool(a: ANum, b: ANum, op: str) -> ABool:
    """Comparison over intervals; definite only when the intervals separate."""
    if op in ("lt", "le"):
        definitely = a.iv.hi < b.iv.lo or (op == "le" and a.iv.hi <= b.iv.lo)
        never = a.iv.lo > b.iv.hi or (op == "lt" and a.iv.lo >= b.iv.hi)
    elif op in ("gt", "ge"):
        return _cmp_bool(b, a, "lt" if op == "gt" else "le")
    elif op == "eq":
        definitely = a.iv.singleton and b.iv.singleton and a.iv.lo == b.iv.lo
        never = a.iv.hi < b.iv.lo or b.iv.hi < a.iv.lo
    else:  # ne
        inner = _cmp_bool(a, b, "eq")
        return ABool(may_true=inner.may_false, may_false=inner.may_true)
    return ABool(may_true=not never, may_false=not definitely)


def apply_builtin(name: str, args: list[AbstractValue]) -> AbstractValue:
    """Transfer function for one builtin call.

    Non-numeric arguments to numeric builtins fault at runtime (``_num2``
    raises), so returning any abstraction for them is vacuously sound; the
    well-formedness audit reports those separately.
    """
    if name in ("and", "or", "not"):
        bools = [truthiness(a) for a in args]
        if name == "not":
            return ABool(may_true=bools[0].may_false, may_false=bools[0].may_true)
        if name == "and":
            return ABool(
                may_true=bools[0].may_true and bools[1].may_true,
                may_false=bools[0].may_false or bools[1].may_false,
            )
        return ABool(
            may_true=bools[0].may_true or bools[1].may_true,
            may_false=bools[0].may_false and bools[1].may_false,
        )
    if name in ("eq", "ne") and len(args) == 2 and not all(isinstance(a, ANum) for a in args):
        return ABool(True, True)  # structural equality on tuples/bools
    nums = [as_num(a) for a in args]
    if name in ("lt", "le", "gt", "ge", "eq", "ne"):
        return _cmp_bool(nums[0], nums[1], name)
    table = {
        "add": num_add,
        "sub": num_sub,
        "mul": num_mul,
        "div": num_div,
        "neg": num_neg,
        "abs": num_abs,
        "min": num_min,
        "max": num_max,
        "pow": num_pow,
        "sqrt": num_sqrt,
        "exp": num_exp,
        "log": num_log,
        "expm1": num_expm1,
        "log1p": num_log1p,
        "floor": num_floor,
        "ceil": num_ceil,
        "sign": num_sign,
    }
    fn = table.get(name)
    if fn is None:
        return ATop  # length & friends: list-typed, not online
    return fn(*nums)


def int64_certified(a: AbstractValue) -> bool:
    """Does this abstraction certify an int64-safe value (the guard-elision
    input the vectorized columnar backend needs)?"""
    return (
        isinstance(a, ANum)
        and a.integral
        and a.exact
        and a.iv.bounded
        and INT64_MIN <= a.iv.lo
        and a.iv.hi <= INT64_MAX
    )
