"""Versioned analysis reports: every analysis, one JSON-able dict.

The report is the unit the rest of the stack consumes — ``repro analyze``
prints it, the scheme store caches it next to the scheme, serve/run
preflight gates on its verdict, and CI archives it.  Verdict semantics:

* ``error`` — the scheme is statically broken (unbound variable, arity
  mismatch, non-online construct): a step *will* raise.  Preflight refuses
  these; ``repro analyze`` exits 1.
* ``warn`` — executable but suspicious: a division can see a zero
  denominator (silently absorbed to 0 by ``safe_div``), or dead state
  components are being carried.  Exit 0 unless ``--strict``.
* ``ok`` — no findings above ``info``.

Certificates (interval bounds, affine N-step bounds, int64 safety) are
reported as exact endpoint strings so a consumer can re-audit them rather
than trust a boolean.
"""

from __future__ import annotations

from fractions import Fraction

from ..nodes import OnlineProgram
from ..pretty import pretty
from ..values import Value
from .bounds import AnalysisBounds, UNKNOWN_BOUNDS, bounds_to_dict, encode_endpoint
from .divzero import DivZeroWitness, find_divzero_witness
from .domain import ANum, int64_certified
from .engine import IntervalAnalysis, analyze_intervals, iter_div_sites
from .liveness import analyze_liveness
from .wellformed import audit_program

ANALYSIS_FORMAT = "repro/analysis"
ANALYSIS_VERSION = 1

#: Severity order for verdict aggregation.
_LEVELS = {"info": 0, "warn": 1, "error": 2}


def encode_value(value: Value):
    """JSON-safe exact encoding of a runtime value (for witnesses)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, float):
        return value if value == value and abs(value) != float("inf") else repr(value)
    if isinstance(value, tuple):
        return [encode_value(v) for v in value]
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    return repr(value)


def _state_entry(name: str, av, certificate: str | None) -> dict:
    entry: dict = {"name": name, "certificate": certificate}
    if isinstance(av, ANum):
        entry.update(
            lo=encode_endpoint(av.iv.lo),
            hi=encode_endpoint(av.iv.hi),
            integral=av.integral,
            exact=av.exact,
            denom_growth=av.denom_growth,
            int64=int64_certified(av),
        )
    else:
        entry.update(lo="-inf", hi="inf", integral=False, exact=False, int64=False)
    return entry


def _interval_section(program: OnlineProgram, analysis: IntervalAnalysis) -> dict:
    return {
        "state": [
            _state_entry(name, av, cert)
            for name, av, cert in zip(
                program.state_params, analysis.state, analysis.certificates
            )
        ],
        "iterations": analysis.iterations,
        "int64_safe": analysis.int64_safe(),
    }


def _divzero_section(
    program: OnlineProgram,
    analysis: IntervalAnalysis,
    witness: DivZeroWitness | None,
) -> dict:
    sites = []
    overall = "safe"
    for path, expr in iter_div_sites(program):
        denom = analysis.div_denominators.get(path)
        entry: dict = {"path": list(path), "expr": pretty(expr)}
        if denom is None:
            entry["verdict"] = "safe"
            entry["note"] = "statically unreachable"
        elif not denom.iv.contains_zero():
            entry["verdict"] = "safe"
            entry["denominator"] = {
                "lo": encode_endpoint(denom.iv.lo),
                "hi": encode_endpoint(denom.iv.hi),
            }
        else:
            entry["denominator"] = {
                "lo": encode_endpoint(denom.iv.lo),
                "hi": encode_endpoint(denom.iv.hi),
            }
            if witness is not None and witness.site == path:
                entry["verdict"] = "reachable"
                entry["witness"] = {
                    "elements": [encode_value(e) for e in witness.elements],
                    "element_index": witness.element_index,
                    "state_before": [encode_value(v) for v in witness.state],
                    "extras": {
                        k: encode_value(v) for k, v in sorted(witness.extras.items())
                    },
                }
            else:
                entry["verdict"] = "unknown"
        sites.append(entry)
    verdicts = {s["verdict"] for s in sites}
    if "reachable" in verdicts:
        overall = "reachable"
    elif "unknown" in verdicts:
        overall = "unknown"
    return {"verdict": overall, "sites": sites}


def analyze_online(
    program: OnlineProgram,
    initializer: tuple[Value, ...],
    bounds: AnalysisBounds = UNKNOWN_BOUNDS,
    name: str | None = None,
    search_witness: bool = True,
) -> dict:
    """Run every analysis over one online scheme; returns the report dict."""
    findings = audit_program(program, tuple(initializer))
    has_error = any(f["level"] == "error" for f in findings)
    if has_error:
        # The deeper analyses assume well-formedness (the audit is their
        # precondition); a statically broken scheme gets an error verdict
        # with the audit findings alone.
        return {
            "format": ANALYSIS_FORMAT,
            "version": ANALYSIS_VERSION,
            "scheme": name,
            "verdict": "error",
            "bounds": bounds_to_dict(bounds),
            "findings": findings,
            "intervals": {"state": [], "iterations": 0, "int64_safe": False},
            "divzero": {"verdict": "unknown", "sites": []},
            "liveness": {"live": [], "dead": [], "removable": [], "retained": []},
        }

    intervals = analyze_intervals(program, tuple(initializer), bounds)
    witness = None
    div_sites = iter_div_sites(program)
    statically_unsafe = any(
        path in intervals.div_denominators
        and intervals.div_denominators[path].iv.contains_zero()
        for path, _ in div_sites
    )
    if search_witness and statically_unsafe and not has_error:
        witness = find_divzero_witness(program, initializer, bounds)
    divzero = _divzero_section(program, intervals, witness)
    if divzero["verdict"] == "reachable":
        site = next(s for s in divzero["sites"] if s["verdict"] == "reachable")
        findings.append(
            {
                "analysis": "divzero",
                "level": "warn",
                "message": (
                    f"zero denominator reachable at {site['expr']} "
                    "(safe_div absorbs it to 0)"
                ),
                "site": str(site["path"]),
            }
        )
    elif divzero["verdict"] == "unknown":
        findings.append(
            {
                "analysis": "divzero",
                "level": "info",
                "message": "denominator interval contains 0 but no witness found",
            }
        )

    element_arity = len(bounds.element) if bounds.element is not None else None
    liveness = analyze_liveness(program, tuple(initializer), element_arity)
    names = program.state_params
    if liveness.removable:
        dead = ", ".join(names[i] for i in liveness.removable)
        findings.append(
            {
                "analysis": "liveness",
                "level": "warn",
                "message": f"dead state component(s): {dead} (eliminable)",
            }
        )
    for i in liveness.retained:
        findings.append(
            {
                "analysis": "liveness",
                "level": "info",
                "message": (
                    f"state component {names[i]!r} is dead but its update "
                    "may fault; retained"
                ),
            }
        )
    for name_, av in zip(names, intervals.state):
        if isinstance(av, ANum) and av.denom_growth:
            findings.append(
                {
                    "analysis": "intervals",
                    "level": "info",
                    "message": (
                        f"component {name_!r}: exact-rational denominator "
                        "may grow with the stream (gcd growth)"
                    ),
                }
            )

    worst = max((_LEVELS[f["level"]] for f in findings), default=0)
    verdict = {0: "ok", 1: "warn", 2: "error"}[worst]
    return {
        "format": ANALYSIS_FORMAT,
        "version": ANALYSIS_VERSION,
        "scheme": name,
        "verdict": verdict,
        "bounds": bounds_to_dict(bounds),
        "findings": findings,
        "intervals": _interval_section(program, intervals),
        "divzero": divzero,
        "liveness": {
            "live": [names[i] for i in liveness.live],
            "dead": [names[i] for i in liveness.dead],
            "removable": [names[i] for i in liveness.removable],
            "retained": [names[i] for i in liveness.retained],
        },
    }


def report_verdict(report: dict) -> str:
    return report.get("verdict", "error")


def exit_code(report: dict, strict: bool = False) -> int:
    """The 0/1/2 CLI contract: 0 ok (or warn), 1 error (or warn under
    ``--strict``).  2 is reserved for usage/format errors at the CLI layer."""
    verdict = report_verdict(report)
    if verdict == "error":
        return 1
    if verdict == "warn" and strict:
        return 1
    return 0
