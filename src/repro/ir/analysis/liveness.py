"""State-component liveness and verified dead-state elimination.

A component is *live* when the primary output (component 0, the value
``run`` streams to the caller) transitively depends on it through the
update functions; everything else is dead weight carried across steps.
Synthesis already prunes the easy cases (``core.postprocess``), but schemes
arriving from disk, from older store entries, or from hand-editing can
still carry dead components.

Elimination must be *bit-identical*, including faults: a dead component
whose update can raise (``Proj`` on a scalar, a wrong-arity call) still
changes observable behaviour when removed, so we only drop components whose
update expression is provably total under a coarse kind analysis.  The kind
lattice (NUM / BOOL / TUP(kinds) / ANY) deliberately knows nothing about
ranges — totality of the safe builtins is range-independent, except for the
float-converting ones (``sqrt``/``log``/``floor``/…, non-constant ``pow``)
which can overflow on huge exact rationals and are therefore never "total"
here.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..builtins import get_builtin, is_builtin
from ..types import BOOL
from ..nodes import (
    Call,
    Const,
    Expr,
    If,
    Lambda,
    Let,
    MakeTuple,
    OnlineProgram,
    Proj,
    Var,
)
from ..traversal import free_vars
from ..values import Value

# Kinds: ("num",) | ("bool",) | ("tuple", (kind, ...)) | ("any",)
Kind = tuple

NUM_K: Kind = ("num",)
BOOL_K: Kind = ("bool",)
ANY_K: Kind = ("any",)


def tuple_kind(items: tuple) -> Kind:
    return ("tuple", tuple(items))


def kind_of_value(value: Value) -> Kind:
    if isinstance(value, bool):
        return BOOL_K
    if isinstance(value, (int, float, Fraction)):
        return NUM_K
    if isinstance(value, tuple):
        return tuple_kind(tuple(kind_of_value(v) for v in value))
    return ANY_K


def join_kinds(a: Kind, b: Kind) -> Kind:
    if a == b:
        return a
    if a[0] == "tuple" and b[0] == "tuple" and len(a[1]) == len(b[1]):
        return tuple_kind(tuple(join_kinds(x, y) for x, y in zip(a[1], b[1])))
    return ANY_K


#: Builtins total on any numeric arguments (the safe wrappers absorb every
#: arithmetic edge case without converting huge exact values to float).
_TOTAL_NUMERIC = frozenset({"add", "sub", "mul", "div", "neg", "abs", "min", "max", "sign", "exp"})
#: Comparisons are total on numbers; eq/ne/and/or/not are total on anything.
_TOTAL_COMPARE = frozenset({"lt", "le", "gt", "ge"})
_TOTAL_ANY = frozenset({"eq", "ne", "and", "or", "not"})


def _is_const_int(expr: Expr) -> bool:
    if not isinstance(expr, Const):
        return False
    v = expr.value
    if isinstance(v, bool):
        return False
    return isinstance(v, int) or (isinstance(v, Fraction) and v.denominator == 1)


def kind_and_totality(expr: Expr, kenv: dict[str, Kind]) -> tuple[Kind, bool]:
    """``(kind, total)`` where ``total`` means *provably cannot raise* under
    the given free-variable kinds.  ``ANY`` kinds poison totality for the
    numeric builtins (a tuple reaching ``add`` raises ``TypeError``)."""
    if isinstance(expr, Const):
        return kind_of_value(expr.value), True
    if isinstance(expr, Var):
        kind = kenv.get(expr.name)
        if kind is None:
            return ANY_K, False  # unbound: raises EvaluationError
        return kind, True
    if isinstance(expr, Call):
        arg_info = [kind_and_totality(a, kenv) for a in expr.args]
        args_total = all(t for _, t in arg_info)
        kinds = [k for k, _ in arg_info]
        if isinstance(expr.func, str):
            if not is_builtin(expr.func):
                return ANY_K, False
            builtin = get_builtin(expr.func)
            if builtin.arity != len(kinds):
                return ANY_K, False
            all_num = all(k == NUM_K for k in kinds)
            if expr.func in _TOTAL_NUMERIC and all_num:
                return NUM_K, args_total
            if expr.func in _TOTAL_COMPARE and all_num:
                return BOOL_K, args_total
            if expr.func in _TOTAL_ANY:
                return BOOL_K, args_total
            if expr.func == "pow" and all_num:
                # The integer-exponent path of safe_pow is fully guarded;
                # a float exponent can overflow unguarded.
                if _is_const_int(expr.args[1]):
                    return NUM_K, args_total
                return NUM_K, False
            # sqrt/log/floor/ceil/expm1/log1p/length, or a numeric builtin
            # applied to non-NUM kinds: may raise (conversion overflow or
            # TypeError), so not total.
            result = BOOL_K if builtin.result_type == BOOL else NUM_K
            return result, False
        if isinstance(expr.func, Lambda):
            lam = expr.func
            if len(lam.params) != len(kinds):
                return ANY_K, False
            inner = dict(kenv)
            inner.update(zip(lam.params, kinds))
            body_kind, body_total = kind_and_totality(lam.body, inner)
            return body_kind, args_total and body_total
        return ANY_K, False
    if isinstance(expr, If):
        _, cond_total = kind_and_totality(expr.cond, kenv)
        then_kind, then_total = kind_and_totality(expr.then, kenv)
        else_kind, else_total = kind_and_totality(expr.orelse, kenv)
        return join_kinds(then_kind, else_kind), cond_total and then_total and else_total
    if isinstance(expr, Let):
        value_kind, value_total = kind_and_totality(expr.value, kenv)
        inner = dict(kenv)
        inner[expr.name] = value_kind
        body_kind, body_total = kind_and_totality(expr.body, inner)
        return body_kind, value_total and body_total
    if isinstance(expr, MakeTuple):
        info = [kind_and_totality(item, kenv) for item in expr.items]
        return tuple_kind(tuple(k for k, _ in info)), all(t for _, t in info)
    if isinstance(expr, Proj):
        tup_kind, tup_total = kind_and_totality(expr.tup, kenv)
        if tup_kind[0] == "tuple":
            items = tup_kind[1]
            if 0 <= expr.index < len(items):
                return items[expr.index], tup_total
        return ANY_K, False  # out of range or non-tuple: EvaluationError
    # List constructs, holes, anything else: faults in an online step.
    return ANY_K, False


def _element_kind(program: OnlineProgram, element_arity: int | None) -> Kind:
    if element_arity is None:
        return ANY_K
    if element_arity == 1:
        return NUM_K
    return tuple_kind(tuple(NUM_K for _ in range(element_arity)))


def state_kinds(
    program: OnlineProgram,
    initializer: tuple[Value, ...],
    element_arity: int | None,
) -> dict[str, Kind]:
    """Per-variable kind environment, iterated to a (tiny) fixpoint so that
    kind-changing updates are joined rather than missed."""
    kenv: dict[str, Kind] = {name: NUM_K for name in program.extra_params}
    kenv[program.elem_param] = _element_kind(program, element_arity)
    kinds = [kind_of_value(v) for v in initializer]
    for _ in range(1 + len(initializer)):
        kenv.update(zip(program.state_params, kinds))
        stepped = [kind_and_totality(out, kenv)[0] for out in program.outputs]
        joined = [join_kinds(a, b) for a, b in zip(kinds, stepped)]
        if joined == kinds:
            break
        kinds = joined
    kenv.update(zip(program.state_params, kinds))
    return kenv


def live_components(program: OnlineProgram) -> set[int]:
    """Indices of state components the primary output transitively needs."""
    state_set = frozenset(program.state_params)
    deps: list[frozenset[str]] = [free_vars(out) & state_set for out in program.outputs]
    index_of = {name: i for i, name in enumerate(program.state_params)}
    live = {0}
    frontier = [0]
    while frontier:
        i = frontier.pop()
        for name in deps[i]:
            j = index_of[name]
            if j not in live:
                live.add(j)
                frontier.append(j)
    return live


@dataclass(frozen=True)
class LivenessReport:
    live: tuple[int, ...]
    dead: tuple[int, ...]
    #: Dead components whose update is provably total (safe to eliminate).
    removable: tuple[int, ...]
    #: Dead components retained because their update may fault.
    retained: tuple[int, ...]


def analyze_liveness(
    program: OnlineProgram,
    initializer: tuple[Value, ...],
    element_arity: int | None = None,
) -> LivenessReport:
    live = live_components(program)
    dead = [i for i in range(program.arity) if i not in live]
    kenv = state_kinds(program, initializer, element_arity)
    removable = [i for i in dead if kind_and_totality(program.outputs[i], kenv)[1]]
    retained = [i for i in dead if i not in set(removable)]
    return LivenessReport(
        live=tuple(sorted(live)),
        dead=tuple(dead),
        removable=tuple(removable),
        retained=tuple(retained),
    )


def eliminate_dead_state(
    program: OnlineProgram,
    initializer: tuple[Value, ...],
    element_arity: int | None = None,
) -> tuple[OnlineProgram, tuple[Value, ...], tuple[str, ...]]:
    """Drop provably-total dead components.  Returns the rewritten program,
    initializer, and the removed component names (empty when nothing was
    safe to remove — the originals are returned unchanged then)."""
    report = analyze_liveness(program, initializer, element_arity)
    if not report.removable:
        return program, initializer, ()
    keep = [i for i in range(program.arity) if i not in set(report.removable)]
    removed = tuple(program.state_params[i] for i in report.removable)
    new_program = OnlineProgram(
        state_params=tuple(program.state_params[i] for i in keep),
        elem_param=program.elem_param,
        outputs=tuple(program.outputs[i] for i in keep),
        extra_params=program.extra_params,
    )
    new_initializer = tuple(initializer[i] for i in keep)
    return new_program, new_initializer, removed
