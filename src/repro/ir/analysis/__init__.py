"""Static analysis over the IR: abstract interpretation and certificates.

Four analyses over online schemes (Figure 7 programs + initializer):

* **intervals** (:mod:`.engine`, :mod:`.domain`) — reachable-state interval
  fixpoint under input bounds, int64-safety certification, affine N-step
  growth certificates, denominator/gcd-growth flags;
* **divzero** (:mod:`.divzero`) — prove (interval excludes 0) or refute
  (concrete replayable witness) that a ``div`` site can see a zero
  denominator;
* **liveness** (:mod:`.liveness`) — dead state components and a verified,
  fault-preserving dead-state-elimination rewrite;
* **wellformed** (:mod:`.wellformed`) — unbound variables, holes, arity and
  type errors beyond ``infer.py``'s permissive pass, determinism notes.

:mod:`.report` aggregates them into a versioned JSON report with an
``ok``/``warn``/``error`` verdict; :mod:`.prune` exposes the sound
candidate-redundancy test the enumerative synthesizer uses.
"""

from .bounds import (
    AnalysisBounds,
    FieldBounds,
    UNKNOWN_BOUNDS,
    bounds_from_spec,
    scalar_bounds,
)
from .divzero import DivZeroWitness, find_divzero_witness
from .domain import ANum, Interval, int64_certified
from .engine import IntervalAnalysis, analyze_intervals, iter_div_sites
from .liveness import analyze_liveness, eliminate_dead_state, live_components
from .prune import statically_redundant
from .report import (
    ANALYSIS_FORMAT,
    ANALYSIS_VERSION,
    analyze_online,
    exit_code,
    report_verdict,
)
from .wellformed import audit_program

__all__ = [
    "ANALYSIS_FORMAT",
    "ANALYSIS_VERSION",
    "ANum",
    "AnalysisBounds",
    "DivZeroWitness",
    "FieldBounds",
    "Interval",
    "IntervalAnalysis",
    "UNKNOWN_BOUNDS",
    "analyze_intervals",
    "analyze_liveness",
    "analyze_online",
    "audit_program",
    "bounds_from_spec",
    "eliminate_dead_state",
    "exit_code",
    "find_divzero_witness",
    "int64_certified",
    "iter_div_sites",
    "live_components",
    "report_verdict",
    "scalar_bounds",
    "statically_redundant",
]
