"""Input bounds for the analyses: what is known about the stream.

The interval fixpoint is only as sharp as its inputs.  Bounds come from
three places, in decreasing order of precision:

* a source spec (``bids:1000``, ``zipf-keys:500:20`` — the generators in
  :mod:`repro.runtime.sources` document their field ranges);
* explicit CLI knobs (``--max-elements``);
* nothing — elements are completely unknown, which still certifies
  structure-only facts (liveness, well-formedness, constant divisors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from .domain import (
    INF,
    AbstractValue,
    ANum,
    ATop,
    ATuple,
    Endpoint,
    Interval,
)


@dataclass(frozen=True)
class FieldBounds:
    """Range of one scalar stream field."""

    lo: Endpoint = -INF
    hi: Endpoint = INF
    integral: bool = False

    def to_abstract(self) -> ANum:
        return ANum(
            Interval(self.lo, self.hi),
            integral=self.integral,
            exact=True,  # sources yield exact rationals by contract
        )


UNBOUNDED_FIELD = FieldBounds()


@dataclass(frozen=True)
class AnalysisBounds:
    """Everything the analyzer may assume about the input stream."""

    #: Per-field bounds; one entry for scalar streams, ``k`` entries for
    #: tuple-of-arity-``k`` streams, ``None`` when the shape is unknown.
    element: tuple[FieldBounds, ...] | None = None
    #: Upper bound on the stream length (enables the affine-growth
    #: certificates for accumulators the fixpoint alone cannot bound).
    max_elements: int | None = None
    #: Bounds of the extra (non-stream) parameters, by name.
    extras: dict[str, FieldBounds] = field(default_factory=dict)
    #: Where these bounds came from (a source spec), for the report.
    source: str | None = None

    def element_abstract(self) -> AbstractValue:
        if self.element is None:
            return ATop
        if len(self.element) == 1:
            return self.element[0].to_abstract()
        return ATuple(tuple(f.to_abstract() for f in self.element))


UNKNOWN_BOUNDS = AnalysisBounds()


def encode_endpoint(v: Endpoint) -> str:
    """JSON-safe exact endpoint text: ``"-inf"``, ``"inf"``, or ``"p/q"``."""
    if v == -INF:
        return "-inf"
    if v == INF:
        return "inf"
    return str(Fraction(v))


def decode_endpoint(text: str) -> Endpoint:
    if text == "-inf":
        return -INF
    if text == "inf":
        return INF
    return Fraction(text)


def field_bounds_to_dict(fb: FieldBounds) -> dict:
    return {"lo": encode_endpoint(fb.lo), "hi": encode_endpoint(fb.hi), "integral": fb.integral}


def bounds_to_dict(bounds: AnalysisBounds) -> dict:
    return {
        "element": (
            None
            if bounds.element is None
            else [field_bounds_to_dict(f) for f in bounds.element]
        ),
        "max_elements": bounds.max_elements,
        "extras": {name: field_bounds_to_dict(fb) for name, fb in sorted(bounds.extras.items())},
        "source": bounds.source,
    }


def _spec_arg(token: str) -> Fraction:
    return Fraction(token)


def _args_of(spec: str) -> tuple[str, list[str]]:
    name, _, rest = spec.partition(":")
    return name, (rest.split(":") if rest else [])


def _arg(args: list[str], index: int, default: Fraction) -> Fraction:
    if index < len(args):
        return _spec_arg(args[index])
    return default


def _count_of(args: list[str], index: int) -> int | None:
    """The element-count argument, if the spec states one."""
    if index < len(args):
        return int(_spec_arg(args[index]))
    return None


def bounds_from_spec(spec: str, max_elements: int | None = None) -> AnalysisBounds:
    """Derive :class:`AnalysisBounds` from a ``repro run`` source spec.

    Unknown sources raise ``ValueError`` (mirroring
    :func:`repro.runtime.sources.from_spec`); every known source's field
    ranges follow its generator's documented contract.  An explicit
    ``max_elements`` tightens (never loosens) the spec's own count.
    """
    name, args = _args_of(spec)
    count: int | None
    if name == "list":
        if not args or not args[0]:
            raise ValueError("list: spec needs comma-separated values")
        values = [Fraction(tok) for tok in args[0].split(",")]
        fields = (FieldBounds(min(values), max(values), all(v.denominator == 1 for v in values)),)
        count = len(values)
    elif name == "constant":
        if not args:
            raise ValueError("constant: spec needs a value")
        v = _spec_arg(args[0])
        fields = (FieldBounds(v, v, v.denominator == 1),)
        count = _count_of(args, 1)
    elif name == "counter":
        count = _count_of(args, 0)
        start = _arg(args, 1, Fraction(0))
        hi: Endpoint = start + count - 1 if count else (start if count == 0 else INF)
        fields = (FieldBounds(start, max(start, hi), start.denominator == 1),)
    elif name == "sawtooth":
        count = _count_of(args, 0)
        period = _arg(args, 1, Fraction(17))
        noise = _arg(args, 2, Fraction(0))
        fields = (
            FieldBounds(
                -Fraction(noise, 2),
                period - 1 + Fraction(noise, 2),
                noise == 0,
            ),
        )
    elif name == "random_walk":
        count = _count_of(args, 0)
        step = _arg(args, 1, Fraction(3))
        reach = (count or 0) * step if count is not None else INF
        fields = (FieldBounds(-reach, reach, step.denominator == 1),)
    elif name == "gaussian":
        count = _count_of(args, 0)
        fields = (FieldBounds(Fraction(-10), Fraction(10), True),)
    elif name == "bids":
        count = _count_of(args, 0)
        low = _arg(args, 2, Fraction(50))
        high = _arg(args, 3, Fraction(500))
        categories = _arg(args, 4, Fraction(5))
        fields = (
            FieldBounds(low, high, True),
            FieldBounds(Fraction(1), categories, True),
        )
    elif name == "zipf-keys":
        count = _count_of(args, 0)
        keys = _arg(args, 1, Fraction(50))
        low = _arg(args, 4, Fraction(1))
        high = _arg(args, 5, Fraction(1000))
        fields = (
            FieldBounds(low, high, True),
            FieldBounds(Fraction(1), keys, True),
        )
    elif name == "pairs":
        count = _count_of(args, 0)
        slope = _arg(args, 1, Fraction(2))
        intercept = _arg(args, 2, Fraction(1))
        noise = _arg(args, 3, Fraction(2))
        x_lo, x_hi = Fraction(-6), Fraction(6)
        ys = [slope * x_lo + intercept, slope * x_hi + intercept]
        fields = (
            FieldBounds(x_lo, x_hi, True),
            FieldBounds(
                min(ys) - noise,
                max(ys) + noise,
                slope.denominator == 1 and intercept.denominator == 1 and noise.denominator == 1,
            ),
        )
    else:
        raise ValueError(f"cannot derive bounds for unknown source {name!r}")
    if max_elements is not None:
        count = max_elements if count is None else min(count, max_elements)
    return AnalysisBounds(element=fields, max_elements=count, source=spec)


def scalar_bounds(
    lo: Endpoint = -INF,
    hi: Endpoint = INF,
    integral: bool = False,
    max_elements: int | None = None,
) -> AnalysisBounds:
    """Convenience constructor for a scalar stream with one known range."""
    if not (lo == -INF or isinstance(lo, (int, Fraction))):
        lo = Fraction(lo)
    if not (hi == INF or isinstance(hi, (int, Fraction))):
        hi = Fraction(hi)
    return AnalysisBounds(element=(FieldBounds(lo, hi, integral),), max_elements=max_elements)
