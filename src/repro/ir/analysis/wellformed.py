"""Well-formedness and determinism audit for online schemes.

``parser.parse_online_program`` rejects the worst offenders at load time,
but programs also arrive from synthesis internals, old store entries, and
tests that build IR directly.  This audit re-checks everything statically —
unbound variables, unfilled holes, unknown builtins, arity mismatches,
non-online constructs, and type confusion beyond ``infer.py``'s permissive
pass — and classifies each problem as an ``error`` (the step *will* raise)
or a ``warn`` (suspicious but executable).

Every IR builtin is a pure function of its arguments, so any well-formed
scheme is deterministic; the audit reports that as a fact, plus an info
note when float-valued builtins make exactness stream-order sensitive.
"""

from __future__ import annotations

from ..builtins import get_builtin, is_builtin
from ..infer import TypeError_, infer_type
from ..nodes import (
    Call,
    Expr,
    Hole,
    Lambda,
    Let,
    OnlineProgram,
    Var,
)
from ..traversal import iter_subexprs, used_builtins, validate_online_expr
from ..types import NUM, TypeEnvironment
from ..values import Value

#: Builtins whose results may be floats — exactness, not determinism, caveat.
_FLOATY = frozenset({"sqrt", "exp", "log", "expm1", "log1p", "pow"})


def _finding(level: str, message: str, site: str | None = None) -> dict:
    out = {"analysis": "wellformed", "level": level, "message": message}
    if site is not None:
        out["site"] = site
    return out


def _bound_names(program: OnlineProgram) -> frozenset[str]:
    return frozenset((*program.state_params, program.elem_param, *program.extra_params))


def _check_expr(expr: Expr, bound: frozenset[str], site: str) -> list[dict]:
    findings: list[dict] = []

    def walk(node: Expr, scope: frozenset[str]) -> None:
        if isinstance(node, Var) and node.name not in scope:
            findings.append(_finding("error", f"unbound variable {node.name!r}", site))
            return
        if isinstance(node, Hole):
            findings.append(_finding("error", f"unfilled hole ?{node.hole_id}", site))
            return
        if isinstance(node, Call):
            if isinstance(node.func, str):
                if not is_builtin(node.func):
                    findings.append(_finding("error", f"unknown builtin {node.func!r}", site))
                else:
                    builtin = get_builtin(node.func)
                    if builtin.arity != len(node.args):
                        findings.append(
                            _finding(
                                "error",
                                f"{node.func} expects {builtin.arity} args, "
                                f"got {len(node.args)}",
                                site,
                            )
                        )
            elif isinstance(node.func, Lambda):
                if len(node.func.params) != len(node.args):
                    findings.append(
                        _finding(
                            "error",
                            f"lambda expects {len(node.func.params)} args, "
                            f"got {len(node.args)}",
                            site,
                        )
                    )
                walk(node.func.body, scope | frozenset(node.func.params))
            else:
                findings.append(_finding("error", f"cannot apply {type(node.func).__name__}", site))
            for a in node.args:
                walk(a, scope)
            return
        if isinstance(node, Lambda):
            walk(node.body, scope | frozenset(node.params))
            return
        if isinstance(node, Let):
            walk(node.value, scope)
            walk(node.body, scope | {node.name})
            return
        for child in node.children():
            walk(child, scope)

    walk(expr, bound)
    return findings


def audit_program(
    program: OnlineProgram,
    initializer: tuple[Value, ...] | None = None,
) -> list[dict]:
    """All well-formedness findings for one online program."""
    findings: list[dict] = []

    names = list(program.state_params)
    if len(set(names)) != len(names):
        findings.append(_finding("error", "duplicate state component names"))
    if program.elem_param in names:
        findings.append(_finding("error", f"element param {program.elem_param!r} shadows state"))
    if initializer is not None and len(initializer) != program.arity:
        findings.append(
            _finding(
                "error",
                f"initializer has {len(initializer)} values for "
                f"{program.arity} state components",
            )
        )

    bound = _bound_names(program)
    env = TypeEnvironment({name: NUM for name in bound})
    for i, out in enumerate(program.outputs):
        site = f"output {i} ({program.state_params[i]})" if i < len(
            program.state_params
        ) else f"output {i}"
        if not validate_online_expr(out):
            findings.append(
                _finding(
                    "error",
                    "not an online expression (list construct, list builtin, "
                    "or hole)",
                    site,
                )
            )
        findings.extend(_check_expr(out, bound, site))
        try:
            infer_type(out, env)
        except TypeError_ as exc:
            findings.append(_finding("error", f"type error: {exc}", site))
        except KeyError:
            pass  # unknown builtin: already reported by the scope walk

    floaty = set()
    for out in program.outputs:
        floaty |= used_builtins(out) & _FLOATY
    has_higher_order = any(
        isinstance(sub, Lambda) for out in program.outputs for sub in iter_subexprs(out)
    )
    findings.append(
        _finding(
            "info",
            "deterministic: all builtins are pure functions of their inputs",
        )
    )
    if floaty:
        findings.append(
            _finding(
                "info",
                "float-valued builtins in use "
                f"({', '.join(sorted(floaty))}): results may be inexact",
            )
        )
    if has_higher_order:
        findings.append(_finding("info", "higher-order lambdas present (inlined per call)"))
    return findings


def audit_summary(findings: list[dict]) -> str:
    """Human line for logs: worst level + counts."""
    errors = sum(1 for f in findings if f["level"] == "error")
    warns = sum(1 for f in findings if f["level"] == "warn")
    if errors:
        return f"{errors} error(s), {warns} warning(s)"
    if warns:
        return f"{warns} warning(s)"
    return "ok"
