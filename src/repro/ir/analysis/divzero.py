"""Division-by-zero reachability: the concrete (witness) half.

The interval engine delivers the *static* half — a sound interval for every
denominator that can reach a ``div`` site, so sites whose interval excludes
zero are proved safe.  This module supplies the other direction: an
instrumented interpreter with :mod:`repro.ir.evaluator` semantics that
watches every denominator, plus a small bounded search over in-bounds
streams that tries to *hit* a zero.  A hit yields a replayable witness
(stream prefix, element index, site path, pre-step state); no hit leaves
the site ``unknown`` rather than falsely safe.

Note the runtime never actually raises on these — ``safe_div`` absorbs the
zero and returns 0 — so "reachable" findings are warnings about silent
absorption (a mean over the empty window), not crashes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Sequence

from ..builtins import get_builtin
from ..evaluator import EvaluationError, evaluate
from ..nodes import (
    Call,
    Const,
    Expr,
    If,
    Lambda,
    Let,
    MakeTuple,
    OnlineProgram,
    Proj,
    Var,
)
from ..traversal import iter_subexprs
from ..values import Value
from .bounds import AnalysisBounds, FieldBounds
from .engine import Path

_MISSING = object()


@dataclass(frozen=True)
class DivZeroWitness:
    """A concrete replay that drives a zero into a ``div`` denominator."""

    #: Stream prefix consumed up to and including the offending step.
    elements: tuple[Value, ...]
    #: Index (0-based) of the element whose step hit the zero.
    element_index: int
    #: Site path (output index, then child indices) of the ``div``.
    site: Path
    #: Accumulator state *before* the offending step.
    state: tuple[Value, ...]
    #: Extra-parameter bindings the replay used.
    extras: dict[str, Value] = field(default_factory=dict)


def _eval_watched(
    expr: Expr,
    env: Mapping[str, Value],
    hits: list[Path],
    path: Path,
) -> Value:
    """Evaluate with :func:`repro.ir.evaluator.evaluate` semantics, recording
    the path of every ``div`` whose denominator is a (numeric) zero.

    The path discipline matches :func:`repro.ir.analysis.engine.eval_abstract`
    exactly, so static intervals and concrete witnesses name the same sites.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        value = env.get(expr.name, _MISSING)
        if value is _MISSING:
            raise EvaluationError(f"unbound variable {expr.name!r}")
        return value
    if isinstance(expr, Call):
        args = [_eval_watched(a, env, hits, path + (i,)) for i, a in enumerate(expr.args)]
        if isinstance(expr.func, str):
            if expr.func == "div" and len(args) == 2:
                # Mirror safe_div's own zero test (bool False and 0.0 count).
                if args[1] == 0:
                    hits.append(path)
            return get_builtin(expr.func).impl(*args)
        if isinstance(expr.func, Lambda):
            lam = expr.func
            if len(args) != len(lam.params):
                raise EvaluationError(f"lambda expects {len(lam.params)} args, got {len(args)}")
            inner = dict(env)
            inner.update(zip(lam.params, args))
            return _eval_watched(lam.body, inner, hits, path + (len(args),))
        raise EvaluationError(f"cannot apply {expr.func!r}")
    if isinstance(expr, If):
        cond = _eval_watched(expr.cond, env, hits, path + (0,))
        if cond:
            return _eval_watched(expr.then, env, hits, path + (1,))
        return _eval_watched(expr.orelse, env, hits, path + (2,))
    if isinstance(expr, Let):
        value = _eval_watched(expr.value, env, hits, path + (0,))
        inner = dict(env)
        inner[expr.name] = value
        return _eval_watched(expr.body, inner, hits, path + (1,))
    if isinstance(expr, MakeTuple):
        return tuple(
            _eval_watched(item, env, hits, path + (i,)) for i, item in enumerate(expr.items)
        )
    if isinstance(expr, Proj):
        tup = _eval_watched(expr.tup, env, hits, path + (0,))
        try:
            return tup[expr.index]
        except (IndexError, TypeError) as exc:
            raise EvaluationError(f"bad projection {expr!r}: {exc}") from None
    # Non-online constructs carry no div sites we track; defer to the
    # reference interpreter for exact semantics (or its exact error).
    return evaluate(expr, dict(env))


def watched_step(
    program: OnlineProgram,
    state: Sequence[Value],
    element: Value,
    extras: Mapping[str, Value],
    hits: list[Path],
) -> tuple[Value, ...]:
    """One online step that appends zero-denominator site paths to ``hits``."""
    env: dict[str, Value] = dict(extras)
    env.update(zip(program.state_params, state))
    env[program.elem_param] = element
    return tuple(_eval_watched(out, env, hits, (i,)) for i, out in enumerate(program.outputs))


def element_arity(program: OnlineProgram) -> int:
    """Guessed stream-element arity: ``k`` if the element is projected
    (``Proj(x, i)`` with ``i < k``), else 1 (scalar)."""
    arity = 0
    for out in program.outputs:
        for sub in iter_subexprs(out):
            if (
                isinstance(sub, Proj)
                and isinstance(sub.tup, Var)
                and sub.tup.name == program.elem_param
            ):
                arity = max(arity, sub.index + 1)
    return max(arity, 1) if arity else 1


def _field_pool(fb: FieldBounds, rng) -> list[Value]:
    """A small set of in-bounds probe values for one stream field."""
    finite_lo = isinstance(fb.lo, (int, Fraction))
    finite_hi = isinstance(fb.hi, (int, Fraction))
    pool: list[Value] = []

    def keep(v: Value) -> None:
        if finite_lo and v < fb.lo:
            return
        if finite_hi and v > fb.hi:
            return
        if fb.integral and Fraction(v).denominator != 1:
            return
        if v not in pool:
            pool.append(v)

    if finite_lo:
        keep(fb.lo)
    if finite_hi:
        keep(fb.hi)
    for v in (0, 1, -1, 2):
        keep(v)
    if finite_lo and finite_hi:
        mid = Fraction(fb.lo + fb.hi, 2)
        keep(int(mid) if fb.integral else mid)
        for _ in range(3):
            if fb.integral:
                keep(rng.randint(int(fb.lo), int(fb.hi)))
            else:
                span = Fraction(fb.hi - fb.lo)
                keep(Fraction(fb.lo) + span * Fraction(rng.randint(0, 16), 16))
    else:
        for _ in range(3):
            keep(rng.randint(-9, 9))
    if not pool:  # degenerate bounds (lo > hi cannot happen, but be safe)
        pool.append(Fraction(fb.lo) if finite_lo else 0)
    return pool


def _element_pool(program: OnlineProgram, bounds: AnalysisBounds, rng) -> list[Value]:
    fields = bounds.element
    if fields is None:
        arity = element_arity(program)
        fields = tuple(FieldBounds() for _ in range(arity))
    pools = [_field_pool(fb, rng) for fb in fields]
    if len(pools) == 1:
        return list(pools[0])
    # Tuple streams: align pools positionally, then add a few random mixes.
    width = max(len(p) for p in pools)
    elements: list[Value] = []
    for j in range(width):
        elements.append(tuple(p[j % len(p)] for p in pools))
    for _ in range(6):
        elements.append(tuple(rng.choice(p) for p in pools))
    seen: list[Value] = []
    for e in elements:
        if e not in seen:
            seen.append(e)
    return seen


def _candidate_streams(pool: list[Value], max_len: int, rng, max_streams: int) -> list[list[Value]]:
    streams: list[list[Value]] = []
    for v in pool:
        streams.append([v])
        streams.append([v] * max_len)
    if len(pool) > 1:
        streams.append(list(pool[:max_len]))
        streams.append(list(reversed(pool))[:max_len])
    while len(streams) < max_streams:
        streams.append([rng.choice(pool) for _ in range(rng.randint(1, max_len))])
    return streams[:max_streams]


def _candidate_extras(program: OnlineProgram, bounds: AnalysisBounds) -> list[dict[str, Value]]:
    if not program.extra_params:
        return [{}]
    base: dict[str, Value] = {}
    for name in program.extra_params:
        fb = bounds.extras.get(name)
        if fb is not None and isinstance(fb.lo, (int, Fraction)):
            base[name] = fb.lo
        elif fb is not None and isinstance(fb.hi, (int, Fraction)):
            base[name] = fb.hi
        else:
            base[name] = 1
    return [base]


def find_divzero_witness(
    program: OnlineProgram,
    initializer: Sequence[Value],
    bounds: AnalysisBounds,
    max_len: int = 6,
    seed: int = 1,
    max_streams: int = 48,
) -> DivZeroWitness | None:
    """Bounded search for a concrete in-bounds stream that drives a zero
    denominator into some ``div`` site.  ``None`` means "not found", never
    "safe" — safety only comes from the static intervals."""
    import random

    rng = random.Random(seed)
    pool = _element_pool(program, bounds, rng)
    if bounds.max_elements is not None:
        max_len = max(1, min(max_len, bounds.max_elements))
    streams = _candidate_streams(pool, max_len, rng, max_streams)
    for extras in _candidate_extras(program, bounds):
        for stream in streams:
            state = tuple(initializer)
            consumed: list[Value] = []
            for idx, elem in enumerate(stream):
                hits: list[Path] = []
                consumed.append(elem)
                try:
                    next_state = watched_step(program, state, elem, extras, hits)
                except (EvaluationError, ArithmeticError, TypeError, ValueError):
                    next_state = None
                if hits:
                    return DivZeroWitness(
                        elements=tuple(consumed),
                        element_index=idx,
                        site=hits[0],
                        state=state,
                        extras=dict(extras),
                    )
                if next_state is None:
                    break  # faulting candidate; try the next stream
                state = next_state
    return None
