"""Static candidate pruning for the enumerative synthesizer.

``consider`` already deduplicates candidates by their value signature on
the oracle environments — correct but paid per candidate (a full
evaluation over every env).  The rules here discard a candidate *before*
evaluation when, on **every** possible environment, it either faults
(signature ``None`` — the bank drops those) or is value-identical to a
subexpression the bank has already processed (its signature is guaranteed
seen, because candidate children are drawn from the kept pools).

Soundness is strict pointwise equality under the *safe* builtin semantics,
including their corner cases.  Notably absent, because the ``_num2``
float-degrade on huge exact values breaks them: ``add(e, 0)``,
``mul(e, 1)``, ``sub(e, e)``, ``mul(e, 0)`` — ``add(huge, 0)`` degrades to
a float and acquires a *new* signature, and ``Const(0)`` need not even be
in a sharded terminal pool.  ``div(e, 1)`` survives because ``safe_div``
has no degrade path; ``neg(neg(e))`` because ``neg`` is unguarded exact
negation (and bool inputs collide hash-wise with their int images).
"""

from __future__ import annotations

from fractions import Fraction

from ..builtins import get_builtin, is_builtin
from ..nodes import Call, Const, Expr, If, MakeTuple, Proj
from ..types import BOOL
from ..values import is_number

#: Builtins that raise ``TypeError`` when *any* argument is a tuple
#: (``_num2`` / explicit numeric coercion reject non-numbers outright).
_SCALAR_ONLY = frozenset(
    {
        "add",
        "sub",
        "mul",
        "div",
        "pow",
        "neg",
        "abs",
        "sqrt",
        "exp",
        "log",
        "expm1",
        "log1p",
        "sign",
        "floor",
        "ceil",
    }
)


def _definite_kind(expr: Expr) -> str | None:
    """``"num"`` / ``"bool"`` / ``"tuple"`` when the value kind is certain
    *whenever the expression returns*; ``None`` otherwise."""
    if isinstance(expr, Const):
        v = expr.value
        if isinstance(v, bool):
            return "bool"
        if isinstance(v, tuple):
            return "tuple"
        if is_number(v):
            return "num"
        return None
    if isinstance(expr, MakeTuple):
        return "tuple"
    if isinstance(expr, Call) and isinstance(expr.func, str) and is_builtin(expr.func):
        builtin = get_builtin(expr.func)
        if builtin.kind != "list":
            return "bool" if builtin.result_type == BOOL else "num"
    return None


def _is_exact_one(expr: Expr) -> bool:
    if not isinstance(expr, Const):
        return False
    v = expr.value
    if isinstance(v, bool) or isinstance(v, float):
        return False
    return (isinstance(v, int) or isinstance(v, Fraction)) and v == 1


def statically_redundant(expr: Expr) -> bool:
    """Candidate can be dropped without consulting the oracle envs: on every
    environment it faults or duplicates an already-banked signature."""
    if isinstance(expr, Call) and isinstance(expr.func, str):
        name = expr.func
        args = expr.args
        # div(e, 1) == e exactly (safe_div never degrades precision).
        if name == "div" and len(args) == 2 and _is_exact_one(args[1]):
            return True
        # min/max of an expression with itself is that expression.
        if name in ("min", "max") and len(args) == 2 and args[0] == args[1]:
            return True
        # neg(neg(e)): exact double negation — equals e (or collides with
        # e's signature hash for bool e), or faults exactly when e's
        # operand faults.
        if (
            name == "neg" and len(args) == 1 and isinstance(args[0], Call) and args[0].func == "neg"
        ):
            return True
        # A numeric builtin fed a guaranteed tuple always raises TypeError.
        if name in _SCALAR_ONLY and any(_definite_kind(a) == "tuple" for a in args):
            return True
    if isinstance(expr, If):
        # Constant condition: the candidate IS one of its branches.
        if isinstance(expr.cond, Const):
            return True
        # Identical branches: the candidate is that branch (or faults with
        # the condition, and faulting candidates are dropped anyway).
        if expr.then == expr.orelse:
            return True
    if isinstance(expr, Proj):
        kind = _definite_kind(expr.tup)
        # Projection from a certain scalar always faults.
        if kind in ("num", "bool"):
            return True
        # Proj(MakeTuple(..), i): equals item i (whose signature is banked)
        # or faults — either way never a new signature.
        if isinstance(expr.tup, MakeTuple):
            return True
        # Out-of-range projection from a literal tuple always faults.  (An
        # in-range one may denote a constant whose signature is NOT banked,
        # so it must go through the oracle.)
        if (
            isinstance(expr.tup, Const)
            and isinstance(expr.tup.value, tuple)
            and not 0 <= expr.index < len(expr.tup.value)
        ):
            return True
    return False
