"""A small monomorphic type system for the functional IR.

The offline language of the paper (Figure 6) is untyped on the surface, but
several parts of the synthesizer need coarse type information:

* the ``Leaf`` decomposition rule of Figure 9 only fires on expressions whose
  type is *not* ``List``;
* the enumerative synthesizer needs to know which grammar productions are
  type-correct for a hole;
* the algebra encoder treats boolean- and number-typed atoms differently.

We therefore implement a simple structural type language with numbers,
booleans, homogeneous lists, fixed-arity tuples, and first-order function
types, together with a syntax-directed inference pass (:func:`infer_type`).
Inference is deliberately forgiving: when an expression mixes types in a way
the checker cannot resolve it falls back to :data:`NUM` rather than failing,
because the downstream equivalence oracle is the real arbiter of correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping


class Type:
    """Base class for IR types. Instances are immutable and hashable."""

    __slots__ = ()

    def is_list(self) -> bool:
        return isinstance(self, ListType)

    def is_tuple(self) -> bool:
        return isinstance(self, TupleType)

    def is_function(self) -> bool:
        return isinstance(self, FunType)

    def is_scalar(self) -> bool:
        """Scalar types may appear in online programs (Figure 7)."""
        return isinstance(self, (NumType, BoolType)) or (
            isinstance(self, TupleType) and all(t.is_scalar() for t in self.elements)
        )


@dataclass(frozen=True)
class NumType(Type):
    """Numbers.  The IR does not distinguish ints from rationals/reals."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Num"


@dataclass(frozen=True)
class BoolType(Type):
    __slots__ = ()

    def __repr__(self) -> str:
        return "Bool"


@dataclass(frozen=True)
class ListType(Type):
    """Homogeneous list whose elements have type ``element``."""

    element: Type

    def __repr__(self) -> str:
        return f"List[{self.element!r}]"


@dataclass(frozen=True)
class TupleType(Type):
    """Fixed-arity tuple; used for paired accumulators and record events."""

    elements: tuple[Type, ...]

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.elements)
        return f"Tuple[{inner}]"

    @property
    def arity(self) -> int:
        return len(self.elements)


@dataclass(frozen=True)
class FunType(Type):
    """First-order function type for lambda abstractions."""

    params: tuple[Type, ...]
    result: Type

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.params)
        return f"({inner}) -> {self.result!r}"


NUM = NumType()
BOOL = BoolType()
NUM_LIST = ListType(NUM)


def tuple_of(*elements: Type) -> TupleType:
    return TupleType(tuple(elements))


def list_of(element: Type) -> ListType:
    return ListType(element)


def fun(params: Iterable[Type], result: Type) -> FunType:
    return FunType(tuple(params), result)


def unify(a: Type, b: Type) -> Type:
    """Best-effort unification of two inferred types.

    This is not Hindley-Milner; there are no type variables.  Mismatches
    resolve to the more specific side when one side is the permissive
    :data:`NUM` default, and to :data:`NUM` otherwise.
    """
    if a == b:
        return a
    if isinstance(a, ListType) and isinstance(b, ListType):
        return ListType(unify(a.element, b.element))
    if isinstance(a, TupleType) and isinstance(b, TupleType):
        if a.arity == b.arity:
            return TupleType(tuple(unify(x, y) for x, y in zip(a.elements, b.elements)))
    # Prefer the non-default side when one of the two is the NUM fallback.
    if a == NUM:
        return b
    if b == NUM:
        return a
    return NUM


class TypeEnvironment:
    """Immutable mapping from variable names to types."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Mapping[str, Type] | None = None):
        self._bindings: dict[str, Type] = dict(bindings or {})

    def lookup(self, name: str) -> Type:
        return self._bindings.get(name, NUM)

    def extend(self, names: Iterable[str], types: Iterable[Type]) -> "TypeEnvironment":
        new = dict(self._bindings)
        for name, typ in zip(names, types):
            new[name] = typ
        return TypeEnvironment(new)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __repr__(self) -> str:
        return f"TypeEnvironment({self._bindings!r})"
