"""Generic AST traversals: substitution, free variables, let-inlining,
list-expression discovery, and AST size (the paper's Table 1 metric).

Every function here is purely structural and returns new trees; IR nodes are
immutable.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .builtins import get_builtin, is_builtin
from .nodes import (
    Call,
    Const,
    Expr,
    Filter,
    Fold,
    Hole,
    If,
    Lambda,
    Let,
    ListVar,
    MakeTuple,
    Map,
    Proj,
    Snoc,
    Var,
)

_FRESH_COUNTER = [0]


def fresh_name(prefix: str = "t") -> str:
    """A globally fresh variable name (used when inlining lets under binders)."""
    _FRESH_COUNTER[0] += 1
    return f"_{prefix}{_FRESH_COUNTER[0]}"


def rebuild(expr: Expr, new_children: tuple[Expr, ...]) -> Expr:
    """Reconstruct ``expr`` with ``new_children`` (same order as ``children``)."""
    if isinstance(expr, (Const, Var, ListVar, Hole)):
        return expr
    if isinstance(expr, Lambda):
        (body,) = new_children
        return Lambda(expr.params, body)
    if isinstance(expr, Call):
        if isinstance(expr.func, Lambda):
            func, *args = new_children
            return Call(func, tuple(args))
        return Call(expr.func, tuple(new_children))
    if isinstance(expr, If):
        cond, then, orelse = new_children
        return If(cond, then, orelse)
    if isinstance(expr, Map):
        func, lst = new_children
        return Map(func, lst)
    if isinstance(expr, Filter):
        func, lst = new_children
        return Filter(func, lst)
    if isinstance(expr, Fold):
        func, init, lst = new_children
        return Fold(func, init, lst)
    if isinstance(expr, Let):
        value, body = new_children
        return Let(expr.name, value, body)
    if isinstance(expr, Snoc):
        lst, elem = new_children
        return Snoc(lst, elem)
    if isinstance(expr, MakeTuple):
        return MakeTuple(tuple(new_children))
    if isinstance(expr, Proj):
        (tup,) = new_children
        return Proj(tup, expr.index)
    raise TypeError(f"unhandled node {type(expr).__name__}")


def transform_bottom_up(expr: Expr, f: Callable[[Expr], Expr]) -> Expr:
    """Apply ``f`` to every node, children first."""
    new_children = tuple(transform_bottom_up(c, f) for c in expr.children())
    return f(rebuild(expr, new_children))


def iter_subexprs(expr: Expr) -> Iterator[Expr]:
    """Pre-order iteration over all sub-expressions including ``expr``."""
    yield expr
    for child in expr.children():
        yield from iter_subexprs(child)


def ast_size(expr: Expr) -> int:
    """Number of AST nodes; the size metric of Table 1."""
    return 1 + sum(ast_size(c) for c in expr.children())


def free_vars(expr: Expr) -> frozenset[str]:
    """Free scalar variable names (``Var`` nodes) of ``expr``."""
    if isinstance(expr, Var):
        return frozenset({expr.name})
    if isinstance(expr, Lambda):
        return free_vars(expr.body) - frozenset(expr.params)
    if isinstance(expr, Let):
        return free_vars(expr.value) | (free_vars(expr.body) - {expr.name})
    result: frozenset[str] = frozenset()
    for child in expr.children():
        result |= free_vars(child)
    return result


def list_vars(expr: Expr) -> frozenset[str]:
    """Names of all ``ListVar`` occurrences in ``expr``."""
    names = set()
    for sub in iter_subexprs(expr):
        if isinstance(sub, ListVar):
            names.add(sub.name)
    return frozenset(names)


def contains_list_var(expr: Expr, name: str = "xs") -> bool:
    return any(isinstance(sub, ListVar) and sub.name == name for sub in iter_subexprs(expr))


def substitute(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Capture-avoiding substitution of scalar variables.

    Binders (``Lambda`` params, ``Let`` names) shadow outer bindings; since
    substituted values in this codebase are either closed online expressions
    or fresh variables, full alpha-renaming is unnecessary — we simply drop
    shadowed keys.
    """
    if not mapping:
        return expr
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Lambda):
        inner = {k: v for k, v in mapping.items() if k not in expr.params}
        return Lambda(expr.params, substitute(expr.body, inner))
    if isinstance(expr, Let):
        value = substitute(expr.value, mapping)
        inner = {k: v for k, v in mapping.items() if k != expr.name}
        return Let(expr.name, value, substitute(expr.body, inner))
    new_children = tuple(substitute(c, mapping) for c in expr.children())
    return rebuild(expr, new_children)


def substitute_list_var(expr: Expr, name: str, replacement: Expr) -> Expr:
    """Replace every ``ListVar(name)`` with ``replacement`` — implements the
    ``E[(xs ++ [x]) / xs]`` substitution of Definition 5.3."""

    def step(node: Expr) -> Expr:
        if isinstance(node, ListVar) and node.name == name:
            return replacement
        return node

    return transform_bottom_up(expr, step)


def inline_lets(expr: Expr) -> Expr:
    """Remove all ``Let`` nodes by substituting the bound value into the body.

    The surface syntax of Figure 3a uses lets for readability; the analysis
    of Sections 4-5 assumes the let-free grammar of Figure 6.
    """
    if isinstance(expr, Let):
        value = inline_lets(expr.value)
        body = inline_lets(expr.body)
        return substitute(body, {expr.name: value})
    new_children = tuple(inline_lets(c) for c in expr.children())
    return rebuild(expr, new_children)


def is_list_typed(expr: Expr) -> bool:
    """Does ``expr`` denote a list?  (grammar category ``L`` of Figure 6)"""
    return isinstance(expr, (ListVar, Map, Filter, Snoc))


def is_list_expr(expr: Expr) -> bool:
    """Is ``expr`` a *list expression* in the sense of Algorithm 2 / rule List?

    These are the maximal scalar-valued expressions that directly consume the
    input list: ``foldl`` applications, and built-in calls (e.g. ``length``)
    any of whose arguments is list-typed.  Such expressions become RFS
    entries and sketch holes.
    """
    if isinstance(expr, Fold):
        return True
    if isinstance(expr, Call) and isinstance(expr.func, str):
        return any(is_list_typed(a) for a in expr.args)
    return False


def list_exprs(expr: Expr) -> list[Expr]:
    """All distinct list expressions of ``expr`` in pre-order (Algorithm 2).

    Nested list expressions (e.g. a fold whose lambda mentions another fold)
    are reported too, because each may need its own accumulator; duplicates
    are collapsed.
    """
    seen: dict[Expr, None] = {}

    def walk(node: Expr) -> None:
        if is_list_expr(node):
            seen.setdefault(node, None)
        for child in node.children():
            walk(child)

    walk(expr)
    return list(seen.keys())


def collect_holes(expr: Expr) -> list[Hole]:
    return [sub for sub in iter_subexprs(expr) if isinstance(sub, Hole)]


def fill_holes(expr: Expr, fills: dict[int, Expr]) -> Expr:
    def step(node: Expr) -> Expr:
        if isinstance(node, Hole) and node.hole_id in fills:
            return fills[node.hole_id]
        return node

    return transform_bottom_up(expr, step)


def used_builtins(expr: Expr) -> frozenset[str]:
    """Names of built-ins called anywhere in ``expr`` (drives grammar setup)."""
    names = set()
    for sub in iter_subexprs(expr):
        if isinstance(sub, Call) and isinstance(sub.func, str) and is_builtin(sub.func):
            names.add(sub.func)
    return frozenset(names)


def validate_online_expr(expr: Expr) -> bool:
    """Online programs (Figure 7) must not contain list combinators, list
    variables, ``Snoc``, or unfilled holes."""
    for sub in iter_subexprs(expr):
        if isinstance(sub, (Map, Filter, Fold, ListVar, Snoc, Hole)):
            return False
        if isinstance(sub, Call) and isinstance(sub.func, str):
            # Unknown names are not list builtins; the well-formedness audit
            # reports them separately.
            if is_builtin(sub.func) and get_builtin(sub.func).kind == "list":
                return False
    return True
