"""Functional intermediate representation (Figures 6 and 7 of the paper).

Public surface:

* :mod:`repro.ir.nodes` — AST node classes;
* :mod:`repro.ir.dsl` — concise builders for writing programs in Python;
* :mod:`repro.ir.parser` / :mod:`repro.ir.pretty` — concrete syntax;
* :mod:`repro.ir.evaluator` — the definitional interpreter;
* :mod:`repro.ir.compile` — the closure-compilation backend (native Python
  closures for fixed trees; the interpreter stays the ground truth);
* :mod:`repro.ir.traversal` — structural utilities (substitution, AST size,
  list-expression discovery).
"""

from .nodes import (
    Call,
    Const,
    Expr,
    Filter,
    Fold,
    Hole,
    If,
    Lambda,
    Let,
    ListVar,
    MakeTuple,
    Map,
    OnlineProgram,
    Program,
    Proj,
    Snoc,
    Var,
    const,
)
from .compile import (
    IRCompileError,
    compile_expr,
    compile_online_step,
    jit_enabled,
)
from .evaluator import EvaluationError, evaluate, run_offline, step_online
from .infer import check_well_typed, infer_program_type, infer_type
from .parser import ParseError, parse_expr, parse_online_program, parse_program
from .pretty import (
    online_program_to_sexpr,
    pretty,
    pretty_online,
    pretty_program,
    program_to_sexpr,
    to_sexpr,
)
from .traversal import (
    ast_size,
    fill_holes,
    free_vars,
    inline_lets,
    is_list_expr,
    list_exprs,
    substitute,
    substitute_list_var,
    validate_online_expr,
)

__all__ = [
    "Call",
    "Const",
    "EvaluationError",
    "Expr",
    "IRCompileError",
    "Filter",
    "Fold",
    "Hole",
    "If",
    "Lambda",
    "Let",
    "ListVar",
    "MakeTuple",
    "Map",
    "OnlineProgram",
    "ParseError",
    "Program",
    "Proj",
    "Snoc",
    "Var",
    "ast_size",
    "check_well_typed",
    "compile_expr",
    "compile_online_step",
    "infer_program_type",
    "infer_type",
    "const",
    "evaluate",
    "jit_enabled",
    "fill_holes",
    "free_vars",
    "inline_lets",
    "is_list_expr",
    "list_exprs",
    "online_program_to_sexpr",
    "parse_expr",
    "parse_online_program",
    "parse_program",
    "pretty",
    "pretty_online",
    "pretty_program",
    "program_to_sexpr",
    "run_offline",
    "step_online",
    "substitute",
    "substitute_list_var",
    "to_sexpr",
    "validate_online_expr",
]
