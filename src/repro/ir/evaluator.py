"""A definitional interpreter for the IR.

Implements the standard semantics of Figure 6 over exact rational values.
Both offline programs and candidate online expressions are executed with this
interpreter; it is the ground truth for the testing-based equivalence oracle
(Section 6) and for the streaming semantics of Figure 8 (see
:mod:`repro.core.scheme`).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .builtins import get_builtin
from .nodes import (
    Call,
    Const,
    Expr,
    Filter,
    Fold,
    Hole,
    If,
    Lambda,
    Let,
    ListVar,
    MakeTuple,
    Map,
    OnlineProgram,
    Program,
    Proj,
    Snoc,
    Var,
)
from .values import Value


class EvaluationError(Exception):
    """Raised on genuinely ill-formed programs (unbound variables, arity
    mismatches, holes); *not* used for arithmetic edge cases, which the safe
    built-ins absorb."""


_MISSING = object()


class _ChainEnv:
    """A parent-chained environment frame: O(1) to extend, lookups walk the
    chain.  Replaces the full-dict copy the interpreter used to pay on every
    closure call and every ``Let`` — bindings are immutable once created, so
    sharing the tail is safe."""

    __slots__ = ("bindings", "parent")

    def __init__(self, bindings: dict, parent):
        self.bindings = bindings
        self.parent = parent

    def get(self, name, default=None):
        env = self
        while type(env) is _ChainEnv:
            value = env.bindings.get(name, _MISSING)
            if value is not _MISSING:
                return value
            env = env.parent
        return default if env is None else env.get(name, default)

    def __contains__(self, name) -> bool:
        return self.get(name, _MISSING) is not _MISSING

    def __getitem__(self, name):
        value = self.get(name, _MISSING)
        if value is _MISSING:
            raise KeyError(name)
        return value


class Closure:
    """Runtime representation of a lambda abstraction."""

    __slots__ = ("lam", "env")

    def __init__(self, lam: Lambda, env: Mapping[str, Value]):
        self.lam = lam
        self.env = env

    def __call__(self, *args: Value) -> Value:
        params = self.lam.params
        if len(args) != len(params):
            raise EvaluationError(f"lambda expects {len(params)} args, got {len(args)}")
        frame = dict(zip(params, args)) if params else {}
        return evaluate(self.lam.body, _ChainEnv(frame, self.env))


def _eval_function(func, env: Mapping[str, Value]):
    """Turn the ``func`` position of Call/Map/Filter/Fold into a callable."""
    if isinstance(func, Lambda):
        return Closure(func, env)
    if isinstance(func, str):
        return get_builtin(func).impl
    if isinstance(func, Var):
        value = env.get(func.name)
        if callable(value):
            return value
        raise EvaluationError(f"variable {func.name!r} is not a function")
    raise EvaluationError(f"cannot apply {func!r}")


def evaluate(expr: Expr, env: Mapping[str, Value]) -> Value:
    """Evaluate ``expr`` under ``env`` (variable name -> value)."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        value = env.get(expr.name, _MISSING)
        if value is _MISSING:
            raise EvaluationError(f"unbound variable {expr.name!r}")
        return value
    if isinstance(expr, ListVar):
        value = env.get(expr.name, _MISSING)
        if value is _MISSING:
            raise EvaluationError(f"unbound list variable {expr.name!r}")
        return value
    if isinstance(expr, Lambda):
        # Environments are never mutated once extended (Let and closure
        # calls chain fresh frames instead), so capturing by reference is
        # safe and copy-free.
        return Closure(expr, env)
    if isinstance(expr, Call):
        fn = _eval_function(expr.func, env)
        args = [evaluate(a, env) for a in expr.args]
        return fn(*args)
    if isinstance(expr, If):
        cond = evaluate(expr.cond, env)
        return evaluate(expr.then if cond else expr.orelse, env)
    if isinstance(expr, Map):
        fn = _eval_function(expr.func, env)
        lst = evaluate(expr.lst, env)
        return [fn(item) for item in lst]
    if isinstance(expr, Filter):
        fn = _eval_function(expr.func, env)
        lst = evaluate(expr.lst, env)
        return [item for item in lst if fn(item)]
    if isinstance(expr, Fold):
        fn = _eval_function(expr.func, env)
        acc = evaluate(expr.init, env)
        lst = evaluate(expr.lst, env)
        for item in lst:
            acc = fn(acc, item)
        return acc
    if isinstance(expr, Let):
        value = evaluate(expr.value, env)
        return evaluate(expr.body, _ChainEnv({expr.name: value}, env))
    if isinstance(expr, Snoc):
        lst = evaluate(expr.lst, env)
        elem = evaluate(expr.elem, env)
        return list(lst) + [elem]
    if isinstance(expr, MakeTuple):
        return tuple(evaluate(item, env) for item in expr.items)
    if isinstance(expr, Proj):
        tup = evaluate(expr.tup, env)
        try:
            return tup[expr.index]
        except (IndexError, TypeError) as exc:
            raise EvaluationError(f"bad projection {expr!r}: {exc}") from None
    if isinstance(expr, Hole):
        raise EvaluationError(f"cannot evaluate sketch hole {expr!r}")
    raise EvaluationError(f"unhandled node {type(expr).__name__}")


def run_offline(
    program: Program,
    xs: Sequence[Value],
    extra: Mapping[str, Value] | None = None,
) -> Value:
    """Execute an offline program on a concrete input list (``[[P]]_xs``)."""
    env: dict[str, Value] = dict(extra or {})
    env[program.param] = list(xs)
    return evaluate(program.body, env)


def step_online(
    program: OnlineProgram,
    state: Sequence[Value],
    element: Value,
    extra: Mapping[str, Value] | None = None,
) -> tuple[Value, ...]:
    """One transition of an online program: ``P'(y, x) -> y'``."""
    if len(state) != program.arity:
        raise EvaluationError(
            f"online program expects {program.arity} state values, got {len(state)}"
        )
    env: dict[str, Value] = dict(extra or {})
    env.update(zip(program.state_params, state))
    env[program.elem_param] = element
    return tuple(evaluate(out, env) for out in program.outputs)
