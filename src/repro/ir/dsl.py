"""Concise Python builders for IR expressions.

The benchmark suites (:mod:`repro.suites`) define ~50 offline programs; these
helpers keep those definitions close to the mathematical notation of the
paper.  Example — the two-pass variance of Figure 3a::

    s   = fold_sum(XS)
    avg = div(s, length(XS))
    sq  = fold(lam("acc", "x", add(V("acc"), powi(sub(V("x"), avg), 2))), 0, XS)
    variance = program(div(sq, length(XS)))
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from .nodes import (
    Call,
    Const,
    ConstValue,
    Expr,
    Filter,
    Fold,
    If,
    Lambda,
    Let,
    ListVar,
    MakeTuple,
    Map,
    Program,
    Proj,
    Var,
    const,
)

ExprLike = Union[Expr, int, float, bool, Fraction, str]

#: The canonical input list of suite programs.
XS = ListVar("xs")


def E(x: ExprLike) -> Expr:
    """Coerce Python literals / variable names into IR expressions."""
    if isinstance(x, Expr):
        return x
    if isinstance(x, str):
        return Var(x)
    if isinstance(x, (int, float, bool, Fraction)):
        return const(x)
    raise TypeError(f"cannot coerce {x!r} to an expression")


def V(name: str) -> Var:
    return Var(name)


def C(value: ConstValue) -> Const:
    return const(value)


def add(a: ExprLike, b: ExprLike) -> Expr:
    return Call("add", (E(a), E(b)))


def sub(a: ExprLike, b: ExprLike) -> Expr:
    return Call("sub", (E(a), E(b)))


def mul(a: ExprLike, b: ExprLike) -> Expr:
    return Call("mul", (E(a), E(b)))


def div(a: ExprLike, b: ExprLike) -> Expr:
    return Call("div", (E(a), E(b)))


def neg(a: ExprLike) -> Expr:
    return Call("neg", (E(a),))


def powi(a: ExprLike, n: ExprLike) -> Expr:
    return Call("pow", (E(a), E(n)))


def minimum(a: ExprLike, b: ExprLike) -> Expr:
    return Call("min", (E(a), E(b)))


def maximum(a: ExprLike, b: ExprLike) -> Expr:
    return Call("max", (E(a), E(b)))


def absolute(a: ExprLike) -> Expr:
    return Call("abs", (E(a),))


def sqrt(a: ExprLike) -> Expr:
    return Call("sqrt", (E(a),))


def exp(a: ExprLike) -> Expr:
    return Call("exp", (E(a),))


def log(a: ExprLike) -> Expr:
    return Call("log", (E(a),))


def lt(a: ExprLike, b: ExprLike) -> Expr:
    return Call("lt", (E(a), E(b)))


def le(a: ExprLike, b: ExprLike) -> Expr:
    return Call("le", (E(a), E(b)))


def gt(a: ExprLike, b: ExprLike) -> Expr:
    return Call("gt", (E(a), E(b)))


def ge(a: ExprLike, b: ExprLike) -> Expr:
    return Call("ge", (E(a), E(b)))


def eq(a: ExprLike, b: ExprLike) -> Expr:
    return Call("eq", (E(a), E(b)))


def both(a: ExprLike, b: ExprLike) -> Expr:
    return Call("and", (E(a), E(b)))


def either(a: ExprLike, b: ExprLike) -> Expr:
    return Call("or", (E(a), E(b)))


def ite(c: ExprLike, t: ExprLike, f: ExprLike) -> Expr:
    return If(E(c), E(t), E(f))


def lam(*params_and_body: ExprLike) -> Lambda:
    """``lam("a", "x", body)`` builds ``\\a x -> body``."""
    *params, body = params_and_body
    if not all(isinstance(p, str) for p in params):
        raise TypeError("lambda parameters must be names")
    return Lambda(tuple(params), E(body))  # type: ignore[arg-type]


def fold(func: Expr, init: ExprLike, lst: Expr) -> Fold:
    return Fold(func, E(init), lst)


def fmap(func: Expr, lst: Expr) -> Map:
    return Map(func, lst)


def ffilter(func: Expr, lst: Expr) -> Filter:
    return Filter(func, lst)


def length(lst: Expr) -> Expr:
    return Call("length", (E(lst),))


def let(name: str, value: ExprLike, body: ExprLike) -> Let:
    return Let(name, E(value), E(body))


def tup(*items: ExprLike) -> MakeTuple:
    return MakeTuple(tuple(E(i) for i in items))


def proj(t: ExprLike, index: int) -> Proj:
    return Proj(E(t), index)


def program(body: ExprLike, extra: tuple[str, ...] = ()) -> Program:
    return Program("xs", E(body), extra)


# ---------------------------------------------------------------------------
# Common derived folds used throughout the suites.
# ---------------------------------------------------------------------------


def fold_sum(lst: Expr) -> Fold:
    """``foldl (+) 0 lst``"""
    return Fold(Lambda(("a", "b"), add("a", "b")), Const(0), lst)


def fold_product(lst: Expr) -> Fold:
    """``foldl (*) 1 lst``"""
    return Fold(Lambda(("a", "b"), mul("a", "b")), Const(1), lst)


def fold_min(lst: Expr, top: ExprLike = 10**9) -> Fold:
    return Fold(Lambda(("a", "b"), minimum("a", "b")), E(top), lst)


def fold_max(lst: Expr, bottom: ExprLike = -(10**9)) -> Fold:
    return Fold(Lambda(("a", "b"), maximum("a", "b")), E(bottom), lst)


def fold_count(lst: Expr) -> Fold:
    """``foldl (\\a _ -> a + 1) 0 lst`` — an explicit-fold length."""
    return Fold(Lambda(("a", "b"), add("a", 1)), Const(0), lst)


def fold_sum_of(var: str, body: ExprLike, lst: Expr) -> Fold:
    """``foldl (\\acc var -> acc + body) 0 lst`` — sum of ``body`` over elements."""
    return Fold(Lambda(("acc", var), add("acc", body)), Const(0), lst)


def mean_of(lst: Expr) -> Expr:
    return div(fold_sum(lst), length(lst))
