"""S-expression parser for the IR.

The concrete syntax mirrors :func:`repro.ir.pretty.to_sexpr`::

    (lambda (xs) (div (foldl add 0 xs) (length xs)))

Grammar notes:

* the first parameter of the top-level lambda is the input *list* variable;
  any further parameters are scalar extra arguments (Section 6);
* ``true`` / ``false`` are boolean literals; integers and ``p/q`` rationals
  are numeric literals;
* ``(let name value body)``, ``(if c t e)``, ``(map f l)``, ``(filter f l)``,
  ``(foldl f init l)``, ``(tuple e...)``, ``(proj e i)``, ``(snoc l e)`` are
  special forms; every other head is a built-in call or lambda application;
* inside the program body, occurrences of list-variable names parse to
  :class:`~repro.ir.nodes.ListVar`.
"""

from __future__ import annotations

import re
from fractions import Fraction

from .builtins import is_builtin
from .nodes import (
    Call,
    Const,
    Expr,
    Filter,
    Fold,
    Hole,
    If,
    Lambda,
    Let,
    ListVar,
    MakeTuple,
    Map,
    OnlineProgram,
    Program,
    Proj,
    Snoc,
    Var,
)

_TOKEN_RE = re.compile(r"""\(|\)|[^\s()]+""")
_INT_RE = re.compile(r"^-?\d+$")
_RAT_RE = re.compile(r"^(-?\d+)/(\d+)$")
_FLOAT_RE = re.compile(r"^-?\d+(\.\d+([eE][+-]?\d+)?|[eE][+-]?\d+)$")
_HOLE_RE = re.compile(r"^\?hole(\d+)$")


class ParseError(Exception):
    pass


def tokenize(text: str) -> list[str]:
    # strip ; comments to end of line
    stripped = re.sub(r";[^\n]*", "", text)
    return _TOKEN_RE.findall(stripped)


def _read(tokens: list[str], pos: int):
    """Read one datum; returns (sexpr, new_pos) where sexpr is str | list."""
    if pos >= len(tokens):
        raise ParseError("unexpected end of input")
    tok = tokens[pos]
    if tok == "(":
        items = []
        pos += 1
        while pos < len(tokens) and tokens[pos] != ")":
            item, pos = _read(tokens, pos)
            items.append(item)
        if pos >= len(tokens):
            raise ParseError("unbalanced parentheses")
        return items, pos + 1
    if tok == ")":
        raise ParseError("unexpected ')'")
    return tok, pos + 1


def _atom_to_expr(tok: str, list_names: frozenset[str]) -> Expr:
    if tok == "true":
        return Const(True)
    if tok == "false":
        return Const(False)
    if _INT_RE.match(tok):
        return Const(int(tok))
    m = _RAT_RE.match(tok)
    if m:
        return Const(Fraction(int(m.group(1)), int(m.group(2))))
    if _FLOAT_RE.match(tok):
        return Const(float(tok))
    m = _HOLE_RE.match(tok)
    if m:
        return Hole(int(m.group(1)))
    if tok in list_names:
        return ListVar(tok)
    return Var(tok)


def _to_expr(sexpr, list_names: frozenset[str]) -> Expr:
    if isinstance(sexpr, str):
        return _atom_to_expr(sexpr, list_names)
    if not sexpr:
        raise ParseError("empty application ()")
    head = sexpr[0]
    if head == "lambda":
        if len(sexpr) != 3:
            raise ParseError("lambda needs (lambda (params) body)")
        raw_params = sexpr[1]
        if isinstance(raw_params, str):
            params = (raw_params,)
        else:
            params = tuple(raw_params)
        body = _to_expr(sexpr[2], list_names - frozenset(params))
        return Lambda(params, body)
    if head == "if":
        _expect(sexpr, 4, "if")
        return If(*(_to_expr(s, list_names) for s in sexpr[1:]))
    if head == "let":
        _expect(sexpr, 4, "let")
        name = sexpr[1]
        if not isinstance(name, str):
            raise ParseError("let binds a plain name")
        return Let(
            name,
            _to_expr(sexpr[2], list_names),
            _to_expr(sexpr[3], list_names - {name}),
        )
    if head == "map":
        _expect(sexpr, 3, "map")
        return Map(_func_expr(sexpr[1], list_names, 1), _to_expr(sexpr[2], list_names))
    if head == "filter":
        _expect(sexpr, 3, "filter")
        return Filter(_func_expr(sexpr[1], list_names, 1), _to_expr(sexpr[2], list_names))
    if head == "foldl":
        _expect(sexpr, 4, "foldl")
        return Fold(
            _func_expr(sexpr[1], list_names, 2),
            _to_expr(sexpr[2], list_names),
            _to_expr(sexpr[3], list_names),
        )
    if head == "snoc":
        _expect(sexpr, 3, "snoc")
        return Snoc(_to_expr(sexpr[1], list_names), _to_expr(sexpr[2], list_names))
    if head == "tuple":
        return MakeTuple(tuple(_to_expr(s, list_names) for s in sexpr[1:]))
    if head == "proj":
        _expect(sexpr, 3, "proj")
        index_tok = sexpr[2]
        if not (isinstance(index_tok, str) and _INT_RE.match(index_tok)):
            raise ParseError("proj index must be an integer literal")
        return Proj(_to_expr(sexpr[1], list_names), int(index_tok))
    # General application: builtin name or lambda expression in head position.
    args = tuple(_to_expr(s, list_names) for s in sexpr[1:])
    if isinstance(head, str):
        if not is_builtin(head):
            raise ParseError(f"unknown function {head!r}")
        return Call(head, args)
    func = _to_expr(head, list_names)
    if not isinstance(func, Lambda):
        raise ParseError("only builtins and lambdas may be applied")
    return Call(func, args)


def _func_expr(sexpr, list_names: frozenset[str], arity: int) -> Expr:
    """Function position of a combinator: lambdas stay; bare builtin names are
    eta-expanded so downstream passes only see :class:`Lambda` functions."""
    if isinstance(sexpr, str) and is_builtin(sexpr):
        params = tuple(f"_arg{i}" for i in range(1, arity + 1))
        return Lambda(params, Call(sexpr, tuple(Var(p) for p in params)))
    expr = _to_expr(sexpr, list_names)
    if not isinstance(expr, Lambda):
        raise ParseError("combinator function must be a lambda or builtin name")
    return expr


def _expect(sexpr, n: int, what: str) -> None:
    if len(sexpr) != n:
        raise ParseError(f"{what} expects {n - 1} arguments, got {len(sexpr) - 1}")


def parse_expr(text: str, list_names: frozenset[str] = frozenset({"xs"})) -> Expr:
    """Parse a single expression; names in ``list_names`` become ``ListVar``."""
    tokens = tokenize(text)
    sexpr, pos = _read(tokens, 0)
    if pos != len(tokens):
        raise ParseError(f"trailing tokens after expression: {tokens[pos:]}")
    return _to_expr(sexpr, list_names)


def parse_program(text: str) -> Program:
    """Parse an offline program ``(lambda (xs extra...) body)``."""
    tokens = tokenize(text)
    sexpr, pos = _read(tokens, 0)
    if pos != len(tokens):
        raise ParseError(f"trailing tokens after program: {tokens[pos:]}")
    if not (isinstance(sexpr, list) and sexpr and sexpr[0] == "lambda"):
        raise ParseError("a program must be a top-level (lambda ...) form")
    raw_params = sexpr[1]
    if isinstance(raw_params, str):
        params = [raw_params]
    else:
        params = list(raw_params)
    if not params:
        raise ParseError("program needs at least the list parameter")
    list_param, *extra = params
    body = _to_expr(sexpr[2], frozenset({list_param}))
    return Program(list_param, body, tuple(extra))


_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_']*$")


def _name_section(sexpr, what: str) -> tuple[str, ...]:
    """Validate a ``(head name...)`` section of the online form."""
    names = sexpr[1:]
    if not names:
        raise ParseError(f"({what} ...) needs at least one name")
    for name in names:
        if not (isinstance(name, str) and _NAME_RE.match(name)):
            raise ParseError(f"({what} ...) entries must be plain names, got {name!r}")
    if len(set(names)) != len(names):
        raise ParseError(f"duplicate name in ({what} ...)")
    return tuple(names)


def parse_online_program(text: str) -> OnlineProgram:
    """Parse the canonical online-program form produced by
    :func:`repro.ir.pretty.online_program_to_sexpr`::

        (online (state y z) (elem x) [(extra a b)] (outputs E1 E2))

    Validation is strict — this is the load path for persisted schemes
    (:mod:`repro.core.serialize`), so malformed or inconsistent input must
    fail loudly rather than produce a scheme that misbehaves at stream time:

    * exactly one output per state parameter;
    * all names are distinct identifiers;
    * every free variable of every output is bound by ``state``/``elem``/
      ``extra``;
    * outputs are genuinely *online* (no list combinators, list variables,
      ``snoc`` or holes — :func:`repro.ir.traversal.validate_online_expr`).
    """
    tokens = tokenize(text)
    sexpr, pos = _read(tokens, 0)
    if pos != len(tokens):
        raise ParseError(f"trailing tokens after online program: {tokens[pos:]}")
    if not (isinstance(sexpr, list) and sexpr and sexpr[0] == "online"):
        raise ParseError("an online program must be a top-level (online ...) form")
    sections: dict[str, list] = {}
    for section in sexpr[1:]:
        if not (isinstance(section, list) and section and isinstance(section[0], str)):
            raise ParseError("online sections must be (state|elem|extra|outputs ...)")
        head = section[0]
        if head not in ("state", "elem", "extra", "outputs"):
            raise ParseError(f"unknown online section {head!r}")
        if head in sections:
            raise ParseError(f"duplicate online section {head!r}")
        sections[head] = section
    for required in ("state", "elem", "outputs"):
        if required not in sections:
            raise ParseError(f"online program is missing the ({required} ...) section")

    state_params = _name_section(sections["state"], "state")
    elem_names = _name_section(sections["elem"], "elem")
    if len(elem_names) != 1:
        raise ParseError("(elem ...) takes exactly one name")
    elem_param = elem_names[0]
    extra_params = (_name_section(sections["extra"], "extra") if "extra" in sections else ())
    bound = set(state_params) | {elem_param} | set(extra_params)
    if len(bound) != len(state_params) + 1 + len(extra_params):
        raise ParseError("state/elem/extra names must be pairwise distinct")

    raw_outputs = sections["outputs"][1:]
    if len(raw_outputs) != len(state_params):
        raise ParseError(
            f"online program has {len(state_params)} state parameters but "
            f"{len(raw_outputs)} outputs"
        )
    outputs = tuple(_to_expr(s, frozenset()) for s in raw_outputs)

    from .traversal import free_vars, validate_online_expr

    for i, out in enumerate(outputs):
        if not validate_online_expr(out):
            raise ParseError(f"output {i} is not a valid online expression")
        unbound = free_vars(out) - bound
        if unbound:
            raise ParseError(f"output {i} has unbound variables {sorted(unbound)}")
    return OnlineProgram(state_params, elem_param, outputs, extra_params)
