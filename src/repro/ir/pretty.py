"""Pretty printers for IR expressions.

Two formats:

* :func:`to_sexpr` — the canonical s-expression syntax accepted back by
  :mod:`repro.ir.parser` (round-trip property is tested);
* :func:`pretty` — a human-readable infix rendering used in reports and
  examples (mirrors the Haskell-like notation of Figure 3).
"""

from __future__ import annotations

from fractions import Fraction

from .nodes import (
    Call,
    Const,
    Expr,
    Filter,
    Fold,
    Hole,
    If,
    Lambda,
    Let,
    ListVar,
    MakeTuple,
    Map,
    OnlineProgram,
    Program,
    Proj,
    Snoc,
    Var,
)

_INFIX = {
    "add": ("+", 6),
    "sub": ("-", 6),
    "mul": ("*", 7),
    "div": ("/", 7),
    "pow": ("^", 8),
    "lt": ("<", 4),
    "le": ("<=", 4),
    "gt": (">", 4),
    "ge": (">=", 4),
    "eq": ("==", 4),
    "ne": ("!=", 4),
    "and": ("&&", 3),
    "or": ("||", 2),
}


def _const_str(value) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    return repr(value)


def to_sexpr(expr: Expr) -> str:
    """Canonical s-expression form (parseable by :func:`repro.ir.parser.parse_expr`)."""
    if isinstance(expr, Const):
        return _const_str(expr.value)
    if isinstance(expr, (Var, ListVar)):
        return expr.name
    if isinstance(expr, Lambda):
        params = " ".join(expr.params)
        return f"(lambda ({params}) {to_sexpr(expr.body)})"
    if isinstance(expr, Call):
        func = expr.func if isinstance(expr.func, str) else to_sexpr(expr.func)
        args = " ".join(to_sexpr(a) for a in expr.args)
        return f"({func} {args})" if args else f"({func})"
    if isinstance(expr, If):
        return f"(if {to_sexpr(expr.cond)} {to_sexpr(expr.then)} {to_sexpr(expr.orelse)})"
    if isinstance(expr, Map):
        return f"(map {to_sexpr(expr.func)} {to_sexpr(expr.lst)})"
    if isinstance(expr, Filter):
        return f"(filter {to_sexpr(expr.func)} {to_sexpr(expr.lst)})"
    if isinstance(expr, Fold):
        return f"(foldl {to_sexpr(expr.func)} {to_sexpr(expr.init)} {to_sexpr(expr.lst)})"
    if isinstance(expr, Let):
        return f"(let {expr.name} {to_sexpr(expr.value)} {to_sexpr(expr.body)})"
    if isinstance(expr, Snoc):
        return f"(snoc {to_sexpr(expr.lst)} {to_sexpr(expr.elem)})"
    if isinstance(expr, MakeTuple):
        items = " ".join(to_sexpr(i) for i in expr.items)
        return f"(tuple {items})"
    if isinstance(expr, Proj):
        return f"(proj {to_sexpr(expr.tup)} {expr.index})"
    if isinstance(expr, Hole):
        return f"?hole{expr.hole_id}"
    raise TypeError(f"unhandled node {type(expr).__name__}")


def program_to_sexpr(program: Program) -> str:
    params = " ".join((program.param,) + program.extra_params)
    return f"(lambda ({params}) {to_sexpr(program.body)})"


def online_program_to_sexpr(program: OnlineProgram) -> str:
    """Canonical s-expression form of an online program (Figure 7).

    Round-trips through :func:`repro.ir.parser.parse_online_program`; this is
    the on-disk representation used by scheme serialization
    (:mod:`repro.core.serialize`)::

        (online (state y z) (elem x) (outputs (div ... ) (add z 1)))

    An ``(extra a b)`` section appears between ``elem`` and ``outputs`` when
    the program takes pass-through scalar parameters (Section 6).
    """
    sections = [
        "(state " + " ".join(program.state_params) + ")",
        f"(elem {program.elem_param})",
    ]
    if program.extra_params:
        sections.append("(extra " + " ".join(program.extra_params) + ")")
    sections.append("(outputs " + " ".join(to_sexpr(o) for o in program.outputs) + ")")
    return "(online " + " ".join(sections) + ")"


def pretty(expr: Expr, prec: int = 0) -> str:
    """Infix rendering; ``prec`` is the enclosing precedence for parens."""
    if isinstance(expr, Const):
        return _const_str(expr.value)
    if isinstance(expr, (Var, ListVar)):
        return expr.name
    if isinstance(expr, Lambda):
        params = " ".join(expr.params)
        return f"(\\{params} -> {pretty(expr.body)})"
    if isinstance(expr, Call) and isinstance(expr.func, str) and expr.func in _INFIX:
        op, op_prec = _INFIX[expr.func]
        left = pretty(expr.args[0], op_prec)
        right = pretty(expr.args[1], op_prec + 1)
        text = f"{left} {op} {right}"
        return f"({text})" if prec > op_prec else text
    if isinstance(expr, Call) and isinstance(expr.func, str) and expr.func == "neg":
        inner = pretty(expr.args[0], 9)
        return f"-{inner}"
    if isinstance(expr, Call):
        func = expr.func if isinstance(expr.func, str) else pretty(expr.func)
        args = ", ".join(pretty(a) for a in expr.args)
        return f"{func}({args})"
    if isinstance(expr, If):
        text = f"{pretty(expr.cond, 1)} ? {pretty(expr.then, 1)} : {pretty(expr.orelse, 1)}"
        return f"({text})" if prec > 0 else text
    if isinstance(expr, Map):
        return f"map({pretty(expr.func)}, {pretty(expr.lst)})"
    if isinstance(expr, Filter):
        return f"filter({pretty(expr.func)}, {pretty(expr.lst)})"
    if isinstance(expr, Fold):
        return f"foldl({pretty(expr.func)}, {pretty(expr.init)}, {pretty(expr.lst)})"
    if isinstance(expr, Let):
        return f"let {expr.name} = {pretty(expr.value)} in {pretty(expr.body)}"
    if isinstance(expr, Snoc):
        return f"{pretty(expr.lst, 9)} ++ [{pretty(expr.elem)}]"
    if isinstance(expr, MakeTuple):
        return "(" + ", ".join(pretty(i) for i in expr.items) + ")"
    if isinstance(expr, Proj):
        return f"{pretty(expr.tup, 9)}[{expr.index}]"
    if isinstance(expr, Hole):
        return f"□{expr.hole_id}"
    raise TypeError(f"unhandled node {type(expr).__name__}")


def pretty_program(program: Program) -> str:
    params = " ".join((program.param,) + program.extra_params)
    return f"\\{params} -> {pretty(program.body)}"


def pretty_online(program: OnlineProgram) -> str:
    state = ", ".join(program.state_params)
    outs = ",\n   ".join(pretty(o) for o in program.outputs)
    extras = " " + " ".join(program.extra_params) if program.extra_params else ""
    return f"\\({state}) {program.elem_param}{extras} ->\n  ({outs})"
