"""Closure-compilation backend: IR trees to generated Python closures.

Every hot path of the system — the per-element ``step`` of a deployed online
scheme and the per-candidate test battery of the equivalence oracle —
ultimately executes a *fixed* IR tree over and over.  The definitional
interpreter (:mod:`repro.ir.evaluator`) pays per node and per evaluation:
an ``isinstance`` dispatch chain, environment churn, and a registry lookup
for every built-in call.  This module removes all of that by the standard
closure-compilation / partial-evaluation trick: translate the tree *once*
into Python source, ``compile()``/``exec`` it into a closure, and run that
closure per element.  Three techniques stack up:

* **direct references** — built-ins become names in the closure's globals
  (no registry lookup), variables become Python locals (no env dicts),
  lambdas/combinators become inlined Python lambdas and comprehensions;
* **common-subexpression elimination** — unconditionally-evaluated repeated
  subtrees (IR nodes are frozen dataclasses, so structural sharing is a
  dict lookup) are computed once into single-assignment temporaries.  Sound
  because IR expressions are pure and deterministic; the big win on
  synthesized schemes, whose output tuples share whole update expressions
  (Welford's ``sq'`` appears verbatim in two outputs of the variance
  scheme);
* **exact arithmetic fast paths** — ``add``/``sub``/``mul``/``div``/``neg``
  go through hand-specialized helpers that skip the registry wrapper's
  per-call ``is_number``/``_bit_size``/``normalize_number`` machinery for
  operand shapes where the outcome is provably identical (small ``int`` and
  ``Fraction`` operands), falling back to the *same wrapped impl* the
  interpreter calls for everything else.  Comparisons inline to native
  operators (their registered impls are exactly those operators).

Semantics are preserved bit-for-bit over exact rationals; the interpreter
remains the ground truth and ``tests/test_ir_compile.py`` differential-tests
the two backends against each other on every ground-truth scheme and on
randomly enumerated candidates.

Failure contract (mirroring the interpreter's :class:`EvaluationError`
cases): conditions that are detectable statically — sketch holes, unbound
variables, unknown built-ins, non-applicable callees — fail *at compile
time* with :class:`IRCompileError`, and every caller falls back to the
interpreter, which then raises exactly as it always did.  Conditions that
the interpreter only detects at run time (lambda arity mismatches inside a
combinator, bad projections, missing extra parameters) raise the same
exception class from compiled code as from interpreted code.

The escape hatch: ``REPRO_JIT=0`` (or ``--no-jit`` on the CLI) disables the
backend globally; :func:`jit_enabled` is consulted by every integration
point.

Beyond the scalar closure, this module also compiles the *batch loop*
itself: :func:`compile_step_batch` generates the whole ``push_many`` hot
loop as source (state components live in Python locals across the chunk,
extra-parameter lookups are hoisted once per batch, the CSE'd step body is
inlined in the loop), and :func:`compile_fused_steps` fuses several online
programs into one loop that advances all of their states per element.  Both
return a :class:`StepKernel` — the execution plan every runtime layer
(operators, keyed partitions, pipelines, windows) consumes instead of
hand-rolling its own per-element loop.
"""

from __future__ import annotations

import itertools
import os
import re
from fractions import Fraction
from typing import Callable, Sequence

from .builtins import get_builtin, is_builtin
from .evaluator import EvaluationError
from .nodes import (
    Call,
    Const,
    Expr,
    Filter,
    Fold,
    Hole,
    If,
    Lambda,
    Let,
    ListVar,
    MakeTuple,
    Map,
    OnlineProgram,
    Proj,
    Snoc,
    Var,
)


class IRCompileError(Exception):
    """The expression cannot be compiled (holes, unbound names, unknown
    built-ins, non-applicable callees, or pathological nesting).  Callers
    fall back to the interpreter, whose behaviour is the specification."""


def jit_enabled(default: bool = True) -> bool:
    """Whether compiled execution is enabled (the ``REPRO_JIT`` env knob).

    Any of ``0`` / ``false`` / ``off`` / ``no`` (case-insensitive) disables
    the codegen backend everywhere; unset or anything else enables it.
    """
    raw = os.environ.get("REPRO_JIT")
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "off", "no")


# -- step kernels: whole-batch execution plans --------------------------------
#
# A kernel advances a scheme state over a *chunk* of elements in one call:
# ``run(state, elements, extra=None) -> (state', consumed)``.  When an
# element raises, the kernel records the state after the last fully-applied
# element on the exception before re-raising, so callers preserve exactly
# the partial progress a per-element loop would have.

#: Attribute a kernel sets on an in-flight exception: ``(state, consumed)``
#: as of the last fully-applied element.
_PARTIAL_ATTR = "__repro_partial__"


def _record_partial(exc: BaseException, state, consumed: int) -> None:
    """Attach partial batch progress to an exception about to propagate.
    Exceptions that refuse attributes (``__slots__``) lose the marker;
    :func:`kernel_partial` then reports zero progress, which is the safe
    under-approximation (never overstates the consumed prefix)."""
    try:
        setattr(exc, _PARTIAL_ATTR, (state, consumed))
    except Exception:
        pass


def kernel_partial(exc: BaseException, fallback_state) -> tuple:
    """The ``(state, consumed)`` a kernel recorded on ``exc`` before
    re-raising, consuming the marker; ``(fallback_state, 0)`` when the
    exception carries none (it did not come through a kernel loop)."""
    partial = getattr(exc, _PARTIAL_ATTR, None)
    if partial is None:
        return fallback_state, 0
    try:
        delattr(exc, _PARTIAL_ATTR)
    except Exception:
        pass
    return partial


class StepKernel:
    """A whole-batch execution plan for one online program (or several
    fused ones): the unit every ``push_many`` hot path runs.

    ``run(state, elements, extra=None)`` folds the chunk and returns
    ``(final_state, consumed)``; a raising element propagates its exception
    with partial progress attached (see :func:`kernel_partial`).  Fused
    kernels (:func:`compile_fused_steps`) take and return *tuples of* states
    and extras instead, one slot per fused program, and set ``fused``.

    ``compiled`` distinguishes codegen-backed kernels from the
    interpreter-driven fallback built by :meth:`from_step` — behaviourally
    identical (bit-for-bit over exact rationals), only slower.
    """

    __slots__ = ("run", "compiled", "fused", "name")

    def __init__(self, run: Callable, *, compiled: bool, fused: bool = False, name: str = "kernel"):
        self.run = run
        self.compiled = compiled
        self.fused = fused
        self.name = name

    @property
    def source(self) -> str | None:
        """Generated Python source (codegen-backed kernels only)."""
        return getattr(self.run, "__repro_source__", None)

    @classmethod
    def from_step(cls, step: Callable, name: str = "step-loop") -> "StepKernel":
        """Wrap any scalar ``step(state, element, extra)`` — interpreted or
        compiled — in the generic batch loop, with the same run contract as
        a codegen-backed kernel."""

        def _run(state, elements, extra=None):
            consumed = 0
            try:
                for element in elements:
                    state = step(state, element, extra)
                    consumed += 1
            except BaseException as exc:
                _record_partial(exc, state, consumed)
                raise
            return state, consumed

        return cls(_run, compiled=False, name=name)

    def __repr__(self) -> str:
        kind = "compiled" if self.compiled else "interpreted"
        if self.fused:
            kind = f"fused {kind}"
        return f"<StepKernel {self.name} ({kind})>"


# -- runtime helpers shared by all generated closures -------------------------
#
# These live in each closure's globals under fixed names.  They cover the few
# constructs that need a statement (fold's loop), a guard the interpreter
# applies (projection, env-provided callables, closure arity), an error the
# interpreter raises only when a lambda is actually invoked, and the exact
# arithmetic fast paths.


def _fold(fn, acc, lst):
    for item in lst:
        acc = fn(acc, item)
    return acc


def _proj(tup, index, what):
    try:
        return tup[index]
    except (IndexError, TypeError) as exc:
        raise EvaluationError(f"bad projection {what}: {exc}") from None


def _env_fn(value, name):
    """The interpreter's Var-in-function-position check, hoisted before the
    arguments/list are evaluated (matching ``_eval_function`` order)."""
    if callable(value):
        return value
    raise EvaluationError(f"variable {name!r} is not a function")


def _extra_get(extra, name, what):
    """Fetch an extra parameter at its use site, with the interpreter's
    unbound-name error.  Used for extras referenced only in conditionally
    evaluated positions (If branches, lambda bodies): fetching those in the
    step prologue would raise where the interpreter — which only looks a
    name up when the branch actually runs — succeeds."""
    try:
        return extra[name]
    except (KeyError, TypeError):
        raise EvaluationError(f"unbound {what} {name!r}") from None


def _arity(expected, got):
    """Raise the interpreter's closure arity error *after* the arguments have
    been evaluated (``got`` is the already-built argument tuple)."""
    raise EvaluationError(f"lambda expects {expected} args, got {len(got)}")


def _lam(expected, fn):
    """Wrap a compiled lambda used as a first-class value so that calling it
    with the wrong arity raises ``EvaluationError`` like ``Closure`` does."""

    def _closure(*args):
        if len(args) != expected:
            raise EvaluationError(f"lambda expects {expected} args, got {len(args)}")
        return fn(*args)

    return _closure


# -- exact arithmetic fast paths ---------------------------------------------
#
# The registry impls of the "poly" built-ins (see ``_num2`` in
# repro.ir.builtins) pay two ``is_number`` checks, two ``_bit_size`` calls (a
# guard that degrades astronomically large exact values to floats past a
# combined 2**20 bits), a lambda indirection, and a ``normalize_number`` per
# call.  The helpers below take the exact path directly for operand shapes
# where the wrapper's outcome is provably the plain operation (small ints,
# small Fractions — "small" chosen so the combined bit size stays at or
# below the wrapper's 2**20 threshold), and defer to the wrapped impl
# otherwise.  Soundness, not completeness: every guarded branch returns
# exactly what the impl would, and everything else *is* the impl.

_INT_LIMIT = 1 << (1 << 19)  # operands under 2**19 bits each: sum <= 2**20
_FRAC_LIMIT = 1 << (1 << 18)  # num/den under 2**18 bits each: sum <= 2**20
# Negated bounds are precomputed: `-_INT_LIMIT` in an expression would
# re-negate (i.e. reallocate) a 2**19-bit integer on every single check.
_INT_LIMIT_NEG = -_INT_LIMIT
_FRAC_LIMIT_NEG = -_FRAC_LIMIT

_ADD_IMPL = get_builtin("add").impl
_SUB_IMPL = get_builtin("sub").impl
_MUL_IMPL = get_builtin("mul").impl
_DIV_IMPL = get_builtin("div").impl
_NEG_IMPL = get_builtin("neg").impl

# CPython (and PyPy) store Fraction components in the ``_numerator`` /
# ``_denominator`` slots; the public ``numerator``/``denominator`` names are
# pure-Python properties, ~3x slower per access.  The fast paths use the
# slots when present — they sit on the hottest line of the whole system —
# and fall back to the registry impls wholesale on exotic runtimes.
_HAS_FRACTION_SLOTS = hasattr(Fraction(0), "_numerator")


def _monomorphic_fraction_ops():
    """``a + b`` on Fractions routes through the ``_operator_fallbacks``
    dispatch wrapper (an isinstance ladder per call) before reaching the
    monomorphic ``Fraction._add``.  Those monomorphic methods take ``int``
    in either position via the ``numerator``/``denominator`` duck protocol,
    so calling them directly is exact — verified here at import; anything
    off and the fast paths use the plain operators instead."""
    try:
        add, sub = Fraction._add, Fraction._sub
        mul, div = Fraction._mul, Fraction._div
        third, half = Fraction(1, 3), Fraction(1, 2)
        if (
            add(third, Fraction(1, 6)) == half
            and add(2, third) == Fraction(7, 3)
            and add(third, 2) == Fraction(7, 3)
            and sub(half, third) == Fraction(1, 6)
            and sub(2, third) == Fraction(5, 3)
            and mul(Fraction(2, 3), Fraction(3, 4)) == half
            and mul(3, third) == 1
            and div(1, Fraction(2, 3)) == Fraction(3, 2)
            and div(half, -2) == Fraction(-1, 4)
            and div(half, -2)._denominator == 4
            and div(3, 6) == half
        ):
            return add, sub, mul, div
    except (AttributeError, TypeError, ValueError):
        pass
    import operator

    # Exact generic fallbacks.  Division must stay rational for int
    # operands (operator.truediv would produce a float).
    return (
        operator.add,
        operator.sub,
        operator.mul,
        lambda a, b: Fraction(a) / Fraction(b),
    )


_F_ADD, _F_SUB, _F_MUL, _F_DIV = _monomorphic_fraction_ops()


def _fast_add(a, b):
    ta = type(a)
    tb = type(b)
    if ta is Fraction:
        if not (_FRAC_LIMIT_NEG < a._numerator < _FRAC_LIMIT and a._denominator < _FRAC_LIMIT):
            return _ADD_IMPL(a, b)
        if tb is Fraction:
            if not (_FRAC_LIMIT_NEG < b._numerator < _FRAC_LIMIT and b._denominator < _FRAC_LIMIT):
                return _ADD_IMPL(a, b)
        elif tb is not int or not (_FRAC_LIMIT_NEG < b < _FRAC_LIMIT):
            return _ADD_IMPL(a, b)
    elif ta is int:
        if tb is int:
            if _INT_LIMIT_NEG < a < _INT_LIMIT and _INT_LIMIT_NEG < b < _INT_LIMIT:
                return a + b  # ints are closed under +: already normalized
            return _ADD_IMPL(a, b)
        if (
            tb is not Fraction
            or not (_FRAC_LIMIT_NEG < a < _FRAC_LIMIT)
            or not (
                _FRAC_LIMIT_NEG < b._numerator < _FRAC_LIMIT
                and b._denominator < _FRAC_LIMIT
            )
        ):
            return _ADD_IMPL(a, b)
    else:
        return _ADD_IMPL(a, b)
    r = _F_ADD(a, b)
    return r._numerator if r._denominator == 1 else r


def _fast_sub(a, b):
    ta = type(a)
    tb = type(b)
    if ta is Fraction:
        if not (_FRAC_LIMIT_NEG < a._numerator < _FRAC_LIMIT and a._denominator < _FRAC_LIMIT):
            return _SUB_IMPL(a, b)
        if tb is Fraction:
            if not (_FRAC_LIMIT_NEG < b._numerator < _FRAC_LIMIT and b._denominator < _FRAC_LIMIT):
                return _SUB_IMPL(a, b)
        elif tb is not int or not (_FRAC_LIMIT_NEG < b < _FRAC_LIMIT):
            return _SUB_IMPL(a, b)
    elif ta is int:
        if tb is int:
            if _INT_LIMIT_NEG < a < _INT_LIMIT and _INT_LIMIT_NEG < b < _INT_LIMIT:
                return a - b
            return _SUB_IMPL(a, b)
        if (
            tb is not Fraction
            or not (_FRAC_LIMIT_NEG < a < _FRAC_LIMIT)
            or not (
                _FRAC_LIMIT_NEG < b._numerator < _FRAC_LIMIT
                and b._denominator < _FRAC_LIMIT
            )
        ):
            return _SUB_IMPL(a, b)
    else:
        return _SUB_IMPL(a, b)
    r = _F_SUB(a, b)
    return r._numerator if r._denominator == 1 else r


def _fast_mul(a, b):
    ta = type(a)
    tb = type(b)
    if ta is Fraction:
        if not (_FRAC_LIMIT_NEG < a._numerator < _FRAC_LIMIT and a._denominator < _FRAC_LIMIT):
            return _MUL_IMPL(a, b)
        if tb is Fraction:
            if not (_FRAC_LIMIT_NEG < b._numerator < _FRAC_LIMIT and b._denominator < _FRAC_LIMIT):
                return _MUL_IMPL(a, b)
        elif tb is not int or not (_FRAC_LIMIT_NEG < b < _FRAC_LIMIT):
            return _MUL_IMPL(a, b)
    elif ta is int:
        if tb is int:
            if _INT_LIMIT_NEG < a < _INT_LIMIT and _INT_LIMIT_NEG < b < _INT_LIMIT:
                return a * b
            return _MUL_IMPL(a, b)
        if (
            tb is not Fraction
            or not (_FRAC_LIMIT_NEG < a < _FRAC_LIMIT)
            or not (
                _FRAC_LIMIT_NEG < b._numerator < _FRAC_LIMIT
                and b._denominator < _FRAC_LIMIT
            )
        ):
            return _MUL_IMPL(a, b)
    else:
        return _MUL_IMPL(a, b)
    r = _F_MUL(a, b)
    return r._numerator if r._denominator == 1 else r


def _fast_div(a, b):
    # safe_div has no bit-size degrade: its exact path is
    # normalize(Fraction(a) / Fraction(b)) with a/0 == 0, reproduced here
    # without the isinstance ladder.
    ta = type(a)
    tb = type(b)
    if (ta is int or ta is Fraction) and (tb is int or tb is Fraction):
        if b == 0:
            return 0
        r = _F_DIV(a, b)
        return r._numerator if r._denominator == 1 else r
    return _DIV_IMPL(a, b)


def _fast_neg(a):
    ta = type(a)
    if ta is int:
        return -a
    if ta is Fraction:
        # a cannot carry denominator 1 out of normalized arithmetic, but
        # initializers/extras supplied by callers might.
        return -a._numerator if a._denominator == 1 else -a
    return _NEG_IMPL(a)


#: Built-ins dispatched to a specialized fast-path helper instead of the
#: registry impl (drop-in exact replacements, also valid as first-class
#: callables in Map/Filter/Fold position).
_FAST_IMPLS = (
    {
        "add": _fast_add,
        "sub": _fast_sub,
        "mul": _fast_mul,
        "div": _fast_div,
        "neg": _fast_neg,
    }
    if _HAS_FRACTION_SLOTS
    else {}
)

#: Comparisons whose registered impl is exactly the native operator; calls
#: with the right arity inline to that operator.
_INLINE_CMP = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!="}

#: Binary built-ins whose registered impl is exactly the native function of
#: the same name; calls with the right arity inline to it (the name is made
#: available in the generated module's restricted __builtins__).
_INLINE_NATIVE2 = {"min", "max"}

#: Operators usable for the zero-call inline int fast path (the else branch
#: falls back to the corresponding _fast_* helper, which is exact).
_INLINE_INT_OP = {"add": "+", "sub": "-", "mul": "*"}

_IDENT_RE = re.compile(r"[^0-9A-Za-z_]")
_SIMPLE_RE = re.compile(r"-?\d+|[A-Za-z_][A-Za-z0-9_]*")
_INT_LITERAL_RE = re.compile(r"-?\d+")


def _is_simple(code: str) -> bool:
    """Emitted code that is free to repeat: a name or an int literal."""
    return _SIMPLE_RE.fullmatch(code) is not None


def _is_int_literal(code: str) -> bool:
    return _INT_LITERAL_RE.fullmatch(code) is not None


def _free_names(expr: Expr) -> frozenset[str]:
    """Free ``Var``/``ListVar`` names, including a ``Var`` in call position
    (which :func:`repro.ir.traversal.free_vars` does not see)."""
    if isinstance(expr, (Var, ListVar)):
        return frozenset((expr.name,))
    if isinstance(expr, Lambda):
        return _free_names(expr.body) - frozenset(expr.params)
    if isinstance(expr, Let):
        return _free_names(expr.value) | (_free_names(expr.body) - {expr.name})
    result: frozenset[str] = frozenset()
    if isinstance(expr, Call) and isinstance(expr.func, Var):
        result |= frozenset((expr.func.name,))
    for child in expr.children():
        result |= _free_names(child)
    return result


def _unconditional_free(expr: Expr, bound: frozenset[str]) -> frozenset[str]:
    """Free names that every evaluation of ``expr`` is guaranteed to look
    up: everything except ``If`` branches and function bodies (which may
    never run — conservatively including directly-applied lambdas).  Drives
    the eager-vs-lazy split of extra-parameter binding in
    :func:`compile_online_step`."""
    if isinstance(expr, (Var, ListVar)):
        return frozenset((expr.name,)) - bound
    if isinstance(expr, Lambda):
        return frozenset()
    if isinstance(expr, Let):
        return _unconditional_free(expr.value, bound) | _unconditional_free(
            expr.body, bound | {expr.name}
        )
    if isinstance(expr, If):
        return _unconditional_free(expr.cond, bound)
    if isinstance(expr, (Map, Filter)):
        result = _unconditional_free(expr.lst, bound)
        if isinstance(expr.func, Var):
            result |= frozenset((expr.func.name,)) - bound
        return result
    if isinstance(expr, Fold):
        result = _unconditional_free(expr.init, bound) | _unconditional_free(expr.lst, bound)
        if isinstance(expr.func, Var):
            result |= frozenset((expr.func.name,)) - bound
        return result
    result = frozenset()
    if isinstance(expr, Call) and isinstance(expr.func, Var):
        result |= frozenset((expr.func.name,)) - bound
    for child in expr.children():
        result |= _unconditional_free(child, bound)
    return result


class _Codegen:
    """One generated module: accumulates globals (constants, built-in impls,
    helpers) while emitting Python code for IR trees.

    Two emission contexts:

    * :meth:`emit_stmts` — statement context for unconditionally-evaluated
      positions: every non-trivial node becomes a single-assignment
      temporary, memoized by the (structurally hashable) node itself, which
      is exactly common-subexpression elimination;
    * :meth:`emit` — expression context for conditionally-evaluated
      positions (``If`` branches, lambda bodies).  ``If`` branches still
      *read* the memo (no new bindings in scope); binder bodies drop it
      (their parameters may shadow the names a memoized temp was computed
      under).
    """

    def __init__(self) -> None:
        self.globals: dict = {
            "__builtins__": {
                "len": len,
                "list": list,
                "bool": bool,
                "int": int,
                "min": min,
                "max": max,
                "KeyError": KeyError,
                "TypeError": TypeError,
                "BaseException": BaseException,
            },
            "EvaluationError": EvaluationError,
            "_fold": _fold,
            "_proj": _proj,
            "_env_fn": _env_fn,
            "_arity": _arity,
            "_lam": _lam,
        }
        self._names: dict[str, str] = {}
        self._name_serial = itertools.count()
        self._serial = itertools.count()
        #: Extra-parameter names resolved lazily at each use site (via
        #: _extra_get) instead of eagerly in the step prologue — the ones
        #: referenced only in conditionally evaluated positions.
        self.lazy_extras: frozenset[str] = frozenset()
        #: The generated-code name holding the extra-parameter mapping for
        #: lazy lookups.  Fused kernels point this at a per-program slot
        #: (``_extra0``, ``_extra1``, ...) while emitting that program.
        self.extra_var: str = "_extra"

    # -- naming ------------------------------------------------------------

    def mangle(self, name: str) -> str:
        """Stable Python identifier for an IR variable name.  One identifier
        per distinct IR name, so IR shadowing maps onto Python shadowing."""
        ident = self._names.get(name)
        if ident is None:
            ident = f"_v{next(self._name_serial)}_{_IDENT_RE.sub('_', name)}"
            self._names[name] = ident
        return ident

    def new_scope(self) -> None:
        """Start a fresh IR-name scope (fused kernels: the same IR name in
        two programs must map to two identifiers).  Serial numbers keep
        monotonically increasing, so identifiers never collide across
        scopes of one generated module."""
        self._names = {}

    def fresh(self, prefix: str = "_t") -> str:
        return f"{prefix}{next(self._serial)}"

    def const(self, value) -> str:
        """Reference a constant.  Bools and small ints inline as literals;
        everything else (``Fraction``, floats including inf/nan, big ints)
        is preloaded into the globals so the closure reuses the *same*
        object the ``Const`` node carries — exactly what the interpreter
        returns."""
        if value is True:
            return "True"
        if value is False:
            return "False"
        if type(value) is int and -(2**31) < value < 2**31:
            return repr(value)
        name = self.fresh("_c")
        self.globals[name] = value
        return name

    def builtin(self, name: str) -> str:
        if not is_builtin(name):
            raise IRCompileError(f"unknown builtin {name!r}")
        ident = f"_b_{_IDENT_RE.sub('_', name)}"
        if ident not in self.globals:
            self.globals[ident] = _FAST_IMPLS.get(name) or get_builtin(name).impl
        return ident

    def string(self, text: str) -> str:
        name = self.fresh("_s")
        self.globals[name] = text
        return name

    def _name_ref(self, name: str, bound: frozenset[str], kind: str) -> str:
        """A variable reference: a Python local when bound (parameters,
        state, eagerly-fetched extras, binders), a lazy per-use fetch for
        conditionally-referenced extras, a compile-time error otherwise."""
        if name in bound:
            return self.mangle(name)
        if name in self.lazy_extras:
            self.globals.setdefault("_extra_get", _extra_get)
            return f"_extra_get({self.extra_var}, {name!r}, {kind!r})"
        raise IRCompileError(f"unbound variable {name!r}")

    # -- statement (CSE) context -------------------------------------------

    def emit_stmts(self, expr: Expr, bound: frozenset[str], lines: list, memo: dict) -> str:
        """Emit ``expr`` in unconditional statement context; returns a simple
        reference (literal, variable, or single-assignment temporary)."""
        cached = memo.get(expr)
        if cached is not None:
            return cached
        if isinstance(expr, (Const, Var, ListVar)):
            return self.emit(expr, bound, memo)
        code = self._node_stmts(expr, bound, lines, memo)
        temp = self.fresh()
        lines.append(f"    {temp} = {code}")
        memo[expr] = temp
        return temp

    def _node_stmts(self, expr: Expr, bound: frozenset[str], lines: list, memo: dict) -> str:
        """Code for one non-trivial node, hoisting its unconditionally
        evaluated children (argument/condition/list/init positions) into
        temporaries first, in the interpreter's evaluation order."""
        if isinstance(expr, Call):
            func = expr.func
            if isinstance(func, Var):
                # The callable check precedes argument evaluation.
                callee = self._hoist_env_fn(func, bound, lines)
                args = [self.emit_stmts(a, bound, lines, memo) for a in expr.args]
                return f"{callee}({', '.join(args)})"
            args = [self.emit_stmts(a, bound, lines, memo) for a in expr.args]
            return self._apply(func, args, bound, memo)
        if isinstance(expr, If):
            cond = self.emit_stmts(expr.cond, bound, lines, memo)
            then = self.emit(expr.then, bound, memo)
            orelse = self.emit(expr.orelse, bound, memo)
            return f"({then} if {cond} else {orelse})"
        if isinstance(expr, Map):
            return self._combinator(expr.func, expr.lst, bound, memo, filtering=False, lines=lines)
        if isinstance(expr, Filter):
            return self._combinator(expr.func, expr.lst, bound, memo, filtering=True, lines=lines)
        if isinstance(expr, Fold):
            fn = self._fold_callee(expr.func, bound, memo, lines=lines)
            init = self.emit_stmts(expr.init, bound, lines, memo)
            lst = self.emit_stmts(expr.lst, bound, lines, memo)
            return f"_fold({fn}, {init}, {lst})"
        if isinstance(expr, Let):
            value = self.emit_stmts(expr.value, bound, lines, memo)
            param = self.mangle(expr.name)
            body = self.emit(expr.body, bound | {expr.name}, None)
            return f"(lambda {param}: {body})({value})"
        if isinstance(expr, Snoc):
            lst = self.emit_stmts(expr.lst, bound, lines, memo)
            elem = self.emit_stmts(expr.elem, bound, lines, memo)
            return f"(list({lst}) + [{elem}])"
        if isinstance(expr, MakeTuple):
            items = [self.emit_stmts(item, bound, lines, memo) for item in expr.items]
            if not items:
                return "()"
            joined = ", ".join(items)
            return f"({joined},)" if len(items) == 1 else f"({joined})"
        if isinstance(expr, Proj):
            tup = self.emit_stmts(expr.tup, bound, lines, memo)
            return f"_proj({tup}, {expr.index}, {self.string(repr(expr))})"
        if isinstance(expr, Lambda):
            return f"_lam({len(expr.params)}, {self._lambda(expr, bound)})"
        if isinstance(expr, Hole):
            raise IRCompileError(f"cannot compile sketch hole {expr!r}")
        raise IRCompileError(f"unhandled node {type(expr).__name__}")

    def _hoist_env_fn(self, func: Var, bound: frozenset[str], lines: list) -> str:
        if func.name not in bound:
            raise IRCompileError(f"unbound variable {func.name!r}")
        temp = self.fresh("_f")
        lines.append(f"    {temp} = _env_fn({self.mangle(func.name)}, {func.name!r})")
        return temp

    # -- expression context ------------------------------------------------

    def emit(self, expr: Expr, bound: frozenset[str], memo: dict | None = None) -> str:
        if memo is not None:
            cached = memo.get(expr)
            if cached is not None:
                return cached
        if isinstance(expr, Const):
            return self.const(expr.value)
        if isinstance(expr, Var):
            return self._name_ref(expr.name, bound, "variable")
        if isinstance(expr, ListVar):
            return self._name_ref(expr.name, bound, "list variable")
        if isinstance(expr, Lambda):
            # Value position: arity-guarded like the interpreter's Closure.
            return f"_lam({len(expr.params)}, {self._lambda(expr, bound)})"
        if isinstance(expr, Call):
            func = expr.func
            if isinstance(func, Var):
                if func.name not in bound:
                    raise IRCompileError(f"unbound variable {func.name!r}")
                callee = f"_env_fn({self.mangle(func.name)}, {func.name!r})"
                args = ", ".join(self.emit(a, bound, memo) for a in expr.args)
                return f"{callee}({args})"
            args = [self.emit(a, bound, memo) for a in expr.args]
            return self._apply(func, args, bound, memo)
        if isinstance(expr, If):
            cond = self.emit(expr.cond, bound, memo)
            then = self.emit(expr.then, bound, memo)
            orelse = self.emit(expr.orelse, bound, memo)
            return f"({then} if {cond} else {orelse})"
        if isinstance(expr, Map):
            return self._combinator(expr.func, expr.lst, bound, memo, filtering=False)
        if isinstance(expr, Filter):
            return self._combinator(expr.func, expr.lst, bound, memo, filtering=True)
        if isinstance(expr, Fold):
            fn = self._fold_callee(expr.func, bound, memo)
            init = self.emit(expr.init, bound, memo)
            lst = self.emit(expr.lst, bound, memo)
            return f"_fold({fn}, {init}, {lst})"
        if isinstance(expr, Let):
            value = self.emit(expr.value, bound, memo)
            param = self.mangle(expr.name)
            body = self.emit(expr.body, bound | {expr.name}, None)
            return f"(lambda {param}: {body})({value})"
        if isinstance(expr, Snoc):
            lst = self.emit(expr.lst, bound, memo)
            elem = self.emit(expr.elem, bound, memo)
            return f"(list({lst}) + [{elem}])"
        if isinstance(expr, MakeTuple):
            if not expr.items:
                return "()"
            items = ", ".join(self.emit(item, bound, memo) for item in expr.items)
            return f"({items},)" if len(expr.items) == 1 else f"({items})"
        if isinstance(expr, Proj):
            tup = self.emit(expr.tup, bound, memo)
            return f"_proj({tup}, {expr.index}, {self.string(repr(expr))})"
        if isinstance(expr, Hole):
            raise IRCompileError(f"cannot compile sketch hole {expr!r}")
        raise IRCompileError(f"unhandled node {type(expr).__name__}")

    # -- shared pieces -----------------------------------------------------

    def _apply(self, func, args: list, bound: frozenset[str], memo: dict | None) -> str:
        """A ``Call`` whose arguments are already emitted (func is a builtin
        name or a Lambda; the Var case is handled by the callers because its
        check/evaluation order differs between contexts)."""
        arglist = ", ".join(args)
        if isinstance(func, str):
            if len(args) == 2:
                op = _INLINE_CMP.get(func)
                if op is not None:
                    return f"({args[0]} {op} {args[1]})"
                if func in _INLINE_NATIVE2:
                    # impl is exactly the native function of the same name
                    return f"{func}({arglist})"
                op = _INLINE_INT_OP.get(func)
                if op is not None and all(map(_is_simple, args)):
                    return self._int_fast_path(func, op, args)
            if len(args) == 1:
                if func == "not":
                    return f"(not {args[0]})"
                if func == "length":
                    return f"len({args[0]})"
            # Arity mismatches surface as TypeError from the impl call, for
            # compiled and interpreted execution alike.
            return f"{self.builtin(func)}({arglist})"
        if isinstance(func, Lambda):
            if len(func.params) != len(args):
                # The interpreter evaluates the arguments, then Closure
                # raises; the argument tuple reproduces that order.
                tup = "(" + "".join(a + ", " for a in args) + ")"
                return f"_arity({len(func.params)}, {tup})"
            return f"{self._lambda(func, bound)}({arglist})"
        raise IRCompileError(f"cannot apply {func!r}")

    def _int_fast_path(self, func: str, op: str, args: list) -> str:
        """Zero-call inline path for add/sub/mul over small ints, guarded to
        agree exactly with the registry wrapper; anything else falls through
        to the exact ``_b_*`` helper.  Arguments are simple (single names or
        int literals), so repeating them costs nothing and literals skip
        their statically-true guards."""
        a, b = args
        self.globals.setdefault("_IL", _INT_LIMIT)
        self.globals.setdefault("_ILN", _INT_LIMIT_NEG)
        checks = []
        for operand in args:
            if not _is_int_literal(operand):
                checks.append(f"{operand}.__class__ is int")
                # _ILN is the precomputed negation: writing `-_IL` here would
                # reallocate a 2**19-bit integer on every evaluation.
                checks.append(f"_ILN < {operand} < _IL")
        if not checks:  # both literals: statically small ints, always exact
            return f"({a} {op} {b})"
        guard = " and ".join(checks)
        return f"({a} {op} {b} if {guard} else {self.builtin(func)}({a}, {b}))"

    def _lambda(self, lam: Lambda, bound: frozenset[str]) -> str:
        # A binder scope: the memo is dropped (parameters may shadow the
        # names memoized temporaries were computed under).
        params = ", ".join(self.mangle(p) for p in lam.params)
        body = self.emit(lam.body, bound | frozenset(lam.params), None)
        return f"(lambda {params}: {body})" if params else f"(lambda: {body})"

    def _callable(self, func, bound: frozenset[str]) -> str:
        """The ``func`` position of Map/Filter/Fold as a Python expression
        evaluating to a callable (for the non-inlinable forms)."""
        if isinstance(func, str):
            return self.builtin(func)
        if isinstance(func, Var):
            if func.name not in bound:
                raise IRCompileError(f"unbound variable {func.name!r}")
            return f"_env_fn({self.mangle(func.name)}, {func.name!r})"
        raise IRCompileError(f"cannot apply {func!r}")

    def _combinator(
        self,
        func,
        lst: Expr,
        bound: frozenset[str],
        memo: dict | None,
        *,
        filtering: bool,
        lines: list | None = None,
    ) -> str:
        """Map/Filter as a comprehension.  With ``lines`` (statement
        context) the list — and, for an env-provided function, the callable
        check that precedes it — is hoisted; otherwise everything inlines."""
        if isinstance(func, Var) and lines is not None:
            callee = self._hoist_env_fn(func, bound, lines)
            lst_code = self.emit_stmts(lst, bound, lines, memo)
            return self._comp_with_callee(callee, lst_code, filtering)
        if lines is not None and not isinstance(func, Lambda):
            # Builtin callee: resolved at compile time, order-free.
            callee = self._callable(func, bound)
            lst_code = self.emit_stmts(lst, bound, lines, memo)
            return self._comp_with_callee(callee, lst_code, filtering)
        lst_code = (
            self.emit_stmts(lst, bound, lines, memo)
            if lines is not None
            else self.emit(lst, bound, memo)
        )
        if isinstance(func, Lambda):
            if len(func.params) == 1:
                param = self.mangle(func.params[0])
                body = self.emit(func.body, bound | frozenset(func.params), None)
                if filtering:
                    return f"[{param} for {param} in {lst_code} if {body}]"
                return f"[{body} for {param} in {lst_code}]"
            # Wrong arity: the interpreter raises when the closure is first
            # invoked — i.e. per element, so an empty list still maps to [].
            it = self.fresh()
            fail = f"_arity({len(func.params)}, ({it},))"
            if filtering:
                return f"[{it} for {it} in {lst_code} if {fail}]"
            return f"[{fail} for {it} in {lst_code}]"
        # Expression context with a builtin/env callee: evaluate (and check)
        # the callee before the list, matching _eval_function order.
        callee = self._callable(func, bound)
        fn = self.fresh("_f")
        it = self.fresh()
        if filtering:
            comp = f"[{it} for {it} in {lst_code} if {fn}({it})]"
        else:
            comp = f"[{fn}({it}) for {it} in {lst_code}]"
        return f"(lambda {fn}: {comp})({callee})"

    def _comp_with_callee(self, callee: str, lst_code: str, filtering: bool) -> str:
        it = self.fresh()
        if filtering:
            return f"[{it} for {it} in {lst_code} if {callee}({it})]"
        return f"[{callee}({it}) for {it} in {lst_code}]"

    def _fold_callee(
        self,
        func,
        bound: frozenset[str],
        memo: dict | None,
        lines: list | None = None,
    ) -> str:
        if isinstance(func, Lambda):
            if len(func.params) == 2:
                return self._lambda(func, bound)
            args = self.fresh("_a")
            return f"(lambda *{args}: _arity({len(func.params)}, {args}))"
        if isinstance(func, Var) and lines is not None:
            # Statement context: the callable check precedes init/list.
            return self._hoist_env_fn(func, bound, lines)
        return self._callable(func, bound)

    # -- finalization ------------------------------------------------------

    def build(self, source: str, entry: str, what: str) -> Callable:
        try:
            code = compile(source, f"<repro-jit:{what}>", "exec")
        except (SyntaxError, ValueError, RecursionError, MemoryError) as exc:
            raise IRCompileError(f"generated source rejected for {what}: {exc}") from None
        namespace: dict = {}
        exec(code, self.globals, namespace)
        fn = namespace[entry]
        fn.__repro_source__ = source  # introspection / debugging
        return fn


def compile_expr(expr: Expr, params: Sequence[str], name: str = "expr") -> Callable:
    """Compile ``expr`` into ``f(*values)`` taking one positional argument
    per name in ``params`` (in order; names must be distinct).

    Equivalent to ``evaluate(expr, dict(zip(params, values)))``, minus the
    per-call tree walk.  Free names outside ``params`` make the compilation
    fail with :class:`IRCompileError` (the interpreter would raise
    ``EvaluationError`` at run time; callers keep it as the fallback).
    """
    cg = _Codegen()
    arglist = ", ".join(cg.mangle(p) for p in params)
    lines: list[str] = [f"def _compiled({arglist}):"]
    try:
        result = cg.emit_stmts(expr, frozenset(params), lines, {})
    except RecursionError:
        raise IRCompileError(f"expression too deep to compile: {name}") from None
    lines.append(f"    return {result}")
    return cg.build("\n".join(lines) + "\n", "_compiled", name)


def _extras_of(program: OnlineProgram) -> tuple[list[str], set[str], list[str]]:
    """Extra-parameter analysis shared by the scalar and batch compilers:
    ``(all extras, list-typed extras, eagerly-fetched extras)``.

    Extras every step is guaranteed to look up can be fetched once in a
    prologue; extras referenced only in conditionally evaluated positions
    (If branches, lambda bodies) must be fetched lazily at each use site,
    so a missing binding raises exactly when the interpreter would.
    """
    from .traversal import iter_subexprs

    bound = frozenset(program.state_params) | {program.elem_param}
    all_extras: list[str] = []
    uncond: frozenset[str] = frozenset()
    list_extras: set[str] = set()
    for out in program.outputs:
        for free in sorted(_free_names(out) - bound):
            if free not in all_extras:
                all_extras.append(free)
        uncond |= _unconditional_free(out, bound)
        for sub in iter_subexprs(out):
            if isinstance(sub, ListVar) and sub.name not in bound:
                list_extras.add(sub.name)
    eager_extras = [name for name in all_extras if name in uncond]
    return all_extras, list_extras, eager_extras


def _emit_extra_fetch(
    cg: _Codegen,
    eager_extras: Sequence[str],
    list_extras: set[str],
    lines: list,
    indent: int,
    extra_var: str = "_extra",
) -> None:
    """Prologue fetch of eagerly-bound extras, with the interpreter's
    unbound-name error on a missing binding (or a ``None`` mapping)."""
    pad = " " * indent
    for extra_name in eager_extras:
        kind = "list variable" if extra_name in list_extras else "variable"
        lines.append(f"{pad}try:")
        lines.append(f"{pad}    {cg.mangle(extra_name)} = {extra_var}[{extra_name!r}]")
        lines.append(f"{pad}except (KeyError, TypeError):")
        lines.append(f"{pad}    raise EvaluationError(\"unbound {kind} {extra_name!r}\") from None")


def _emit_outputs(
    cg: _Codegen, program: OnlineProgram, eager_extras: Sequence[str], lines: list, name: str
) -> list[str]:
    """CSE'd statement-context emission of all outputs; returns the output
    references (one per new state component)."""
    all_bound = frozenset(program.state_params) | {program.elem_param} | frozenset(eager_extras)
    memo: dict = {}
    try:
        return [cg.emit_stmts(out, all_bound, lines, memo) for out in program.outputs]
    except RecursionError:
        raise IRCompileError(f"online program too deep to compile: {name}") from None


def _state_tuple(state_vars: Sequence[str]) -> str:
    if not state_vars:
        return "()"
    if len(state_vars) == 1:
        return f"({state_vars[0]},)"
    return f"({', '.join(state_vars)})"


def compile_online_step(program: OnlineProgram, name: str = "step") -> Callable:
    """Compile an online program into ``step(state, element, extra=None)``.

    A drop-in replacement for
    ``lambda s, x, e=None: step_online(program, s, x, e)`` — same results,
    same ``EvaluationError`` on a state-arity mismatch or a missing extra
    binding — with the per-element interpretation replaced by one native
    closure call.  Subexpressions shared between outputs (ubiquitous in
    synthesized schemes) are evaluated once per step.
    """
    cg = _Codegen()
    arity = program.arity
    all_extras, list_extras, eager_extras = _extras_of(program)
    cg.lazy_extras = frozenset(all_extras) - frozenset(eager_extras)

    lines = ["def _compiled_step(_state, _elem, _extra=None):"]
    lines.append(f"    if len(_state) != {arity}:")
    lines.append(
        "        raise EvaluationError("
        f"f\"online program expects {arity} state values, got {{len(_state)}}\")"
    )
    if arity == 1:
        lines.append(f"    ({cg.mangle(program.state_params[0])},) = _state")
    elif arity:
        unpack = ", ".join(cg.mangle(p) for p in program.state_params)
        lines.append(f"    {unpack} = _state")
    _emit_extra_fetch(cg, eager_extras, list_extras, lines, 4)
    # The element binds last: it shadows a state parameter of the same name,
    # exactly like env[elem_param] = element in step_online.
    lines.append(f"    {cg.mangle(program.elem_param)} = _elem")
    outputs = _emit_outputs(cg, program, eager_extras, lines, name)
    if len(outputs) == 1:
        lines.append(f"    return ({outputs[0]},)")
    else:
        lines.append(f"    return ({', '.join(outputs)})")
    return cg.build("\n".join(lines) + "\n", "_compiled_step", name)


def _check_batchable(program: OnlineProgram, what: str) -> None:
    """Batch compilation keeps state components in named locals across the
    loop; two program shapes break that invariant and are declined (the
    scalar closure driven by the generic loop reproduces them exactly):

    * an element parameter shadowing a state parameter — the loop target
      would clobber the pre-element state a mid-batch failure must report;
    * duplicate state parameters or an output count differing from the
      state arity — the name-addressed locals could not represent the
      positional state tuple the scalar step returns.
    """
    if program.elem_param in program.state_params:
        raise IRCompileError(
            f"{what}: element parameter {program.elem_param!r} shadows a "
            "state parameter; batch compilation declined"
        )
    if len(set(program.state_params)) != program.arity:
        raise IRCompileError(f"{what}: duplicate state parameters; batch compilation declined")
    if len(program.outputs) != program.arity:
        raise IRCompileError(
            f"{what}: {len(program.outputs)} outputs for arity "
            f"{program.arity}; batch compilation declined"
        )


def compile_step_batch(program: OnlineProgram, name: str = "batch") -> StepKernel:
    """Compile the whole batch loop of an online program into one closure:
    ``run(state, elements, extra=None) -> (final_state, consumed)``.

    Where :func:`compile_online_step` produces a scalar closure re-entered
    from interpreted Python once per element — paying a call, a state-tuple
    unpack, and a result-tuple pack each time — the kernel generated here
    compiles the *loop*: state components live in Python locals across the
    entire chunk, eager extra-parameter lookups are hoisted to the first
    loop iteration — once per batch, since extras cannot change mid-batch,
    and never for an empty batch, which must not look extras up — and the
    already-CSE'd step body is inlined in the loop.  Per-element state updates are a single tuple
    assignment, so they are atomic: when an element raises, the exception
    carries the state after the last fully-applied element
    (:func:`kernel_partial`), exactly the partial progress a per-element
    loop preserves.

    Results are bit-for-bit identical to folding the scalar step — same
    values, same types, same exception classes at the same elements.
    Raises :class:`IRCompileError` for programs the loop transformation
    cannot represent (see :func:`_check_batchable`); callers fall back to
    :meth:`StepKernel.from_step` over the resolved scalar step.
    """
    _check_batchable(program, name)
    cg = _Codegen()
    arity = program.arity
    all_extras, list_extras, eager_extras = _extras_of(program)
    cg.lazy_extras = frozenset(all_extras) - frozenset(eager_extras)
    state_vars = [cg.mangle(p) for p in program.state_params]
    state_tuple = _state_tuple(state_vars)

    lines = ["def _compiled_batch(_state, _elems, _extra=None):"]
    lines.append("    _n = 0")
    lines.append("    try:")
    # The loop target *is* the element binding (no per-element rebind);
    # _check_batchable guarantees it cannot clobber a state local.
    lines.append(f"        for {cg.mangle(program.elem_param)} in _elems:")
    # The whole prologue — arity check, state unpack, eager extras — runs
    # on the FIRST iteration, not above the loop: an empty batch must
    # touch neither the state shape nor the extras (a per-element loop
    # never would, so jit on and off must agree on it), while a non-empty
    # one fails on element 0 before its step body — exactly like the
    # scalar closure's prologue.
    lines.append("            if not _n:")
    lines.append(f"                if len(_state) != {arity}:")
    lines.append(
        "                    raise EvaluationError("
        f"f\"online program expects {arity} state values, got {{len(_state)}}\")"
    )
    if arity == 1:
        lines.append(f"                ({state_vars[0]},) = _state")
    elif arity:
        lines.append(f"                {', '.join(state_vars)} = _state")
    _emit_extra_fetch(cg, eager_extras, list_extras, lines, 16)
    body: list[str] = []
    outputs = _emit_outputs(cg, program, eager_extras, body, name)
    lines.extend("        " + line for line in body)
    if arity:
        # One tuple assignment: the RHS is fully evaluated before any state
        # local changes, so a raising subexpression leaves the previous
        # element's state intact for the partial-progress record.
        lines.append(f"            {', '.join(state_vars)} = {', '.join(outputs)}")
    lines.append("            _n += 1")
    # With no element applied the state locals are unbound (the prologue is
    # first-iteration): pass the input state through unchanged, exactly as
    # the generic step loop does.
    lines.append("    except BaseException as _exc:")
    lines.append(f"        _record_partial(_exc, {state_tuple} if _n else _state, _n)")
    lines.append("        raise")
    lines.append(f"    return ({state_tuple} if _n else _state, _n)")
    cg.globals["_record_partial"] = _record_partial
    fn = cg.build("\n".join(lines) + "\n", "_compiled_batch", name)
    return StepKernel(fn, compiled=True, name=name)


def compile_fused_steps(programs: Sequence[OnlineProgram], name: str = "fused") -> StepKernel:
    """Fuse several online programs into ONE batch loop that advances all
    of their states per element:
    ``run(states, elements, extras) -> (final_states, consumed)`` where
    ``states`` is a tuple of per-program state tuples and ``extras`` a
    sequence of per-program extra mappings (``None`` entries allowed).

    One pass over the chunk feeds every program — a pipeline of N schemes
    reads each element once instead of N times, with no per-program Python
    loop or closure call.  Every program gets its own identifier scope and
    its own extras slot, so name collisions across programs are impossible;
    CSE stays per-program (structurally equal subtrees of *different*
    programs bind different names and must not share temporaries).

    Failure semantics reproduce per-element ``push`` over the pipeline
    exactly: programs are advanced in order within each element, so when
    program *r* raises on element *k*, programs before *r* have applied
    ``k + 1`` elements and the rest ``k``.  The partial-progress record
    (:func:`kernel_partial`) then carries the mixed states and a *tuple*
    of per-program consumed counts (on success, ``consumed`` is the single
    shared count).
    """
    programs = list(programs)
    if not programs:
        raise IRCompileError("cannot fuse an empty program list")
    cg = _Codegen()
    cg.globals["_record_partial"] = _record_partial
    k = len(programs)

    lines = ["def _fused_batch(_states, _elems, _extras):"]
    lines.append(f"    if len(_states) != {k}:")
    lines.append(
        "        raise EvaluationError("
        f"f\"fused kernel expects {k} states, got {{len(_states)}}\")"
    )
    body_lines: list[str] = []
    state_tuples: list[str] = []
    for i, program in enumerate(programs):
        _check_batchable(program, f"{name}[{i}]")
        cg.new_scope()
        cg.extra_var = f"_extra{i}"
        arity = program.arity
        all_extras, list_extras, eager_extras = _extras_of(program)
        cg.lazy_extras = frozenset(all_extras) - frozenset(eager_extras)
        state_vars = [cg.mangle(p) for p in program.state_params]
        lines.append(f"    _s{i} = _states[{i}]")
        lines.append(f"    if len(_s{i}) != {arity}:")
        lines.append(
            "        raise EvaluationError("
            f"f\"online program {i} expects {arity} state values, "
            f"got {{len(_s{i})}}\")"
        )
        if arity == 1:
            lines.append(f"    ({state_vars[0]},) = _s{i}")
        elif arity:
            lines.append(f"    {', '.join(state_vars)} = _s{i}")
        if all_extras:
            lines.append(f"    _extra{i} = _extras[{i}]")
        # Body lines carry the emitters' 4-space indent; the assembly below
        # re-indents the whole body into the loop.
        if eager_extras:
            # Each program's extras hoist sits right before ITS body (and
            # only on the first iteration — an empty batch must not look
            # extras up): per-push order, where a missing binding for
            # program r still lets programs before r apply element 0.
            body_lines.append("    if not _n:")
            _emit_extra_fetch(cg, eager_extras, list_extras, body_lines, 8, extra_var=f"_extra{i}")
        body_lines.append(f"    {cg.mangle(program.elem_param)} = _elem")
        outputs = _emit_outputs(cg, program, eager_extras, body_lines, f"{name}[{i}]")
        # Per-program atomic update, applied as soon as ITS body is done —
        # matching push's in-order evaluation within one element (program j
        # cannot observe it: the scopes are disjoint).  _p marks how many
        # programs completed the current element, for the failure record.
        if state_vars:
            body_lines.append(f"    {', '.join(state_vars)} = {', '.join(outputs)}")
        body_lines.append(f"    _p = {i + 1}")
        state_tuples.append(_state_tuple(state_vars))
    states_tuple = "(" + "".join(t + ", " for t in state_tuples) + ")"
    consumed_tuple = ("(" + "".join(f"_n + 1 if _p > {i} else _n, " for i in range(k)) + ")")
    lines.append("    _n = 0")
    lines.append("    _p = 0")
    lines.append("    try:")
    lines.append("        for _elem in _elems:")
    lines.extend("        " + line for line in body_lines)
    lines.append("            _n += 1")
    # Reset AFTER the element completes, not at the loop top: the elements
    # iterator itself may raise between elements (inside the for-statement,
    # before any body line runs), and the failure record must not reuse the
    # previous element's progress marker.
    lines.append("            _p = 0")
    lines.append("    except BaseException as _exc:")
    lines.append(f"        _record_partial(_exc, {states_tuple}, {consumed_tuple})")
    lines.append("        raise")
    lines.append(f"    return ({states_tuple}, _n)")
    fn = cg.build("\n".join(lines) + "\n", "_fused_batch", name)
    return StepKernel(fn, compiled=True, fused=True, name=name)
