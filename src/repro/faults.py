"""Deterministic fault injection for the serving runtime (``repro.faults``).

The serve subsystem claims exactly-once delivery under worker crashes; this
module exists to *prove* it under a much wider fault model — and to keep
proving it on every commit.  A :class:`FaultPlan` is compiled from compact
spec strings and threaded through the server and its shard workers via
narrow injection hooks; the ``repro chaos`` verb
(:mod:`repro.evaluation.chaos`) then runs seeded trials with randomized
plans and differentially verifies every surviving trial against the
single-process oracle.

Spec grammar (colon-separated, one fault per spec)::

    kill:SHARD:AFTER            SIGKILL shard SHARD's worker once AFTER
                                elements have been pushed into the server
    stall:SHARD:AFTER[:SECS]    shard SHARD's worker hangs (sleeps SECS,
                                default 30) after consuming AFTER elements —
                                a *hung* worker, not a dead one; only the
                                liveness deadline can catch it.  Fires in
                                the first incarnation only, so the restored
                                replacement makes progress.
    corrupt-checkpoint:SHARD:GEN
                                shard SHARD's checkpoint generation GEN is
                                corrupted on disk right after it is written
                                (the digest check must catch it on restore
                                and fall back to an older generation)
    torn-write:NTH              each shard worker's NTH checkpoint write
                                (per incarnation) is torn: the file is
                                truncated after the write "succeeded" — a
                                filesystem that lied about durability
    poison:OFFSET               the element at 0-based stream offset OFFSET
                                has its value replaced by a sentinel the
                                scheme step deterministically raises on

Faults are *deterministic given the plan*: the same plan over the same
stream schedules the same kills, stalls, corruptions and poisons, which is
what makes chaos trials reproducible from a seed.

Injection surfaces:

* ``kills_at(pushed)`` — consulted by whoever drives the push loop (the
  chaos harness, or ``repro serve --fault``), mirroring ``--kill-shard``;
* ``shard_plan(sid)`` — the picklable per-worker slice
  (:class:`ShardFaultPlan`) that rides into the worker process and drives
  stalls and post-write file mutations;
* ``apply_stream(elements)`` — rewrites poisoned offsets of the element
  stream before it reaches the server.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Iterator

#: The poison sentinel: routed and batched like any value, but every scheme
#: step (compiled or interpreted) raises deterministically on arithmetic
#: with it.  A plain string so it crosses pipes and process boundaries.
POISON = "__repro-poison__"

_KINDS = ("kill", "stall", "corrupt-checkpoint", "torn-write", "poison")

#: Default sleep of a ``stall`` fault without an explicit SECS.  Long enough
#: that only liveness detection (never the stall ending on its own) can
#: unblock the run, short enough to bound a trial if detection is broken.
DEFAULT_STALL_SECS = 30.0


class FaultSpecError(ValueError):
    """A fault spec string does not parse or references an invalid target."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault (see the module docstring for the grammar)."""

    kind: str
    shard: int | None = None
    after: int | None = None
    secs: float | None = None
    generation: int | None = None
    nth: int | None = None
    offset: int | None = None

    def spec(self) -> str:
        """The canonical spec string (inverse of :func:`parse_fault`)."""
        if self.kind == "kill":
            return f"kill:{self.shard}:{self.after}"
        if self.kind == "stall":
            return f"stall:{self.shard}:{self.after}:{self.secs:g}"
        if self.kind == "corrupt-checkpoint":
            return f"corrupt-checkpoint:{self.shard}:{self.generation}"
        if self.kind == "torn-write":
            return f"torn-write:{self.nth}"
        return f"poison:{self.offset}"


def _int_field(token: str, what: str, spec: str, minimum: int = 0) -> int:
    try:
        value = int(token)
    except ValueError:
        raise FaultSpecError(f"bad fault spec {spec!r}: {what} must be an integer") from None
    if value < minimum:
        raise FaultSpecError(f"bad fault spec {spec!r}: {what} must be >= {minimum}")
    return value


def parse_fault(spec: str) -> FaultSpec:
    """Parse one spec string; raises :class:`FaultSpecError` on anything
    that does not match the grammar."""
    kind, _, rest = spec.strip().partition(":")
    args = rest.split(":") if rest else []
    if kind == "kill":
        if len(args) != 2:
            raise FaultSpecError(f"bad fault spec {spec!r}: kill takes SHARD:AFTER")
        return FaultSpec(
            "kill",
            shard=_int_field(args[0], "SHARD", spec),
            after=_int_field(args[1], "AFTER", spec, minimum=1),
        )
    if kind == "stall":
        if len(args) not in (2, 3):
            raise FaultSpecError(f"bad fault spec {spec!r}: stall takes SHARD:AFTER[:SECS]")
        secs = DEFAULT_STALL_SECS
        if len(args) == 3:
            try:
                secs = float(args[2])
            except ValueError:
                raise FaultSpecError(f"bad fault spec {spec!r}: SECS must be a number") from None
            if secs <= 0:
                raise FaultSpecError(f"bad fault spec {spec!r}: SECS must be > 0")
        return FaultSpec(
            "stall",
            shard=_int_field(args[0], "SHARD", spec),
            after=_int_field(args[1], "AFTER", spec, minimum=1),
            secs=secs,
        )
    if kind == "corrupt-checkpoint":
        if len(args) != 2:
            raise FaultSpecError(f"bad fault spec {spec!r}: corrupt-checkpoint takes SHARD:GEN")
        return FaultSpec(
            "corrupt-checkpoint",
            shard=_int_field(args[0], "SHARD", spec),
            generation=_int_field(args[1], "GEN", spec, minimum=1),
        )
    if kind == "torn-write":
        if len(args) != 1:
            raise FaultSpecError(f"bad fault spec {spec!r}: torn-write takes NTH")
        return FaultSpec("torn-write", nth=_int_field(args[0], "NTH", spec, minimum=1))
    if kind == "poison":
        if len(args) != 1:
            raise FaultSpecError(f"bad fault spec {spec!r}: poison takes OFFSET")
        return FaultSpec("poison", offset=_int_field(args[0], "OFFSET", spec))
    raise FaultSpecError(f"unknown fault kind {kind!r} in {spec!r}; choices: {', '.join(_KINDS)}")


@dataclass(frozen=True)
class ShardFaultPlan:
    """The picklable per-worker slice of a plan: everything a shard worker
    needs to injure itself on schedule, nothing about other shards."""

    shard: int
    stall_after: int | None = None
    stall_secs: float = DEFAULT_STALL_SECS
    corrupt_generations: frozenset = frozenset()
    torn_writes: frozenset = frozenset()

    def should_stall(self, consumed: int, incarnation: int, stalled: bool) -> bool:
        """Whether the worker hangs now: first incarnation only (a restored
        replacement must make progress), once per life."""
        return (
            self.stall_after is not None
            and incarnation == 0
            and not stalled
            and consumed >= self.stall_after
        )

    def mutate_after_write(self, path, generation: int, ordinal: int) -> str | None:
        """Post-write hook: injure the just-written checkpoint file.

        Returns the fault kind applied (``"corrupt"`` / ``"torn"``) or
        ``None``.  Corruption overwrites a span in the middle of the file
        (breaking either the JSON or the digest — both restore-detectable);
        a torn write truncates to half, the classic lying-filesystem tear.
        """
        applied = None
        if generation in self.corrupt_generations:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.seek(max(0, size // 2 - 4))
                handle.write(b"\x00CHAOS\x00")
            applied = "corrupt"
        if ordinal in self.torn_writes:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
            applied = "torn"
        return applied


def poison_element(element, value_index: int | None = None):
    """Replace an element's value with the :data:`POISON` sentinel, keeping
    the key fields intact so routing is unchanged (tuple elements with
    ``value_index`` pointing at the slot the scheme actually consumes)."""
    if value_index is None or not isinstance(element, tuple):
        return POISON
    slots = list(element)
    slots[value_index] = POISON
    return tuple(slots)


class FaultPlan:
    """A compiled set of faults, queryable per injection surface.

    >>> plan = FaultPlan(["kill:0:500", "stall:1:800:30", "poison:42"])
    >>> plan.kills_at(500)
    [0]
    >>> plan.shard_plan(1).stall_after
    800
    """

    def __init__(self, specs: Iterable[str | FaultSpec] = ()):
        self.faults: list[FaultSpec] = [
            s if isinstance(s, FaultSpec) else parse_fault(s) for s in specs
        ]
        self._kills: dict[int, list[int]] = {}
        for fault in self.faults:
            if fault.kind == "kill":
                self._kills.setdefault(fault.after, []).append(fault.shard)
        self.poison_offsets: frozenset = frozenset(
            f.offset for f in self.faults if f.kind == "poison"
        )

    def __bool__(self) -> bool:
        return bool(self.faults)

    def specs(self) -> list[str]:
        """Canonical spec strings (stable across parse round-trips — what
        the chaos report records per trial)."""
        return [fault.spec() for fault in self.faults]

    def validate(self, shards: int) -> "FaultPlan":
        """Reject specs naming shards the deployment does not have."""
        for fault in self.faults:
            if fault.shard is not None and not 0 <= fault.shard < shards:
                raise FaultSpecError(
                    f"fault {fault.spec()!r} names shard {fault.shard}, but the "
                    f"deployment has {shards} shard(s)"
                )
        return self

    # -- injection surfaces --------------------------------------------------

    def kills_at(self, pushed: int) -> list[int]:
        """Shards whose worker should be SIGKILLed once ``pushed`` elements
        have entered the server (consulted by the push-loop driver)."""
        return self._kills.get(pushed, [])

    def shard_plan(self, sid: int) -> ShardFaultPlan | None:
        """The worker-side slice for shard ``sid`` (``None`` when this plan
        never touches that worker — the hooks then cost nothing)."""
        stall_after = None
        stall_secs = DEFAULT_STALL_SECS
        corrupt = set()
        torn = set()
        for fault in self.faults:
            if fault.kind == "stall" and fault.shard == sid:
                stall_after, stall_secs = fault.after, fault.secs
            elif fault.kind == "corrupt-checkpoint" and fault.shard == sid:
                corrupt.add(fault.generation)
            elif fault.kind == "torn-write":
                torn.add(fault.nth)
        if stall_after is None and not corrupt and not torn:
            return None
        return ShardFaultPlan(
            shard=sid,
            stall_after=stall_after,
            stall_secs=stall_secs,
            corrupt_generations=frozenset(corrupt),
            torn_writes=frozenset(torn),
        )

    def apply_stream(self, elements: Iterable, value_index: int | None = 0) -> Iterator:
        """The element stream with poisoned offsets rewritten (a no-op
        pass-through when the plan holds no poison faults)."""
        if not self.poison_offsets:
            yield from elements
            return
        for offset, element in enumerate(elements):
            if offset in self.poison_offsets:
                yield poison_element(element, value_index)
            else:
                yield element

    def allows_refusal(self, on_error: str = "fail") -> bool:
        """Whether a clean :class:`~repro.serve.ServeError` refusal is a
        *correct* outcome under this plan: a poisoned stream in ``fail``
        mode must refuse, and corrupt/torn checkpoint faults may leave a
        shard with no intact generation to restore (also a refusal, never a
        silent fresh start)."""
        if self.poison_offsets and on_error != "quarantine":
            return True
        return any(f.kind in ("corrupt-checkpoint", "torn-write") for f in self.faults)
