"""Fingerprints of the synthesizer implementation and of synthesis tasks.

Cached artifacts (the result cache of :mod:`repro.evaluation.cache` and the
scheme store of :mod:`repro.store`) must be invalidated when the *code that
produced them* changes, not only when the task or the knobs change.  This
module provides the missing ingredient: a content hash over the source tree
of the packages that determine synthesis behaviour (``repro.core``,
``repro.algebra``, ``repro.ir``, ``repro.frontend``).  Editing a docstring
still invalidates — a deliberately conservative trade: a spurious re-run
costs seconds, a stale scheme served after a semantics change costs
correctness.

Also home to :func:`program_fingerprint`, the task-identity hash used by the
scheme store for ad-hoc programs that are not suite benchmarks (compare
:meth:`repro.suites.registry.Benchmark.source_fingerprint`).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path

from .ir.nodes import Program
from .ir.pretty import program_to_sexpr

#: Sub-packages whose source defines what the synthesizer produces.  The
#: evaluation / CLI / runtime layers are excluded: they decide how results
#: are *presented and deployed*, never what a synthesized scheme computes.
IMPL_PACKAGES = ("core", "algebra", "ir", "frontend")


@lru_cache(maxsize=None)
def implementation_digest() -> str:
    """Stable hex digest of the synthesizer's own source tree.

    Hashes every ``*.py`` file under :data:`IMPL_PACKAGES` (path and
    content, in sorted order), so any code change — new axiom, fixed
    simplifier, different enumeration order — yields a different digest and
    auto-invalidates cache and store entries produced by the old code.
    Cached per process: the source tree cannot change under a running
    interpreter in any way we should honour.
    """
    root = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for package in IMPL_PACKAGES:
        for path in sorted((root / package).rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
    return digest.hexdigest()


def program_fingerprint(program: Program, element_arity: int = 1) -> str:
    """Content hash of one synthesis *task* given directly as a program.

    The program is hashed through its canonical s-expression printing, so
    the same task reaches the same store entry whether it arrived as Python
    source, an s-expression file, or a hand-built IR value.
    """
    payload = f"{element_arity}\n\x00{program_to_sexpr(program)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
