"""Checkpoint / restore for running operators (restart-safe deployment).

A long-running stream deployment must survive process restarts without
replaying the stream from the beginning.  A checkpoint bundles everything a
resumed process needs: the *scheme* (via the versioned serialization of
:mod:`repro.core.serialize`) and the *operator state* (accumulator tuples,
element counts, extra-parameter bindings), all as exact JSON-safe values —
resuming from a checkpoint is bit-for-bit identical to never having stopped,
which the tests assert.

Three operator shapes are supported, each with ``checkpoint()`` /
``restore()`` on the class itself, plus file helpers here::

    save_checkpoint(op, "ck.json")
    ...process restarts...
    op = load_checkpoint("ck.json")          # operator / pipeline
    op = load_checkpoint("ck.json", key_fn=lambda e: e[1])   # keyed

Key/value extractor *functions* of keyed operators are code, not data; a
restore of a keyed checkpoint takes them as arguments.

Execution backends are process artifacts, not state: a restored operator
re-resolves its scalar step *and* its batch :class:`~repro.ir.compile.StepKernel`
exactly as a fresh one does (honouring ``REPRO_JIT``/``jit=``), so batched
ingestion after a resume remains bit-for-bit identical to never having
stopped.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Hashable

from ..core.serialize import (
    SchemeFormatError,
    decode_value,
    encode_value,
    scheme_from_dict,
)
from ..ir.values import Value

CHECKPOINT_VERSION = 1

_OPERATOR = "repro/checkpoint-operator"
_PIPELINE = "repro/checkpoint-pipeline"
_KEYED = "repro/checkpoint-keyed"


class CheckpointError(ValueError):
    """The checkpoint is malformed, inconsistent, or from the future."""


def _check_envelope(data, kind: str) -> None:
    if not isinstance(data, dict):
        raise CheckpointError(f"checkpoint must be an object, got {type(data).__name__}")
    if data.get("kind") != kind:
        raise CheckpointError(
            f"expected a {kind!r} checkpoint, got {data.get('kind')!r}"
        )
    if data.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {data.get('version')!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )


def _decode_state(raw, arity: int, what: str) -> tuple[Value, ...]:
    if not isinstance(raw, list):
        raise CheckpointError(f"{what} state must be an array")
    try:
        state = tuple(decode_value(v) for v in raw)
    except SchemeFormatError as exc:
        raise CheckpointError(f"bad {what} state: {exc}") from None
    if len(state) != arity:
        raise CheckpointError(
            f"{what} state arity {len(state)} != scheme arity {arity}"
        )
    return state


def _decode_extra(raw) -> dict[str, Value]:
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise CheckpointError("extra bindings must be an object")
    try:
        return {str(k): decode_value(v) for k, v in raw.items()}
    except SchemeFormatError as exc:
        raise CheckpointError(f"bad extra bindings: {exc}") from None


def _decode_count(raw) -> int:
    if not isinstance(raw, int) or isinstance(raw, bool) or raw < 0:
        raise CheckpointError(f"count must be a non-negative integer, got {raw!r}")
    return raw


# -- OnlineOperator ---------------------------------------------------------


def operator_checkpoint(op) -> dict:
    return {
        "kind": _OPERATOR,
        "version": CHECKPOINT_VERSION,
        "name": op.name,
        "count": op.count,
        "extra": {k: encode_value(v) for k, v in op.extra.items()},
        "state": [encode_value(v) for v in op.state],
        "scheme": op.scheme.to_dict(),
    }


def restore_operator(data: dict):
    from .stream import OnlineOperator

    _check_envelope(data, _OPERATOR)
    try:
        scheme = scheme_from_dict(data.get("scheme"))
    except SchemeFormatError as exc:
        raise CheckpointError(f"invalid scheme in checkpoint: {exc}") from None
    op = OnlineOperator(scheme, _decode_extra(data.get("extra")), data.get("name"))
    op.state = _decode_state(data.get("state"), scheme.arity, "operator")
    op.count = _decode_count(data.get("count"))
    return op


# -- StreamPipeline ---------------------------------------------------------


def pipeline_checkpoint(pipeline) -> dict:
    return {
        "kind": _PIPELINE,
        "version": CHECKPOINT_VERSION,
        "operators": {
            name: operator_checkpoint(op) for name, op in pipeline.operators.items()
        },
    }


def restore_pipeline(data: dict):
    from .stream import StreamPipeline

    _check_envelope(data, _PIPELINE)
    raw_ops = data.get("operators")
    if not isinstance(raw_ops, dict):
        raise CheckpointError("pipeline checkpoint needs an 'operators' object")
    return StreamPipeline(
        {str(name): restore_operator(entry) for name, entry in raw_ops.items()}
    )


# -- KeyedOperator ----------------------------------------------------------


def keyed_checkpoint(op) -> dict:
    return {
        "kind": _KEYED,
        "version": CHECKPOINT_VERSION,
        "name": op.name,
        "count": op.count,
        "extra": {k: encode_value(v) for k, v in op.extra.items()},
        "scheme": op.scheme.to_dict(),
        "partitions": [
            [
                encode_value(key),
                [encode_value(v) for v in part.state],
                part.count,
            ]
            for key, part in op.partitions.items()
        ],
    }


def restore_keyed(
    data: dict,
    key_fn: Callable[[Value], Hashable],
    *,
    value_fn: Callable[[Value], Value] | None = None,
    jit: bool | None = None,
):
    from .keyed import KeyedOperator
    from .stream import OnlineOperator

    _check_envelope(data, _KEYED)
    try:
        scheme = scheme_from_dict(data.get("scheme"))
    except SchemeFormatError as exc:
        raise CheckpointError(f"invalid scheme in checkpoint: {exc}") from None
    keyed = KeyedOperator(
        scheme,
        key_fn,
        value_fn=value_fn,
        extra=_decode_extra(data.get("extra")),
        name=data.get("name"),
        jit=jit,
    )
    keyed.count = _decode_count(data.get("count"))
    raw_parts = data.get("partitions")
    if not isinstance(raw_parts, list):
        raise CheckpointError("keyed checkpoint needs a 'partitions' array")
    for entry in raw_parts:
        if not (isinstance(entry, list) and len(entry) == 3):
            raise CheckpointError(f"malformed partition entry: {entry!r}")
        raw_key, raw_state, raw_count = entry
        try:
            key = decode_value(raw_key)
        except SchemeFormatError as exc:
            raise CheckpointError(f"bad partition key: {exc}") from None
        if isinstance(key, list):  # decoded containers: only tuples hash
            raise CheckpointError("partition keys must be hashable values")
        part = OnlineOperator(scheme, keyed.extra, f"{keyed.name}[{key!r}]", jit=jit)
        part.state = _decode_state(raw_state, scheme.arity, f"partition {key!r}")
        part.count = _decode_count(raw_count)
        keyed.partitions[key] = part
    return keyed


# -- file helpers -----------------------------------------------------------


def atomic_write_text(path, text: str) -> None:
    """Write ``text`` to ``path`` atomically: temp file in the same
    directory, then ``os.replace``.

    A checkpoint is the *only* thing standing between a crashed worker and
    replaying the stream from zero, so a crash mid-write must never leave a
    torn file behind — readers see either the previous complete checkpoint
    or the new complete one, nothing in between.  The temp file lives next
    to the target (``os.replace`` must not cross filesystems) and is
    removed if the write itself fails.
    """
    target = Path(path)
    tmp = target.with_name(f".{target.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_checkpoint(op, path) -> None:
    """Write ``op.checkpoint()`` (or a ready-made checkpoint dict) to
    ``path`` as JSON, atomically (see :func:`atomic_write_text`) — a crash
    mid-write leaves the previous checkpoint intact instead of a torn file.
    """
    data = op if isinstance(op, dict) else op.checkpoint()
    atomic_write_text(path, json.dumps(data, indent=2, sort_keys=True) + "\n")


def load_checkpoint(
    path,
    *,
    key_fn: Callable[[Value], Hashable] | None = None,
    value_fn: Callable[[Value], Value] | None = None,
):
    """Load any checkpoint file, dispatching on its ``kind``.

    Keyed checkpoints need ``key_fn`` (and optionally ``value_fn``) supplied
    again; passing them for other kinds is an error, as is omitting them for
    a keyed one.
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise CheckpointError("checkpoint must be a JSON object")
    kind = data.get("kind")
    if kind == _KEYED:
        if key_fn is None:
            raise CheckpointError(
                "restoring a keyed checkpoint requires key_fn= (extractors are "
                "code, not data)"
            )
        return restore_keyed(data, key_fn, value_fn=value_fn)
    if key_fn is not None or value_fn is not None:
        raise CheckpointError(f"key_fn/value_fn only apply to keyed checkpoints, not {kind!r}")
    if kind == _OPERATOR:
        return restore_operator(data)
    if kind == _PIPELINE:
        return restore_pipeline(data)
    raise CheckpointError(f"unknown checkpoint kind {kind!r}")
